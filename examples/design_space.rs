//! Design-space exploration: trace the latency-vs-power Pareto frontier on
//! three FPGA boards and write the Verilog of a chosen design to disk.
//!
//! Run: `cargo run --release --example design_space [output_dir]`

use archytas_core::{
    emit_verilog, knob_bounds, pareto_frontier, synthesize, DesignSpec, Objective,
};
use archytas_hw::FpgaPlatform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for platform in [
        FpgaPlatform::kintex7_160t(),
        FpgaPlatform::zc706(),
        FpgaPlatform::virtex7_690t(),
    ] {
        let (nd, nm, s) = knob_bounds(&platform);
        println!(
            "\n=== {} (knob lattice {}x{}x{} = {} designs) ===",
            platform.name,
            nd,
            nm,
            s,
            nd * nm * s
        );
        let base = DesignSpec {
            platform: platform.clone(),
            ..DesignSpec::zc706_power_optimal(20.0)
        };
        // Anchor the sweep at this board's fastest feasible design.
        let fastest = synthesize(&DesignSpec {
            objective: Objective::MinLatency,
            ..base.clone()
        })?;
        let frontier = pareto_frontier(
            &base,
            (fastest.latency_ms * 1.02, fastest.latency_ms * 4.0),
            8,
        );
        println!(
            "{:>12} {:>9} {:>15}",
            "latency(ms)", "power(W)", "(nd, nm, s)"
        );
        for p in &frontier {
            println!(
                "{:>12.2} {:>9.2} {:>15}",
                p.design.latency_ms,
                p.design.power_w,
                format!(
                    "({}, {}, {})",
                    p.design.config.nd, p.design.config.nm, p.design.config.s
                )
            );
        }
    }

    // Emit the Verilog for a balanced ZC706 design.
    let design = synthesize(&DesignSpec::zc706_power_optimal(3.0))?;
    let verilog = emit_verilog(&design.config);
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/generated_rtl".to_string());
    std::fs::create_dir_all(&out_dir)?;
    for file in &verilog.files {
        std::fs::write(format!("{out_dir}/{}", file.name), &file.contents)?;
    }
    println!(
        "\nwrote {} Verilog files for (nd={}, nm={}, s={}) to {out_dir}/ (structural check: {})",
        verilog.files.len(),
        design.config.nd,
        design.config.nm,
        design.config.s,
        if verilog.structural_check().is_clean() {
            "clean"
        } else {
            "PROBLEMS"
        }
    );
    Ok(())
}
