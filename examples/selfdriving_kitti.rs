//! Self-driving scenario: a KITTI-like drive processed end-to-end on the
//! High-Perf accelerator (with the dynamic run-time optimizer) and on the
//! Intel CPU baseline, comparing latency, energy and accuracy.
//!
//! The drive runs on the current estimator stack: every window is solved
//! through a reused `SolverWorkspace` (no per-window allocation) and the
//! runtime is fed the estimator's per-window health verdict via
//! `step_with_health`, so the watchdog telemetry printed at the end is
//! live — on this clean stream it must stay at zero.
//!
//! Run: `cargo run --release --example selfdriving_kitti`

use archytas_baselines::CpuPlatform;
use archytas_core::{run_sequence, Executor, IterPolicy, RuntimeSystem, ITER_CAP};
use archytas_dataset::kitti_sequences;
use archytas_hw::{AcceleratorModel, FpgaPlatform, HIGH_PERF};
use archytas_mdfg::ProblemShape;

fn main() {
    let data = kitti_sequences()[0].truncated(20.0).build();
    println!(
        "sequence {}: {} frames, camera {}x{}",
        data.spec.name,
        data.frames.len(),
        data.camera.width,
        data.camera.height
    );

    // Accelerator with the dynamic optimizer (Sec. 6).
    let platform = FpgaPlatform::zc706();
    let mut accel = Executor::Accelerator {
        model: AcceleratorModel::new(HIGH_PERF, platform.clone()),
        runtime: Some(RuntimeSystem::new(
            HIGH_PERF,
            &ProblemShape::typical(),
            2.5,
            &platform,
            IterPolicy::default_table(),
        )),
    };
    let accel_run = run_sequence(&data, &mut accel);

    // Software baseline on the 12-core Intel machine.
    let mut cpu = Executor::Cpu {
        platform: CpuPlatform::intel_comet_lake(),
        iterations: ITER_CAP,
    };
    let cpu_run = run_sequence(&data, &mut cpu);

    println!("\n{:<26}{:>14}{:>14}", "", "accelerator", "Intel CPU");
    println!(
        "{:<26}{:>14.2}{:>14.2}",
        "mean window latency (ms)",
        accel_run.mean_latency_ms(),
        cpu_run.mean_latency_ms()
    );
    println!(
        "{:<26}{:>14.1}{:>14.1}",
        "total energy (mJ)", accel_run.total_energy_mj, cpu_run.total_energy_mj
    );
    println!(
        "{:<26}{:>14.2}{:>14.2}",
        "mean power (W)",
        accel_run.mean_power_w(),
        cpu_run.mean_power_w()
    );
    println!(
        "{:<26}{:>14.2}{:>14.2}",
        "mean NLS iterations",
        accel_run.mean_iterations(),
        cpu_run.mean_iterations()
    );
    println!(
        "{:<26}{:>14.2}{:>14.2}",
        "trajectory RMSE (cm)",
        accel_run.rmse_m * 100.0,
        cpu_run.rmse_m * 100.0
    );
    println!(
        "\nspeedup {:.1}x, energy reduction {:.1}x, accuracy within {:.2} cm",
        cpu_run.total_time_ms / accel_run.total_time_ms,
        cpu_run.total_energy_mj / accel_run.total_energy_mj,
        (accel_run.rmse_m - cpu_run.rmse_m).abs() * 100.0
    );

    // Show the run-time knob at work: the runtime profiler's iteration
    // histogram, with the modelled energy each budget bucket cost.
    let mut energy_by_iter = [0.0f64; ITER_CAP + 1];
    for w in &accel_run.windows {
        energy_by_iter[w.iterations.min(ITER_CAP)] += w.energy_mj;
    }
    println!(
        "\nper-window NLS iterations chosen by the run-time system \
         ({} total over {} windows):",
        accel_run.total_iterations,
        accel_run.iteration_profile.windows()
    );
    for (iter, &count) in accel_run
        .iteration_profile
        .counts()
        .iter()
        .enumerate()
        .filter(|(_, c)| **c > 0)
    {
        println!(
            "  Iter = {iter}: {count} windows ({:.1} mJ)",
            energy_by_iter[iter]
        );
    }

    // Health-fed runtime telemetry: on a clean drive the degradation
    // ladder never leaves Nominal and the watchdog never overrides the
    // power optimizer.
    println!(
        "estimator health: {} degraded window(s), watchdog engaged on {} window(s)",
        accel_run.degraded_windows(),
        accel_run.watchdog_windows()
    );
}
