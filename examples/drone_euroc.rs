//! Drone scenario: a EuRoC-like machine-hall flight on the Low-Power
//! design, static vs dynamically optimized — the run-time system's
//! clock-gating energy story (paper Sec. 6/7.6).
//!
//! Both runs solve every window through a reused `SolverWorkspace`, and
//! the dynamic run feeds the estimator's health verdict to the runtime
//! (`step_with_health`): its energy savings come with a safety interlock
//! that pins full compute whenever the estimator reports trouble.
//!
//! Run: `cargo run --release --example drone_euroc`

use archytas_core::{run_sequence, Executor, IterPolicy, RuntimeSystem};
use archytas_dataset::euroc_sequences;
use archytas_hw::{window_energy_breakdown, AcceleratorModel, FpgaPlatform, PowerModel, LOW_POWER};
use archytas_mdfg::ProblemShape;

fn main() {
    let data = euroc_sequences()[2].truncated(20.0).build();
    println!("sequence {}: {} frames", data.spec.name, data.frames.len());

    let platform = FpgaPlatform::zc706();

    let mut static_exec = Executor::Accelerator {
        model: AcceleratorModel::new(LOW_POWER, platform.clone()),
        runtime: None,
    };
    let static_run = run_sequence(&data, &mut static_exec);

    let mut dynamic_exec = Executor::Accelerator {
        model: AcceleratorModel::new(LOW_POWER, platform.clone()),
        runtime: Some(RuntimeSystem::new(
            LOW_POWER,
            &ProblemShape::typical(),
            3.5,
            &platform,
            IterPolicy::default_table(),
        )),
    };
    let dynamic_run = run_sequence(&data, &mut dynamic_exec);

    println!("\n{:<26}{:>12}{:>12}", "", "static", "dynamic");
    println!(
        "{:<26}{:>12.1}{:>12.1}",
        "total energy (mJ)", static_run.total_energy_mj, dynamic_run.total_energy_mj
    );
    println!(
        "{:<26}{:>12.2}{:>12.2}",
        "mean power (W)",
        static_run.mean_power_w(),
        dynamic_run.mean_power_w()
    );
    println!(
        "{:<26}{:>12.2}{:>12.2}",
        "mean NLS iterations",
        static_run.mean_iterations(),
        dynamic_run.mean_iterations()
    );
    println!(
        "{:<26}{:>12.3}{:>12.3}",
        "energy per window (mJ)",
        static_run.total_energy_mj / static_run.windows.len().max(1) as f64,
        dynamic_run.total_energy_mj / dynamic_run.windows.len().max(1) as f64
    );
    println!(
        "{:<26}{:>12.2}{:>12.2}",
        "trajectory RMSE (cm)",
        static_run.rmse_m * 100.0,
        dynamic_run.rmse_m * 100.0
    );
    println!(
        "\ndynamic optimization saves {:.1}% energy at {:+.2} cm RMSE impact",
        (1.0 - dynamic_run.total_energy_mj / static_run.total_energy_mj) * 100.0,
        (dynamic_run.rmse_m - static_run.rmse_m) * 100.0
    );
    println!(
        "safety interlock: {} degraded window(s), watchdog engaged on {} window(s) \
         (clean flight: both zero, so every saving above came from healthy windows)",
        dynamic_run.degraded_windows(),
        dynamic_run.watchdog_windows()
    );

    // Where the energy goes inside one window (per-block accounting from
    // the cycle-level simulator).
    let breakdown = window_energy_breakdown(
        &ProblemShape::typical(),
        &LOW_POWER,
        6,
        &PowerModel::for_platform(&platform),
        platform.clock_mhz,
    );
    println!(
        "
per-block energy of one full window ({:.2} ms):",
        breakdown.window_ms
    );
    for (block, active, idle) in &breakdown.per_block {
        println!("  {block:<18?} active {active:.3} mJ, idle {idle:.3} mJ");
    }
    println!(
        "  base/static: {:.3} mJ | idle headroom a finer gating scheme could reclaim: {:.3} mJ",
        breakdown.base_mj,
        breakdown.idle_mj()
    );

    // A flight battery story: mWh per minute of flight at 10 Hz windows.
    let per_minute_mwh = |mj_total: f64, windows: usize| {
        let mj_per_window = mj_total / windows.max(1) as f64;
        mj_per_window * 600.0 / 3600.0 // 600 windows/minute, mJ → mWh
    };
    println!(
        "localization energy: {:.2} mWh/min static vs {:.2} mWh/min dynamic",
        per_minute_mwh(static_run.total_energy_mj, static_run.windows.len()),
        per_minute_mwh(dynamic_run.total_energy_mj, dynamic_run.windows.len()),
    );
}
