//! Quickstart: generate a localization accelerator from a high-level
//! algorithm description and a design specification.
//!
//! Run: `cargo run --release --example quickstart`

use archytas_core::{AlgorithmDescription, Archytas, DesignSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the algorithm: sliding-window visual-inertial MAP
    //    estimation at a typical KITTI-scale workload.
    let algorithm = AlgorithmDescription::slam_typical();

    // 2. State the design constraints: a power-optimal design on the ZC706
    //    that finishes every sliding window within 5 ms at the full
    //    iteration budget.
    let spec = DesignSpec::zc706_power_optimal(5.0);

    // 3. Generate: algorithm description → M-DFG → schedule → synthesized
    //    configuration → synthesizable Verilog.
    let accelerator = Archytas::generate(&algorithm, &spec)?;

    println!("=== Archytas quickstart ===");
    println!(
        "M-DFG blocking: NLS split p = {} (leading block diagonal: {})",
        accelerator.mdfg.nls_blocking.p, accelerator.mdfg.nls_blocking.leading_diagonal
    );
    println!(
        "shared hardware blocks across NLS/marginalization: {:?}",
        accelerator.schedule.shared_blocks
    );
    let d = &accelerator.design;
    println!(
        "synthesized configuration: nd = {}, nm = {}, s = {}",
        d.config.nd, d.config.nm, d.config.s
    );
    println!(
        "modelled: {:.2} ms/window, {:.2} W, {:.0} DSPs ({} candidates examined)",
        d.latency_ms, d.power_w, d.resources.dsp, d.candidates_examined
    );

    let check = accelerator.verilog.structural_check();
    println!(
        "emitted Verilog: {} files, {} bytes, structural check: {}",
        accelerator.verilog.files.len(),
        accelerator.verilog.total_bytes(),
        if check.is_clean() {
            "clean"
        } else {
            "PROBLEMS"
        }
    );
    let elab = accelerator.elaborate();
    println!(
        "elaboration: {} modules, {} hierarchy levels, {} errors, {} warnings",
        elab.modules.len(),
        elab.hierarchy.len(),
        elab.errors.len(),
        elab.warnings.len()
    );
    println!("\n--- archytas_top.v (first 24 lines) ---");
    for line in accelerator.verilog.files[0].contents.lines().take(24) {
        println!("{line}");
    }
    Ok(())
}
