//! Workspace root: the Archytas reproduction, re-exported for examples
//! and integration tests. See README.md and DESIGN.md.
pub use archytas_core as core;
