#!/usr/bin/env bash
# Quick parallel-layer benchmark smoke: runs the synthesizer,
# solver-iteration and accelerator-simulation criterion benches in --quick
# mode at ARCHYTAS_THREADS=1 and ARCHYTAS_THREADS=4, and collects the
# BENCHJSON lines the vendored criterion harness emits into BENCH_par.json.
#
# Usage: scripts/bench_smoke.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_par.json}"
BENCHES=(synthesizer solver_iteration accel_sim)
THREAD_COUNTS=(1 4)
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "building benches (release)..." >&2
cargo build -q --release -p archytas-bench --benches

for threads in "${THREAD_COUNTS[@]}"; do
    for bench in "${BENCHES[@]}"; do
        echo "running $bench (ARCHYTAS_THREADS=$threads, --quick)..." >&2
        ARCHYTAS_THREADS="$threads" \
            cargo bench -q -p archytas-bench --bench "$bench" -- --quick \
            | sed -n "s/^BENCHJSON /{\"threads\":$threads,\"bench\":\"$bench\",\"result\":/p" \
            | sed 's/$/}/' >> "$TMP"
    done
done

# Assemble a single JSON document: one record per (threads, bench, case).
{
    echo '{"schema":"archytas-bench-smoke-v1","records":['
    paste -sd, - < "$TMP"
    echo ']}'
} > "$OUT"

count="$(wc -l < "$TMP")"
echo "wrote $OUT ($count records)" >&2
