#!/usr/bin/env bash
# Quick parallel-layer benchmark smoke: runs the synthesizer,
# solver-iteration and accelerator-simulation criterion benches in --quick
# mode at ARCHYTAS_THREADS=1 and ARCHYTAS_THREADS=4, and collects the
# BENCHJSON lines the vendored criterion harness emits into BENCH_par.json.
#
# It additionally extracts the solver-path records (every `solver/*` case
# plus the accelerator's `f32_functional_solve`) into BENCH_solver.json and
# enforces the parallel-dispatch regression gate: the run fails (non-zero
# exit) when any solver bench at 4 threads is more than 1.25x its 1-thread
# mean — i.e. when adding threads makes the solver slower.
#
# Usage: scripts/bench_smoke.sh [output.json] [solver-output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_par.json}"
SOLVER_OUT="${2:-BENCH_solver.json}"
BENCHES=(synthesizer solver_iteration accel_sim)
THREAD_COUNTS=(1 4)
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# Formatting gate: the whole workspace must be rustfmt-clean before any
# benchmark time is spent.
echo "checking formatting (cargo fmt --check)..." >&2
cargo fmt --check

echo "building benches (release)..." >&2
cargo build -q --release -p archytas-bench --benches

# Thread counts innermost so each bench's 1-thread and 4-thread runs are
# adjacent in time: the gate below compares their means, and back-to-back
# runs share machine state (load, thermals) far better than sweeps that are
# minutes apart.
for bench in "${BENCHES[@]}"; do
    for threads in "${THREAD_COUNTS[@]}"; do
        echo "running $bench (ARCHYTAS_THREADS=$threads, --quick)..." >&2
        ARCHYTAS_THREADS="$threads" \
            cargo bench -q -p archytas-bench --bench "$bench" -- --quick \
            | sed -n "s/^BENCHJSON /{\"threads\":$threads,\"bench\":\"$bench\",\"result\":/p" \
            | sed 's/$/}/' >> "$TMP"
    done
done

# Assemble a single JSON document: one record per (threads, bench, case).
{
    echo '{"schema":"archytas-bench-smoke-v1","records":['
    paste -sd, - < "$TMP"
    echo ']}'
} > "$OUT"

count="$(wc -l < "$TMP")"
echo "wrote $OUT ($count records)" >&2

# Solver extract + 4-thread regression gate.
python3 - "$OUT" "$SOLVER_OUT" <<'PY'
import json
import sys

src, dst = sys.argv[1], sys.argv[2]
doc = json.load(open(src))

def is_solver(rec):
    name = rec["result"]["name"]
    return name.startswith("solver/") or name.endswith("f32_functional_solve")

records = [r for r in doc["records"] if is_solver(r)]
json.dump(
    {"schema": "archytas-bench-solver-v1", "records": records},
    open(dst, "w"),
    indent=1,
)
print(f"wrote {dst} ({len(records)} records)", file=sys.stderr)

# Gate: every solver/* case at 4 threads must stay within 1.25x of its
# 1-thread mean. A violation means parallel dispatch is mis-granulated
# (fork/join overhead exceeding the work it distributes).
LIMIT = 1.25
means = {}
for r in records:
    means[(r["result"]["name"], r["threads"])] = r["result"]["mean_ns"]

failures = []
for (name, threads), mean in sorted(means.items()):
    if threads != 4 or not name.startswith("solver/"):
        continue
    base = means.get((name, 1))
    if base is None or base <= 0.0:
        continue
    ratio = mean / base
    status = "FAIL" if ratio > LIMIT else "ok"
    print(f"  {status}  {name}: 4t/1t = {ratio:.3f} "
          f"({mean / 1e6:.3f} ms vs {base / 1e6:.3f} ms)", file=sys.stderr)
    if ratio > LIMIT:
        failures.append(name)

if failures:
    print(f"solver 4-thread regression gate FAILED: {', '.join(failures)}",
          file=sys.stderr)
    sys.exit(1)
print("solver 4-thread regression gate passed", file=sys.stderr)
PY

# Fault-matrix robustness smoke rides along (writes BENCH_faults.json and
# enforces the 3x-nominal RMSE and pool-size determinism gates).
scripts/fault_smoke.sh

# Fleet serving smoke (writes BENCH_fleet.json and enforces the 1-vs-4
# worker determinism gate plus, on >=4-CPU machines, the 2x throughput
# scaling gate).
scripts/fleet_smoke.sh
