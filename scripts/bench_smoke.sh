#!/usr/bin/env bash
# Quick parallel-layer benchmark smoke: runs the synthesizer,
# solver-iteration and accelerator-simulation criterion benches in --quick
# mode at ARCHYTAS_THREADS=1 and ARCHYTAS_THREADS=4, and collects the
# BENCHJSON lines the vendored criterion harness emits into BENCH_par.json.
#
# It additionally extracts the solver-path records (every `solver/*` case
# plus the accelerator's `f32_functional_solve`) into BENCH_solver.json and
# enforces two gates:
#   - parallel-dispatch regression: any solver bench at 4 threads more than
#     1.25x its 1-thread mean fails the run (1.05x for the full LM window,
#     which calibrated dispatch must keep essentially thread-neutral). The
#     comparison needs real hardware parallelism, so it self-skips (loudly)
#     below 4 CPUs.
#   - absolute regression (scripts/perf_gate.sh): the fresh 1-thread solver
#     means must stay within 1.15x of the checked-in BENCH_solver.json
#     baseline, and the synthesizer records must stay within tolerance of
#     the checked-in BENCH_par.json plus the absolute re-synthesis latency
#     ceilings (cold sweep / warm re-synthesis / cache hit).
#
# The synthesizer bench also prints SYNTHJSON search-counter lines
# (candidates examined/pruned per case, cache hit/miss); these are folded
# into BENCH_par.json's `synth_search` section.
#
# Usage: scripts/bench_smoke.sh [output.json] [solver-output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_par.json}"
SOLVER_OUT="${2:-BENCH_solver.json}"
BENCHES=(synthesizer solver_iteration accel_sim)
THREAD_COUNTS=(1 4)
TMP="$(mktemp)"
PERF_TMP="$(mktemp)"
SYNTH_TMP="$(mktemp)"
trap 'rm -f "$TMP" "$PERF_TMP" "$SYNTH_TMP"' EXIT

# Formatting gate: the whole workspace must be rustfmt-clean before any
# benchmark time is spent.
echo "checking formatting (cargo fmt --check)..." >&2
cargo fmt --check

# Lint gate: surface clippy findings across the workspace, and hold the
# crates carrying bit-identity contracts — the math kernels plus the
# fleet/faults isolation layer — to zero warnings across all build targets.
echo "linting (cargo clippy)..." >&2
cargo clippy -q --workspace
cargo clippy -q -p archytas-math -p archytas-fleet -p archytas-faults -p archytas-telemetry -p archytas-bench --all-targets -- -D warnings

echo "building benches (release)..." >&2
cargo build -q --release -p archytas-bench --benches

# Thread counts innermost so each bench's 1-thread and 4-thread runs are
# adjacent in time: the gate below compares their means, and back-to-back
# runs share machine state (load, thermals) far better than sweeps that are
# minutes apart.
for bench in "${BENCHES[@]}"; do
    for threads in "${THREAD_COUNTS[@]}"; do
        echo "running $bench (ARCHYTAS_THREADS=$threads, --quick)..." >&2
        RAW="$(ARCHYTAS_THREADS="$threads" \
            cargo bench -q -p archytas-bench --bench "$bench" -- --quick)"
        sed -n "s/^BENCHJSON /{\"threads\":$threads,\"bench\":\"$bench\",\"result\":/p" \
            <<<"$RAW" | sed 's/$/}/' >> "$TMP"
        # Per-phase perf-counter attribution (assembly vs factorization vs
        # back-substitution ...), emitted by bench bins that enable the
        # archytas-par counters.
        sed -n "s/^PERFJSON /{\"threads\":$threads,\"bench\":\"$bench\",\"counters\":/p" \
            <<<"$RAW" | sed 's/$/}/' >> "$PERF_TMP"
        # Design-space search counters (candidates examined/pruned, cache
        # hit/miss), emitted by the synthesizer bench per case.
        sed -n "s/^SYNTHJSON /{\"threads\":$threads,\"bench\":\"$bench\",\"search\":/p" \
            <<<"$RAW" | sed 's/$/}/' >> "$SYNTH_TMP"
    done
done

# Assemble a single JSON document: one record per (threads, bench, case),
# plus the per-phase counter attribution for benches that report it.
{
    echo '{"schema":"archytas-bench-smoke-v1","records":['
    paste -sd, - < "$TMP"
    echo '],"perf_phases":['
    paste -sd, - < "$PERF_TMP"
    echo '],"synth_search":['
    paste -sd, - < "$SYNTH_TMP"
    echo ']}'
} > "$OUT"

count="$(wc -l < "$TMP")"
echo "wrote $OUT ($count records)" >&2

# Solver extract + 4-thread regression gate. Like the fleet throughput
# gate, the thread-scaling comparison needs real hardware parallelism to be
# meaningful, so it self-skips (loudly) below 4 CPUs; the solver extract is
# still written either way.
CPUS="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
python3 - "$OUT" "$SOLVER_OUT" "$CPUS" <<'PY'
import json
import sys

src, dst, cpus = sys.argv[1], sys.argv[2], int(sys.argv[3])
doc = json.load(open(src))

def is_solver(rec):
    name = rec["result"]["name"]
    return name.startswith("solver/") or name.endswith("f32_functional_solve")

records = [r for r in doc["records"] if is_solver(r)]
json.dump(
    {"schema": "archytas-bench-solver-v1", "records": records},
    open(dst, "w"),
    indent=1,
)
print(f"wrote {dst} ({len(records)} records)", file=sys.stderr)

if cpus < 4:
    print(f"solver 4-thread regression gate SKIPPED: need >=4 CPUs for a "
          f"meaningful 4t/1t comparison, machine has {cpus}", file=sys.stderr)
    sys.exit(0)

# Gate: every solver/* case at 4 threads must stay within 1.25x of its
# 1-thread mean. A violation means parallel dispatch is mis-granulated
# (fork/join overhead exceeding the work it distributes). The full LM
# window gets a much tighter limit: calibrated dispatch keeps window-sized
# kernels serial, so adding threads must leave it essentially unchanged —
# the old 1.25x limit let a 7.6 ms-vs-6.7 ms (1.14x) regression through.
LIMIT = 1.25
LM_LIMIT = 1.05
LM_CASE = "solver/lm_full_window_6_iterations"
means = {}
for r in records:
    means[(r["result"]["name"], r["threads"])] = r["result"]["mean_ns"]

failures = []
for (name, threads), mean in sorted(means.items()):
    if threads != 4 or not name.startswith("solver/"):
        continue
    base = means.get((name, 1))
    if base is None or base <= 0.0:
        continue
    limit = LM_LIMIT if name == LM_CASE else LIMIT
    ratio = mean / base
    status = "FAIL" if ratio > limit else "ok"
    print(f"  {status}  {name}: 4t/1t = {ratio:.3f} (limit {limit:.2f}, "
          f"{mean / 1e6:.3f} ms vs {base / 1e6:.3f} ms)", file=sys.stderr)
    if ratio > limit:
        failures.append(name)

if failures:
    print(f"solver 4-thread regression gate FAILED: {', '.join(failures)}",
          file=sys.stderr)
    sys.exit(1)
print("solver 4-thread regression gate passed", file=sys.stderr)
PY

# Absolute regression gate: the fresh solver means must stay within
# tolerance of the committed BENCH_solver.json baseline, and the fresh
# synthesizer records within tolerance of the committed BENCH_par.json
# plus the re-synthesis latency ceilings. The fleet stage is skipped ("-")
# here: BENCH_fleet.json is regenerated by fleet_smoke.sh below, and gating
# the stale working-tree copy would compare the baseline against itself.
scripts/perf_gate.sh "$SOLVER_OUT" "" "$OUT" "" -

# Fault-matrix robustness smoke rides along (writes BENCH_faults.json and
# enforces the 3x-nominal RMSE and pool-size determinism gates).
scripts/fault_smoke.sh

# Fleet serving smoke (writes BENCH_fleet.json: 1-vs-4 worker determinism
# byte-diff, the workers x sessions scaling sweep with a per-point
# efficiency gate that never skips, the churn soak at pools {1,2,8}, and
# the 2000-session admission-cost bench). SCALING_QUICK=1 trims the sweep
# to {1,4} workers x {8,64} sessions so the smoke stays fast; run
# scripts/fleet_smoke.sh directly for the full curve.
SCALING_QUICK=1 scripts/fleet_smoke.sh

# Fleet scaling regression: the fresh sweep points and admission cost must
# stay within tolerance of the committed BENCH_fleet.json (solver and
# synthesizer stages skipped — gated above).
scripts/perf_gate.sh - "" - "" BENCH_fleet.json

# Chaos-harness smoke (writes BENCH_chaos.json; enforces the in-process
# quarantine/bitwise gates at pools {1,2,8} and the 1-vs-4 worker
# determinism byte-diff; the parallel-racing verdict self-skips loudly
# below 4 CPUs with a stamped "gate_reason").
scripts/chaos_smoke.sh

# Observability smoke (writes BENCH_obs.json; enforces the 1-vs-4 worker
# OBSREC/OBSENV byte-diff — telemetry aggregates and power-envelope
# admission decisions must not depend on pool size — and stamps the
# parallel-interleaving verdict, "skipped" below 4 CPUs).
scripts/obs_smoke.sh
