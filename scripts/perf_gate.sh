#!/usr/bin/env bash
# Absolute solver-performance gate: compares a freshly generated
# BENCH_solver.json against the checked-in baseline and fails (non-zero
# exit) when any bench case regressed beyond the tolerance (default 1.15x
# per bench mean, override with PERF_GATE_TOLERANCE).
#
# The baseline defaults to the committed copy of BENCH_solver.json (git
# HEAD) — bench_smoke.sh overwrites the working-tree file in place, so the
# committed copy is the only durable reference point. Pass an explicit
# baseline path to compare against something else.
#
# Thread handling: 1-thread records are always gated (they are meaningful
# on any machine); 4-thread records are gated only on >=4-CPU machines,
# where their scheduling is real rather than timeslicing noise.
#
# Usage: scripts/perf_gate.sh [fresh.json] [baseline.json]
set -euo pipefail

cd "$(dirname "$0")/.."
FRESH="${1:-BENCH_solver.json}"
BASELINE="${2:-}"
TOLERANCE="${PERF_GATE_TOLERANCE:-1.15}"
CPUS="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"

if [ -z "$BASELINE" ]; then
    TMP="$(mktemp)"
    trap 'rm -f "$TMP"' EXIT
    if ! git show HEAD:BENCH_solver.json > "$TMP" 2>/dev/null; then
        echo "perf gate SKIPPED: no committed BENCH_solver.json to baseline against" >&2
        exit 0
    fi
    BASELINE="$TMP"
fi

python3 - "$FRESH" "$BASELINE" "$TOLERANCE" "$CPUS" <<'PY'
import json
import sys

fresh_path, base_path, tol, cpus = (
    sys.argv[1], sys.argv[2], float(sys.argv[3]), int(sys.argv[4]))

def index(path):
    doc = json.load(open(path))
    return {
        (r["result"]["name"], r["threads"]): r["result"]["mean_ns"]
        for r in doc["records"]
    }

fresh = index(fresh_path)
base = index(base_path)

def phase(name):
    """Maps a record to the solver phase it measures, so a failure names
    the part of the pipeline that regressed rather than just a bench case."""
    case = name.split("/", 1)[-1]
    if "build" in case:
        return "assembly"
    if "kernel_" in case:
        return "micro-kernels"
    if "solve" in case:
        return "linear-solve"
    return "end-to-end"

failures = {}
compared = 0
for (name, threads), mean in sorted(fresh.items()):
    ref = base.get((name, threads))
    if ref is None or ref <= 0.0:
        print(f"  new   [{phase(name)}] {name} ({threads}t): "
              f"{mean / 1e6:.3f} ms (no baseline record)", file=sys.stderr)
        continue
    ratio = mean / ref
    gated = threads == 1 or cpus >= 4
    compared += gated
    status = "FAIL" if (gated and ratio > tol) else ("info" if not gated else "ok")
    print(f"  {status:<4}  [{phase(name)}] {name} ({threads}t): "
          f"fresh/baseline = {ratio:.3f} "
          f"({mean / 1e6:.3f} ms vs {ref / 1e6:.3f} ms)", file=sys.stderr)
    if gated and ratio > tol:
        failures.setdefault(phase(name), []).append(f"{name} ({threads}t)")

if compared == 0:
    print("perf gate SKIPPED: no comparable records between fresh and "
          "baseline", file=sys.stderr)
    sys.exit(0)
if failures:
    for ph in sorted(failures):
        print(f"perf gate: {ph} phase regressed: {', '.join(failures[ph])}",
              file=sys.stderr)
    print(f"perf gate FAILED (tolerance {tol:.2f}x) in phase(s): "
          f"{', '.join(sorted(failures))}", file=sys.stderr)
    sys.exit(1)
print(f"perf gate passed ({compared} record(s) within {tol:.2f}x of the "
      f"committed baseline)", file=sys.stderr)
PY
