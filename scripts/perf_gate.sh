#!/usr/bin/env bash
# Absolute performance gate over the committed bench baselines.
#
# Stage 1 — solver: compares a freshly generated BENCH_solver.json against
# the checked-in baseline and fails (non-zero exit) when any bench case
# regressed beyond the tolerance (default 1.15x per bench mean, override
# with PERF_GATE_TOLERANCE).
#
# Stage 2 — synthesizer: compares the `synthesizer/*` records of a freshly
# generated BENCH_par.json against the committed copy under the same
# tolerance (only the synthesizer records — the solver records in that file
# are already gated through BENCH_solver.json), and additionally enforces
# the re-synthesis latency ceilings the fleet re-optimization path relies
# on (1-thread means):
#   - cold virtex7 scaled-lattice sweep   <= 60 ms
#   - warm-started virtex7 re-synthesis   <= 10 ms
#   - SynthCache hit                      <= 10 us
#
# Stage 3 — fleet_scaling: compares the `scaling` sweep and `admission`
# record of a freshly generated BENCH_fleet.json (from fleet_smoke.sh)
# against the committed copy. Throughput regressions are classified per
# sweep point (workers x sessions) under FLEET_TOLERANCE (default 1.30 —
# whole-fleet wall clock is noisier than a criterion mean); admission cost
# is gated both relatively (admit ns under FLEET_TOLERANCE, idle bytes
# under 1.10x — allocation sizes are near-deterministic) and absolutely
# (idle bytes < 10% of the former private per-session cost).
#
# Baselines default to the committed copies (git HEAD) — bench_smoke.sh
# overwrites the working-tree files in place, so the committed copies are
# the only durable reference points. Pass explicit baseline paths to
# compare against something else. Pass "-" as a fresh path to skip that
# stage entirely (bench_smoke.sh gates the fleet file in a separate
# invocation because fleet_smoke.sh runs after the solver gates).
#
# Thread handling: 1-thread/1-worker records are always gated (they are
# meaningful on any machine); N-thread records are gated only on machines
# with >=N CPUs, where their scheduling is real rather than timeslicing
# noise.
#
# Usage: scripts/perf_gate.sh [fresh_solver.json] [baseline_solver.json] \
#                             [fresh_par.json] [baseline_par.json] \
#                             [fresh_fleet.json] [baseline_fleet.json]
set -euo pipefail

cd "$(dirname "$0")/.."
FRESH="${1:-BENCH_solver.json}"
BASELINE="${2:-}"
PAR_FRESH="${3:-BENCH_par.json}"
PAR_BASELINE="${4:-}"
FLEET_FRESH="${5:-BENCH_fleet.json}"
FLEET_BASELINE="${6:-}"
TOLERANCE="${PERF_GATE_TOLERANCE:-1.15}"
FLEET_TOL="${FLEET_TOLERANCE:-1.30}"
CPUS="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"

SOLVER_BASE_TMP=""
PAR_BASE_TMP=""
FLEET_BASE_TMP=""
cleanup() { rm -f "$SOLVER_BASE_TMP" "$PAR_BASE_TMP" "$FLEET_BASE_TMP"; }
trap cleanup EXIT

if [ "$FRESH" = "-" ]; then
    BASELINE=""
elif [ -z "$BASELINE" ]; then
    SOLVER_BASE_TMP="$(mktemp)"
    if git show HEAD:BENCH_solver.json > "$SOLVER_BASE_TMP" 2>/dev/null; then
        BASELINE="$SOLVER_BASE_TMP"
    else
        echo "perf gate (solver) SKIPPED: no committed BENCH_solver.json to baseline against" >&2
        BASELINE=""
    fi
fi

if [ "$PAR_FRESH" = "-" ]; then
    PAR_BASELINE=""
elif [ -z "$PAR_BASELINE" ]; then
    PAR_BASE_TMP="$(mktemp)"
    if git show HEAD:BENCH_par.json > "$PAR_BASE_TMP" 2>/dev/null; then
        PAR_BASELINE="$PAR_BASE_TMP"
    else
        echo "perf gate (synthesizer) relative check limited: no committed BENCH_par.json baseline" >&2
        PAR_BASELINE=""
    fi
fi

if [ -n "$BASELINE" ]; then
python3 - "$FRESH" "$BASELINE" "$TOLERANCE" "$CPUS" <<'PY'
import json
import sys

fresh_path, base_path, tol, cpus = (
    sys.argv[1], sys.argv[2], float(sys.argv[3]), int(sys.argv[4]))

def index(path):
    doc = json.load(open(path))
    return {
        (r["result"]["name"], r["threads"]): r["result"]["mean_ns"]
        for r in doc["records"]
    }

fresh = index(fresh_path)
base = index(base_path)

def phase(name):
    """Maps a record to the solver phase it measures, so a failure names
    the part of the pipeline that regressed rather than just a bench case."""
    case = name.split("/", 1)[-1]
    if "build" in case:
        return "assembly"
    if "kernel_" in case:
        return "micro-kernels"
    if "solve" in case:
        return "linear-solve"
    return "end-to-end"

failures = {}
compared = 0
for (name, threads), mean in sorted(fresh.items()):
    ref = base.get((name, threads))
    if ref is None or ref <= 0.0:
        print(f"  new   [{phase(name)}] {name} ({threads}t): "
              f"{mean / 1e6:.3f} ms (no baseline record)", file=sys.stderr)
        continue
    ratio = mean / ref
    gated = threads == 1 or cpus >= 4
    compared += gated
    status = "FAIL" if (gated and ratio > tol) else ("info" if not gated else "ok")
    print(f"  {status:<4}  [{phase(name)}] {name} ({threads}t): "
          f"fresh/baseline = {ratio:.3f} "
          f"({mean / 1e6:.3f} ms vs {ref / 1e6:.3f} ms)", file=sys.stderr)
    if gated and ratio > tol:
        failures.setdefault(phase(name), []).append(f"{name} ({threads}t)")

if compared == 0:
    print("perf gate (solver) SKIPPED: no comparable records between fresh "
          "and baseline", file=sys.stderr)
    sys.exit(0)
if failures:
    for ph in sorted(failures):
        print(f"perf gate: {ph} phase regressed: {', '.join(failures[ph])}",
              file=sys.stderr)
    print(f"perf gate (solver) FAILED (tolerance {tol:.2f}x) in phase(s): "
          f"{', '.join(sorted(failures))}", file=sys.stderr)
    sys.exit(1)
print(f"perf gate (solver) passed ({compared} record(s) within {tol:.2f}x "
      f"of the committed baseline)", file=sys.stderr)
PY
fi

# Stage 2: synthesizer records (design-space search latencies).
if [ "$PAR_FRESH" = "-" ]; then
    : # stage explicitly skipped by caller
elif [ ! -f "$PAR_FRESH" ]; then
    echo "perf gate (synthesizer) SKIPPED: $PAR_FRESH not found" >&2
else
python3 - "$PAR_FRESH" "${PAR_BASELINE:-/dev/null}" "$TOLERANCE" "$CPUS" <<'PY'
import json
import sys

fresh_path, base_path, tol, cpus = (
    sys.argv[1], sys.argv[2], float(sys.argv[3]), int(sys.argv[4]))

def index(path):
    try:
        doc = json.load(open(path))
    except (OSError, json.JSONDecodeError):
        return {}
    return {
        (r["result"]["name"], r["threads"]): r["result"]["mean_ns"]
        for r in doc.get("records", [])
        if r["result"]["name"].startswith("synthesizer/")
    }

fresh = index(fresh_path)
base = index(base_path)

if not fresh:
    print("perf gate (synthesizer) SKIPPED: no synthesizer records in "
          f"{fresh_path}", file=sys.stderr)
    sys.exit(0)

def phase(name):
    """Maps a synthesizer record to the search path it measures."""
    case = name.split("/", 1)[-1]
    if "warm" in case:
        return "warm-resynthesis"
    if "cache" in case:
        return "cache"
    return "cold-sweep"

# Absolute ceilings (ns, 1-thread) for the fleet re-optimization path: a
# dynamic re-synthesis tick must fit inside a serving quantum, so these are
# hard latency budgets rather than relative drift checks.
CEILINGS_NS = {
    "synthesizer/virtex7_min_latency_scaled_lattice": 60e6,
    "synthesizer/virtex7_min_latency_warm_resynthesis": 10e6,
    "synthesizer/synth_cache_hit": 10e3,
}

failures = {}
compared = 0

for (name, threads), mean in sorted(fresh.items()):
    ref = base.get((name, threads))
    gated = threads == 1 or cpus >= 4
    if ref is None or ref <= 0.0:
        print(f"  new   [{phase(name)}] {name} ({threads}t): "
              f"{mean / 1e6:.3f} ms (no baseline record)", file=sys.stderr)
    else:
        ratio = mean / ref
        compared += gated
        status = "FAIL" if (gated and ratio > tol) else ("info" if not gated else "ok")
        print(f"  {status:<4}  [{phase(name)}] {name} ({threads}t): "
              f"fresh/baseline = {ratio:.3f} "
              f"({mean / 1e6:.3f} ms vs {ref / 1e6:.3f} ms)", file=sys.stderr)
        if gated and ratio > tol:
            failures.setdefault(phase(name), []).append(f"{name} ({threads}t)")

for name, ceiling in sorted(CEILINGS_NS.items()):
    mean = fresh.get((name, 1))
    if mean is None:
        failures.setdefault(phase(name), []).append(f"{name} (1t record missing)")
        print(f"  FAIL  [{phase(name)}] {name} (1t): ceiling record missing "
              f"from {fresh_path}", file=sys.stderr)
        continue
    compared += 1
    status = "FAIL" if mean > ceiling else "ok"
    print(f"  {status:<4}  [{phase(name)}] {name} (1t): "
          f"{mean / 1e6:.4f} ms vs absolute ceiling {ceiling / 1e6:.4f} ms",
          file=sys.stderr)
    if mean > ceiling:
        failures.setdefault(phase(name), []).append(f"{name} (ceiling)")

if failures:
    for ph in sorted(failures):
        print(f"perf gate: {ph} phase regressed: {', '.join(failures[ph])}",
              file=sys.stderr)
    print(f"perf gate (synthesizer) FAILED (tolerance {tol:.2f}x + absolute "
          f"ceilings) in phase(s): {', '.join(sorted(failures))}",
          file=sys.stderr)
    sys.exit(1)
print(f"perf gate (synthesizer) passed ({compared} check(s): relative "
      f"within {tol:.2f}x, ceilings met)", file=sys.stderr)
PY
fi

# Stage 3: fleet scaling sweep + admission cost (serving-layer capacity).
if [ "$FLEET_FRESH" = "-" ]; then
    exit 0
fi
if [ ! -f "$FLEET_FRESH" ]; then
    echo "perf gate (fleet_scaling) SKIPPED: $FLEET_FRESH not found" >&2
    exit 0
fi
if [ -z "$FLEET_BASELINE" ]; then
    FLEET_BASE_TMP="$(mktemp)"
    if git show HEAD:BENCH_fleet.json > "$FLEET_BASE_TMP" 2>/dev/null; then
        FLEET_BASELINE="$FLEET_BASE_TMP"
    else
        echo "perf gate (fleet_scaling) relative check limited: no committed BENCH_fleet.json baseline" >&2
        FLEET_BASELINE=""
    fi
fi
python3 - "$FLEET_FRESH" "${FLEET_BASELINE:-/dev/null}" "$FLEET_TOL" "$CPUS" <<'PY'
import json
import sys

fresh_path, base_path, tol, cpus = (
    sys.argv[1], sys.argv[2], float(sys.argv[3]), int(sys.argv[4]))

def load(path):
    try:
        return json.load(open(path))
    except (OSError, json.JSONDecodeError):
        return {}

fresh = load(fresh_path)
base = load(base_path)

def sweep(doc):
    """Index a BENCH_fleet.json scaling sweep by (workers, sessions). A
    v1 document (pre-sweep schema) indexes empty, so every fresh point
    reads as new rather than crashing the gate."""
    return {
        (p["workers"], p["sessions"]): p
        for p in doc.get("scaling", [])
    }

fresh_pts = sweep(fresh)
base_pts = sweep(base)

if not fresh_pts:
    print(f"perf gate (fleet_scaling) SKIPPED: no scaling sweep in "
          f"{fresh_path}", file=sys.stderr)
    sys.exit(0)

failures = []
compared = 0
for (w, s), point in sorted(fresh_pts.items()):
    ref = base_pts.get((w, s))
    label = f"{w}w x {s} sessions"
    if ref is None or ref.get("throughput_fps", 0.0) <= 0.0:
        print(f"  new   [fleet_scaling] {label}: "
              f"{point['throughput_fps']:.1f} fps (no baseline point)",
              file=sys.stderr)
        continue
    # Regression = fresh throughput fell below baseline/tolerance. Gate
    # mirrors the thread handling above: multi-worker points only count
    # on machines with that much real parallelism.
    ratio = ref["throughput_fps"] / point["throughput_fps"]
    gated = w == 1 or cpus >= w
    compared += gated
    status = "FAIL" if (gated and ratio > tol) else ("info" if not gated else "ok")
    print(f"  {status:<4}  [fleet_scaling] {label}: baseline/fresh = "
          f"{ratio:.3f} ({ref['throughput_fps']:.1f} fps vs "
          f"{point['throughput_fps']:.1f} fps)", file=sys.stderr)
    if gated and ratio > tol:
        failures.append(f"{label} throughput ({ratio:.2f}x slower)")

adm = fresh.get("admission")
if adm:
    ref = base.get("admission")
    if ref:
        checks = [
            ("admit_ns_per_session", tol, "admission latency"),
            # Heap layout is near-deterministic; drift means new
            # per-session state, not timing noise.
            ("idle_bytes_per_session", 1.10, "idle resident bytes"),
        ]
        for key, ceiling, what in checks:
            if ref.get(key, 0) <= 0:
                continue
            ratio = adm[key] / ref[key]
            compared += 1
            status = "FAIL" if ratio > ceiling else "ok"
            print(f"  {status:<4}  [admission] {what}: fresh/baseline = "
                  f"{ratio:.3f} ({adm[key]} vs {ref[key]}, "
                  f"ceiling {ceiling:.2f}x)", file=sys.stderr)
            if ratio > ceiling:
                failures.append(f"admission {what} ({ratio:.2f}x)")
    else:
        print(f"  new   [admission] no baseline admission record",
              file=sys.stderr)
    # Absolute bound, independent of any baseline: the pooled layer's
    # whole point is that an admitted-idle session costs a sliver of the
    # former private RuntimeSystem + accelerator + workspace stack.
    compared += 1
    pct = adm["ratio_pct"]
    status = "FAIL" if pct >= 10.0 else "ok"
    print(f"  {status:<4}  [admission] idle/former = {pct:.2f}% "
          f"(absolute ceiling 10%)", file=sys.stderr)
    if pct >= 10.0:
        failures.append(f"admission idle/former {pct:.2f}% >= 10%")

if compared == 0:
    print("perf gate (fleet_scaling) SKIPPED: no comparable points between "
          "fresh and baseline", file=sys.stderr)
    sys.exit(0)
if failures:
    print(f"perf gate (fleet_scaling) FAILED (tolerance {tol:.2f}x): "
          f"{'; '.join(failures)}", file=sys.stderr)
    sys.exit(1)
print(f"perf gate (fleet_scaling) passed ({compared} check(s) within "
      f"{tol:.2f}x of the committed sweep)", file=sys.stderr)
PY
