#!/usr/bin/env bash
# Fault-matrix robustness smoke: runs the standard fault matrix
# (crates/faults, `fault_matrix` binary) at ARCHYTAS_THREADS=1 and
# ARCHYTAS_THREADS=4 and collects the FAULTJSON lines it emits into
# BENCH_faults.json.
#
# Gates (non-zero exit on violation):
#   - any scenario panicking or exceeding the 3x nominal RMSE bound, at
#     either thread count (the binary's own exit status, surfaced through
#     `set -o pipefail`);
#   - any divergence between the 1-thread and 4-thread reports — the
#     matrix must be reproducible regardless of pool size. (The bitwise
#     version of this gate lives in crates/faults/tests/determinism.rs;
#     this one catches it cheaply in CI without a test build.)
#
# Usage: scripts/fault_smoke.sh [output.json] [seed] [seconds]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_faults.json}"
SEED="${2:-7}"
RUN_SECONDS="${3:-8.0}"
THREAD_COUNTS=(1 4)
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

echo "building fault_matrix (release)..." >&2
cargo build -q --release -p archytas-bench --bin fault_matrix

for threads in "${THREAD_COUNTS[@]}"; do
    echo "running fault matrix (seed=$SEED, ${RUN_SECONDS}s, ARCHYTAS_THREADS=$threads)..." >&2
    ARCHYTAS_THREADS="$threads" \
        ./target/release/fault_matrix "$SEED" "$RUN_SECONDS" \
        | sed -n 's/^FAULTJSON //p' > "$TMP_DIR/faults_$threads.txt"
done

if ! diff -q "$TMP_DIR/faults_1.txt" "$TMP_DIR/faults_4.txt" >/dev/null; then
    echo "fault matrix determinism gate FAILED: 1-thread and 4-thread reports differ" >&2
    diff "$TMP_DIR/faults_1.txt" "$TMP_DIR/faults_4.txt" >&2 || true
    exit 1
fi
echo "fault matrix determinism gate passed (1-thread == 4-thread)" >&2

# Assemble a single JSON document: one record per scenario.
{
    echo "{\"schema\":\"archytas-fault-smoke-v1\",\"seed\":$SEED,\"seconds\":$RUN_SECONDS,\"records\":["
    paste -sd, - < "$TMP_DIR/faults_1.txt"
    echo ']}'
} > "$OUT"

count="$(wc -l < "$TMP_DIR/faults_1.txt")"
echo "wrote $OUT ($count scenarios)" >&2
