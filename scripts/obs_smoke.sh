#!/usr/bin/env bash
# Observability smoke: runs the `obs` binary (crates/bench) on a 1-worker
# and a 4-worker pool and collects its lines into BENCH_obs.json (per-scope
# telemetry aggregates, the tight-envelope admission demo, OBSJSON summary
# records with per-phase wall-time attribution).
#
# Gates (non-zero exit on violation):
#   - determinism: the OBSREC aggregate records (merged latency/energy
#     histograms, integer percentiles, watt bit patterns) and the OBSENV
#     envelope decision set must be byte-identical between the 1-worker
#     and the 4-worker run. This is the canonical-fold contract: telemetry
#     is derived from modelled quantities only and folded in submission
#     order, so pool size must never change a byte.
#   - envelope consistency: the tight-envelope run must shed/defer the
#     same session counts at both pool sizes (cross-checked from the
#     OBSJSON records by the python block below).
#
# The byte-diff is enforced on every machine — 4 workers on 1 CPU still
# exercise the fold path, just timesliced. The top-level "gate" field is
# stamped "passed" only when the machine exposes >= 4 CPUs (real parallel
# interleaving was exercised); below that it is stamped "skipped" with a
# "gate_reason", mirroring fleet_smoke.sh.
#
# Usage: scripts/obs_smoke.sh [output.json] [seconds]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_obs.json}"
RUN_SECONDS="${2:-4.0}"
THREAD_COUNTS=(1 4)
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

echo "building obs bench (release)..." >&2
cargo build -q --release -p archytas-bench --bin obs

for threads in "${THREAD_COUNTS[@]}"; do
    echo "running obs (8 sessions, ${RUN_SECONDS}s, $threads worker(s))..." >&2
    ./target/release/obs --threads "$threads" --seconds "$RUN_SECONDS" \
        > "$TMP_DIR/obs_$threads.txt"
    sed -n 's/^OBSREC //p' "$TMP_DIR/obs_$threads.txt" > "$TMP_DIR/rec_$threads.txt"
    sed -n 's/^OBSENV //p' "$TMP_DIR/obs_$threads.txt" > "$TMP_DIR/env_$threads.txt"
    sed -n 's/^OBSJSON //p' "$TMP_DIR/obs_$threads.txt" > "$TMP_DIR/sum_$threads.txt"
done

for kind in rec env; do
    if ! diff -q "$TMP_DIR/${kind}_1.txt" "$TMP_DIR/${kind}_4.txt" >/dev/null; then
        echo "obs determinism gate FAILED: 1-worker and 4-worker ${kind^^} records differ" >&2
        diff "$TMP_DIR/${kind}_1.txt" "$TMP_DIR/${kind}_4.txt" >&2 || true
        exit 1
    fi
done
echo "obs determinism gate passed (1-worker == 4-worker, aggregate + envelope bytes)" >&2

# Assemble a single JSON document: the deterministic aggregate records and
# envelope decisions (taken from the 1-worker run — the diff above proved
# them identical) plus one OBSJSON summary per pool size.
{
    echo "{\"schema\":\"archytas-obs-smoke-v1\",\"seconds\":$RUN_SECONDS,\"aggregates\":["
    paste -sd, - < "$TMP_DIR/rec_1.txt"
    echo '],"envelope_sessions":['
    paste -sd, - < "$TMP_DIR/env_1.txt"
    echo '],"runs":['
    cat "$TMP_DIR/sum_1.txt" "$TMP_DIR/sum_4.txt" | paste -sd, -
    echo ']}'
} > "$OUT"
echo "wrote $OUT ($(wc -l < "$TMP_DIR/rec_1.txt") scopes, $(wc -l < "$TMP_DIR/env_1.txt") envelope sessions)" >&2

CPUS="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
python3 - "$OUT" "$CPUS" <<'PY'
import json
import sys

path = sys.argv[1]
cpus = int(sys.argv[2])
doc = json.load(open(path))
runs = {r["threads"]: r for r in doc["runs"]}
serial, pooled = runs[1], runs[4]

def stamp(verdict, reason=None):
    doc["gate"] = verdict
    if reason is None:
        doc.pop("gate_reason", None)
    else:
        doc["gate_reason"] = reason
    json.dump(doc, open(path, "w"), indent=1)

# Envelope consistency: the tight-budget run must make the same admission
# decisions at both pool sizes.
mismatches = [
    k for k in ("envelope_shed", "envelope_deferred", "fleet_power_w")
    if serial[k] != pooled[k]
]
if mismatches:
    stamp("failed", f"1- vs 4-worker mismatch on {', '.join(mismatches)}")
    print(f"obs envelope gate FAILED: {', '.join(mismatches)} differ between "
          f"pool sizes", file=sys.stderr)
    sys.exit(1)

shed, deferred = serial["envelope_shed"], serial["envelope_deferred"]
print(f"  obs: fleet draws {serial['fleet_power_w']:.3f} W; "
      f"{serial['envelope_budget_w']:.2f} W envelope shed {shed} and "
      f"deferred {deferred} of {serial['sessions']} sessions "
      f"(identically at 1 and 4 workers)", file=sys.stderr)
if shed == 0 or deferred == 0:
    stamp("failed", "tight envelope shed/deferred nothing — admission inert")
    print("obs envelope gate FAILED: tight budget did not shed/defer",
          file=sys.stderr)
    sys.exit(1)

if cpus < 4:
    reason = (f"machine exposes {cpus} CPU(s); byte-diff + envelope gates "
              f"enforced above, but the 4-worker run was timesliced, not "
              f"parallel")
    stamp("skipped", reason)
    print(f"obs parallel-interleaving verdict SKIPPED: {reason}", file=sys.stderr)
    sys.exit(0)

stamp("passed")
print("obs gate passed (byte-identical aggregates under real parallelism)",
      file=sys.stderr)
PY
