#!/usr/bin/env bash
# Chaos-harness smoke: drives the standard 8-vehicle batch through the
# execution-level chaos matrix (crates/bench, `chaos` binary) on a 1-worker
# and a 4-worker pool and collects the emitted lines into BENCH_chaos.json.
#
# The `chaos` binary gates in-process before printing anything: per case it
# checks — at pools {1, 2, 8} — that the quarantine set is exactly the
# expected one and that every session (faulted or not) is bitwise identical
# to its serial-alone reference; non-faulted sessions must additionally
# match the chaos-free reference. A violation exits non-zero and fails this
# script, at any CPU count.
#
# On top of that, this script enforces (same conventions as
# fleet_smoke.sh):
#   - determinism: the per-(case, session) CHAOSDET lines (digests,
#     outcomes, phases, restart/deadline counters) must be byte-identical
#     between the 1-worker and the 4-worker run. Always enforced.
#   - parallel racing: on a >=4-CPU machine the 4-worker run makes the
#     injected panics genuinely race healthy sessions' quanta across cores.
#     Below 4 CPUs the 4-worker run still executes (timeslicing) and all
#     determinism gates still bind, but the racing claim is not exercised,
#     so the verdict is stamped "skipped" (loudly) with a "gate_reason"
#     instead of "passed".
#
# Usage: scripts/chaos_smoke.sh [output.json] [seconds]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_chaos.json}"
RUN_SECONDS="${2:-4.0}"
WORKER_COUNTS=(1 4)
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

echo "building chaos bench (release)..." >&2
cargo build -q --release -p archytas-bench --bin chaos

for workers in "${WORKER_COUNTS[@]}"; do
    echo "running chaos matrix (8 sessions, ${RUN_SECONDS}s, $workers worker(s), in-process gates at pools {1,2,8})..." >&2
    ./target/release/chaos --workers "$workers" --seconds "$RUN_SECONDS" \
        > "$TMP_DIR/chaos_$workers.txt"
    sed -n 's/^CHAOSDET //p' "$TMP_DIR/chaos_$workers.txt" > "$TMP_DIR/det_$workers.txt"
    sed -n 's/^CHAOSJSON //p' "$TMP_DIR/chaos_$workers.txt" > "$TMP_DIR/sum_$workers.txt"
done

if ! diff -q "$TMP_DIR/det_1.txt" "$TMP_DIR/det_4.txt" >/dev/null; then
    echo "chaos determinism gate FAILED: 1-worker and 4-worker chaos reports differ" >&2
    diff "$TMP_DIR/det_1.txt" "$TMP_DIR/det_4.txt" >&2 || true
    exit 1
fi
echo "chaos determinism gate passed (1-worker == 4-worker, per-(case, session) bits)" >&2

# Assemble a single JSON document: the deterministic per-(case, session)
# records plus one timing summary per (case, pool size).
{
    echo "{\"schema\":\"archytas-chaos-smoke-v1\",\"seconds\":$RUN_SECONDS,\"sessions\":["
    paste -sd, - < "$TMP_DIR/det_1.txt"
    echo '],"runs":['
    cat "$TMP_DIR/sum_1.txt" "$TMP_DIR/sum_4.txt" | paste -sd, -
    echo ']}'
} > "$OUT"
echo "wrote $OUT ($(wc -l < "$TMP_DIR/det_1.txt") case-session records, ${#WORKER_COUNTS[@]} pool sizes)" >&2

# Stamp the parallel-racing verdict into the document itself so an archived
# BENCH_chaos.json always says whether its 4-worker run exercised true
# cross-core racing ("passed") or only timeslicing ("skipped").
CPUS="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
python3 - "$OUT" "$CPUS" <<'PY'
import json
import sys

path = sys.argv[1]
cpus = int(sys.argv[2])
doc = json.load(open(path))
doc["cpus"] = cpus

if cpus < 4:
    reason = (f"machine exposes {cpus} CPU(s); the 4-worker run raced "
              f"panics by timeslicing, not across >=4 cores "
              f"(all determinism and quarantine gates were still enforced)")
    doc["gate"] = "skipped"
    doc["gate_reason"] = reason
    json.dump(doc, open(path, "w"), indent=1)
    print(f"chaos parallel-racing gate SKIPPED: {reason}", file=sys.stderr)
    sys.exit(0)

doc["gate"] = "passed"
doc.pop("gate_reason", None)
json.dump(doc, open(path, "w"), indent=1)
print(f"chaos parallel-racing gate passed ({cpus} CPUs, 4 workers)", file=sys.stderr)
PY
