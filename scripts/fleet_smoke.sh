#!/usr/bin/env bash
# Fleet serving smoke: determinism, the scaling curve, churn soak, and
# admission cost, folded into one BENCH_fleet.json (schema v2).
#
# Stages (non-zero exit on violation):
#   1. determinism: the per-session FLEETDET lines (estimate digests,
#      iteration schedules, modelled-cost bit patterns) from the standard
#      8-vehicle batch must be byte-identical between a 1-worker and a
#      4-worker pool. The bitwise session-vs-alone version lives in
#      crates/fleet/tests/determinism.rs; this catches schedule-dependent
#      divergence cheaply in CI.
#   2. scaling sweep: the `scaling` bin sweeps workers x sessions
#      (full {1,2,4,8} x {8,64,512,2000} by default; SCALING_QUICK=1
#      trims to {1,4} x {8,64} for CI smoke) and every point is gated on
#      per-worker efficiency — never skipped:
#        * workers == 1            -> "baseline" (the reference point);
#        * usable = min(W, cpus) > 1 -> throughput must reach
#          EFF_FLOOR x usable x the 1-worker throughput at the same
#          session count (real parallelism, scaled to the CPUs that
#          actually exist);
#        * usable == 1 (more workers than CPUs: pure timeslicing)
#          -> throughput must hold NO_COLLAPSE x the 1-worker baseline —
#          oversubscription may not collapse the scheduler.
#      Each point is stamped with its own "gate"/"gate_reason" so an
#      archived BENCH_fleet.json explains every verdict by itself.
#   3. soak: `scaling --soak` replays a churn schedule (staggered joins,
#      early leavers, priority flips, a restarted panic, a terminal
#      quarantine) at pools {1,2,8}; every session must stay bitwise
#      identical to run_session_alone and the quarantine set exact. The
#      bin itself exits non-zero on violation.
#   4. admission: `session_admit_cost` meters the admitted-idle cost of
#      2000 sessions (counting allocator); idle bytes must stay under
#      ADMIT_MAX_PCT (default 10%) of the former private-state cost.
#
# Usage: scripts/fleet_smoke.sh [output.json] [seconds]
#   SCALING_QUICK=1   trim the sweep for smoke runs
#   EFF_FLOOR         per-usable-worker efficiency floor (default 0.50)
#   NO_COLLAPSE       oversubscribed no-collapse floor   (default 0.70)
#   ADMIT_MAX_PCT     idle/former byte ratio ceiling     (default 10)
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_fleet.json}"
RUN_SECONDS="${2:-4.0}"
EFF_FLOOR="${EFF_FLOOR:-0.50}"
NO_COLLAPSE="${NO_COLLAPSE:-0.70}"
ADMIT_MAX_PCT="${ADMIT_MAX_PCT:-10}"
THREAD_COUNTS=(1 4)
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

echo "building fleet benches (release)..." >&2
cargo build -q --release -p archytas-bench \
    --bin fleet --bin scaling --bin session_admit_cost

# --- stage 1: determinism across pool sizes -------------------------------
for threads in "${THREAD_COUNTS[@]}"; do
    echo "serving fleet (8 sessions, ${RUN_SECONDS}s, $threads worker(s))..." >&2
    ./target/release/fleet --threads "$threads" --seconds "$RUN_SECONDS" \
        > "$TMP_DIR/fleet_$threads.txt"
    sed -n 's/^FLEETDET //p' "$TMP_DIR/fleet_$threads.txt" > "$TMP_DIR/det_$threads.txt"
    sed -n 's/^FLEETJSON //p' "$TMP_DIR/fleet_$threads.txt" > "$TMP_DIR/sum_$threads.txt"
done

if ! diff -q "$TMP_DIR/det_1.txt" "$TMP_DIR/det_4.txt" >/dev/null; then
    echo "fleet determinism gate FAILED: 1-worker and 4-worker session reports differ" >&2
    diff "$TMP_DIR/det_1.txt" "$TMP_DIR/det_4.txt" >&2 || true
    exit 1
fi
echo "fleet determinism gate passed (1-worker == 4-worker, per-session bits)" >&2

# --- stage 2: scaling sweep -----------------------------------------------
SCALE_ARGS=()
if [ "${SCALING_QUICK:-0}" = "1" ]; then
    SCALE_ARGS+=(--quick)
    echo "scaling sweep (quick: 1,4 workers x 8,64 sessions)..." >&2
else
    echo "scaling sweep (full: 1,2,4,8 workers x 8,64,512,2000 sessions; ~minutes)..." >&2
fi
./target/release/scaling "${SCALE_ARGS[@]+"${SCALE_ARGS[@]}"}" > "$TMP_DIR/scaling.txt"
sed -n 's/^SCALEJSON //p' "$TMP_DIR/scaling.txt" > "$TMP_DIR/scale.txt"

# --- stage 3: churn soak (the bin exits non-zero on contract violation) ---
echo "churn soak (32 sessions, pools 1/2/8, bitwise vs serial-alone)..." >&2
./target/release/scaling --soak > "$TMP_DIR/soak.txt"
sed -n 's/^SOAKJSON //p' "$TMP_DIR/soak.txt" > "$TMP_DIR/soakline.txt"

# --- stage 4: admission cost ----------------------------------------------
echo "admission-cost microbench (2000 sessions, counting allocator)..." >&2
./target/release/session_admit_cost > "$TMP_DIR/admit.txt"
sed -n 's/^ADMITJSON //p' "$TMP_DIR/admit.txt" > "$TMP_DIR/admitline.txt"

# Assemble a single JSON document: the per-session deterministic records,
# one wall-clock summary per pool size, the scaling sweep, the soak record
# and the admission-cost record.
{
    echo "{\"schema\":\"archytas-fleet-smoke-v2\",\"seconds\":$RUN_SECONDS,\"sessions\":["
    paste -sd, - < "$TMP_DIR/det_1.txt"
    echo '],"runs":['
    cat "$TMP_DIR/sum_1.txt" "$TMP_DIR/sum_4.txt" | paste -sd, -
    echo '],"scaling":['
    paste -sd, - < "$TMP_DIR/scale.txt"
    echo '],"soak":'
    cat "$TMP_DIR/soakline.txt"
    echo ',"admission":'
    cat "$TMP_DIR/admitline.txt"
    echo '}'
} > "$OUT"
echo "wrote $OUT ($(wc -l < "$TMP_DIR/det_1.txt") sessions, \
$(wc -l < "$TMP_DIR/scale.txt") sweep points)" >&2

# Per-point efficiency gate, computed from the sweep recorded in the JSON
# document itself and stamped back into it: every scaling point carries its
# own "gate" ("baseline" / "passed" / "failed") and "gate_reason", and the
# document's top-level "gate" summarizes scaling + admission. No point is
# ever "skipped" — a 1-CPU box gates oversubscription on the no-collapse
# floor instead of silently opting out.
CPUS="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
python3 - "$OUT" "$EFF_FLOOR" "$NO_COLLAPSE" "$ADMIT_MAX_PCT" "$CPUS" <<'PY'
import json
import sys

path = sys.argv[1]
doc = json.load(open(path))
eff_floor = float(sys.argv[2])
no_collapse = float(sys.argv[3])
admit_max_pct = float(sys.argv[4])
cpus = int(sys.argv[5])

failures = []
baselines = {p["sessions"]: p for p in doc["scaling"] if p["workers"] == 1}
for point in doc["scaling"]:
    w, s, tp = point["workers"], point["sessions"], point["throughput_fps"]
    base = baselines.get(s)
    if w == 1:
        point["gate"] = "baseline"
        point["gate_reason"] = "1-worker reference for this session count"
        continue
    if base is None:
        point["gate"] = "failed"
        point["gate_reason"] = f"no 1-worker baseline for {s} sessions in sweep"
        failures.append(point["gate_reason"])
        continue
    ratio = tp / base["throughput_fps"]
    usable = min(w, cpus)
    if usable > 1:
        floor = eff_floor * usable
        kind = f"parallel efficiency ({usable} usable CPU(s))"
    else:
        floor = no_collapse
        kind = f"no-collapse (oversubscribed: {w} workers on {cpus} CPU(s))"
    verdict = "passed" if ratio >= floor else "failed"
    point["gate"] = verdict
    point["gate_reason"] = (
        f"{kind}: {ratio:.2f}x vs 1-worker baseline, floor {floor:.2f}x")
    line = (f"  scaling {w}w x {s:>4} sessions: {tp:>9.1f} fps "
            f"({ratio:.2f}x vs 1w, floor {floor:.2f}x) -> {verdict}")
    print(line, file=sys.stderr)
    if verdict == "failed":
        failures.append(f"{w}w x {s} sessions: {point['gate_reason']}")

adm = doc["admission"]
adm_ok = adm["ratio_pct"] < admit_max_pct
adm["gate"] = "passed" if adm_ok else "failed"
adm["gate_reason"] = (
    f"idle {adm['idle_bytes_per_session']} B/session is "
    f"{adm['ratio_pct']:.2f}% of former {adm['former_bytes_per_session']} B "
    f"(ceiling {admit_max_pct:.0f}%)")
print(f"  admission: {adm['gate_reason']} -> {adm['gate']}", file=sys.stderr)
if not adm_ok:
    failures.append(f"admission: {adm['gate_reason']}")

doc["scaling_gate"] = {
    "eff_floor": eff_floor,
    "no_collapse_floor": no_collapse,
    "admit_max_pct": admit_max_pct,
    "cpus": cpus,
}
doc["gate"] = "failed" if failures else "passed"
if failures:
    doc["gate_reason"] = "; ".join(failures)
else:
    doc.pop("gate_reason", None)
json.dump(doc, open(path, "w"), indent=1)

if failures:
    print("fleet scaling gate FAILED:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print(f"fleet scaling gate passed ({len(doc['scaling'])} sweep points, "
      f"{cpus} CPU(s); admission {adm['ratio_pct']:.2f}% < "
      f"{admit_max_pct:.0f}%)", file=sys.stderr)
PY
