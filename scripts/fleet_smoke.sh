#!/usr/bin/env bash
# Fleet serving smoke: runs the standard 8-vehicle batch (crates/fleet,
# `fleet` binary) on a 1-worker and a 4-worker pool and collects the
# emitted lines into BENCH_fleet.json (fleet throughput, pooled p50/p95/p99
# frame latency, shared-cache and scheduler counters).
#
# Gates (non-zero exit on violation):
#   - determinism: the per-session FLEETDET lines (estimate digests,
#     iteration schedules, modelled-cost bit patterns) must be byte-
#     identical between the 1-thread and 4-thread runs. The bitwise
#     session-vs-alone version lives in crates/fleet/tests/determinism.rs;
#     this catches schedule-dependent divergence cheaply in CI.
#   - throughput: the 8-session batch on 4 workers must reach at least
#     MIN_SPEEDUP (default 2.0) x the serial 1-worker throughput. The gate
#     needs real hardware parallelism, so it is SKIPPED (loudly) when the
#     machine exposes fewer than 4 CPUs — a 1-core container cannot run 4
#     workers faster than 1 no matter how good the scheduler is. The verdict
#     ("passed" / "failed" / "skipped") is stamped into the output JSON as
#     the top-level "gate" field so archived files carry their own status.
#
# Usage: scripts/fleet_smoke.sh [output.json] [seconds]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_fleet.json}"
RUN_SECONDS="${2:-4.0}"
MIN_SPEEDUP="${MIN_SPEEDUP:-2.0}"
THREAD_COUNTS=(1 4)
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

echo "building fleet bench (release)..." >&2
cargo build -q --release -p archytas-bench --bin fleet

for threads in "${THREAD_COUNTS[@]}"; do
    echo "serving fleet (8 sessions, ${RUN_SECONDS}s, $threads worker(s))..." >&2
    ./target/release/fleet --threads "$threads" --seconds "$RUN_SECONDS" \
        > "$TMP_DIR/fleet_$threads.txt"
    sed -n 's/^FLEETDET //p' "$TMP_DIR/fleet_$threads.txt" > "$TMP_DIR/det_$threads.txt"
    sed -n 's/^FLEETJSON //p' "$TMP_DIR/fleet_$threads.txt" > "$TMP_DIR/sum_$threads.txt"
done

if ! diff -q "$TMP_DIR/det_1.txt" "$TMP_DIR/det_4.txt" >/dev/null; then
    echo "fleet determinism gate FAILED: 1-worker and 4-worker session reports differ" >&2
    diff "$TMP_DIR/det_1.txt" "$TMP_DIR/det_4.txt" >&2 || true
    exit 1
fi
echo "fleet determinism gate passed (1-worker == 4-worker, per-session bits)" >&2

# Assemble a single JSON document: the per-session deterministic records
# plus one wall-clock summary per pool size.
{
    echo "{\"schema\":\"archytas-fleet-smoke-v1\",\"seconds\":$RUN_SECONDS,\"sessions\":["
    paste -sd, - < "$TMP_DIR/det_1.txt"
    echo '],"runs":['
    cat "$TMP_DIR/sum_1.txt" "$TMP_DIR/sum_4.txt" | paste -sd, -
    echo ']}'
} > "$OUT"
echo "wrote $OUT ($(wc -l < "$TMP_DIR/det_1.txt") sessions, ${#THREAD_COUNTS[@]} pool sizes)" >&2

# Throughput scaling gate, computed from the throughputs recorded in the
# JSON document itself (not from any intermediate shell state), and the
# verdict is stamped back into that document: an archived BENCH_fleet.json
# always says whether its scaling numbers were actually gated ("passed"),
# violated ("failed"), or never checked because the machine was too small
# ("skipped"). A sub-4-CPU skip is no longer indistinguishable from a pass.
CPUS="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
python3 - "$OUT" "$MIN_SPEEDUP" "$CPUS" <<'PY'
import json
import sys

path = sys.argv[1]
doc = json.load(open(path))
min_speedup = float(sys.argv[2])
cpus = int(sys.argv[3])
runs = {r["threads"]: r for r in doc["runs"]}
serial, pooled = runs[1], runs[4]
speedup = pooled["throughput_fps"] / serial["throughput_fps"]
print(f"  fleet throughput: 1 worker {serial['throughput_fps']:.1f} fps, "
      f"4 workers {pooled['throughput_fps']:.1f} fps "
      f"(speedup {speedup:.2f}x, {cpus} CPU(s))", file=sys.stderr)

doc["throughput_gate"] = {
    "min_speedup": min_speedup,
    "speedup": round(speedup, 3),
    "cpus": cpus,
}

def stamp(verdict, reason=None):
    doc["gate"] = verdict
    # A skipped or failed verdict carries its cause in the document itself,
    # so an archived BENCH_fleet.json never needs this script's stderr to
    # explain why its scaling numbers were not (or unsuccessfully) gated.
    if reason is None:
        doc.pop("gate_reason", None)
    else:
        doc["gate_reason"] = reason
    json.dump(doc, open(path, "w"), indent=1)

if cpus < 4:
    reason = (f"machine exposes {cpus} CPU(s); the >={min_speedup:.1f}x "
              f"4-worker scaling gate needs >=4")
    stamp("skipped", reason)
    print(f"fleet throughput gate SKIPPED: {reason} "
          f"(determinism gate above still enforced; "
          f"\"gate\":\"skipped\" + \"gate_reason\" stamped into {path})",
          file=sys.stderr)
    sys.exit(0)

if speedup < min_speedup:
    reason = (f"4-worker speedup {speedup:.2f}x below the required "
              f"{min_speedup:.1f}x")
    stamp("failed", reason)
    print(f"fleet throughput gate FAILED: {reason}", file=sys.stderr)
    sys.exit(1)
stamp("passed")
print(f"fleet throughput gate passed ({speedup:.2f}x >= {min_speedup:.1f}x)",
      file=sys.stderr)
PY
