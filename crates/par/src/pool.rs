//! Scoped worker pool over [`std::thread::scope`].

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default minimum number of work items before a combinator goes parallel.
///
/// Below this, thread spawn + synchronization overhead dwarfs the work for the
/// small dense blocks the solver produces; the combinators run serially and
/// are still bit-identical.
pub const DEFAULT_SERIAL_THRESHOLD: usize = 64;

/// Default minimum *estimated scalar operations* before a weighted dispatch
/// goes parallel.
///
/// Item count alone is a poor granularity signal: a Cholesky Update phase on
/// a 120-dim Schur complement touches thousands of elements but performs only
/// one fused multiply-subtract per element — far less work than one scoped
/// spawn/join costs. Kernels that know their FLOP count pass it through
/// [`Pool::should_parallelize_work`]; jobs estimated below this many scalar
/// operations stay serial.
///
/// The floor is calibrated against the dispatch cost, not the arithmetic
/// rate: one scoped spawn/join of a few workers costs on the order of
/// 0.1–0.2 ms, so a kernel must bring several *milliseconds* of serial
/// arithmetic (≥ tens of megaflops) before splitting it wins. Notably this
/// keeps every per-window solver kernel of the benchmark sliding window
/// (≤ ~7 Mflop dense products, ≤ ~0.25 Mflop block-Schur products) serial —
/// measured 4-thread regressions, not wins — while the synthesizer's lattice
/// scan and other sweep-scale jobs still fan out. Tune per machine with
/// `ARCHYTAS_PAR_MIN_WORK`.
pub const DEFAULT_MIN_PARALLEL_WORK: usize = 16_000_000;

thread_local! {
    // Set while a closure runs inside one of our workers; nested par_* calls
    // observe it and degrade to serial instead of oversubscribing the
    // machine with scopes-within-scopes.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

struct WorkerGuard;

impl WorkerGuard {
    fn enter() -> WorkerGuard {
        IN_WORKER.with(|f| f.set(true));
        WorkerGuard
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        IN_WORKER.with(|f| f.set(false));
    }
}

/// Runs `f` with this thread marked as a pool worker, so any nested `par_*`
/// call inside `f` degrades to serial.
///
/// This is for *embedding* schedulers (e.g. the fleet serving layer) that
/// spawn their own threads outside this crate: each of their workers already
/// occupies a core, so letting a solver kernel fork another scope inside one
/// would oversubscribe the machine. Marking the thread costs one
/// thread-local write and changes no results — every combinator is
/// bit-identical serial vs parallel by contract.
pub fn run_as_worker<R>(f: impl FnOnce() -> R) -> R {
    let _guard = WorkerGuard::enter();
    f()
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// A scoped worker pool.
///
/// The pool is a *policy* object (thread count + serial threshold), not a set
/// of persistent threads: each combinator spawns scoped workers for its own
/// call and joins them before returning, so borrows of caller data need no
/// `'static` lifetime and no shutdown protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
    serial_threshold: usize,
    min_work: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::global()
    }
}

impl Pool {
    /// The environment-configured pool: `ARCHYTAS_THREADS` threads (0 or
    /// unset → [`std::thread::available_parallelism`]), an
    /// `ARCHYTAS_PAR_THRESHOLD` serial-fallback threshold (default
    /// [`DEFAULT_SERIAL_THRESHOLD`]) and an `ARCHYTAS_PAR_MIN_WORK` weighted
    /// dispatch floor (default [`DEFAULT_MIN_PARALLEL_WORK`]).
    pub fn global() -> Pool {
        let threads = match env_usize("ARCHYTAS_THREADS") {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
        };
        let serial_threshold =
            env_usize("ARCHYTAS_PAR_THRESHOLD").unwrap_or(DEFAULT_SERIAL_THRESHOLD);
        let min_work = env_usize("ARCHYTAS_PAR_MIN_WORK").unwrap_or(DEFAULT_MIN_PARALLEL_WORK);
        Pool {
            threads,
            serial_threshold,
            min_work,
        }
    }

    /// A pool with an explicit thread count (minimum 1).
    pub fn with_threads(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
            serial_threshold: DEFAULT_SERIAL_THRESHOLD,
            min_work: DEFAULT_MIN_PARALLEL_WORK,
        }
    }

    /// Returns this pool with a different serial-fallback threshold.
    /// `0` forces every call down the parallel path (used by the
    /// equivalence tests).
    pub fn with_serial_threshold(self, serial_threshold: usize) -> Pool {
        Pool {
            serial_threshold,
            ..self
        }
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Returns this pool with a different weighted-dispatch work floor
    /// (estimated scalar operations). `0` disables the work gate, leaving
    /// only the item-count threshold.
    pub fn with_min_work(self, min_work: usize) -> Pool {
        Pool { min_work, ..self }
    }

    /// Configured serial-fallback threshold (work items).
    pub fn serial_threshold(&self) -> usize {
        self.serial_threshold
    }

    /// Configured weighted-dispatch work floor (estimated scalar operations).
    pub fn min_work(&self) -> usize {
        self.min_work
    }

    /// Whether a job of `work_items` independent items takes the parallel
    /// path on this pool (more than one thread, enough work, and not already
    /// inside a worker).
    ///
    /// Nested dispatch degrades to serial on the *inner* level only: a kernel
    /// called from inside one of this crate's workers sees `false` here, but
    /// the enclosing (outer) parallel region is unaffected.
    pub fn should_parallelize(&self, work_items: usize) -> bool {
        self.threads > 1 && work_items >= self.serial_threshold.max(2) && !in_worker()
    }

    /// Work-size–aware dispatch decision: like [`Pool::should_parallelize`]
    /// but additionally requiring `estimated_ops` (scalar arithmetic
    /// operations the whole job will execute, as estimated by the caller) to
    /// clear the pool's work floor.
    ///
    /// This is the granularity gate the solver kernels use: a job can touch
    /// many elements yet perform almost no arithmetic per element (e.g. one
    /// trailing-update phase of a small Cholesky), in which case fork/join
    /// overhead dominates and the job must stay serial no matter its item
    /// count. A `serial_threshold` of 0 (the equivalence-test mode) forces
    /// the parallel path regardless of the estimate.
    pub fn should_parallelize_work(&self, work_items: usize, estimated_ops: usize) -> bool {
        if self.threads <= 1 || work_items < 2 || in_worker() {
            return false;
        }
        if self.serial_threshold == 0 {
            return true; // forced-parallel testing mode
        }
        work_items >= self.serial_threshold.max(2) && estimated_ops >= self.min_work
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// Bit-identical to `items.iter().map(f).collect()` for any thread
    /// count: each element is mapped exactly once and results are reassembled
    /// by index.
    pub fn par_map<T: Sync, U: Send>(&self, items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
        if !self.should_parallelize(items.len()) {
            return items.iter().map(f).collect();
        }
        // Small fixed chunks + dynamic claiming load-balance uneven items
        // (e.g. synthesizer stripes) without affecting output order.
        let chunk_size = (items.len() / (4 * self.threads)).max(1);
        let n_chunks = items.len().div_ceil(chunk_size);
        let next = AtomicUsize::new(0);
        let f = &f;
        let mut pieces: Vec<(usize, Vec<U>)> = std::thread::scope(|s| {
            let workers: Vec<_> = (0..self.threads.min(n_chunks))
                .map(|_| {
                    s.spawn(|| {
                        let _guard = WorkerGuard::enter();
                        let mut local: Vec<(usize, Vec<U>)> = Vec::new();
                        loop {
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= n_chunks {
                                break;
                            }
                            let lo = c * chunk_size;
                            let hi = (lo + chunk_size).min(items.len());
                            local.push((c, items[lo..hi].iter().map(f).collect()));
                        }
                        local
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("par_map worker panicked"))
                .collect()
        });
        pieces.sort_unstable_by_key(|(c, _)| *c);
        let mut out = Vec::with_capacity(items.len());
        for (_, mut piece) in pieces.drain(..) {
            out.append(&mut piece);
        }
        out
    }

    /// Runs `f(chunk_index, chunk)` over disjoint `chunk_size` chunks of
    /// `data`, in parallel. Equivalent to a serial
    /// `data.chunks_mut(chunk_size).enumerate()` loop: chunks are disjoint,
    /// so any interleaving produces the same final contents.
    ///
    /// # Panics
    ///
    /// Panics when `chunk_size == 0`.
    pub fn par_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        chunk_size: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        let go_parallel = self.should_parallelize(data.len());
        self.chunks_mut_dispatch(data, chunk_size, go_parallel, f);
    }

    /// [`Pool::par_chunks_mut`] with a caller-supplied work estimate:
    /// `estimated_ops` is the number of scalar operations the whole job will
    /// perform, gated through [`Pool::should_parallelize_work`]. Kernels that
    /// know their FLOP count (matrix products, Cholesky updates) use this so
    /// that arithmetic-sparse jobs never pay fork/join overhead.
    ///
    /// # Panics
    ///
    /// Panics when `chunk_size == 0`.
    pub fn par_chunks_mut_weighted<T: Send>(
        &self,
        data: &mut [T],
        chunk_size: usize,
        estimated_ops: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        let go_parallel = self.should_parallelize_work(data.len(), estimated_ops);
        self.chunks_mut_dispatch(data, chunk_size, go_parallel, f);
    }

    fn chunks_mut_dispatch<T: Send>(
        &self,
        data: &mut [T],
        chunk_size: usize,
        go_parallel: bool,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        assert!(chunk_size > 0, "par_chunks_mut: chunk_size must be > 0");
        let n_chunks = data.len().div_ceil(chunk_size);
        if !go_parallel || n_chunks < 2 {
            for (c, chunk) in data.chunks_mut(chunk_size).enumerate() {
                f(c, chunk);
            }
            return;
        }
        let f = &f;
        std::thread::scope(|s| {
            // Static round-robin-by-contiguous-run distribution: worker w
            // takes chunks [w*per, (w+1)*per). split_at_mut keeps borrows
            // disjoint without unsafe.
            let workers = self.threads.min(n_chunks);
            let per = n_chunks.div_ceil(workers);
            let mut rest = data;
            let mut base = 0usize;
            for w in 0..workers {
                let take = (per * chunk_size).min(rest.len());
                if take == 0 {
                    break;
                }
                let (mine, tail) = rest.split_at_mut(take);
                rest = tail;
                let first_chunk = w * per;
                let _ = base;
                base += take;
                s.spawn(move || {
                    let _guard = WorkerGuard::enter();
                    for (k, chunk) in mine.chunks_mut(chunk_size).enumerate() {
                        f(first_chunk + k, chunk);
                    }
                });
            }
        });
    }

    /// Maps fixed-size chunks of `items` through `map(chunk_index, chunk)`
    /// and folds the partials **in chunk order** with `fold`.
    ///
    /// The partition depends only on `chunk_size`, never on the thread count,
    /// and the fold is performed serially left-to-right — so floating-point
    /// reductions are bit-identical across any `ARCHYTAS_THREADS` setting.
    /// Returns `None` when `items` is empty.
    ///
    /// # Panics
    ///
    /// Panics when `chunk_size == 0`.
    pub fn par_reduce<T: Sync, A: Send>(
        &self,
        items: &[T],
        chunk_size: usize,
        map: impl Fn(usize, &[T]) -> A + Sync,
        fold: impl FnMut(A, A) -> A,
    ) -> Option<A> {
        assert!(chunk_size > 0, "par_reduce: chunk_size must be > 0");
        if items.is_empty() {
            return None;
        }
        let partials: Vec<A> = if self.should_parallelize(items.len()) {
            // Reuse par_map's ordered machinery over the chunk list.
            let bounds: Vec<(usize, usize)> = (0..items.len().div_ceil(chunk_size))
                .map(|c| (c * chunk_size, ((c + 1) * chunk_size).min(items.len())))
                .collect();
            let map = &map;
            self.par_map(&bounds, |&(lo, hi)| map(lo / chunk_size, &items[lo..hi]))
        } else {
            items
                .chunks(chunk_size)
                .enumerate()
                .map(|(c, chunk)| map(c, chunk))
                .collect()
        };
        partials.into_iter().reduce(fold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forced(threads: usize) -> Pool {
        Pool::with_threads(threads).with_serial_threshold(0)
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let got = forced(threads).par_map(&items, |&x| x * x);
            let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_small_and_empty() {
        let empty: Vec<u32> = Vec::new();
        assert!(forced(4).par_map(&empty, |&x| x).is_empty());
        assert_eq!(forced(4).par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_chunks_mut_matches_serial() {
        for threads in [1, 2, 5, 8] {
            let mut par: Vec<f64> = (0..517).map(|i| i as f64).collect();
            let mut ser = par.clone();
            let f = |c: usize, chunk: &mut [f64]| {
                for v in chunk.iter_mut() {
                    *v = v.sin() * (c as f64 + 1.0);
                }
            };
            forced(threads).par_chunks_mut(&mut par, 13, f);
            for (c, chunk) in ser.chunks_mut(13).enumerate() {
                f(c, chunk);
            }
            let same = par
                .iter()
                .zip(&ser)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "threads = {threads}");
        }
    }

    #[test]
    fn par_reduce_is_thread_count_invariant() {
        // A deliberately non-associative float sum: chunk partials differ
        // from a flat sum, so this fails if the partition or fold order ever
        // depends on the thread count.
        let items: Vec<f64> = (0..997).map(|i| (i as f64 * 0.7).tan()).collect();
        let reference = forced(1)
            .par_reduce(&items, 32, |_, c| c.iter().sum::<f64>(), |a, b| a + b)
            .unwrap();
        for threads in [2, 3, 8] {
            let got = forced(threads)
                .par_reduce(&items, 32, |_, c| c.iter().sum::<f64>(), |a, b| a + b)
                .unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "threads = {threads}");
        }
        let empty: Vec<f64> = Vec::new();
        assert!(forced(4)
            .par_reduce(&empty, 8, |_, c| c.len(), |a, b| a + b)
            .is_none());
    }

    #[test]
    fn par_reduce_chunk_indices_are_correct() {
        let items: Vec<usize> = (0..100).collect();
        let got = forced(8)
            .par_reduce(
                &items,
                7,
                |c, chunk| vec![(c, chunk.to_vec())],
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            )
            .unwrap();
        let want: Vec<(usize, Vec<usize>)> = items
            .chunks(7)
            .enumerate()
            .map(|(c, chunk)| (c, chunk.to_vec()))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn nested_calls_degrade_to_serial() {
        let outer: Vec<usize> = (0..64).collect();
        let got = forced(4).par_map(&outer, |&i| {
            // should_parallelize must report false inside a worker.
            assert!(!forced(4).should_parallelize(1_000_000));
            let inner: Vec<usize> = (0..100).collect();
            forced(4).par_map(&inner, move |&j| i * 1000 + j).len()
        });
        assert!(got.iter().all(|&n| n == 100));
    }

    #[test]
    fn serial_threshold_gates_parallelism() {
        let p = Pool::with_threads(8).with_serial_threshold(50);
        assert!(!p.should_parallelize(49));
        assert!(p.should_parallelize(50));
        assert!(!Pool::with_threads(1).should_parallelize(1_000_000));
    }

    #[test]
    fn work_floor_gates_weighted_dispatch() {
        let p = Pool::with_threads(8)
            .with_serial_threshold(50)
            .with_min_work(10_000);
        // Many items but almost no arithmetic: stays serial.
        assert!(!p.should_parallelize_work(1_000_000, 9_999));
        // Enough items *and* enough work: parallel.
        assert!(p.should_parallelize_work(1_000_000, 10_000));
        // Item-count threshold still applies.
        assert!(!p.should_parallelize_work(49, 1_000_000_000));
        // Threshold 0 forces the parallel path regardless of the estimate.
        let forced = p.with_serial_threshold(0);
        assert!(forced.should_parallelize_work(2, 0));
        assert!(!forced.should_parallelize_work(1, 1_000_000));
        // One thread is always serial.
        assert!(!Pool::with_threads(1)
            .with_min_work(0)
            .should_parallelize_work(1_000_000, 1_000_000_000));
    }

    #[test]
    fn weighted_chunks_match_serial() {
        for (threads, min_work) in [(1, 0), (4, 0), (4, usize::MAX)] {
            let mut par: Vec<f64> = (0..311).map(|i| i as f64 * 0.3).collect();
            let mut ser = par.clone();
            let f = |c: usize, chunk: &mut [f64]| {
                for v in chunk.iter_mut() {
                    *v = v.cos() + c as f64;
                }
            };
            Pool::with_threads(threads)
                .with_serial_threshold(1)
                .with_min_work(min_work)
                .par_chunks_mut_weighted(&mut par, 7, 311, f);
            for (c, chunk) in ser.chunks_mut(7).enumerate() {
                f(c, chunk);
            }
            let same = par
                .iter()
                .zip(&ser)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "threads = {threads}, min_work = {min_work}");
        }
    }
}
