//! Std-only parallel execution layer for the Archytas reproduction.
//!
//! The paper's software baseline is a *multithreaded* ceres-based solver
//! (Sec. 7.1) and its hardware template wins by exploiting parallel Update
//! lanes and MAC arrays; this crate is the software-side analogue: a scoped
//! worker pool over [`std::thread::scope`] (no external dependencies —
//! DESIGN.md's sanctioned set has no threading crate) that the math kernels,
//! the synthesizer and the experiment sweeps all share.
//!
//! # Determinism contract
//!
//! Every combinator preserves *serial semantics bit-for-bit*:
//!
//! * [`Pool::par_map`] returns results in input order; each element is
//!   computed by exactly one closure call, so any thread count (including 1)
//!   yields the identical `Vec`.
//! * [`Pool::par_chunks_mut`] hands out disjoint chunks; each chunk sees the
//!   same serial computation it would in a plain loop.
//! * [`Pool::par_reduce`] partitions by a *fixed* chunk size (independent of
//!   thread count) and folds partials in chunk order, so even non-associative
//!   floating-point reductions are reproducible across `ARCHYTAS_THREADS`
//!   settings.
//!
//! # Thread-count knob
//!
//! [`Pool::global`] reads `ARCHYTAS_THREADS` (0 or unset → hardware
//! parallelism via [`std::thread::available_parallelism`]). Work below a
//! tunable threshold ([`Pool::with_serial_threshold`], default
//! [`DEFAULT_SERIAL_THRESHOLD`], env `ARCHYTAS_PAR_THRESHOLD`) runs serially
//! so tiny matrices pay zero overhead. Nested calls (a parallel kernel
//! invoked from inside a worker) automatically degrade to serial — on the
//! inner level only; the enclosing region keeps its workers.
//!
//! # Granularity-aware dispatch
//!
//! Item count alone is a poor proxy for work: the solver's Cholesky Update
//! phases touch thousands of elements but execute one fused multiply-subtract
//! per element, so spawning scoped workers costs more than the arithmetic
//! saves. Kernels that can estimate their scalar-operation count pass it
//! through [`Pool::should_parallelize_work`] /
//! [`Pool::par_chunks_mut_weighted`]; jobs below the work floor
//! ([`Pool::with_min_work`], default [`DEFAULT_MIN_PARALLEL_WORK`], env
//! `ARCHYTAS_PAR_MIN_WORK`) stay serial regardless of their element count.
//! [`Pool::calibrated`] replaces the static floor with a once-per-process
//! *measured* break-even point (see [`calibrate`]) so the decision tracks the
//! machine's actual fork/join cost instead of a hand-tuned guess.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibrate;
pub mod counters;
mod memo;
mod pool;

pub use calibrate::{calibration, Calibration};
pub use memo::{Memo, MemoStats};
pub use pool::{run_as_worker, Pool, DEFAULT_MIN_PARALLEL_WORK, DEFAULT_SERIAL_THRESHOLD};

/// [`Pool::par_map`] on the [`Pool::global`] pool.
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    Pool::global().par_map(items, f)
}

/// [`Pool::par_chunks_mut`] on the [`Pool::global`] pool.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_size: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    Pool::global().par_chunks_mut(data, chunk_size, f);
}

/// [`Pool::par_reduce`] on the [`Pool::global`] pool.
pub fn par_reduce<T: Sync, A: Send>(
    items: &[T],
    chunk_size: usize,
    map: impl Fn(usize, &[T]) -> A + Sync,
    fold: impl FnMut(A, A) -> A,
) -> Option<A> {
    Pool::global().par_reduce(items, chunk_size, map, fold)
}
