//! Measured (rather than guessed) work floor for weighted dispatch.
//!
//! [`DEFAULT_MIN_PARALLEL_WORK`] is a hand-tuned constant; whether a given
//! job actually wins from forking depends on two machine-specific rates —
//! what one scoped spawn/join costs and how fast a core retires scalar
//! arithmetic. This module measures both **once per process**, on first use,
//! and derives the break-even floor from them:
//!
//! ```text
//! parallel wins  ⇔  serial_ns · (1 − 1/threads)  >  dispatch_ns
//!                ⇔  ops  >  dispatch_ns · rate · threads/(threads − 1)
//! ```
//!
//! with a safety multiplier on top (a marginal win is still a loss once
//! cache effects and scheduling jitter are priced in). The result replaces
//! the static floor in [`Pool::calibrated`] unless `ARCHYTAS_PAR_MIN_WORK`
//! is set — an explicit environment knob always wins, and the calibration
//! itself never runs in that case.
//!
//! The dispatch *decision* is the only thing that changes: every combinator
//! is bit-identical serial vs. parallel by contract, so calibration can never
//! alter a numerical result — only how fast it arrives.

use crate::pool::Pool;
use std::hint::black_box;
use std::sync::OnceLock;
use std::time::Instant;

/// Break-even multiplier: the measured break-even point is scaled by this
/// factor before use, so jobs near the boundary — where the win would be
/// marginal at best — stay serial.
const SAFETY_FACTOR: u64 = 4;

/// Floor/ceiling clamp on the calibrated work floor, guarding against a
/// degenerate measurement on a noisy machine (a floor of zero would fork for
/// every small block; an absurdly high one would disable the synthesizer's
/// sweep-scale parallelism).
const MIN_FLOOR: usize = 500_000;
const MAX_FLOOR: usize = 512_000_000;

/// Machine rates measured by [`calibration`].
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Cost of one scoped fork/join at the calibrated thread count (ns).
    pub dispatch_overhead_ns: u64,
    /// Scalar multiply-add throughput of one core (operations per µs).
    pub ops_per_us: u64,
    /// Derived break-even work floor (scalar operations), after the safety
    /// factor and clamping.
    pub min_work: usize,
    /// Thread count the overhead was measured at.
    pub threads: usize,
}

static CALIBRATION: OnceLock<Calibration> = OnceLock::new();

/// The process-wide dispatch calibration, measured on first call (a few
/// hundred microseconds) and cached for every later one.
pub fn calibration() -> Calibration {
    *CALIBRATION.get_or_init(measure)
}

fn measure() -> Calibration {
    let threads = Pool::global().threads().max(2);
    let dispatch_overhead_ns = measure_dispatch_ns(threads);
    let ops_per_us = measure_ops_per_us();

    // ops > dispatch_ns · (ops/ns) · t/(t−1), then the safety margin.
    let t = threads as u64;
    let break_even = dispatch_overhead_ns * ops_per_us * t / (t - 1) / 1_000;
    let min_work = (break_even * SAFETY_FACTOR) as usize;
    Calibration {
        dispatch_overhead_ns,
        ops_per_us,
        min_work: min_work.clamp(MIN_FLOOR, MAX_FLOOR),
        threads,
    }
}

/// Minimum observed cost of one empty scoped fork/join of `threads` workers.
/// The minimum (not the mean) is the right statistic: overhead only ever
/// gains noise, never loses it.
fn measure_dispatch_ns(threads: usize) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..12 {
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| black_box(0u64));
            }
        });
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best.max(1)
}

/// Scalar multiply-add throughput of the current core, in operations per µs,
/// from a dependent-chain f64 loop long enough to amortize timer overhead.
fn measure_ops_per_us() -> u64 {
    const OPS: u64 = 2_000_000;
    let mut acc = 0.37f64;
    let start = Instant::now();
    for i in 0..OPS {
        // One multiply-add per iteration; the dependence chain stops the
        // compiler from collapsing the loop.
        acc = acc * 0.999_999 + (i & 7) as f64 * 1e-12;
    }
    black_box(acc);
    let us = start.elapsed().as_micros().max(1) as u64;
    (2 * OPS / us).max(1)
}

impl Pool {
    /// [`Pool::global`] with the work floor replaced by the measured
    /// break-even point of this machine — unless `ARCHYTAS_PAR_MIN_WORK` is
    /// set, in which case the explicit value wins and no measurement runs.
    ///
    /// This is the pool the steady-state solver path uses: on machines where
    /// fork/join is expensive relative to arithmetic, window-sized kernels
    /// (a few hundred kiloflops) stay serial instead of paying a 4-thread
    /// slowdown; on machines with cheap dispatch, the floor drops and mid-size
    /// jobs start to fan out. Results are unaffected either way — dispatch
    /// changes timing, never bits.
    pub fn calibrated() -> Pool {
        let pool = Pool::global();
        if std::env::var_os("ARCHYTAS_PAR_MIN_WORK").is_some() {
            return pool;
        }
        pool.with_min_work(calibration().min_work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_sane_and_cached() {
        let c1 = calibration();
        assert!(c1.dispatch_overhead_ns > 0);
        assert!(c1.ops_per_us > 0);
        assert!((MIN_FLOOR..=MAX_FLOOR).contains(&c1.min_work));
        assert!(c1.threads >= 2);
        // Second call must serve the cached measurement.
        let c2 = calibration();
        assert_eq!(c1.min_work, c2.min_work);
        assert_eq!(c1.dispatch_overhead_ns, c2.dispatch_overhead_ns);
    }

    #[test]
    fn calibrated_pool_keeps_window_kernels_serial() {
        // The benchmark sliding window's Schur elimination is ~0.25 Mflop
        // and its dense products ≤ ~7 Mflop; a calibrated floor that lets
        // those fork would reintroduce the measured 4-thread regression.
        // With the safety factor and the clamp this cannot happen unless
        // dispatch is measured at well under a microsecond.
        let pool = Pool::calibrated().with_serial_threshold(1);
        if pool.threads() > 1 && pool.min_work() >= 500_000 {
            assert!(!pool.should_parallelize_work(150 * 150, 250_000));
        }
    }
}
