//! Exactly-once memoization for hardware-model evaluations.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A concurrent cache that computes each key's value **exactly once**, even
/// under parallel lookups of the same key.
///
/// The map itself is guarded by a mutex held only for the slot lookup; the
/// (possibly expensive) computation runs outside the lock through a per-key
/// [`OnceLock`], so distinct keys never serialize on each other and a
/// duplicate lookup blocks only on its own key's first computation.
///
/// Hit/miss counters make "evaluated exactly once" testable: after a sweep,
/// `misses()` must equal the number of distinct keys.
pub struct Memo<K, V> {
    slots: Mutex<HashMap<K, Arc<OnceLock<V>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<K, V> std::fmt::Debug for Memo<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memo")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl<K, V> Default for Memo<K, V> {
    fn default() -> Self {
        Memo {
            slots: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }
}

/// A consistent point-in-time view of a [`Memo`]'s counters, for stamping
/// into bench/serving telemetry (`BENCH_par.json` cache attribution) without
/// three racing loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups served from the cache.
    pub hits: usize,
    /// Lookups that ran the compute closure (== distinct keys requested).
    pub misses: usize,
    /// Distinct keys currently cached.
    pub entries: usize,
}

impl MemoStats {
    /// Total lookups observed (`hits + misses`).
    pub fn lookups(&self) -> usize {
        self.hits + self.misses
    }
}

impl<K, V> Memo<K, V> {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the hit/miss/entry counters. The three fields are read
    /// under the slot lock, so a snapshot taken while the cache is quiescent
    /// is exact; under concurrent fills it is a consistent lower bound.
    pub fn stats(&self) -> MemoStats {
        let entries = self.slots.lock().expect("memo poisoned").len();
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Number of distinct keys cached so far.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("memo poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran `compute` (== distinct keys ever requested).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Memo<K, V> {
    /// Returns the cached value for `key` without computing anything:
    /// `None` when the key was never requested or its first computation has
    /// not finished yet. Touches neither counter, so exactly-once
    /// assertions over [`Memo::hits`]/[`Memo::misses`] stay exact across
    /// probe-heavy readers (fleet statistics, debug dumps).
    pub fn probe(&self, key: &K) -> Option<V> {
        let slot = {
            let slots = self.slots.lock().expect("memo poisoned");
            slots.get(key).cloned()
        };
        slot.and_then(|s| s.get().cloned())
    }

    /// Returns the cached value for `key`, computing it with `compute` on
    /// first use. `compute` runs at most once per key across all threads.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let slot = {
            let mut slots = self.slots.lock().expect("memo poisoned");
            slots.entry(key).or_default().clone()
        };
        // First caller through wins the OnceLock init; everyone else either
        // sees the value immediately (hit) or waits for it below.
        let mut computed = false;
        let value = slot.get_or_init(|| {
            computed = true;
            compute()
        });
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pool;

    #[test]
    fn computes_each_key_once() {
        let memo: Memo<u32, u64> = Memo::new();
        let calls = AtomicUsize::new(0);
        for i in [3u32, 5, 3, 7, 5, 3] {
            let v = memo.get_or_compute(i, || {
                calls.fetch_add(1, Ordering::Relaxed);
                u64::from(i) * 10
            });
            assert_eq!(v, u64::from(i) * 10);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(memo.misses(), 3);
        assert_eq!(memo.hits(), 3);
        assert_eq!(memo.len(), 3);
    }

    #[test]
    fn exactly_once_under_parallel_lookups() {
        let memo: Memo<usize, usize> = Memo::new();
        let calls = AtomicUsize::new(0);
        let keys: Vec<usize> = (0..512).map(|i| i % 16).collect();
        let pool = Pool::with_threads(8).with_serial_threshold(0);
        let got = pool.par_map(&keys, |&k| {
            memo.get_or_compute(k, || {
                calls.fetch_add(1, Ordering::Relaxed);
                k * k
            })
        });
        assert!(got.iter().zip(&keys).all(|(v, k)| *v == k * k));
        assert_eq!(calls.load(Ordering::Relaxed), 16, "one compute per key");
        assert_eq!(memo.misses(), 16);
        assert_eq!(memo.hits() + memo.misses(), 512);
    }

    #[test]
    fn stats_snapshot_matches_counters() {
        let memo: Memo<u32, u32> = Memo::new();
        for i in [1u32, 2, 1, 3, 1] {
            memo.get_or_compute(i, || i + 100);
        }
        let s = memo.stats();
        assert_eq!(s.misses, 3);
        assert_eq!(s.hits, 2);
        assert_eq!(s.entries, 3);
        assert_eq!(s.lookups(), 5);
    }

    #[test]
    fn probe_never_computes_and_never_counts() {
        let memo: Memo<u32, u32> = Memo::new();
        assert_eq!(memo.probe(&1), None);
        memo.get_or_compute(1, || 10);
        assert_eq!(memo.probe(&1), Some(10));
        assert_eq!(memo.probe(&2), None);
        // Probes left the counters exactly where get_or_compute put them.
        assert_eq!(memo.misses(), 1);
        assert_eq!(memo.hits(), 0);
        assert_eq!(memo.len(), 1);
    }
}
