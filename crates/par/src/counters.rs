//! Feather-weight per-phase performance counters.
//!
//! The solver hot path is a handful of fixed phases (assembly, Schur product,
//! factorization, back-substitution, …) whose relative cost decides every
//! optimization, yet a profiler is rarely attached when a regression lands in
//! a BENCH file. These counters attribute wall time to [`Phase`]s with a cost
//! low enough to leave compiled into every binary:
//!
//! * **disabled** (the default): [`time`] is one relaxed atomic load and a
//!   branch — no clock read, no stores. Library code can wrap its hot phases
//!   unconditionally.
//! * **enabled** ([`enable`]): two monotonic clock reads per timed scope and
//!   two relaxed atomic adds (nanoseconds + call count). Accumulators are
//!   global atomics, so concurrently-solving threads (the fleet layer)
//!   aggregate into the same totals.
//!
//! Timed scopes may nest; each phase accumulates its *inclusive* time, so a
//! parent phase (e.g. a whole linear solve) can coexist with its children.
//! The bench bins call [`reset`] + [`enable`] around their measurement loop
//! and print [`perfjson`] — a single `PERFJSON {...}` line that
//! `scripts/bench_smoke.sh` folds into the BENCH files, giving every archived
//! benchmark run a per-phase cost table.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Pipeline phases the counters attribute time to.
///
/// The set mirrors the solver's fixed structure (one slot per phase keeps the
/// record path allocation- and lookup-free); [`Phase::Other`] is the spare
/// slot for ad-hoc attribution in experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Normal-equation assembly (linearization + scatter).
    Assembly = 0,
    /// Marquardt damping of the assembled system.
    Damp,
    /// Schur-complement product `S = V − W·U⁻¹·Wᵀ` and reduced RHS.
    SchurProduct,
    /// Cholesky factorization of the reduced system.
    Factorization,
    /// Triangular solves plus the landmark back-substitution.
    BackSubstitution,
    /// LM step-acceptance test (candidate window + cost evaluation).
    CostEvaluation,
    /// Sliding-window marginalization.
    Marginalization,
    /// Anything else worth attributing in a one-off experiment.
    Other,
}

/// Number of [`Phase`] slots.
pub const PHASE_COUNT: usize = 8;

/// Display names, indexed by the `Phase` discriminant.
const PHASE_NAMES: [&str; PHASE_COUNT] = [
    "assembly",
    "damp",
    "schur_product",
    "factorization",
    "back_substitution",
    "cost_evaluation",
    "marginalization",
    "other",
];

static ENABLED: AtomicBool = AtomicBool::new(false);
static NANOS: [AtomicU64; PHASE_COUNT] = [const { AtomicU64::new(0) }; PHASE_COUNT];
static CALLS: [AtomicU64; PHASE_COUNT] = [const { AtomicU64::new(0) }; PHASE_COUNT];

/// Whether counters are currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts recording. Accumulators keep their current totals; call [`reset`]
/// first for a fresh measurement window.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stops recording. [`time`] reverts to its one-load fast path.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Zeroes every accumulator.
pub fn reset() {
    for i in 0..PHASE_COUNT {
        NANOS[i].store(0, Ordering::Relaxed);
        CALLS[i].store(0, Ordering::Relaxed);
    }
}

/// Runs `f`, attributing its wall time to `phase` when recording is enabled.
///
/// Disabled cost: one relaxed load and a branch around the plain call.
#[inline]
pub fn time<R>(phase: Phase, f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    let ns = start.elapsed().as_nanos() as u64;
    NANOS[phase as usize].fetch_add(ns, Ordering::Relaxed);
    CALLS[phase as usize].fetch_add(1, Ordering::Relaxed);
    out
}

/// Accumulated totals of one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Display name (stable, snake_case).
    pub name: &'static str,
    /// Total attributed nanoseconds.
    pub ns: u64,
    /// Number of timed scopes.
    pub calls: u64,
}

/// Current totals for every phase, in declaration order.
pub fn snapshot() -> [PhaseTotal; PHASE_COUNT] {
    std::array::from_fn(|i| PhaseTotal {
        name: PHASE_NAMES[i],
        ns: NANOS[i].load(Ordering::Relaxed),
        calls: CALLS[i].load(Ordering::Relaxed),
    })
}

/// Total nanoseconds attributed across every phase — the denominator for
/// per-phase share computations (e.g. the telemetry layer's phase table).
pub fn attributed_total_ns() -> u64 {
    NANOS.iter().map(|n| n.load(Ordering::Relaxed)).sum()
}

/// The payload of a `PERFJSON` line: phases with at least one recorded call,
/// as a JSON object `{"phases":[{"name":…,"ns":…,"calls":…},…]}`.
pub fn perfjson() -> String {
    let mut out = String::from("{\"phases\":[");
    let mut first = true;
    for total in snapshot() {
        if total.calls == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ns\":{},\"calls\":{}}}",
            total.name, total.ns, total.calls
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The accumulators are process-global, so the tests below run under a
    // lock to keep `cargo test`'s parallel threads from interleaving.
    use std::sync::Mutex;
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _guard = LOCK.lock().unwrap();
        disable();
        reset();
        let v = time(Phase::Assembly, || 41 + 1);
        assert_eq!(v, 42);
        assert!(snapshot().iter().all(|t| t.ns == 0 && t.calls == 0));
    }

    #[test]
    fn enabled_accumulates_and_resets() {
        let _guard = LOCK.lock().unwrap();
        reset();
        enable();
        for _ in 0..3 {
            time(Phase::Factorization, || {
                std::hint::black_box((0..1000).sum::<u64>())
            });
        }
        disable();
        let snap = snapshot();
        let fact = snap[Phase::Factorization as usize];
        assert_eq!(fact.name, "factorization");
        assert_eq!(fact.calls, 3);
        assert_eq!(snap[Phase::Assembly as usize].calls, 0);
        reset();
        assert!(snapshot().iter().all(|t| t.ns == 0 && t.calls == 0));
    }

    #[test]
    fn perfjson_lists_only_touched_phases() {
        let _guard = LOCK.lock().unwrap();
        reset();
        enable();
        time(Phase::SchurProduct, || std::hint::black_box(7));
        time(Phase::Other, || std::hint::black_box(7));
        disable();
        let json = perfjson();
        assert!(json.starts_with("{\"phases\":["));
        assert!(json.contains("\"schur_product\""));
        assert!(json.contains("\"other\""));
        assert!(!json.contains("\"assembly\""));
        reset();
    }

    #[test]
    fn nested_scopes_attribute_inclusively() {
        let _guard = LOCK.lock().unwrap();
        reset();
        enable();
        time(Phase::Other, || {
            time(Phase::BackSubstitution, || {
                std::hint::black_box((0..100).sum::<u64>())
            })
        });
        disable();
        let snap = snapshot();
        let outer = snap[Phase::Other as usize];
        let inner = snap[Phase::BackSubstitution as usize];
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(outer.ns >= inner.ns);
        reset();
    }
}
