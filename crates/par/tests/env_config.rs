//! `Pool::global` environment knobs. One test function only: integration
//! tests in a file share a process, and `set_var` must not race another
//! test's `Pool::global()` call.

use archytas_par::{Pool, DEFAULT_MIN_PARALLEL_WORK, DEFAULT_SERIAL_THRESHOLD};

#[test]
fn global_pool_reads_environment() {
    // SAFETY-adjacent note: this is the sole test in this binary, so no
    // other thread is reading the environment concurrently.
    std::env::set_var("ARCHYTAS_THREADS", "8");
    assert_eq!(Pool::global().threads(), 8);

    std::env::set_var("ARCHYTAS_THREADS", "1");
    let one = Pool::global();
    assert_eq!(one.threads(), 1);
    assert!(
        !one.should_parallelize(1_000_000),
        "1 thread is always serial"
    );

    // 0 and garbage fall back to hardware parallelism (≥ 1).
    std::env::set_var("ARCHYTAS_THREADS", "0");
    assert!(Pool::global().threads() >= 1);
    std::env::set_var("ARCHYTAS_THREADS", "not-a-number");
    assert!(Pool::global().threads() >= 1);
    std::env::remove_var("ARCHYTAS_THREADS");
    assert!(Pool::global().threads() >= 1);

    std::env::set_var("ARCHYTAS_PAR_THRESHOLD", "7");
    assert_eq!(Pool::global().serial_threshold(), 7);
    std::env::remove_var("ARCHYTAS_PAR_THRESHOLD");
    assert_eq!(Pool::global().serial_threshold(), DEFAULT_SERIAL_THRESHOLD);

    std::env::set_var("ARCHYTAS_PAR_MIN_WORK", "123");
    let tuned = Pool::global();
    assert_eq!(tuned.min_work(), 123);
    // The work gate honors the env-configured floor: below it, weighted
    // dispatch stays serial even with many items.
    if tuned.threads() > 1 {
        assert!(!tuned.should_parallelize_work(1_000, 122));
        assert!(tuned.should_parallelize_work(1_000, 123));
    }
    std::env::set_var("ARCHYTAS_PAR_MIN_WORK", "garbage");
    assert_eq!(Pool::global().min_work(), DEFAULT_MIN_PARALLEL_WORK);
    std::env::remove_var("ARCHYTAS_PAR_MIN_WORK");
    assert_eq!(Pool::global().min_work(), DEFAULT_MIN_PARALLEL_WORK);

    // The env-configured pool behaves identically to an explicit one.
    std::env::set_var("ARCHYTAS_THREADS", "3");
    let items: Vec<u64> = (0..500).collect();
    let env_pool = Pool::global().with_serial_threshold(0);
    let explicit = Pool::with_threads(3).with_serial_threshold(0);
    let a = env_pool.par_map(&items, |&x| x.wrapping_mul(x));
    let b = explicit.par_map(&items, |&x| x.wrapping_mul(x));
    assert_eq!(a, b);
    std::env::remove_var("ARCHYTAS_THREADS");
}
