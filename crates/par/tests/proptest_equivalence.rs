//! Property tests: every combinator is bit-identical to its serial
//! counterpart for arbitrary inputs and thread counts.

use archytas_par::Pool;
use proptest::prelude::*;

fn forced(threads: usize) -> Pool {
    Pool::with_threads(threads).with_serial_threshold(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn par_map_equals_serial(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..400),
        threads in 1usize..9,
    ) {
        let f = |&x: &f64| (x * 0.25).sin() + x;
        let par = forced(threads).par_map(&xs, f);
        let ser: Vec<f64> = xs.iter().map(f).collect();
        prop_assert_eq!(par.len(), ser.len());
        for (a, b) in par.iter().zip(&ser) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn par_chunks_mut_equals_serial(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..400),
        chunk in 1usize..48,
        threads in 1usize..9,
    ) {
        let f = |c: usize, chunk: &mut [f64]| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (*v + c as f64).sqrt().abs() + k as f64;
            }
        };
        let mut par = xs.clone();
        forced(threads).par_chunks_mut(&mut par, chunk, f);
        let mut ser = xs;
        for (c, ch) in ser.chunks_mut(chunk).enumerate() {
            f(c, ch);
        }
        for (a, b) in par.iter().zip(&ser) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn par_reduce_equals_serial_fold(
        xs in proptest::collection::vec(-1e3f64..1e3, 0..400),
        chunk in 1usize..48,
        threads in 1usize..9,
    ) {
        // Float addition is non-associative, so this only passes if the
        // partition and fold order are thread-count independent.
        let map = |_: usize, c: &[f64]| c.iter().sum::<f64>();
        let fold = |a: f64, b: f64| a + b;
        let par = forced(threads).par_reduce(&xs, chunk, map, fold);
        let ser = xs
            .chunks(chunk)
            .enumerate()
            .map(|(c, ch)| map(c, ch))
            .reduce(fold);
        match (par, ser) {
            (None, None) => prop_assert!(xs.is_empty()),
            (Some(p), Some(s)) => prop_assert_eq!(p.to_bits(), s.to_bits()),
            (p, s) => prop_assert!(false, "mismatch: {p:?} vs {s:?}"),
        }
    }
}
