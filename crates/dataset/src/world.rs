//! Static landmark worlds.
//!
//! Landmarks are scattered around the trajectory with a *density profile*
//! that varies along the path. The profile is what produces the
//! feature-count dynamics of the paper's Fig. 11 — stretches of the
//! environment with sparse texture (droughts) drive the feature count down
//! and the error up, which is precisely the signal the run-time system
//! exploits (Sec. 6.1).

use archytas_slam::Vec3;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One world landmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldPoint {
    /// Stable identifier.
    pub id: u64,
    /// World-frame position.
    pub position: Vec3,
}

/// A static field of landmarks.
#[derive(Debug, Clone)]
pub struct World {
    points: Vec<WorldPoint>,
}

impl World {
    /// Landmarks lining a road corridor of length `length` metres.
    ///
    /// `density(s)` ∈ (0, 1] scales the local landmark density at arclength
    /// `s`; the generator plants points on walls/poles/foliage at lateral
    /// offsets of 3–25 m and heights 0–6 m.
    pub fn road_corridor(length: f64, seed: u64, density: impl Fn(f64) -> f64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut points = Vec::new();
        let mut id = 0u64;
        let step = 1.0;
        let mut s = 0.0;
        while s < length {
            let d = density(s).clamp(0.0, 1.0);
            // Up to ~14 landmarks per metre of road at full density.
            let lambda = 14.0 * d;
            let count = poisson_knuth(&mut rng, lambda);
            for _ in 0..count {
                let side = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                let lateral = side * rng.gen_range(3.0..25.0);
                let along = s + rng.gen_range(0.0..step);
                let height = rng.gen_range(0.0..6.0);
                // Roads weave; landmarks follow the same gentle sine the
                // trajectory uses so the corridor stays populated.
                let weave = 8.0 * (0.011 * along).sin();
                points.push(WorldPoint {
                    id,
                    position: Vec3::new(along, weave + lateral, height),
                });
                id += 1;
            }
            s += step;
        }
        Self { points }
    }

    /// Landmarks on the walls, floor and equipment of a machine hall.
    pub fn machine_hall(seed: u64, density: impl Fn(f64) -> f64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut points = Vec::new();
        let mut id = 0u64;
        // Density here varies with azimuth angle around the hall, modelling
        // walls with poor texture.
        let sectors = 72;
        for sector in 0..sectors {
            let angle = sector as f64 / sectors as f64 * std::f64::consts::TAU;
            let d = density(angle).clamp(0.0, 1.0);
            let count = poisson_knuth(&mut rng, 45.0 * d);
            for _ in 0..count {
                let r = rng.gen_range(6.0..9.0);
                let a = angle + rng.gen_range(0.0..(std::f64::consts::TAU / sectors as f64));
                let z = rng.gen_range(0.0..4.0);
                points.push(WorldPoint {
                    id,
                    position: Vec3::new(r * a.cos(), r * a.sin(), z),
                });
                id += 1;
            }
        }
        // Floor/equipment clutter in the middle.
        for _ in 0..800 {
            points.push(WorldPoint {
                id,
                position: Vec3::new(
                    rng.gen_range(-6.0..6.0),
                    rng.gen_range(-6.0..6.0),
                    rng.gen_range(0.0..1.2),
                ),
            });
            id += 1;
        }
        Self { points }
    }

    /// All landmarks.
    pub fn points(&self) -> &[WorldPoint] {
        &self.points
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the world is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Landmarks within `radius` of `center` (linear scan; worlds are
    /// generated once per sequence so no index is needed).
    pub fn near(&self, center: &Vec3, radius: f64) -> impl Iterator<Item = &WorldPoint> {
        let r2 = radius * radius;
        let c = *center;
        self.points.iter().filter(move |p| {
            let d = p.position - c;
            d.dot(&d) <= r2
        })
    }
}

/// Knuth's algorithm for small-λ Poisson samples (λ ≤ ~50 here).
fn poisson_knuth(rng: &mut SmallRng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // safety valve; unreachable for sane λ
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corridor_density_profile_is_respected() {
        // Zero density in [100, 200) must leave that stretch empty.
        let w = World::road_corridor(300.0, 7, |s| {
            if (100.0..200.0).contains(&s) {
                0.0
            } else {
                1.0
            }
        });
        let in_gap = w
            .points()
            .iter()
            .filter(|p| p.position.x() >= 101.0 && p.position.x() < 200.0)
            .count();
        assert_eq!(in_gap, 0);
        assert!(
            w.len() > 1000,
            "populated stretches have landmarks: {}",
            w.len()
        );
    }

    #[test]
    fn corridor_is_deterministic_per_seed() {
        let a = World::road_corridor(50.0, 42, |_| 1.0);
        let b = World::road_corridor(50.0, 42, |_| 1.0);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.points()[0], b.points()[0]);
        let c = World::road_corridor(50.0, 43, |_| 1.0);
        assert_ne!(a.len(), c.len());
    }

    #[test]
    fn hall_has_walls_and_clutter() {
        let w = World::machine_hall(3, |_| 1.0);
        assert!(w.len() > 2000);
        let high = w.points().iter().filter(|p| p.position.z() > 1.5).count();
        assert!(high > 100, "wall points exist");
    }

    #[test]
    fn near_filters_by_radius() {
        let w = World::machine_hall(3, |_| 1.0);
        let center = Vec3::new(0.0, 0.0, 1.0);
        let close: Vec<_> = w.near(&center, 2.0).collect();
        for p in &close {
            assert!((p.position - center).norm() <= 2.0);
        }
        let all: Vec<_> = w.near(&center, 100.0).collect();
        assert_eq!(all.len(), w.len());
    }

    #[test]
    fn ids_are_unique() {
        let w = World::road_corridor(100.0, 9, |_| 0.8);
        let mut ids: Vec<u64> = w.points().iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), w.len());
    }
}
