//! Synthetic KITTI-like and EuRoC-like localization workloads.
//!
//! The Archytas paper evaluates on the KITTI odometry and EuRoC MAV
//! datasets; neither's raw sensor logs are available here, so this crate
//! generates *statistically faithful* substitutes: analytic ground-truth
//! trajectories, seeded landmark worlds with texture droughts, a simulated
//! tracking front-end with realistic noise, and exactly consistent IMU data.
//! Every number the paper reports is a function of workload statistics plus
//! estimation error — both of which these generators reproduce (see
//! DESIGN.md, "Substitutions").
//!
//! # Example: run three windows of a KITTI-like drive
//!
//! ```
//! use archytas_dataset::{kitti_sequences, PipelineConfig, VioPipeline};
//!
//! let data = kitti_sequences()[0].truncated(2.0).build();
//! let mut pipeline = VioPipeline::new(PipelineConfig::default());
//! let mut done = 0;
//! for frame in &data.frames {
//!     if pipeline.push_frame(frame) {
//!         let result = pipeline.optimize_and_slide(3);
//!         assert!(result.workload.features > 0);
//!         done += 1;
//!     }
//! }
//! assert!(done > 0);
//! ```

#![warn(missing_docs)]

mod frontend;
mod pipeline;
mod sequence;
mod trajectory;
mod world;

pub use frontend::{generate_frames, Frame, FrontendConfig, TrackedFeature};
pub use pipeline::{
    DegradationCause, HealthConfig, HealthMonitor, HealthState, InitMode, PipelineConfig,
    VioPipeline, WindowResult,
};
pub use sequence::{
    euroc_sequences, kitti_sequences, tunnel_sequences, DatasetFamily, SequenceData, SequenceSpec,
};
pub use trajectory::{HallTrajectory, KinematicSample, RoadTrajectory, Trajectory};
pub use world::{World, WorldPoint};
