//! Simulated sensing front-end: turns a trajectory and a landmark world into
//! the per-frame measurements the estimator consumes.
//!
//! Every paper result is a function of workload statistics (feature counts,
//! observations per feature, keyframe count) plus estimation error; this
//! front-end reproduces those statistics — including the ≈10:1 ratio of
//! features to keyframes and observations to features the paper profiles
//! (Sec. 4.2) — while providing exact ground truth for the error metrics.

use crate::trajectory::Trajectory;
use crate::world::World;
use archytas_slam::{ImuSample, KeyframeState, PinholeCamera, Vec3, GRAVITY};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One tracked feature in a frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackedFeature {
    /// World landmark identifier (stable across frames).
    pub id: u64,
    /// Noisy measurement in normalized image coordinates.
    pub uv: [f64; 2],
    /// Noise-free normalized coordinates (ground truth; used by ablations
    /// and to model sub-pixel anchor refinement).
    pub uv_true: [f64; 2],
    /// Ground-truth depth in the camera frame (used to initialize inverse
    /// depth, standing in for the front-end's triangulation).
    pub depth: f64,
}

/// One keyframe-rate frame of sensor data.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame index in the sequence.
    pub index: usize,
    /// Capture time (s).
    pub timestamp: f64,
    /// Ground-truth kinematic state at capture time.
    pub gt: KeyframeState,
    /// Features visible and tracked in this frame.
    pub features: Vec<TrackedFeature>,
    /// IMU samples covering `(previous frame, this frame]` (empty for the
    /// first frame).
    pub imu: Vec<ImuSample>,
}

/// Front-end configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontendConfig {
    /// Keyframe rate (Hz).
    pub keyframe_hz: f64,
    /// IMU sample rate (Hz).
    pub imu_hz: f64,
    /// Maximum features tracked per frame.
    pub max_features: usize,
    /// Pixel-noise standard deviation (px).
    pub pixel_noise_px: f64,
    /// Gyro white noise (rad/s, 1σ).
    pub gyro_noise: f64,
    /// Accelerometer white noise (m/s², 1σ).
    pub accel_noise: f64,
    /// Initial gyro bias.
    pub gyro_bias: Vec3,
    /// Initial accelerometer bias.
    pub accel_bias: Vec3,
    /// Gyro bias random-walk density (rad/s per √s) — the drift that makes
    /// visual correction indispensable.
    pub gyro_bias_walk: f64,
    /// Accelerometer bias random-walk density (m/s² per √s).
    pub accel_bias_walk: f64,
    /// Landmarks farther than this are not detected (m).
    pub max_range: f64,
    /// RNG seed for noise and feature selection.
    pub seed: u64,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        Self {
            keyframe_hz: 10.0,
            imu_hz: 200.0,
            max_features: 160,
            pixel_noise_px: 1.0,
            gyro_noise: 0.002,
            accel_noise: 0.02,
            gyro_bias: Vec3::new(0.003, -0.002, 0.001),
            accel_bias: Vec3::new(0.02, 0.015, -0.01),
            gyro_bias_walk: 4e-4,
            accel_bias_walk: 4e-3,
            max_range: 60.0,
            seed: 1,
        }
    }
}

/// Generates the full frame stream of a sequence.
pub fn generate_frames(
    trajectory: &dyn Trajectory,
    world: &World,
    camera: &PinholeCamera,
    config: &FrontendConfig,
) -> Vec<Frame> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let kf_dt = 1.0 / config.keyframe_hz;
    let imu_dt = 1.0 / config.imu_hz;
    let n_frames = (trajectory.duration() / kf_dt).floor() as usize;
    let noise_n = config.pixel_noise_px / camera.fx; // normalized-plane σ

    let mut frames = Vec::with_capacity(n_frames);
    let mut tracked_prev: Vec<u64> = Vec::new();
    // Biases random-walk at IMU rate; the per-frame ground truth snapshots
    // the walk so the estimator's bias states have a moving target.
    let mut bg = config.gyro_bias;
    let mut ba = config.accel_bias;

    for index in 0..n_frames {
        let t = index as f64 * kf_dt;
        let kin = trajectory.sample(t);

        // --- visual features ---
        let mut candidates: Vec<TrackedFeature> = Vec::new();
        for wp in world.near(&kin.pose.trans, config.max_range) {
            let p_cam = kin.pose.inverse_transform(&wp.position);
            if camera.project(&p_cam).is_none() {
                continue;
            }
            let n =
                PinholeCamera::project_normalized(&p_cam).expect("project() accepted the point");
            candidates.push(TrackedFeature {
                id: wp.id,
                uv: [
                    n[0] + noise_n * sample_normal(&mut rng),
                    n[1] + noise_n * sample_normal(&mut rng),
                ],
                uv_true: n,
                depth: p_cam.z(),
            });
        }
        // Track continuity: features seen last frame come first, then new
        // detections fill the budget.
        let prev: std::collections::HashSet<u64> = tracked_prev.iter().copied().collect();
        candidates.sort_by_key(|f| (!prev.contains(&f.id), f.id));
        candidates.truncate(config.max_features);
        tracked_prev = candidates.iter().map(|f| f.id).collect();

        // --- IMU between the previous frame and this one ---
        let imu = if index == 0 {
            Vec::new()
        } else {
            let t_prev = (index - 1) as f64 * kf_dt;
            let n_samples = (kf_dt / imu_dt).round() as usize;
            (0..n_samples)
                .map(|k| {
                    let ts = t_prev + k as f64 * imu_dt;
                    let s = trajectory.sample(ts);
                    let accel_body = s.pose.rot.inverse().rotate(&(s.acceleration - GRAVITY));
                    bg = bg + noise_vec(&mut rng, config.gyro_bias_walk * imu_dt.sqrt());
                    ba = ba + noise_vec(&mut rng, config.accel_bias_walk * imu_dt.sqrt());
                    ImuSample {
                        gyro: s.angular_velocity + bg + noise_vec(&mut rng, config.gyro_noise),
                        accel: accel_body + ba + noise_vec(&mut rng, config.accel_noise),
                        dt: imu_dt,
                    }
                })
                .collect()
        };

        let mut gt = KeyframeState::at_pose(kin.pose, t);
        gt.velocity = kin.velocity;
        gt.bg = bg;
        gt.ba = ba;

        frames.push(Frame {
            index,
            timestamp: t,
            gt,
            features: candidates,
            imu,
        });
    }
    frames
}

// A tiny Box–Muller normal sampler; keeps the dependency surface to `rand`
// core (no rand_distr).
fn sample_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn noise_vec(rng: &mut SmallRng, sigma: f64) -> Vec3 {
    Vec3::new(
        sigma * sample_normal(rng),
        sigma * sample_normal(rng),
        sigma * sample_normal(rng),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::RoadTrajectory;

    fn small_setup() -> (RoadTrajectory, World, PinholeCamera, FrontendConfig) {
        let traj = RoadTrajectory::kitti_like(10.0);
        let world = World::road_corridor(160.0, 5, |_| 1.0);
        let cam = PinholeCamera::kitti_like();
        let cfg = FrontendConfig::default();
        (traj, world, cam, cfg)
    }

    #[test]
    fn frame_count_matches_rate() {
        let (traj, world, cam, cfg) = small_setup();
        let frames = generate_frames(&traj, &world, &cam, &cfg);
        assert_eq!(frames.len(), 100); // 10 s at 10 Hz
        assert!(frames[0].imu.is_empty());
        assert_eq!(frames[1].imu.len(), 20); // 200 Hz / 10 Hz
    }

    #[test]
    fn features_are_visible_and_bounded() {
        let (traj, world, cam, cfg) = small_setup();
        let frames = generate_frames(&traj, &world, &cam, &cfg);
        for f in &frames {
            assert!(f.features.len() <= cfg.max_features);
            assert!(!f.features.is_empty(), "frame {} has no features", f.index);
            for feat in &f.features {
                assert!(feat.depth > 0.0);
                assert!(feat.uv[0].abs() < 2.0, "normalized coordinate in range");
            }
        }
    }

    #[test]
    fn features_persist_across_frames() {
        let (traj, world, cam, cfg) = small_setup();
        let frames = generate_frames(&traj, &world, &cam, &cfg);
        // Consecutive frames at 10 Hz share most of their features.
        let a: std::collections::HashSet<u64> = frames[10].features.iter().map(|f| f.id).collect();
        let b: std::collections::HashSet<u64> = frames[11].features.iter().map(|f| f.id).collect();
        let shared = a.intersection(&b).count();
        assert!(
            shared * 2 > a.len(),
            "only {shared} of {} features persist",
            a.len()
        );
    }

    #[test]
    fn imu_integrates_close_to_ground_truth() {
        use archytas_slam::Preintegration;
        let (traj, world, cam, cfg) = small_setup();
        let frames = generate_frames(&traj, &world, &cam, &cfg);
        let (f0, f1) = (&frames[5], &frames[6]);
        let pre = Preintegration::integrate(&f1.imu, cfg.gyro_bias, cfg.accel_bias);
        // Predict f1's position from f0's ground truth.
        let dt = pre.dt;
        let predicted = f0.gt.pose.trans
            + f0.gt.velocity * dt
            + GRAVITY * (0.5 * dt * dt)
            + f0.gt.pose.rot.rotate(&pre.delta_p);
        let err = (predicted - f1.gt.pose.trans).norm();
        assert!(err < 0.02, "dead-reckoning error {err} m over one keyframe");
    }

    #[test]
    fn determinism_per_seed() {
        let (traj, world, cam, cfg) = small_setup();
        let f1 = generate_frames(&traj, &world, &cam, &cfg);
        let f2 = generate_frames(&traj, &world, &cam, &cfg);
        assert_eq!(f1[3].features, f2[3].features);
    }
}
