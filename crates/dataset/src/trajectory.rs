//! Continuous ground-truth trajectories for the two synthetic dataset
//! families.
//!
//! * **KITTI-like** — planar road driving: straight segments and arcs with a
//!   varying speed profile (car at 5–15 m/s), camera looking along the
//!   direction of travel.
//! * **EuRoC-like** — a drone flying a 3D Lissajous pattern inside a machine
//!   hall, with altitude oscillation and mild roll/pitch.
//!
//! A trajectory is a map `t → (pose, velocity, angular velocity, world
//! acceleration)`; the IMU synthesizer differentiates nothing — all
//! quantities are analytic, so the generated inertial data is exactly
//! consistent with the ground-truth poses.

use archytas_slam::{Mat3, Pose, Quat, Vec3};

/// Kinematic state of the body at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KinematicSample {
    /// Body pose (camera frame: z forward, x right, y down).
    pub pose: Pose,
    /// World-frame velocity.
    pub velocity: Vec3,
    /// Body-frame angular velocity (what a gyro measures, bias/noise aside).
    pub angular_velocity: Vec3,
    /// World-frame linear acceleration (gravity *not* included).
    pub acceleration: Vec3,
}

/// A continuous ground-truth trajectory.
pub trait Trajectory {
    /// Kinematic state at time `t` (seconds from sequence start).
    fn sample(&self, t: f64) -> KinematicSample;
    /// Total duration in seconds.
    fn duration(&self) -> f64;
}

/// Rotation mapping camera axes (z forward, x right, y down) into a z-up
/// world whose forward direction is +x.
fn camera_to_world_base() -> Quat {
    // Columns: image of camera x → world −y, camera y → world −z,
    // camera z → world +x.
    let m = Mat3([[0.0, 0.0, 1.0], [-1.0, 0.0, 0.0], [0.0, -1.0, 0.0]]);
    mat_to_quat(&m)
}

/// Converts a (proper) rotation matrix to a quaternion.
fn mat_to_quat(m: &Mat3) -> Quat {
    let trace = m.get(0, 0) + m.get(1, 1) + m.get(2, 2);
    if trace > 0.0 {
        let s = (trace + 1.0).sqrt() * 2.0;
        Quat {
            w: 0.25 * s,
            v: Vec3::new(
                (m.get(2, 1) - m.get(1, 2)) / s,
                (m.get(0, 2) - m.get(2, 0)) / s,
                (m.get(1, 0) - m.get(0, 1)) / s,
            ),
        }
        .normalized()
    } else {
        // Find the dominant diagonal element.
        let (i, j, k) = if m.get(0, 0) > m.get(1, 1) && m.get(0, 0) > m.get(2, 2) {
            (0, 1, 2)
        } else if m.get(1, 1) > m.get(2, 2) {
            (1, 2, 0)
        } else {
            (2, 0, 1)
        };
        let s = (1.0 + m.get(i, i) - m.get(j, j) - m.get(k, k)).sqrt() * 2.0;
        let mut v = [0.0; 3];
        v[i] = 0.25 * s;
        v[j] = (m.get(j, i) + m.get(i, j)) / s;
        v[k] = (m.get(k, i) + m.get(i, k)) / s;
        Quat {
            w: (m.get(k, j) - m.get(j, k)) / s,
            v: Vec3::new(v[0], v[1], v[2]),
        }
        .normalized()
    }
}

/// Planar road trajectory: position follows a smooth curve
/// `x(t) = s(t)`, `y(t) = A·sin(ω·s)` — gentle lane weaving over a long
/// straight — with speed `v(t)` oscillating between `v_min` and `v_max`.
#[derive(Debug, Clone)]
pub struct RoadTrajectory {
    duration: f64,
    v_min: f64,
    v_max: f64,
    speed_period: f64,
    weave_amp: f64,
    weave_freq: f64,
}

impl RoadTrajectory {
    /// A KITTI-like drive of the given duration (seconds).
    pub fn kitti_like(duration: f64) -> Self {
        Self {
            duration,
            v_min: 5.0,
            v_max: 14.0,
            speed_period: 40.0,
            weave_amp: 8.0,
            weave_freq: 0.011,
        }
    }

    /// Arc length travelled at time `t` (closed form of ∫v dt).
    fn arclength(&self, t: f64) -> f64 {
        let mid = 0.5 * (self.v_min + self.v_max);
        let amp = 0.5 * (self.v_max - self.v_min);
        let w = std::f64::consts::TAU / self.speed_period;
        mid * t - amp / w * ((w * t).cos() - 1.0)
    }

    fn speed(&self, t: f64) -> f64 {
        let mid = 0.5 * (self.v_min + self.v_max);
        let amp = 0.5 * (self.v_max - self.v_min);
        let w = std::f64::consts::TAU / self.speed_period;
        mid + amp * (w * t).sin()
    }
}

impl Trajectory for RoadTrajectory {
    fn sample(&self, t: f64) -> KinematicSample {
        let eps = 1e-4;
        let pos = |t: f64| {
            let s = self.arclength(t);
            Vec3::new(s, self.weave_amp * (self.weave_freq * s).sin(), 1.6)
        };
        let p = pos(t);
        // Velocity and acceleration by differentiating the closed-form
        // position in s, chained with ds/dt = speed.
        let s = self.arclength(t);
        let v_s = self.speed(t);
        let dy_ds = self.weave_amp * self.weave_freq * (self.weave_freq * s).cos();
        let velocity = Vec3::new(v_s, v_s * dy_ds, 0.0);
        // Numeric acceleration (central difference of the analytic velocity).
        let vel_at = |t: f64| {
            let s = self.arclength(t);
            let v = self.speed(t);
            let dy = self.weave_amp * self.weave_freq * (self.weave_freq * s).cos();
            Vec3::new(v, v * dy, 0.0)
        };
        let acceleration = (vel_at(t + eps) - vel_at(t - eps)) * (1.0 / (2.0 * eps));

        // Heading follows the velocity direction.
        let yaw = velocity.y().atan2(velocity.x());
        let heading = Quat::exp(&Vec3::new(0.0, 0.0, yaw));
        let rot = heading.mul(&camera_to_world_base()).normalized();
        // Angular velocity: yaw rate about world z, expressed in the body.
        let yaw_at = |t: f64| {
            let v = vel_at(t);
            v.y().atan2(v.x())
        };
        let yaw_rate = (yaw_at(t + eps) - yaw_at(t - eps)) / (2.0 * eps);
        let omega_world = Vec3::new(0.0, 0.0, yaw_rate);
        let angular_velocity = rot.inverse().rotate(&omega_world);

        KinematicSample {
            pose: Pose::new(rot, p),
            velocity,
            angular_velocity,
            acceleration,
        }
    }

    fn duration(&self) -> f64 {
        self.duration
    }
}

/// Indoor 3D trajectory: a Lissajous loop in a hall with altitude bobbing
/// and a yaw that tracks the direction of travel.
#[derive(Debug, Clone)]
pub struct HallTrajectory {
    duration: f64,
    radius_x: f64,
    radius_y: f64,
    omega: f64,
    altitude_amp: f64,
}

impl HallTrajectory {
    /// A EuRoC-MH-like flight of the given duration.
    pub fn euroc_like(duration: f64) -> Self {
        Self {
            duration,
            radius_x: 5.0,
            radius_y: 3.5,
            omega: std::f64::consts::TAU / 25.0,
            altitude_amp: 0.8,
        }
    }

    fn position(&self, t: f64) -> Vec3 {
        Vec3::new(
            self.radius_x * (self.omega * t).sin(),
            self.radius_y * (2.0 * self.omega * t).sin() * 0.5 + self.radius_y * 0.3,
            1.5 + self.altitude_amp * (0.7 * self.omega * t).sin(),
        )
    }
}

impl Trajectory for HallTrajectory {
    fn sample(&self, t: f64) -> KinematicSample {
        let eps = 1e-4;
        let p = self.position(t);
        let velocity = (self.position(t + eps) - self.position(t - eps)) * (1.0 / (2.0 * eps));
        let acceleration =
            (self.position(t + eps) + self.position(t - eps) - p - p) * (1.0 / (eps * eps));

        // Yaw follows travel; add gentle roll/pitch like an actual quad.
        let speed_xy = (velocity.x() * velocity.x() + velocity.y() * velocity.y()).sqrt();
        let yaw = if speed_xy > 0.05 {
            velocity.y().atan2(velocity.x())
        } else {
            0.0
        };
        let roll = 0.08 * (1.3 * self.omega * t).sin();
        let pitch = 0.06 * (1.7 * self.omega * t).cos();
        let attitude = Quat::exp(&Vec3::new(0.0, 0.0, yaw))
            .mul(&Quat::exp(&Vec3::new(roll, pitch, 0.0)))
            .normalized();
        let rot = attitude.mul(&camera_to_world_base()).normalized();

        // Angular velocity from finite rotation differences (body frame).
        let rot_at = |t: f64| {
            let v = (self.position(t + eps) - self.position(t - eps)) * (1.0 / (2.0 * eps));
            let sxy = (v.x() * v.x() + v.y() * v.y()).sqrt();
            let yaw = if sxy > 0.05 { v.y().atan2(v.x()) } else { 0.0 };
            let roll = 0.08 * (1.3 * self.omega * t).sin();
            let pitch = 0.06 * (1.7 * self.omega * t).cos();
            Quat::exp(&Vec3::new(0.0, 0.0, yaw))
                .mul(&Quat::exp(&Vec3::new(roll, pitch, 0.0)))
                .mul(&camera_to_world_base())
                .normalized()
        };
        let dq = rot_at(t).inverse().mul(&rot_at(t + eps));
        let angular_velocity = dq.log() * (1.0 / eps);

        KinematicSample {
            pose: Pose::new(rot, p),
            velocity,
            angular_velocity,
            acceleration,
        }
    }

    fn duration(&self) -> f64 {
        self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_rotation_is_proper() {
        let q = camera_to_world_base();
        // Camera forward (+z) maps to world +x.
        let fwd = q.rotate(&Vec3::new(0.0, 0.0, 1.0));
        assert!((fwd - Vec3::new(1.0, 0.0, 0.0)).norm() < 1e-12);
        // Camera down (+y) maps to world −z.
        let down = q.rotate(&Vec3::new(0.0, 1.0, 0.0));
        assert!((down - Vec3::new(0.0, 0.0, -1.0)).norm() < 1e-12);
    }

    #[test]
    fn mat_quat_roundtrip() {
        for theta in [
            Vec3::new(0.3, 0.2, -0.4),
            Vec3::new(3.0, 0.1, 0.0), // near-π rotation exercises the branches
            Vec3::new(0.0, 3.0, 0.2),
            Vec3::new(0.1, 0.0, 3.0),
        ] {
            let q = Quat::exp(&theta);
            let back = mat_to_quat(&q.to_mat());
            assert!(q.angle_to(&back) < 1e-9, "theta {theta:?}");
        }
    }

    #[test]
    fn road_velocity_matches_position_derivative() {
        let traj = RoadTrajectory::kitti_like(100.0);
        let eps = 1e-5;
        for &t in &[1.0, 17.3, 56.0, 90.0] {
            let s = traj.sample(t);
            let numeric = (traj.sample(t + eps).pose.trans - traj.sample(t - eps).pose.trans)
                * (1.0 / (2.0 * eps));
            assert!(
                (numeric - s.velocity).norm() < 1e-3,
                "t={t}: {numeric:?} vs {:?}",
                s.velocity
            );
        }
    }

    #[test]
    fn road_speed_stays_in_band() {
        let traj = RoadTrajectory::kitti_like(120.0);
        for i in 0..120 {
            let s = traj.sample(i as f64);
            let v = s.velocity.norm();
            assert!(v > 4.0 && v < 16.5, "t={i}: speed {v}");
        }
    }

    #[test]
    fn road_camera_looks_forward() {
        let traj = RoadTrajectory::kitti_like(60.0);
        let s = traj.sample(10.0);
        let cam_fwd = s.pose.rot.rotate(&Vec3::new(0.0, 0.0, 1.0));
        let v_dir = s.velocity.normalized();
        assert!(cam_fwd.dot(&v_dir) > 0.99, "forward alignment");
    }

    #[test]
    fn hall_stays_in_hall() {
        let traj = HallTrajectory::euroc_like(60.0);
        for i in 0..240 {
            let s = traj.sample(i as f64 * 0.25);
            assert!(s.pose.trans.x().abs() < 6.0);
            assert!(s.pose.trans.y().abs() < 6.0);
            assert!(s.pose.trans.z() > 0.3 && s.pose.trans.z() < 3.0);
        }
    }

    #[test]
    fn hall_angular_velocity_consistent_with_rotation() {
        let traj = HallTrajectory::euroc_like(60.0);
        let dt = 1e-4;
        for &t in &[3.0, 12.5, 40.0] {
            let s0 = traj.sample(t);
            let s1 = traj.sample(t + dt);
            let dq = s0.pose.rot.inverse().mul(&s1.pose.rot);
            let omega_numeric = dq.log() * (1.0 / dt);
            assert!(
                (omega_numeric - s0.angular_velocity).norm() < 0.05,
                "t={t}: {omega_numeric:?} vs {:?}",
                s0.angular_velocity
            );
        }
    }
}
