//! Named, seeded benchmark sequences: KITTI-like odometry drives 00–10 and
//! EuRoC-like Machine Hall flights MH-01–05.
//!
//! Each sequence deterministically generates its trajectory, landmark world
//! (with a per-sequence texture/density profile that creates the feature
//! droughts of Fig. 11) and frame stream.

use crate::frontend::{generate_frames, Frame, FrontendConfig};
use crate::trajectory::{HallTrajectory, RoadTrajectory, Trajectory};
use crate::world::World;
use archytas_slam::{PinholeCamera, WindowWorkload};

/// Which dataset family a sequence mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetFamily {
    /// KITTI odometry (self-driving car, grayscale sequences).
    Kitti,
    /// EuRoC MAV (drone, Machine Hall sequences).
    Euroc,
    /// Long-horizon highway tunnel drives: feature droughts measured in
    /// minutes, not the seconds-scale dips of the KITTI-like profile.
    Tunnel,
}

impl std::fmt::Display for DatasetFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetFamily::Kitti => write!(f, "KITTI"),
            DatasetFamily::Euroc => write!(f, "EuRoC"),
            DatasetFamily::Tunnel => write!(f, "Tunnel"),
        }
    }
}

/// Static description of a benchmark sequence.
#[derive(Debug, Clone)]
pub struct SequenceSpec {
    /// Sequence name, e.g. `kitti-00` or `euroc-mh-03`.
    pub name: String,
    /// Dataset family.
    pub family: DatasetFamily,
    /// Duration in seconds.
    pub duration: f64,
    /// Master seed (world, noise and drought placement derive from it).
    pub seed: u64,
}

/// A fully generated sequence.
#[derive(Debug, Clone)]
pub struct SequenceData {
    /// The spec this was generated from.
    pub spec: SequenceSpec,
    /// Camera intrinsics used for projection.
    pub camera: PinholeCamera,
    /// Frame stream at keyframe rate.
    pub frames: Vec<Frame>,
}

/// The eleven KITTI-like odometry sequences (00–10).
pub fn kitti_sequences() -> Vec<SequenceSpec> {
    (0..11)
        .map(|i| SequenceSpec {
            name: format!("kitti-{i:02}"),
            family: DatasetFamily::Kitti,
            // Long enough that Fig. 11's window range (400–900) exists on
            // sequence 00.
            duration: if i == 0 { 100.0 } else { 45.0 + 7.0 * i as f64 },
            seed: 1000 + i,
        })
        .collect()
}

/// The five EuRoC-like Machine Hall sequences (MH-01–05).
pub fn euroc_sequences() -> Vec<SequenceSpec> {
    (1..=5)
        .map(|i| SequenceSpec {
            name: format!("euroc-mh-{i:02}"),
            family: DatasetFamily::Euroc,
            duration: 40.0 + 8.0 * i as f64,
            seed: 2000 + i,
        })
        .collect()
}

/// Three long-horizon tunnel drives (240 s each): the vehicle enters a
/// seeded highway tunnel ~15 s in and spends roughly two *minutes* inside a
/// bore with almost no trackable texture — ROADMAP item 3's
/// "droughts measured in minutes, not seconds" regime.
pub fn tunnel_sequences() -> Vec<SequenceSpec> {
    (0..3)
        .map(|i| SequenceSpec {
            name: format!("tunnel-{i:02}"),
            family: DatasetFamily::Tunnel,
            duration: 240.0,
            seed: 3000 + i,
        })
        .collect()
}

impl SequenceSpec {
    /// A short variant of this sequence (for tests and quick demos).
    pub fn truncated(&self, duration: f64) -> SequenceSpec {
        SequenceSpec {
            duration: duration.min(self.duration),
            ..self.clone()
        }
    }

    /// Generates the sequence data (deterministic per spec).
    pub fn build(&self) -> SequenceData {
        let camera = match self.family {
            DatasetFamily::Kitti | DatasetFamily::Tunnel => PinholeCamera::kitti_like(),
            DatasetFamily::Euroc => PinholeCamera::euroc_like(),
        };
        let frontend = FrontendConfig {
            seed: self.seed.wrapping_mul(0x9e3779b97f4a7c15),
            max_features: match self.family {
                DatasetFamily::Kitti | DatasetFamily::Tunnel => 180,
                DatasetFamily::Euroc => 140,
            },
            ..FrontendConfig::default()
        };
        let seed = self.seed;
        let frames = match self.family {
            DatasetFamily::Kitti => {
                let traj = RoadTrajectory::kitti_like(self.duration);
                let length = traj.sample(self.duration).pose.trans.x() + 100.0;
                let world = World::road_corridor(length, seed, move |s| drought_profile(s, seed));
                generate_frames(&traj, &world, &camera, &frontend)
            }
            DatasetFamily::Tunnel => {
                let traj = RoadTrajectory::kitti_like(self.duration);
                let length = traj.sample(self.duration).pose.trans.x() + 100.0;
                let world = World::road_corridor(length, seed, move |s| tunnel_profile(s, seed));
                generate_frames(&traj, &world, &camera, &frontend)
            }
            DatasetFamily::Euroc => {
                let traj = HallTrajectory::euroc_like(self.duration);
                let world = World::machine_hall(seed, move |angle| {
                    // Texture varies around the hall; one wall is poor.
                    drought_profile(angle * 60.0, seed)
                });
                generate_frames(&traj, &world, &camera, &frontend)
            }
        };
        SequenceData {
            spec: self.clone(),
            camera,
            frames,
        }
    }
}

/// Texture/density profile along the path: a base level with smooth
/// variation plus seeded low-texture stretches (the droughts of Fig. 11).
fn drought_profile(s: f64, seed: u64) -> f64 {
    let phase = (seed % 97) as f64 * 0.13;
    let slow = 0.5 + 0.5 * (0.013 * s + phase).sin();
    let base = 0.35 + 0.55 * slow;
    // Two drought centers per ~600 m, positions derived from the seed.
    let mut density = base;
    for k in 0..4 {
        let center = 150.0 + 280.0 * k as f64 + ((seed >> (k * 8)) % 127) as f64;
        let width = 35.0 + ((seed >> (k * 4)) % 31) as f64;
        let d = (s - center) / width;
        density -= 0.75 * (-d * d).exp();
    }
    density.clamp(0.08, 1.0)
}

/// Texture/density profile of a highway tunnel drive: rich open road, a
/// short smooth portal ramp, then a 1.0–1.3 km bore whose texture floor is
/// a few percent of open road. At the KITTI-like 5–15 m/s speed band that
/// is well over a minute of continuous drought.
fn tunnel_profile(s: f64, seed: u64) -> f64 {
    let entry = 140.0 + ((seed % 11) as f64);
    let length = 1000.0 + 100.0 * ((seed % 7) % 4) as f64;
    let exit = entry + length;
    let ramp = 12.0; // portal transition length in metres
    let open = {
        let phase = (seed % 89) as f64 * 0.17;
        0.55 + 0.35 * (0.011 * s + phase).sin()
    };
    let floor = 0.02 + 0.01 * ((seed >> 3) % 4) as f64;
    // Smoothstep into and out of the bore.
    let t_in = ((s - entry) / ramp).clamp(0.0, 1.0);
    let t_out = ((s - exit) / ramp).clamp(0.0, 1.0);
    let inside = t_in * t_in * (3.0 - 2.0 * t_in) - t_out * t_out * (3.0 - 2.0 * t_out);
    (open + (floor - open) * inside).clamp(floor, 1.0)
}

impl SequenceData {
    /// Per-window workload statistics computed directly from the frame
    /// stream, without running the estimator — the fast path for
    /// hardware-model-only experiments (Figs. 13–16).
    ///
    /// Window `i` covers frames `i..i+window_size`; a feature's anchor frame
    /// contributes the landmark, subsequent sightings contribute
    /// observations, and features whose last sighting is the window's oldest
    /// frame count as marginalized.
    pub fn window_workloads(&self, window_size: usize) -> Vec<WindowWorkload> {
        use std::collections::HashMap;
        let n = self.frames.len();
        if n < window_size {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(n - window_size + 1);
        for start in 0..=(n - window_size) {
            let mut seen: HashMap<u64, (usize, usize)> = HashMap::new(); // id → (count, last frame)
            for (k, frame) in self.frames[start..start + window_size].iter().enumerate() {
                for f in &frame.features {
                    let e = seen.entry(f.id).or_insert((0, k));
                    e.0 += 1;
                    e.1 = k;
                }
            }
            let features = seen.len();
            let observations: usize = seen.values().map(|(c, _)| *c).sum();
            let marginalized = seen.values().filter(|(_, last)| *last == 0).count();
            out.push(WindowWorkload {
                features,
                observations,
                keyframes: window_size,
                marginalized_features: marginalized,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_lists() {
        assert_eq!(kitti_sequences().len(), 11);
        assert_eq!(euroc_sequences().len(), 5);
        assert_eq!(kitti_sequences()[0].name, "kitti-00");
        assert_eq!(euroc_sequences()[4].name, "euroc-mh-05");
        assert_eq!(tunnel_sequences().len(), 3);
        assert_eq!(tunnel_sequences()[0].name, "tunnel-00");
        assert_eq!(tunnel_sequences()[0].family, DatasetFamily::Tunnel);
        assert!(tunnel_sequences().iter().all(|s| s.duration >= 240.0));
    }

    #[test]
    fn tunnel_profile_has_minutes_scale_drought() {
        // The bore must be a contiguous low-texture span long enough that a
        // 5–15 m/s drive spends more than a minute inside: ≥ 900 m below
        // 10% density (900 m / 15 m/s = 60 s even at top speed).
        for spec in tunnel_sequences() {
            let seed = spec.seed;
            let mut run = 0.0;
            let mut longest = 0.0f64;
            let step = 5.0;
            let mut s = 0.0;
            while s < 2400.0 {
                if tunnel_profile(s, seed) < 0.10 {
                    run += step;
                    longest = longest.max(run);
                } else {
                    run = 0.0;
                }
                s += step;
            }
            assert!(
                longest >= 900.0,
                "{}: longest drought {longest} m < 900 m",
                spec.name
            );
            // Open road on both sides of the bore is rich.
            assert!(tunnel_profile(0.0, seed) > 0.2);
            assert!(tunnel_profile(2350.0, seed) > 0.2);
        }
    }

    #[test]
    fn tunnel_sequence_builds_with_feature_drought() {
        // A 30 s truncation reaches past the portal (~150 m at ~10 m/s is
        // ~15 s in) and must show the feature counts collapsing inside.
        let spec = tunnel_sequences()[0].truncated(30.0);
        let data = spec.build();
        let counts: Vec<usize> = data.frames.iter().map(|f| f.features.len()).collect();
        let max = *counts.iter().max().unwrap();
        let tail_min = *counts[counts.len() - 50..].iter().min().unwrap();
        assert!(max > 100, "open road is rich (max {max})");
        assert!(
            tail_min < max / 4,
            "bore is a drought (tail min {tail_min}, max {max})"
        );
    }

    #[test]
    fn build_is_deterministic() {
        let spec = kitti_sequences()[1].truncated(5.0);
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.frames.len(), b.frames.len());
        assert_eq!(a.frames[10].features, b.frames[10].features);
    }

    #[test]
    fn kitti_feature_counts_fluctuate() {
        // 60 s guarantees the trajectory crosses a deep drought center
        // regardless of where the seeded centers land.
        let spec = kitti_sequences()[0].truncated(60.0);
        let data = spec.build();
        let counts: Vec<usize> = data.frames.iter().map(|f| f.features.len()).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max > 100, "rich stretches exist (max {max})");
        assert!(min < max / 2, "droughts exist (min {min}, max {max})");
    }

    #[test]
    fn euroc_sequences_build() {
        let spec = euroc_sequences()[0].truncated(6.0);
        let data = spec.build();
        assert_eq!(data.frames.len(), 60);
        assert!(data.frames.iter().all(|f| !f.features.is_empty()));
    }

    #[test]
    fn window_workloads_cover_sequence() {
        let spec = kitti_sequences()[2].truncated(6.0);
        let data = spec.build();
        let w = data.window_workloads(10);
        assert_eq!(w.len(), data.frames.len() - 9);
        for wl in &w {
            assert!(wl.features > 0);
            assert!(wl.observations >= wl.features);
            assert_eq!(wl.keyframes, 10);
            assert!(wl.avg_observations_per_feature() >= 1.0);
        }
    }

    #[test]
    fn drought_profile_bounded() {
        for seed in [1u64, 1003, 2005] {
            for i in 0..200 {
                let d = drought_profile(i as f64 * 5.0, seed);
                assert!((0.08..=1.0).contains(&d));
            }
        }
    }
}
