//! Visual–inertial odometry pipeline: frames in, per-window estimates out.
//!
//! This is the "host side" of the paper's on-vehicle system (Fig. 1): it
//! manages the sliding window, dead-reckons the initial estimate of each new
//! keyframe from the IMU, associates features with landmarks, invokes the
//! solver (with whatever iteration budget the run-time system chooses), and
//! marginalizes the oldest keyframe as the window slides.

use crate::frontend::Frame;
use archytas_slam::{
    marginalize_oldest, FactorWeights, ImuConstraint, KeyframeState, Landmark, LmConfig,
    Observation, Pose, Preintegration, Prior, SlidingWindow, SolveReport, SolverWorkspace,
    WindowWorkload, GRAVITY,
};
use std::collections::HashMap;

/// How each new keyframe's state estimate is initialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitMode {
    /// Dead reckoning through IMU preintegration (VINS-style).
    #[default]
    ImuPropagation,
    /// Constant-velocity extrapolation of the previous estimate
    /// (vision-dominant estimators; leaves more work to the NLS iterations).
    ConstantVelocity,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Sliding-window capacity in keyframes (`b`).
    pub window_size: usize,
    /// Relative noise applied to the front-end depth initialization.
    pub depth_init_error: f64,
    /// Factor weights (the `Cᵢ` of Eq. 2).
    pub weights: FactorWeights,
    /// Carry the marginalization prior between windows (the paper's
    /// formulation). Disabling it is an ablation: windows lose the
    /// information of departed keyframes.
    pub use_prior: bool,
    /// Sub-pixel refinement factor for the anchor bearing (0 = raw noisy
    /// detection, 1 = perfect). Anchor bearings are *fixed* parameters of
    /// the inverse-depth parameterization, so their noise — unlike
    /// observation noise — biases the estimate; front-ends refine anchor
    /// detections to sub-pixel accuracy for exactly this reason.
    pub anchor_refinement: f64,
    /// Landmarks deeper than this (m) are not instantiated: far features
    /// carry almost no parallax and their noise-induced depth bias drags
    /// the monocular scale (the standard front-end depth gate).
    pub max_landmark_depth: f64,
    /// Keyframe state initialization strategy.
    pub init_mode: InitMode,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            window_size: 10,
            depth_init_error: 0.1,
            weights: FactorWeights::default(),
            use_prior: true,
            anchor_refinement: 0.75,
            max_landmark_depth: 35.0,
            init_mode: InitMode::ImuPropagation,
        }
    }
}

/// Result of processing one full window.
#[derive(Debug, Clone)]
pub struct WindowResult {
    /// Sliding-window index (increments once per marginalization).
    pub window_id: usize,
    /// Solver report for this window.
    pub report: SolveReport,
    /// Estimated pose of the newest keyframe.
    pub estimate: Pose,
    /// Ground-truth pose of the newest keyframe.
    pub ground_truth: Pose,
    /// Workload statistics (feeds the hardware latency model).
    pub workload: WindowWorkload,
}

/// The stateful VIO pipeline.
#[derive(Debug)]
pub struct VioPipeline {
    config: PipelineConfig,
    window: SlidingWindow,
    prior: Option<Prior>,
    /// feature id → landmark index in the current window.
    landmark_of: HashMap<u64, usize>,
    /// Ground-truth poses aligned with `window.keyframes`.
    gt_window: Vec<KeyframeState>,
    windows_processed: usize,
    /// Solver buffers reused across every window this pipeline optimizes.
    workspace: SolverWorkspace,
}

impl VioPipeline {
    /// Creates an empty pipeline.
    pub fn new(config: PipelineConfig) -> Self {
        Self {
            config,
            window: SlidingWindow::new(),
            prior: None,
            landmark_of: HashMap::new(),
            gt_window: Vec::new(),
            windows_processed: 0,
            workspace: SolverWorkspace::new(),
        }
    }

    /// Read access to the current window (for the hardware functional model
    /// and workload probes).
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }

    /// The current marginalization prior, if any.
    pub fn prior(&self) -> Option<&Prior> {
        self.prior.as_ref()
    }

    /// Number of completed windows.
    pub fn windows_processed(&self) -> usize {
        self.windows_processed
    }

    /// Ingests one frame: creates a keyframe (IMU dead-reckoned initial
    /// estimate), registers features, and returns `true` when the window is
    /// full and ready to be optimized.
    pub fn push_frame(&mut self, frame: &Frame) -> bool {
        let kf_index = self.window.num_keyframes();
        let state = if kf_index == 0 {
            // First keyframe: initialized from ground truth (plays the role
            // of the known initial condition every VIO system assumes).
            frame.gt
        } else {
            let last = self.window.keyframes[kf_index - 1];
            match self.config.init_mode {
                InitMode::ImuPropagation => {
                    let pre = Preintegration::integrate(&frame.imu, last.bg, last.ba);
                    propagate(&last, &pre, frame.timestamp)
                }
                InitMode::ConstantVelocity => {
                    let dt = frame.timestamp - last.timestamp;
                    KeyframeState {
                        pose: Pose::new(
                            last.pose.rot,
                            last.pose.trans + last.velocity * dt,
                        ),
                        ..last
                    }
                }
            }
        };
        self.window.keyframes.push(state);
        self.gt_window.push(frame.gt);

        if kf_index > 0 {
            self.window.imu.push(ImuConstraint {
                first: kf_index - 1,
                preintegration: Preintegration::integrate(
                    &frame.imu,
                    self.window.keyframes[kf_index - 1].bg,
                    self.window.keyframes[kf_index - 1].ba,
                ),
            });
        }

        for feat in &frame.features {
            match self.landmark_of.get(&feat.id) {
                Some(&lm_idx) => {
                    self.window.observations.push(Observation {
                        landmark: lm_idx,
                        keyframe: kf_index,
                        uv: feat.uv,
                    });
                }
                None if feat.depth <= self.config.max_landmark_depth => {
                    // New landmark anchored at this keyframe. The bearing is
                    // the measured direction; depth comes from the front-end
                    // (noisy triangulation stand-in; zero-mean per-landmark
                    // error derived deterministically from the feature id).
                    let h = ((feat.id.wrapping_mul(2654435761) % 2000) as f64 / 1000.0) - 1.0;
                    let depth = feat.depth * (1.0 + self.config.depth_init_error * h);
                    let lm_idx = self.window.landmarks.len();
                    let r = self.config.anchor_refinement.clamp(0.0, 1.0);
                    let bearing_uv = [
                        feat.uv[0] * (1.0 - r) + feat.uv_true[0] * r,
                        feat.uv[1] * (1.0 - r) + feat.uv_true[1] * r,
                    ];
                    self.window.landmarks.push(Landmark {
                        id: feat.id,
                        anchor: kf_index,
                        bearing: archytas_slam::Vec3::new(bearing_uv[0], bearing_uv[1], 1.0),
                        inv_depth: 1.0 / depth.max(0.1),
                    });
                    self.landmark_of.insert(feat.id, lm_idx);
                }
                None => {} // too far: skip until it comes closer
            }
        }
        self.window.num_keyframes() >= self.config.window_size
    }

    /// Optimizes the full window with the given iteration budget and then
    /// slides it (marginalizing the oldest keyframe). Returns the window
    /// result.
    ///
    /// # Panics
    ///
    /// Panics when called before the window is full.
    pub fn optimize_and_slide(&mut self, iterations: usize) -> WindowResult {
        assert!(
            self.window.num_keyframes() >= self.config.window_size,
            "optimize_and_slide: window not full"
        );
        let prior = if self.config.use_prior {
            self.prior.as_ref()
        } else {
            None
        };
        let report = archytas_slam::solve_in_workspace(
            &mut self.workspace,
            &mut self.window,
            &self.config.weights,
            prior,
            &LmConfig::with_iterations(iterations),
        );
        self.slide(report)
    }

    /// Like [`VioPipeline::optimize_and_slide`] but with a caller-provided
    /// linear solver — the hook through which the accelerator's
    /// single-precision functional model executes the window.
    ///
    /// # Panics
    ///
    /// Panics when called before the window is full.
    pub fn optimize_and_slide_with(
        &mut self,
        iterations: usize,
        linear_solver: archytas_slam::LinearSolver<'_>,
    ) -> WindowResult {
        assert!(
            self.window.num_keyframes() >= self.config.window_size,
            "optimize_and_slide: window not full"
        );
        let prior = if self.config.use_prior {
            self.prior.as_ref()
        } else {
            None
        };
        let report = archytas_slam::solve_with(
            &mut self.window,
            &self.config.weights,
            prior,
            &LmConfig::with_iterations(iterations),
            linear_solver,
        );
        self.slide(report)
    }

    /// Records the optimized window's result, marginalizes the oldest
    /// keyframe, and slides the window (shared tail of both optimize paths).
    fn slide(&mut self, report: SolveReport) -> WindowResult {
        let prior = if self.config.use_prior {
            self.prior.as_ref()
        } else {
            None
        };
        let am = self
            .window
            .landmarks
            .iter()
            .filter(|l| l.anchor == 0)
            .count();
        let workload = self.window.workload(am);

        let newest = self.window.num_keyframes() - 1;
        let result = WindowResult {
            window_id: self.windows_processed,
            report,
            estimate: self.window.keyframes[newest].pose,
            ground_truth: self.gt_window[newest].pose,
            workload,
        };

        let marg = marginalize_oldest(&self.window, &self.config.weights, prior);
        self.window = marg.window;
        self.prior = self.config.use_prior.then_some(marg.prior);
        self.gt_window.remove(0);
        self.rebuild_landmark_map();
        self.windows_processed += 1;
        result
    }

    /// Ground-truth pose aligned with the newest keyframe.
    pub fn newest_ground_truth(&self) -> Option<Pose> {
        self.gt_window.last().map(|s| s.pose)
    }

    /// Estimated pose of the newest keyframe.
    pub fn newest_estimate(&self) -> Option<Pose> {
        self.window.keyframes.last().map(|s| s.pose)
    }

    fn rebuild_landmark_map(&mut self) {
        self.landmark_of.clear();
        for (idx, lm) in self.window.landmarks.iter().enumerate() {
            self.landmark_of.insert(lm.id, idx);
        }
    }
}

/// IMU dead reckoning: propagates a keyframe state through a preintegrated
/// interval.
fn propagate(last: &KeyframeState, pre: &Preintegration, timestamp: f64) -> KeyframeState {
    let dt = pre.dt;
    let (dq, dp, dv) = pre.corrected(&last.bg, &last.ba);
    KeyframeState {
        pose: Pose::new(
            last.pose.rot.mul(&dq).normalized(),
            last.pose.trans
                + last.velocity * dt
                + GRAVITY * (0.5 * dt * dt)
                + last.pose.rot.rotate(&dp),
        ),
        velocity: last.velocity + GRAVITY * dt + last.pose.rot.rotate(&dv),
        bg: last.bg,
        ba: last.ba,
        timestamp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::{generate_frames, FrontendConfig};
    use crate::trajectory::RoadTrajectory;
    use crate::world::World;
    use archytas_slam::PinholeCamera;

    fn run_pipeline(seconds: f64, iterations: usize) -> (Vec<WindowResult>, VioPipeline) {
        let traj = RoadTrajectory::kitti_like(seconds);
        let world = World::road_corridor(traj.sample(seconds).pose.trans.x() + 80.0, 5, |_| 1.0);
        let cam = PinholeCamera::kitti_like();
        let frames = generate_frames(&traj, &world, &cam, &FrontendConfig::default());
        let mut pipeline = VioPipeline::new(PipelineConfig::default());
        let mut results = Vec::new();
        for frame in &frames {
            if pipeline.push_frame(frame) {
                results.push(pipeline.optimize_and_slide(iterations));
            }
        }
        (results, pipeline)
    }

    use crate::trajectory::Trajectory;

    #[test]
    fn pipeline_produces_windows() {
        let (results, pipeline) = run_pipeline(4.0, 3);
        // 40 frames at window size 10 → 31 sliding windows.
        assert_eq!(results.len(), 31);
        assert_eq!(pipeline.windows_processed(), 31);
        for r in &results {
            assert!(r.workload.features > 0);
            assert!(r.workload.keyframes == 10);
        }
    }

    #[test]
    fn estimates_track_ground_truth() {
        let (results, _) = run_pipeline(5.0, 4);
        let last = results.last().unwrap();
        let err = last.estimate.translation_distance(&last.ground_truth);
        let travelled = last.ground_truth.trans.norm().max(1.0);
        let drift_fraction = err / travelled;
        // Monocular-VIO-grade accuracy: cumulative drift a few percent of
        // distance travelled.
        assert!(
            drift_fraction < 0.04,
            "drift {err} m over {travelled} m ({:.1}%)",
            drift_fraction * 100.0
        );
    }

    #[test]
    fn optimization_beats_dead_reckoning_initialization() {
        let (results, _) = run_pipeline(4.0, 4);
        for r in &results {
            assert!(
                r.report.final_cost <= r.report.initial_cost,
                "window {}: cost went up",
                r.window_id
            );
        }
    }

    #[test]
    fn workload_reports_marginalization() {
        let (results, _) = run_pipeline(4.0, 2);
        // At least some windows must be marginalizing features out.
        assert!(results.iter().any(|r| r.workload.marginalized_features > 0));
    }

    #[test]
    #[should_panic(expected = "window not full")]
    fn premature_optimize_panics() {
        let mut pipeline = VioPipeline::new(PipelineConfig::default());
        let _ = pipeline.optimize_and_slide(1);
    }
}
