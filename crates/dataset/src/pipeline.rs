//! Visual–inertial odometry pipeline: frames in, per-window estimates out.
//!
//! This is the "host side" of the paper's on-vehicle system (Fig. 1): it
//! manages the sliding window, dead-reckons the initial estimate of each new
//! keyframe from the IMU, associates features with landmarks, invokes the
//! solver (with whatever iteration budget the run-time system chooses), and
//! marginalizes the oldest keyframe as the window slides.

use crate::frontend::Frame;
use archytas_slam::{
    drop_oldest, try_marginalize_oldest, FactorWeights, ImuConstraint, ImuSample, KeyframeState,
    Landmark, LmConfig, Observation, Pose, Preintegration, Prior, SlidingWindow, SolveReport,
    SolverWorkspace, WindowWorkload, GRAVITY,
};
use std::cell::RefCell;
use std::collections::HashMap;

thread_local! {
    /// Per-thread solver scratch backing the workspace-less
    /// `optimize_and_slide*` entry points. Sessions no longer own a
    /// workspace (a grown one is ~1 MB — it would dominate per-session
    /// resident bytes at fleet scale); scratch is per-executing-thread here
    /// or checked out of the fleet's bounded pool via the `*_in` variants.
    static SCRATCH: RefCell<SolverWorkspace> = RefCell::new(SolverWorkspace::new());
}

/// How each new keyframe's state estimate is initialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitMode {
    /// Dead reckoning through IMU preintegration (VINS-style).
    #[default]
    ImuPropagation,
    /// Constant-velocity extrapolation of the previous estimate
    /// (vision-dominant estimators; leaves more work to the NLS iterations).
    ConstantVelocity,
}

/// Pipeline health, the degradation ladder's state machine: faults demote to
/// `Degraded`, clean windows climb back through `Recovering` to `Nominal`
/// with hysteresis (see [`HealthConfig::recovery_windows`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// Clean sensor stream, solver converging: full-featured operation.
    #[default]
    Nominal,
    /// A fault was observed this window (vision dropout, corrupted IMU,
    /// solver degradation, prior reset): landmark instantiation is
    /// suppressed and state initialization falls back to IMU dead reckoning.
    Degraded,
    /// Fault cleared; counting clean windows before resuming nominal
    /// operation.
    Recovering,
}

/// Why a window closed degraded — the ladder's *diagnosis*, as opposed to
/// [`HealthState`] which is its *response*. Distinguishing the cause matters
/// operationally: a sanitized sensor fault is routine (the ladder absorbed
/// it), a prior reset means information was discarded, and solver divergence
/// on clean input points at conditioning rather than sensors. None of these
/// is a quarantine event — quarantine is a fleet-level verdict
/// (`archytas-fleet`) about a session, not a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradationCause {
    /// Corrupted sensor input was detected and sanitized (non-finite IMU,
    /// vision dropout, stale frame delivery, non-finite feature).
    SensorFault,
    /// The solver reported a degraded outcome with no sensor fault latched.
    SolverDivergence,
    /// Marginalization failed; the oldest keyframe was dropped and the
    /// prior reset rather than carrying a corrupt one forward.
    PriorReset,
}

/// Thresholds of the [`HealthMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// A frame with fewer tracked features counts as vision loss. The
    /// default of 1 trips only on *total* dropout: natural feature droughts
    /// are part of the nominal workload (they are what the runtime layer
    /// provisions iterations for), not faults.
    pub min_vision_features: usize,
    /// Consecutive clean windows required in `Recovering` before returning
    /// to `Nominal` (the ladder's hysteresis).
    pub recovery_windows: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            min_vision_features: 1,
            recovery_windows: 2,
        }
    }
}

/// Per-window health state machine of the VIO pipeline.
///
/// Frame-level events (vision loss, non-finite IMU samples) and window-level
/// events (degraded solve outcome, marginalization failure) are latched
/// during the window and folded into one state transition when the window
/// closes.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    config: HealthConfig,
    state: HealthState,
    clean_windows: usize,
    /// Fault event latched since the last window closed (the first cause
    /// observed wins; later events in the same window add no information
    /// to the transition).
    window_cause: Option<DegradationCause>,
    degraded_windows: usize,
}

impl HealthMonitor {
    /// Creates a monitor in the `Nominal` state.
    pub fn new(config: HealthConfig) -> Self {
        Self {
            config,
            state: HealthState::Nominal,
            clean_windows: 0,
            window_cause: None,
            degraded_windows: 0,
        }
    }

    /// Current ladder state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// `true` when fully nominal (the only state in which power gating and
    /// landmark instantiation run unrestricted).
    pub fn is_nominal(&self) -> bool {
        self.state == HealthState::Nominal
    }

    /// Cumulative number of windows that closed with a fault observed.
    pub fn degraded_windows(&self) -> usize {
        self.degraded_windows
    }

    /// `true` while a fault is latched for the current window or the ladder
    /// has not yet climbed back to `Nominal` — the condition under which the
    /// pipeline suppresses landmark instantiation and forces IMU
    /// dead-reckoning initialization.
    pub fn is_suspect(&self) -> bool {
        self.window_cause.is_some() || self.state != HealthState::Nominal
    }

    /// Latches a fault event for the current window; the first cause
    /// observed in a window wins.
    fn note_event(&mut self, cause: DegradationCause) {
        self.window_cause.get_or_insert(cause);
    }

    /// Folds the latched events and the solve outcome into one transition as
    /// a window closes, returning the window's degradation cause (`None`
    /// when the window was clean). A degraded solve outcome with no sensor
    /// or marginalization event latched is attributed to the solver itself.
    fn end_window(&mut self, outcome_degraded: bool) -> Option<DegradationCause> {
        let cause = self
            .window_cause
            .take()
            .or_else(|| outcome_degraded.then_some(DegradationCause::SolverDivergence));
        if cause.is_some() {
            self.state = HealthState::Degraded;
            self.clean_windows = 0;
            self.degraded_windows += 1;
            return cause;
        }
        match self.state {
            HealthState::Nominal => {}
            HealthState::Degraded | HealthState::Recovering => {
                self.state = HealthState::Recovering;
                self.clean_windows += 1;
                if self.clean_windows >= self.config.recovery_windows.max(1) {
                    self.state = HealthState::Nominal;
                    self.clean_windows = 0;
                }
            }
        }
        None
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Sliding-window capacity in keyframes (`b`).
    pub window_size: usize,
    /// Relative noise applied to the front-end depth initialization.
    pub depth_init_error: f64,
    /// Factor weights (the `Cᵢ` of Eq. 2).
    pub weights: FactorWeights,
    /// Carry the marginalization prior between windows (the paper's
    /// formulation). Disabling it is an ablation: windows lose the
    /// information of departed keyframes.
    pub use_prior: bool,
    /// Sub-pixel refinement factor for the anchor bearing (0 = raw noisy
    /// detection, 1 = perfect). Anchor bearings are *fixed* parameters of
    /// the inverse-depth parameterization, so their noise — unlike
    /// observation noise — biases the estimate; front-ends refine anchor
    /// detections to sub-pixel accuracy for exactly this reason.
    pub anchor_refinement: f64,
    /// Landmarks deeper than this (m) are not instantiated: far features
    /// carry almost no parallax and their noise-induced depth bias drags
    /// the monocular scale (the standard front-end depth gate).
    pub max_landmark_depth: f64,
    /// Keyframe state initialization strategy.
    pub init_mode: InitMode,
    /// Degradation-ladder thresholds (see [`HealthConfig`]).
    pub health: HealthConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            window_size: 10,
            depth_init_error: 0.1,
            weights: FactorWeights::default(),
            use_prior: true,
            anchor_refinement: 0.75,
            max_landmark_depth: 35.0,
            init_mode: InitMode::ImuPropagation,
            health: HealthConfig::default(),
        }
    }
}

/// Result of processing one full window.
#[derive(Debug, Clone)]
pub struct WindowResult {
    /// Sliding-window index (increments once per marginalization).
    pub window_id: usize,
    /// Solver report for this window.
    pub report: SolveReport,
    /// Estimated pose of the newest keyframe.
    pub estimate: Pose,
    /// Ground-truth pose of the newest keyframe.
    pub ground_truth: Pose,
    /// Workload statistics (feeds the hardware latency model).
    pub workload: WindowWorkload,
    /// Health state after this window closed (degradation ladder).
    pub health: HealthState,
    /// Why the window closed degraded, `None` when it was clean.
    pub cause: Option<DegradationCause>,
}

/// The stateful VIO pipeline.
#[derive(Debug, Clone)]
pub struct VioPipeline {
    config: PipelineConfig,
    window: SlidingWindow,
    prior: Option<Prior>,
    /// feature id → landmark index in the current window.
    landmark_of: HashMap<u64, usize>,
    /// Ground-truth poses aligned with `window.keyframes`.
    gt_window: Vec<KeyframeState>,
    windows_processed: usize,
    /// Degradation-ladder state machine.
    health: HealthMonitor,
    /// Signature `(id, uv bits)` of the previous frame's features, for
    /// stale-frame (duplicate delivery) detection.
    last_frame_features: Vec<(u64, u64, u64)>,
    /// Last sanitized IMU sample of the previous frame: the cross-frame
    /// neighbor for repairing corruption that spans a whole frame.
    last_good_imu: Option<ImuSample>,
}

impl VioPipeline {
    /// Creates an empty pipeline.
    pub fn new(config: PipelineConfig) -> Self {
        Self {
            config,
            window: SlidingWindow::new(),
            prior: None,
            landmark_of: HashMap::new(),
            gt_window: Vec::new(),
            windows_processed: 0,
            health: HealthMonitor::new(config.health),
            last_frame_features: Vec::new(),
            last_good_imu: None,
        }
    }

    /// The degradation-ladder monitor (read access).
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// Read access to the current window (for the hardware functional model
    /// and workload probes).
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }

    /// The current marginalization prior, if any.
    pub fn prior(&self) -> Option<&Prior> {
        self.prior.as_ref()
    }

    /// Number of completed windows.
    pub fn windows_processed(&self) -> usize {
        self.windows_processed
    }

    /// Ingests one frame: creates a keyframe (IMU dead-reckoned initial
    /// estimate), registers features, and returns `true` when the window is
    /// full and ready to be optimized.
    pub fn push_frame(&mut self, frame: &Frame) -> bool {
        // Non-finite IMU samples are a sensor fault: replace them by
        // sample-and-hold and latch a health event. The all-finite fast
        // path borrows the frame's samples untouched, so nominal runs are
        // bit-identical.
        let imu: std::borrow::Cow<'_, [ImuSample]> =
            match sanitize_imu(&frame.imu, self.last_good_imu.as_ref()) {
                None => std::borrow::Cow::Borrowed(&frame.imu[..]),
                Some(clean) => {
                    self.health.note_event(DegradationCause::SensorFault);
                    std::borrow::Cow::Owned(clean)
                }
            };
        if let Some(s) = imu.last() {
            self.last_good_imu = Some(*s);
        }
        if frame.features.len() < self.config.health.min_vision_features {
            // Vision dropout: the window from here on runs on IMU dead
            // reckoning and existing landmarks only.
            self.health.note_event(DegradationCause::SensorFault);
        }
        // Stale-frame detection: a feature set bit-identical to the previous
        // frame's is a duplicate delivery (frame-grabber fault), not a new
        // measurement — per-frame noise makes exact equality impossible on a
        // live stream. Stale measurements are *consistent* observations of
        // the wrong pose, so they must be rejected, not robust-weighted.
        let signature: Vec<(u64, u64, u64)> = frame
            .features
            .iter()
            .map(|f| (f.id, f.uv[0].to_bits(), f.uv[1].to_bits()))
            .collect();
        let stale = self.window.num_keyframes() > 0
            && !signature.is_empty()
            && signature == self.last_frame_features;
        self.last_frame_features = signature;
        if stale {
            self.health.note_event(DegradationCause::SensorFault);
        }
        let suspect = self.health.is_suspect();

        let kf_index = self.window.num_keyframes();
        let state = if kf_index == 0 {
            // First keyframe: initialized from ground truth (plays the role
            // of the known initial condition every VIO system assumes).
            frame.gt
        } else {
            let last = self.window.keyframes[kf_index - 1];
            // While suspect, constant-velocity extrapolation (which trusts
            // the last *vision-corrected* velocity) is overridden by IMU
            // dead reckoning — the degradation ladder's fallback estimator.
            let init_mode = if suspect {
                InitMode::ImuPropagation
            } else {
                self.config.init_mode
            };
            match init_mode {
                InitMode::ImuPropagation => {
                    let pre = Preintegration::integrate(&imu, last.bg, last.ba);
                    propagate(&last, &pre, frame.timestamp)
                }
                InitMode::ConstantVelocity => {
                    let dt = frame.timestamp - last.timestamp;
                    KeyframeState {
                        pose: Pose::new(last.pose.rot, last.pose.trans + last.velocity * dt),
                        ..last
                    }
                }
            }
        };
        self.window.keyframes.push(state);
        self.gt_window.push(frame.gt);

        if kf_index > 0 {
            self.window.imu.push(ImuConstraint {
                first: kf_index - 1,
                preintegration: Preintegration::integrate(
                    &imu,
                    self.window.keyframes[kf_index - 1].bg,
                    self.window.keyframes[kf_index - 1].ba,
                ),
            });
        }

        // A stale frame contributes no measurements at all: its IMU interval
        // was real, its features are a replay.
        let delivered = if stale { &[][..] } else { &frame.features[..] };
        for feat in delivered {
            // A non-finite measurement would put NaN into every residual it
            // touches: drop it and flag the window instead.
            if !(feat.uv[0].is_finite() && feat.uv[1].is_finite()) {
                self.health.note_event(DegradationCause::SensorFault);
                continue;
            }
            match self.landmark_of.get(&feat.id) {
                Some(&lm_idx) => {
                    self.window.observations.push(Observation {
                        landmark: lm_idx,
                        keyframe: kf_index,
                        uv: feat.uv,
                    });
                }
                // New landmarks are not instantiated while suspect: features
                // surviving a fault episode are the least trustworthy, and a
                // landmark anchored on a corrupted keyframe poisons every
                // later window it is observed from.
                None if !suspect && feat.depth <= self.config.max_landmark_depth => {
                    // New landmark anchored at this keyframe. The bearing is
                    // the measured direction; depth comes from the front-end
                    // (noisy triangulation stand-in; zero-mean per-landmark
                    // error derived deterministically from the feature id).
                    let h = ((feat.id.wrapping_mul(2654435761) % 2000) as f64 / 1000.0) - 1.0;
                    let depth = feat.depth * (1.0 + self.config.depth_init_error * h);
                    let lm_idx = self.window.landmarks.len();
                    let r = self.config.anchor_refinement.clamp(0.0, 1.0);
                    let bearing_uv = [
                        feat.uv[0] * (1.0 - r) + feat.uv_true[0] * r,
                        feat.uv[1] * (1.0 - r) + feat.uv_true[1] * r,
                    ];
                    self.window.landmarks.push(Landmark {
                        id: feat.id,
                        anchor: kf_index,
                        bearing: archytas_slam::Vec3::new(bearing_uv[0], bearing_uv[1], 1.0),
                        inv_depth: 1.0 / depth.max(0.1),
                    });
                    self.landmark_of.insert(feat.id, lm_idx);
                }
                None => {} // too far: skip until it comes closer
            }
        }
        self.window.num_keyframes() >= self.config.window_size
    }

    /// Optimizes the full window with the given iteration budget and then
    /// slides it (marginalizing the oldest keyframe). Returns the window
    /// result.
    ///
    /// Solver scratch comes from a per-thread [`SolverWorkspace`]; callers
    /// that manage their own scratch pool (the fleet serving layer) use
    /// [`VioPipeline::optimize_and_slide_in`] instead. The workspace is pure
    /// scratch — every buffer is fully rewritten before it is read — so which
    /// workspace executes a window never changes its bits.
    ///
    /// # Panics
    ///
    /// Panics when called before the window is full.
    pub fn optimize_and_slide(&mut self, iterations: usize) -> WindowResult {
        SCRATCH.with(|ws| self.optimize_and_slide_in(&mut ws.borrow_mut(), iterations))
    }

    /// [`VioPipeline::optimize_and_slide`] with caller-provided solver
    /// scratch.
    ///
    /// # Panics
    ///
    /// Panics when called before the window is full.
    pub fn optimize_and_slide_in(
        &mut self,
        workspace: &mut SolverWorkspace,
        iterations: usize,
    ) -> WindowResult {
        assert!(
            self.window.num_keyframes() >= self.config.window_size,
            "optimize_and_slide: window not full"
        );
        let prior = if self.config.use_prior {
            self.prior.as_ref()
        } else {
            None
        };
        let report = archytas_slam::solve_in_workspace(
            workspace,
            &mut self.window,
            &self.config.weights,
            prior,
            &LmConfig::with_iterations(iterations),
        );
        self.slide(report)
    }

    /// Like [`VioPipeline::optimize_and_slide`] but with a caller-provided
    /// linear solver — the hook through which the accelerator's
    /// single-precision functional model executes the window. Scratch comes
    /// from the same per-thread [`SolverWorkspace`] as the default path.
    ///
    /// # Panics
    ///
    /// Panics when called before the window is full.
    pub fn optimize_and_slide_with(
        &mut self,
        iterations: usize,
        linear_solver: archytas_slam::LinearSolver<'_>,
    ) -> WindowResult {
        SCRATCH.with(|ws| {
            self.optimize_and_slide_with_in(&mut ws.borrow_mut(), iterations, linear_solver)
        })
    }

    /// [`VioPipeline::optimize_and_slide_with`] with caller-provided solver
    /// scratch — the combination the fleet layer uses: accelerator linear
    /// solver plus a workspace checked out of its bounded scratch pool.
    ///
    /// # Panics
    ///
    /// Panics when called before the window is full.
    pub fn optimize_and_slide_with_in(
        &mut self,
        workspace: &mut SolverWorkspace,
        iterations: usize,
        linear_solver: archytas_slam::LinearSolver<'_>,
    ) -> WindowResult {
        assert!(
            self.window.num_keyframes() >= self.config.window_size,
            "optimize_and_slide: window not full"
        );
        let prior = if self.config.use_prior {
            self.prior.as_ref()
        } else {
            None
        };
        let report = archytas_slam::solve_with_in_workspace(
            workspace,
            &mut self.window,
            &self.config.weights,
            prior,
            &LmConfig::with_iterations(iterations),
            linear_solver,
        );
        self.slide(report)
    }

    /// Records the optimized window's result, marginalizes the oldest
    /// keyframe, and slides the window (shared tail of both optimize paths).
    fn slide(&mut self, report: SolveReport) -> WindowResult {
        let prior = if self.config.use_prior {
            self.prior.as_ref()
        } else {
            None
        };
        let am = self
            .window
            .landmarks
            .iter()
            .filter(|l| l.anchor == 0)
            .count();
        let workload = self.window.workload(am);

        let newest = self.window.num_keyframes() - 1;
        let window_id = self.windows_processed;
        let estimate = self.window.keyframes[newest].pose;
        let ground_truth = self.gt_window[newest].pose;
        let outcome_degraded = report.outcome.is_degraded();

        match try_marginalize_oldest(&self.window, &self.config.weights, prior) {
            Ok(marg) => {
                self.window = marg.window;
                self.prior = self.config.use_prior.then_some(marg.prior);
            }
            Err(_) => {
                // The marginalized block was not factorizable (numerically
                // poisoned window): drop the oldest keyframe and its
                // landmarks outright and reset the prior rather than carry a
                // corrupt one into every subsequent window.
                self.health.note_event(DegradationCause::PriorReset);
                let (shrunk, _) = drop_oldest(&self.window);
                self.window = shrunk;
                self.prior = None;
            }
        }
        self.gt_window.remove(0);
        self.rebuild_landmark_map();
        self.windows_processed += 1;
        let cause = self.health.end_window(outcome_degraded);

        WindowResult {
            window_id,
            report,
            estimate,
            ground_truth,
            workload,
            health: self.health.state(),
            cause,
        }
    }

    /// Ground-truth pose aligned with the newest keyframe.
    pub fn newest_ground_truth(&self) -> Option<Pose> {
        self.gt_window.last().map(|s| s.pose)
    }

    /// Estimated pose of the newest keyframe.
    pub fn newest_estimate(&self) -> Option<Pose> {
        self.window.keyframes.last().map(|s| s.pose)
    }

    fn rebuild_landmark_map(&mut self) {
        self.landmark_of.clear();
        for (idx, lm) in self.window.landmarks.iter().enumerate() {
            self.landmark_of.insert(lm.id, idx);
        }
    }
}

/// Returns `None` when the stream is healthy (the nominal fast path, which
/// lets the caller borrow the frame's samples untouched), otherwise a
/// sanitized copy. Two corruptions are repaired:
///
/// * **Rail-pinned runs** — two or more consecutive samples with a
///   bitwise-identical gyro/accel component are a saturated (clipped)
///   sensor: white noise makes exact repeats impossible on a live stream.
///   The run is replaced by the last reading before it — `prev` (the tail
///   of the previous frame's sanitized stream) when the run starts at the
///   frame head — or by the first reading after it.
/// * **Non-finite readings** — replaced by sample-and-hold of the last good
///   reading (`prev`, or zero before any); a non-finite `dt` collapses to
///   zero so the interval contributes no motion.
fn sanitize_imu(samples: &[ImuSample], prev: Option<&ImuSample>) -> Option<Vec<ImuSample>> {
    fn comp(s: &ImuSample, c: usize) -> f64 {
        if c < 3 {
            s.gyro.0[c]
        } else {
            s.accel.0[c - 3]
        }
    }
    fn set_comp(s: &mut ImuSample, c: usize, v: f64) {
        if c < 3 {
            s.gyro.0[c] = v;
        } else {
            s.accel.0[c - 3] = v;
        }
    }
    fn finite3(v: &archytas_slam::Vec3) -> bool {
        v.0.iter().all(|c| c.is_finite())
    }
    fn clean(s: &ImuSample) -> bool {
        s.dt.is_finite() && finite3(&s.gyro) && finite3(&s.accel)
    }

    let non_finite = !samples.iter().all(clean);
    let pinned = samples
        .windows(2)
        .any(|w| (0..6).any(|c| comp(&w[0], c).to_bits() == comp(&w[1], c).to_bits()));
    if !non_finite && !pinned {
        return None;
    }

    let mut out: Vec<ImuSample> = samples.to_vec();
    if pinned {
        for c in 0..6 {
            let mut i = 0;
            while i + 1 < out.len() {
                if comp(&out[i], c).to_bits() != comp(&out[i + 1], c).to_bits() {
                    i += 1;
                    continue;
                }
                let mut j = i + 1;
                while j + 1 < out.len()
                    && comp(&out[j + 1], c).to_bits() == comp(&out[i], c).to_bits()
                {
                    j += 1;
                }
                // A run with no good neighbor anywhere (whole stream pinned
                // and no previous frame) is left for the solver's
                // robustness to absorb.
                let replacement = if i > 0 {
                    Some(comp(&out[i - 1], c))
                } else if let Some(p) = prev {
                    Some(comp(p, c))
                } else if j + 1 < out.len() {
                    Some(comp(&out[j + 1], c))
                } else {
                    None
                };
                if let Some(r) = replacement {
                    if r.is_finite() {
                        for s in &mut out[i..=j] {
                            set_comp(s, c, r);
                        }
                    }
                }
                i = j + 1;
            }
        }
    }
    let mut hold = prev.copied().filter(clean).unwrap_or(ImuSample {
        gyro: archytas_slam::Vec3::ZERO,
        accel: archytas_slam::Vec3::ZERO,
        dt: 0.0,
    });
    for s in &mut out {
        let fixed = ImuSample {
            gyro: if finite3(&s.gyro) { s.gyro } else { hold.gyro },
            accel: if finite3(&s.accel) {
                s.accel
            } else {
                hold.accel
            },
            dt: if s.dt.is_finite() { s.dt } else { 0.0 },
        };
        *s = fixed;
        hold = fixed;
    }
    Some(out)
}

/// IMU dead reckoning: propagates a keyframe state through a preintegrated
/// interval.
fn propagate(last: &KeyframeState, pre: &Preintegration, timestamp: f64) -> KeyframeState {
    let dt = pre.dt;
    let (dq, dp, dv) = pre.corrected(&last.bg, &last.ba);
    KeyframeState {
        pose: Pose::new(
            last.pose.rot.mul(&dq).normalized(),
            last.pose.trans
                + last.velocity * dt
                + GRAVITY * (0.5 * dt * dt)
                + last.pose.rot.rotate(&dp),
        ),
        velocity: last.velocity + GRAVITY * dt + last.pose.rot.rotate(&dv),
        bg: last.bg,
        ba: last.ba,
        timestamp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::{generate_frames, FrontendConfig};
    use crate::trajectory::RoadTrajectory;
    use crate::world::World;
    use archytas_slam::PinholeCamera;

    fn run_pipeline(seconds: f64, iterations: usize) -> (Vec<WindowResult>, VioPipeline) {
        let traj = RoadTrajectory::kitti_like(seconds);
        let world = World::road_corridor(traj.sample(seconds).pose.trans.x() + 80.0, 5, |_| 1.0);
        let cam = PinholeCamera::kitti_like();
        let frames = generate_frames(&traj, &world, &cam, &FrontendConfig::default());
        let mut pipeline = VioPipeline::new(PipelineConfig::default());
        let mut results = Vec::new();
        for frame in &frames {
            if pipeline.push_frame(frame) {
                results.push(pipeline.optimize_and_slide(iterations));
            }
        }
        (results, pipeline)
    }

    use crate::trajectory::Trajectory;

    #[test]
    fn pipeline_produces_windows() {
        let (results, pipeline) = run_pipeline(4.0, 3);
        // 40 frames at window size 10 → 31 sliding windows.
        assert_eq!(results.len(), 31);
        assert_eq!(pipeline.windows_processed(), 31);
        for r in &results {
            assert!(r.workload.features > 0);
            assert!(r.workload.keyframes == 10);
        }
    }

    #[test]
    fn estimates_track_ground_truth() {
        let (results, _) = run_pipeline(5.0, 4);
        let last = results.last().unwrap();
        let err = last.estimate.translation_distance(&last.ground_truth);
        let travelled = last.ground_truth.trans.norm().max(1.0);
        let drift_fraction = err / travelled;
        // Monocular-VIO-grade accuracy: cumulative drift a few percent of
        // distance travelled.
        assert!(
            drift_fraction < 0.04,
            "drift {err} m over {travelled} m ({:.1}%)",
            drift_fraction * 100.0
        );
    }

    #[test]
    fn optimization_beats_dead_reckoning_initialization() {
        let (results, _) = run_pipeline(4.0, 4);
        for r in &results {
            assert!(
                r.report.final_cost <= r.report.initial_cost,
                "window {}: cost went up",
                r.window_id
            );
        }
    }

    #[test]
    fn workload_reports_marginalization() {
        let (results, _) = run_pipeline(4.0, 2);
        // At least some windows must be marginalizing features out.
        assert!(results.iter().any(|r| r.workload.marginalized_features > 0));
    }

    #[test]
    #[should_panic(expected = "window not full")]
    fn premature_optimize_panics() {
        let mut pipeline = VioPipeline::new(PipelineConfig::default());
        let _ = pipeline.optimize_and_slide(1);
    }

    #[test]
    fn nominal_run_stays_nominal() {
        let (results, pipeline) = run_pipeline(4.0, 3);
        assert!(pipeline.health().is_nominal());
        assert_eq!(pipeline.health().degraded_windows(), 0);
        assert!(results.iter().all(|r| r.health == HealthState::Nominal));
    }

    #[test]
    fn vision_dropout_degrades_and_recovers() {
        let traj = RoadTrajectory::kitti_like(6.0);
        let world = World::road_corridor(traj.sample(6.0).pose.trans.x() + 80.0, 5, |_| 1.0);
        let cam = PinholeCamera::kitti_like();
        let mut frames = generate_frames(&traj, &world, &cam, &FrontendConfig::default());
        // Total vision dropout over frames 20..24.
        for frame in frames.iter_mut().skip(20).take(4) {
            frame.features.clear();
        }
        let mut pipeline = VioPipeline::new(PipelineConfig::default());
        let mut results = Vec::new();
        for frame in &frames {
            if pipeline.push_frame(frame) {
                results.push(pipeline.optimize_and_slide(3));
            }
        }
        assert!(
            results.iter().any(|r| r.health == HealthState::Degraded),
            "dropout never degraded the ladder"
        );
        assert_eq!(
            results.last().unwrap().health,
            HealthState::Nominal,
            "ladder never recovered after the dropout cleared"
        );
        assert!(pipeline.health().degraded_windows() > 0);
        // The pipeline survived: every window completed with finite cost.
        assert!(results.iter().all(|r| r.report.final_cost.is_finite()));
    }

    #[test]
    fn non_finite_imu_is_sanitized_not_propagated() {
        let traj = RoadTrajectory::kitti_like(4.0);
        let world = World::road_corridor(traj.sample(4.0).pose.trans.x() + 80.0, 5, |_| 1.0);
        let cam = PinholeCamera::kitti_like();
        let mut frames = generate_frames(&traj, &world, &cam, &FrontendConfig::default());
        // Poison a few IMU samples mid-sequence.
        for s in frames[15].imu.iter_mut().take(3) {
            s.accel = archytas_slam::Vec3::new(f64::NAN, 0.0, f64::INFINITY);
        }
        let mut pipeline = VioPipeline::new(PipelineConfig::default());
        let mut results = Vec::new();
        for frame in &frames {
            if pipeline.push_frame(frame) {
                results.push(pipeline.optimize_and_slide(3));
            }
        }
        assert!(!results.is_empty());
        for r in &results {
            assert!(
                r.report.final_cost.is_finite(),
                "window {}: NaN leaked through IMU sanitization",
                r.window_id
            );
            assert!(r.estimate.trans.0.iter().all(|v| v.is_finite()));
        }
        assert!(pipeline.health().degraded_windows() > 0);
    }

    /// Noisy samples like a real stream: every component differs per sample.
    fn noisy_samples(n: usize) -> Vec<ImuSample> {
        (0..n)
            .map(|k| {
                let e = 1e-4 * (k as f64 + 1.0);
                ImuSample {
                    gyro: archytas_slam::Vec3::new(0.1 + e, -0.02 + 2.0 * e, 0.01 - e),
                    accel: archytas_slam::Vec3::new(0.3 - e, 0.1 + 3.0 * e, 9.81 + e),
                    dt: 0.005,
                }
            })
            .collect()
    }

    #[test]
    fn sanitize_imu_fast_path_is_none() {
        let samples = noisy_samples(8);
        assert!(sanitize_imu(&samples, None).is_none());

        let mut bad = samples.clone();
        bad[3].gyro = archytas_slam::Vec3::new(f64::NAN, 0.0, 0.0);
        bad[5].dt = f64::INFINITY;
        let fixed = sanitize_imu(&bad, None).expect("non-finite samples must be rewritten");
        assert_eq!(fixed.len(), bad.len());
        // Sample-and-hold: the poisoned gyro takes the previous reading.
        assert_eq!(fixed[3].gyro, samples[2].gyro);
        assert_eq!(fixed[5].dt, 0.0);
        for s in &fixed {
            assert!(s.dt.is_finite());
            assert!(s.gyro.0.iter().all(|v| v.is_finite()));
            assert!(s.accel.0.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn sanitize_imu_repairs_rail_pinned_runs() {
        let samples = noisy_samples(10);
        let mut clipped = samples.clone();
        // Saturate accel z over samples 4..8 at a single rail value.
        for s in clipped[4..8].iter_mut() {
            s.accel = archytas_slam::Vec3::new(s.accel.x(), s.accel.y(), 8.0);
        }
        let fixed = sanitize_imu(&clipped, None).expect("pinned run must be rewritten");
        for (k, s) in fixed.iter().enumerate().take(8).skip(4) {
            // The run takes the last pre-clip reading, not the rail.
            assert_eq!(
                s.accel.z().to_bits(),
                samples[3].accel.z().to_bits(),
                "sample {k}"
            );
            // Untouched components pass through bit-exactly.
            assert_eq!(s.accel.x().to_bits(), samples[k].accel.x().to_bits());
            assert_eq!(s.gyro.y().to_bits(), samples[k].gyro.y().to_bits());
        }
        assert_eq!(fixed[8].accel.z().to_bits(), samples[8].accel.z().to_bits());
    }

    #[test]
    fn health_ladder_hysteresis() {
        let mut m = HealthMonitor::new(HealthConfig {
            min_vision_features: 1,
            recovery_windows: 2,
        });
        assert!(m.is_nominal());
        m.note_event(DegradationCause::SensorFault);
        assert!(m.is_suspect());
        assert_eq!(m.end_window(false), Some(DegradationCause::SensorFault));
        assert_eq!(m.state(), HealthState::Degraded);
        // One clean window: recovering, not yet nominal.
        assert_eq!(m.end_window(false), None);
        assert_eq!(m.state(), HealthState::Recovering);
        assert!(m.is_suspect());
        // Second clean window: back to nominal.
        assert_eq!(m.end_window(false), None);
        assert_eq!(m.state(), HealthState::Nominal);
        // A degraded solve outcome alone is attributed to the solver.
        assert_eq!(m.end_window(true), Some(DegradationCause::SolverDivergence));
        assert_eq!(m.state(), HealthState::Degraded);
        assert_eq!(m.degraded_windows(), 2);
        // The first cause latched in a window wins over later ones.
        m.note_event(DegradationCause::PriorReset);
        m.note_event(DegradationCause::SensorFault);
        assert_eq!(m.end_window(true), Some(DegradationCause::PriorReset));
    }
}
