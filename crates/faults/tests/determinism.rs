//! Bitwise determinism of faulted runs across worker-pool sizes.
//!
//! The parallel layer reads `ARCHYTAS_THREADS` when a pool is created, so
//! this file must stay a *separate* integration-test binary with a single
//! `#[test]`: cargo runs test binaries sequentially, but tests inside one
//! binary share the process environment concurrently.

use archytas_faults::{run_scenario, scenarios};
use archytas_slam::Pose;

fn bits(poses: &[Pose]) -> Vec<[u64; 7]> {
    poses
        .iter()
        .map(|p| {
            [
                p.trans.x().to_bits(),
                p.trans.y().to_bits(),
                p.trans.z().to_bits(),
                p.rot.w.to_bits(),
                p.rot.v.x().to_bits(),
                p.rot.v.y().to_bits(),
                p.rot.v.z().to_bits(),
            ]
        })
        .collect()
}

#[test]
fn faulted_runs_are_bit_identical_across_pools() {
    let matrix = scenarios(7);
    for name in ["vision-dropout", "stacked"] {
        let sc = matrix
            .iter()
            .find(|s| s.name == name)
            .expect("scenario present");
        let mut reference: Option<Vec<[u64; 7]>> = None;
        for threads in ["1", "2", "8"] {
            std::env::set_var("ARCHYTAS_THREADS", threads);
            let r = run_scenario(sc, 4.0);
            assert!(r.completed, "{name} @ {threads} threads panicked");
            let b = bits(&r.estimates);
            match &reference {
                None => reference = Some(b),
                Some(r0) => assert_eq!(
                    r0, &b,
                    "{name}: pool size {threads} changed the trajectory bits"
                ),
            }
        }
        std::env::remove_var("ARCHYTAS_THREADS");
    }
}
