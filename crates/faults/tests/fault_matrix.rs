//! The acceptance gate of the fault harness: every scenario in the standard
//! matrix completes without panicking and stays within the accuracy bound.

use archytas_faults::{long_horizon_scenarios, run_scenario, scenarios};

#[test]
fn every_scenario_completes_within_rmse_bound() {
    for sc in scenarios(7) {
        let r = run_scenario(&sc, 4.0);
        assert!(r.completed, "{}: run panicked", r.name);
        assert!(r.windows > 0, "{}: no windows completed", r.name);
        assert!(r.rmse_m.is_finite(), "{}: non-finite RMSE", r.name);
        assert!(
            r.within_rmse_bound(3.0),
            "{}: rmse {} vs nominal {} (> 3x)",
            r.name,
            r.rmse_m,
            r.nominal_rmse_m
        );
    }
}

#[test]
fn standard_matrix_is_index_stable() {
    // Downstream code (and these tests) pin scenarios by index and name;
    // long-horizon additions must go to `long_horizon_scenarios`, not here.
    let m = scenarios(7);
    assert_eq!(m.len(), 9);
    assert_eq!(m[0].name, "feature-drought");
    assert_eq!(m[1].name, "vision-dropout");
    assert!(m
        .iter()
        .all(|s| s.sequence.is_none() && s.seconds.is_none()));
}

#[test]
fn long_horizon_scenarios_pin_their_sequences() {
    // The minutes-scale runs are exercised by the release-mode fault-matrix
    // bin (debug runs would take minutes per scenario); tier-1 checks the
    // list's invariants only.
    let m = long_horizon_scenarios(7);
    assert!(!m.is_empty());
    for sc in &m {
        let spec = sc.sequence.as_ref().expect("long-horizon pins a sequence");
        let seconds = sc.seconds.expect("long-horizon pins a duration");
        assert!(
            seconds >= 120.0,
            "{}: {seconds} s is not minutes-scale",
            sc.name
        );
        assert!(
            spec.duration >= seconds,
            "{}: spec shorter than run",
            sc.name
        );
    }
    assert_eq!(m[0].name, "tunnel-drought");
}

#[test]
fn faults_are_actually_detected() {
    // Scenarios that corrupt the stream inside the run must trip the
    // degradation ladder at least once; the matrix would be vacuous if the
    // pipeline never noticed. (Drought/outlier/duplicate scenarios degrade
    // softly and may stay under the detection thresholds by design.)
    for name in ["vision-dropout", "imu-nan"] {
        let sc = scenarios(7)
            .into_iter()
            .find(|s| s.name == name)
            .expect("scenario present");
        let r = run_scenario(&sc, 4.0);
        assert!(r.degraded_windows > 0, "{name}: ladder never engaged");
        assert!(
            r.recovery_latency_windows.is_some(),
            "{name}: never recovered"
        );
    }
}

#[test]
fn different_seeds_change_stochastic_scenarios() {
    let a = scenarios(7);
    let b = scenarios(8);
    let drought_a = run_scenario(&a[0], 4.0);
    let drought_b = run_scenario(&b[0], 4.0);
    assert!(drought_a.completed && drought_b.completed);
    // Same sequence, different injected stream → different trajectories.
    let same = drought_a
        .estimates
        .iter()
        .zip(&drought_b.estimates)
        .all(|(x, y)| x.trans.x().to_bits() == y.trans.x().to_bits());
    assert!(!same, "seed had no effect on the faulted trajectory");
}
