//! Fleet-level chaos vocabulary: faults aimed at the *serving* layer
//! rather than the sensor stream.
//!
//! A [`crate::FaultPlan`] corrupts what a session *sees*; a [`ChaosPlan`]
//! corrupts how a session *executes* — it panics mid-step, wedges for
//! whole scheduler rounds, feeds the solver numerically poisoned
//! observations, or jitters the worker it happens to run on. The fleet's
//! fault-isolation layer (`archytas-fleet`) consumes these plans to prove
//! that a hostile session is quarantined without perturbing its neighbors.
//!
//! Every stochastic draw follows the same discipline as [`crate::apply`]:
//! an independent RNG stream per `(event index, frame index)` keyed only by
//! the plan seed, so a chaos run is bit-reproducible at any pool size and
//! admission order.

use crate::inject::episode_rng;
use archytas_dataset::Frame;
use rand::Rng;

/// One kind of execution-level chaos.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosKind {
    /// The session panics while assembling/solving the window that begins
    /// at `frame` — models an unhandled software defect in one session.
    SessionPanic {
        /// Frame index at which the step panics.
        frame: usize,
    },
    /// The session wedges at `frame` for `rounds` scheduler rounds before
    /// making progress — models a stuck I/O or a pathological solve.
    StepStall {
        /// Frame index at which the stall begins.
        frame: usize,
        /// Scheduler rounds consumed before the step completes.
        rounds: usize,
    },
    /// Observations over `[start, end)` are overwritten with finite but
    /// astronomically large coordinates, overflowing the residual math to
    /// non-finite costs and Hessians — models corrupt memory rather than a
    /// corrupt sensor (which `FaultKind` already covers).
    PoisonedObservation {
        /// First poisoned frame (inclusive).
        start: usize,
        /// First clean frame (exclusive).
        end: usize,
    },
    /// The worker executing the session busy-spins a seeded number of
    /// iterations (up to `max_spins`) before each step — models noisy
    /// neighbors and scheduling jitter. Must never change any output bit.
    WorkerJitter {
        /// Upper bound on busy-spin iterations per step.
        max_spins: u32,
    },
}

/// A seeded schedule of chaos events for one session.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Master seed of all stochastic draws.
    pub seed: u64,
    /// Scheduled events (index order is the RNG episode key).
    pub events: Vec<ChaosKind>,
}

impl ChaosPlan {
    /// An empty plan (chaos is the identity).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// Appends an event (builder style).
    pub fn with(mut self, kind: ChaosKind) -> Self {
        self.events.push(kind);
        self
    }

    /// Whether the plan schedules no chaos at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The index of a `SessionPanic` event scheduled at `frame`, if any.
    pub fn panic_event_at(&self, frame: usize) -> Option<usize> {
        self.events
            .iter()
            .position(|e| matches!(e, ChaosKind::SessionPanic { frame: f } if *f == frame))
    }

    /// The `(event index, rounds)` of a `StepStall` scheduled at `frame`,
    /// if any.
    pub fn stall_event_at(&self, frame: usize) -> Option<(usize, usize)> {
        self.events.iter().enumerate().find_map(|(i, e)| match e {
            ChaosKind::StepStall { frame: f, rounds } if *f == frame => Some((i, *rounds)),
            _ => None,
        })
    }

    /// Seeded busy-spin count for the step at `frame` (0 when no
    /// `WorkerJitter` is scheduled). Derived per `(event, frame)` so it is
    /// identical no matter which worker runs the step.
    pub fn jitter_spins(&self, frame: usize) -> u32 {
        self.events
            .iter()
            .enumerate()
            .map(|(i, e)| match e {
                ChaosKind::WorkerJitter { max_spins } if *max_spins > 0 => {
                    episode_rng(self.seed, i, frame).gen_range(0..=*max_spins)
                }
                _ => 0,
            })
            .sum()
    }

    /// Applies every `PoisonedObservation` event to `frames` in place: one
    /// seeded feature per covered frame has its measurement overwritten
    /// with ±1e160 — finite, so it passes the pipeline's non-finite input
    /// guard, but large enough that the squared residual overflows to
    /// infinity inside the solver.
    pub fn poison_frames(&self, frames: &mut [Frame]) {
        for (i, e) in self.events.iter().enumerate() {
            let ChaosKind::PoisonedObservation { start, end } = e else {
                continue;
            };
            for (idx, frame) in frames.iter_mut().enumerate() {
                if idx < *start || idx >= *end || frame.features.is_empty() {
                    continue;
                }
                let mut rng = episode_rng(self.seed, i, idx);
                let k = rng.gen_range(0..frame.features.len());
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                frame.features[k].uv = [sign * 1e160, -sign * 1e160];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archytas_dataset::{generate_frames, FrontendConfig, RoadTrajectory, Trajectory, World};
    use archytas_slam::PinholeCamera;

    fn frames() -> Vec<Frame> {
        let traj = RoadTrajectory::kitti_like(3.0);
        let world = World::road_corridor(traj.sample(3.0).pose.trans.x() + 80.0, 5, |_| 1.0);
        generate_frames(
            &traj,
            &world,
            &PinholeCamera::kitti_like(),
            &FrontendConfig::default(),
        )
    }

    #[test]
    fn event_lookup() {
        let plan = ChaosPlan::new(7)
            .with(ChaosKind::SessionPanic { frame: 12 })
            .with(ChaosKind::StepStall {
                frame: 20,
                rounds: 3,
            });
        assert_eq!(plan.panic_event_at(12), Some(0));
        assert_eq!(plan.panic_event_at(11), None);
        assert_eq!(plan.stall_event_at(20), Some((1, 3)));
        assert_eq!(plan.stall_event_at(12), None);
        assert!(ChaosPlan::new(7).is_empty());
        assert!(!plan.is_empty());
    }

    #[test]
    fn jitter_is_seed_deterministic_and_bounded() {
        let plan = ChaosPlan::new(9).with(ChaosKind::WorkerJitter { max_spins: 500 });
        let spins: Vec<u32> = (0..50).map(|f| plan.jitter_spins(f)).collect();
        let again: Vec<u32> = (0..50).map(|f| plan.jitter_spins(f)).collect();
        assert_eq!(spins, again);
        assert!(spins.iter().all(|&s| s <= 500));
        assert!(spins.iter().any(|&s| s > 0), "jitter never fired");
        let other = ChaosPlan::new(10).with(ChaosKind::WorkerJitter { max_spins: 500 });
        assert_ne!(
            spins,
            (0..50).map(|f| other.jitter_spins(f)).collect::<Vec<_>>()
        );
        assert_eq!(ChaosPlan::new(9).jitter_spins(3), 0);
    }

    #[test]
    fn poison_overwrites_exactly_one_feature_per_covered_frame() {
        let mut fs = frames();
        let clean = fs.clone();
        let plan = ChaosPlan::new(3).with(ChaosKind::PoisonedObservation { start: 5, end: 9 });
        plan.poison_frames(&mut fs);
        for (i, (f, c)) in fs.iter().zip(&clean).enumerate() {
            let poisoned = f
                .features
                .iter()
                .filter(|feat| feat.uv[0].abs() >= 1e159)
                .count();
            if (5..9).contains(&i) {
                assert_eq!(poisoned, 1, "frame {i}");
                // Poison is finite — it must pass the input guard and blow
                // up inside the solver, not at the door.
                assert!(f.features.iter().all(|x| x.uv[0].is_finite()));
            } else {
                assert_eq!(poisoned, 0, "frame {i}");
                assert_eq!(f.features, c.features);
            }
        }
        // Reapplication is bit-identical.
        let mut again = clean.clone();
        plan.poison_frames(&mut again);
        for (a, b) in fs.iter().zip(&again) {
            assert_eq!(a.features, b.features);
        }
    }
}
