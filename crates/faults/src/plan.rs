//! Fault vocabulary and scheduling.

/// One kind of sensor-stream corruption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Texture starvation: each tracked feature survives with probability
    /// `keep_fraction` (seeded per frame).
    FeatureDrought {
        /// Survival probability in `[0, 1]`.
        keep_fraction: f64,
    },
    /// Total camera blackout: every feature removed (tunnel, lens flare,
    /// driver reset).
    VisionDropout,
    /// The camera frame never arrives. Its IMU interval is carried into the
    /// following frame so inertial time stays contiguous.
    FrameDrop,
    /// The tracker re-delivers stale data: the frame's features are replaced
    /// by the previous frame's (classic frame-grabber double-exposure).
    FrameDuplicate,
    /// A step change in the inertial biases (thermal shock, connector
    /// glitch) added to every sample of covered frames.
    ImuBiasSpike {
        /// Gyroscope bias magnitude (rad/s).
        gyro: f64,
        /// Accelerometer bias magnitude (m/s²).
        accel: f64,
    },
    /// Sensor range clipping: every gyro/accel component clamped to
    /// `[-limit, limit]` (pothole / curb strike).
    ImuSaturation {
        /// Symmetric full-scale range.
        limit: f64,
    },
    /// Transport corruption: each covered sample independently becomes NaN
    /// with probability `probability` (seeded per frame).
    ImuNan {
        /// Per-sample corruption probability in `[0, 1]`.
        probability: f64,
    },
    /// Gross mismatches: each feature's measurement is displaced by up to
    /// `magnitude` (normalized image coordinates) with probability
    /// `fraction` (seeded per frame).
    Outliers {
        /// Per-feature corruption probability in `[0, 1]`.
        fraction: f64,
        /// Maximum displacement per axis (normalized coordinates).
        magnitude: f64,
    },
}

/// A [`FaultKind`] active over the half-open frame interval
/// `[start, end)` (indices into the *original*, pre-injection stream).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEpisode {
    /// What goes wrong.
    pub kind: FaultKind,
    /// First affected frame index (inclusive).
    pub start: usize,
    /// First unaffected frame index (exclusive).
    pub end: usize,
}

impl FaultEpisode {
    /// Whether `frame` (an original-stream index) falls inside the episode.
    pub fn covers(&self, frame: usize) -> bool {
        frame >= self.start && frame < self.end
    }
}

/// A seeded schedule of fault episodes.
///
/// The seed fully determines every random draw the injector makes: each
/// `(episode, frame)` pair derives its own RNG stream from
/// `(seed, episode index, frame index)`, so injection is bit-reproducible
/// and independent of iteration order or thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed of all stochastic faults.
    pub seed: u64,
    /// Scheduled episodes (applied in order; content faults compose).
    pub episodes: Vec<FaultEpisode>,
}

impl FaultPlan {
    /// An empty plan (injection is the identity).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            episodes: Vec::new(),
        }
    }

    /// Appends an episode of `kind` over `[start, end)` (builder style).
    pub fn with(mut self, kind: FaultKind, start: usize, end: usize) -> Self {
        assert!(
            start < end,
            "FaultPlan::with: empty episode [{start}, {end})"
        );
        self.episodes.push(FaultEpisode { kind, start, end });
        self
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_interval_is_half_open() {
        let e = FaultEpisode {
            kind: FaultKind::VisionDropout,
            start: 3,
            end: 5,
        };
        assert!(!e.covers(2));
        assert!(e.covers(3));
        assert!(e.covers(4));
        assert!(!e.covers(5));
    }

    #[test]
    #[should_panic(expected = "empty episode")]
    fn empty_episode_rejected() {
        let _ = FaultPlan::new(1).with(FaultKind::VisionDropout, 5, 5);
    }

    #[test]
    fn builder_accumulates() {
        let p =
            FaultPlan::new(9)
                .with(FaultKind::VisionDropout, 1, 2)
                .with(FaultKind::FrameDrop, 4, 6);
        assert_eq!(p.episodes.len(), 2);
        assert!(!p.is_empty());
        assert!(FaultPlan::new(9).is_empty());
    }
}
