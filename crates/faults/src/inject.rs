//! Applies a [`FaultPlan`] to a frame stream.

use crate::plan::{FaultKind, FaultPlan};
use archytas_dataset::Frame;
use archytas_slam::Vec3;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derives the RNG stream of one `(episode, frame)` pair. Each pair gets an
/// independent stream keyed only by the plan seed and the two indices, so
/// injection is bit-reproducible no matter how the frames are iterated.
pub(crate) fn episode_rng(seed: u64, episode: usize, frame: usize) -> SmallRng {
    SmallRng::seed_from_u64(
        seed ^ (frame as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (episode as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
    )
}

/// Rewrites `frames` under `plan`. The input is untouched; the output is the
/// corrupted stream (possibly shorter, when frames are dropped).
///
/// Episode intervals always refer to indices in the *original* stream:
/// content faults (features, IMU) are applied first, then duplications, and
/// frame drops last, so stacked episodes compose predictably.
pub fn apply(plan: &FaultPlan, frames: &[Frame]) -> Vec<Frame> {
    // Carry each frame's original index so structural faults applied after
    // content faults still resolve episode coverage correctly.
    let mut stream: Vec<(usize, Frame)> = frames.iter().cloned().enumerate().collect();

    // Pass 1: content faults, frame-local.
    for (ep_idx, ep) in plan.episodes.iter().enumerate() {
        match ep.kind {
            FaultKind::FrameDrop | FaultKind::FrameDuplicate => continue,
            _ => {}
        }
        for (orig, frame) in stream.iter_mut() {
            if !ep.covers(*orig) {
                continue;
            }
            let mut rng = episode_rng(plan.seed, ep_idx, *orig);
            match ep.kind {
                FaultKind::FeatureDrought { keep_fraction } => {
                    let p = keep_fraction.clamp(0.0, 1.0);
                    frame.features.retain(|_| rng.gen_bool(p));
                }
                FaultKind::VisionDropout => frame.features.clear(),
                FaultKind::ImuBiasSpike { gyro, accel } => {
                    for s in &mut frame.imu {
                        s.gyro = s.gyro + Vec3::new(gyro, -0.5 * gyro, 0.25 * gyro);
                        s.accel = s.accel + Vec3::new(accel, 0.5 * accel, -0.25 * accel);
                    }
                }
                FaultKind::ImuSaturation { limit } => {
                    let l = limit.abs();
                    for s in &mut frame.imu {
                        s.gyro = clamp3(&s.gyro, l);
                        s.accel = clamp3(&s.accel, l);
                    }
                }
                FaultKind::ImuNan { probability } => {
                    let p = probability.clamp(0.0, 1.0);
                    for s in &mut frame.imu {
                        if rng.gen_bool(p) {
                            s.accel = Vec3::new(f64::NAN, s.accel.y(), s.accel.z());
                            s.gyro = Vec3::new(s.gyro.x(), f64::NAN, s.gyro.z());
                        }
                    }
                }
                FaultKind::Outliers {
                    fraction,
                    magnitude,
                } => {
                    let p = fraction.clamp(0.0, 1.0);
                    for feat in &mut frame.features {
                        if rng.gen_bool(p) {
                            feat.uv[0] += rng.gen_range(-magnitude..magnitude);
                            feat.uv[1] += rng.gen_range(-magnitude..magnitude);
                        }
                    }
                }
                FaultKind::FrameDrop | FaultKind::FrameDuplicate => unreachable!(),
            }
        }
    }

    // Pass 2: stale duplicated frames — covered frames re-deliver the
    // previous frame's features (timestamps and IMU stay real, so inertial
    // time remains contiguous).
    for ep in &plan.episodes {
        if !matches!(ep.kind, FaultKind::FrameDuplicate) {
            continue;
        }
        for i in 1..stream.len() {
            if ep.covers(stream[i].0) {
                let stale = stream[i - 1].1.features.clone();
                stream[i].1.features = stale;
            }
        }
    }

    // Pass 3: dropped frames — removed from the stream, their IMU interval
    // prepended to the successor so preintegration still spans real time.
    for ep in &plan.episodes {
        if !matches!(ep.kind, FaultKind::FrameDrop) {
            continue;
        }
        let mut i = 0;
        while i < stream.len() {
            if stream.len() > 1 && ep.covers(stream[i].0) {
                let removed = stream.remove(i);
                if i < stream.len() {
                    let mut imu = removed.1.imu;
                    imu.append(&mut stream[i].1.imu);
                    stream[i].1.imu = imu;
                }
            } else {
                i += 1;
            }
        }
    }

    stream.into_iter().map(|(_, f)| f).collect()
}

fn clamp3(v: &Vec3, limit: f64) -> Vec3 {
    Vec3::new(
        v.x().clamp(-limit, limit),
        v.y().clamp(-limit, limit),
        v.z().clamp(-limit, limit),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use archytas_dataset::{generate_frames, FrontendConfig, RoadTrajectory, Trajectory, World};
    use archytas_slam::PinholeCamera;

    fn frames() -> Vec<Frame> {
        let traj = RoadTrajectory::kitti_like(4.0);
        let world = World::road_corridor(traj.sample(4.0).pose.trans.x() + 80.0, 5, |_| 1.0);
        generate_frames(
            &traj,
            &world,
            &PinholeCamera::kitti_like(),
            &FrontendConfig::default(),
        )
    }

    #[test]
    fn empty_plan_is_identity() {
        let fs = frames();
        let out = apply(&FaultPlan::new(11), &fs);
        assert_eq!(out.len(), fs.len());
        for (a, b) in fs.iter().zip(&out) {
            assert_eq!(a.features, b.features);
            assert_eq!(a.imu, b.imu);
            assert_eq!(a.timestamp.to_bits(), b.timestamp.to_bits());
        }
    }

    #[test]
    fn injection_is_seed_deterministic() {
        let fs = frames();
        let plan = FaultPlan::new(42)
            .with(FaultKind::FeatureDrought { keep_fraction: 0.3 }, 10, 20)
            .with(
                FaultKind::Outliers {
                    fraction: 0.2,
                    magnitude: 0.3,
                },
                12,
                18,
            )
            .with(FaultKind::ImuNan { probability: 0.1 }, 14, 16);
        let a = apply(&plan, &fs);
        let b = apply(&plan, &fs);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.features.len(), y.features.len());
            for (fx, fy) in x.features.iter().zip(&y.features) {
                assert_eq!(fx.uv[0].to_bits(), fy.uv[0].to_bits());
                assert_eq!(fx.uv[1].to_bits(), fy.uv[1].to_bits());
            }
            for (sx, sy) in x.imu.iter().zip(&y.imu) {
                assert_eq!(sx.accel.x().to_bits(), sy.accel.x().to_bits());
            }
        }
        // A different seed produces a different stream.
        let c = apply(
            &FaultPlan {
                seed: 43,
                ..plan.clone()
            },
            &fs,
        );
        let differs = a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.features.len() != y.features.len());
        assert!(differs, "seed had no effect on the drought");
    }

    #[test]
    fn dropout_clears_only_covered_frames() {
        let fs = frames();
        let out = apply(&FaultPlan::new(1).with(FaultKind::VisionDropout, 5, 8), &fs);
        for (i, f) in out.iter().enumerate() {
            if (5..8).contains(&i) {
                assert!(f.features.is_empty(), "frame {i} kept features");
            } else {
                assert!(!f.features.is_empty(), "frame {i} lost features");
            }
        }
    }

    #[test]
    fn frame_drop_preserves_imu_time() {
        let fs = frames();
        let total_dt: f64 = fs.iter().flat_map(|f| &f.imu).map(|s| s.dt).sum();
        let out = apply(&FaultPlan::new(1).with(FaultKind::FrameDrop, 6, 8), &fs);
        assert_eq!(out.len(), fs.len() - 2);
        let out_dt: f64 = out.iter().flat_map(|f| &f.imu).map(|s| s.dt).sum();
        // The dropped frames' inertial intervals were carried forward, not
        // lost (first frame has no successor constraint, so compare sums).
        assert!((total_dt - out_dt).abs() < 1e-12, "{total_dt} vs {out_dt}");
    }

    #[test]
    fn duplicate_delivers_stale_features() {
        let fs = frames();
        let out = apply(
            &FaultPlan::new(1).with(FaultKind::FrameDuplicate, 7, 8),
            &fs,
        );
        assert_eq!(out.len(), fs.len());
        assert_eq!(out[7].features, out[6].features);
        assert_eq!(out[7].timestamp.to_bits(), fs[7].timestamp.to_bits());
    }

    #[test]
    fn saturation_clamps_components() {
        let fs = frames();
        let out = apply(
            &FaultPlan::new(1).with(FaultKind::ImuSaturation { limit: 0.5 }, 3, 6),
            &fs,
        );
        for f in &out[3..6] {
            for s in &f.imu {
                for c in s.gyro.0.iter().chain(s.accel.0.iter()) {
                    assert!(c.abs() <= 0.5 + 1e-15);
                }
            }
        }
    }

    #[test]
    fn nan_injection_hits_covered_interval() {
        let fs = frames();
        let out = apply(
            &FaultPlan::new(3).with(FaultKind::ImuNan { probability: 0.5 }, 4, 8),
            &fs,
        );
        let poisoned = out[4..8]
            .iter()
            .flat_map(|f| &f.imu)
            .filter(|s| s.accel.x().is_nan())
            .count();
        assert!(poisoned > 0, "probability 0.5 over 4 frames never fired");
        for f in out.iter().take(4).chain(out.iter().skip(8)) {
            assert!(f.imu.iter().all(|s| s.accel.x().is_finite()));
        }
    }
}
