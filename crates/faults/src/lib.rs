//! Seeded fault injection for the VIO pipeline and runtime layer.
//!
//! Localization accelerators ship on vehicles, where the sensor stream is
//! not a curated dataset: cameras blank out in tunnels, IMUs saturate over
//! potholes, drivers deliver NaN when a sensor resets mid-packet. This crate
//! stress-tests the degradation ladder built into the rest of the workspace
//! (`archytas-slam`'s fallible solver, `archytas-dataset`'s
//! `HealthMonitor`, `archytas-core`'s `RuntimeWatchdog`) by corrupting
//! synthetic sequences in precisely scheduled, bit-reproducible ways:
//!
//! * a [`FaultPlan`] schedules [`FaultEpisode`]s (frame intervals) of a
//!   [`FaultKind`] — feature droughts, total vision dropout, dropped or
//!   duplicated camera frames, IMU bias spikes, saturation, NaN samples,
//!   and gross observation outliers;
//! * [`inject::apply`] rewrites a frame stream under a plan, deterministic
//!   for a given seed regardless of thread count;
//! * [`matrix::scenarios`] is the standard fault matrix and
//!   [`matrix::run_scenario`] drives the full pipeline + runtime stack
//!   through one scenario, reporting accuracy against the fault-free run;
//!   [`matrix::long_horizon_scenarios`] adds minutes-scale regimes pinned
//!   to their own sequences (tunnel feature droughts);
//! * a [`ChaosPlan`] schedules *execution-level* faults for the fleet
//!   layer — session panics, step stalls, poisoned observations, worker
//!   jitter — with the same per-(event, frame) RNG discipline.
//!
//! # Example: a vision dropout survives
//!
//! ```
//! use archytas_faults::{run_scenario, FaultKind, FaultPlan, Scenario};
//!
//! let plan = FaultPlan::new(7).with(FaultKind::VisionDropout, 24, 28);
//! let result = run_scenario(&Scenario::new("dropout", plan), 4.0);
//! assert!(result.completed);
//! assert!(result.rmse_m.is_finite());
//! ```

#![warn(missing_docs)]

mod chaos;
mod inject;
mod matrix;
mod plan;

pub use chaos::{ChaosKind, ChaosPlan};
pub use inject::apply;
pub use matrix::{
    long_horizon_scenarios, run_nominal, run_nominal_on, run_scenario, scenarios, NominalRun,
    Scenario, ScenarioResult,
};
pub use plan::{FaultEpisode, FaultKind, FaultPlan};
