//! Runs the standard fault matrix and emits one JSON line per scenario.
//!
//! Usage: `fault_matrix [SEED] [SECONDS]` (defaults 7 and 8.0; the seed can
//! also come from `ARCHYTAS_FAULT_SEED`). Exits nonzero when any scenario
//! panics or exceeds the 3× nominal RMSE bound.

use archytas_faults::{long_horizon_scenarios, run_scenario, scenarios};

const RMSE_BOUND: f64 = 3.0;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args
        .get(1)
        .cloned()
        .or_else(|| std::env::var("ARCHYTAS_FAULT_SEED").ok())
        .map(|s| s.parse().expect("seed must be an unsigned integer"))
        .unwrap_or(7);
    let seconds: f64 = args
        .get(2)
        .map(|s| s.parse().expect("seconds must be a number"))
        .unwrap_or(8.0);

    let mut failures = 0usize;
    // The standard seconds-scale matrix, then the long-horizon scenarios
    // (which pin their own sequence and duration, ignoring `seconds`).
    for sc in scenarios(seed)
        .into_iter()
        .chain(long_horizon_scenarios(seed))
    {
        let r = run_scenario(&sc, seconds);
        let ok = r.within_rmse_bound(RMSE_BOUND);
        if !ok {
            failures += 1;
        }
        println!(
            "FAULTJSON {{\"scenario\":\"{}\",\"seed\":{},\"completed\":{},\"pass\":{},\
             \"rmse_m\":{:.6},\"nominal_rmse_m\":{:.6},\"windows\":{},\
             \"degraded_windows\":{},\"watchdog_windows\":{},\
             \"recovery_latency_windows\":{}}}",
            r.name,
            seed,
            r.completed,
            ok,
            r.rmse_m,
            r.nominal_rmse_m,
            r.windows,
            r.degraded_windows,
            r.watchdog_windows,
            r.recovery_latency_windows
                .map_or("null".to_string(), |w| w.to_string()),
        );
    }
    if failures > 0 {
        eprintln!("fault matrix: {failures} scenario(s) failed");
        std::process::exit(1);
    }
}
