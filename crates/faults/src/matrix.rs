//! The standard fault matrix: scenarios × the full pipeline + runtime stack.

use crate::inject::apply;
use crate::plan::{FaultKind, FaultPlan};
use archytas_core::{IterPolicy, RuntimeSystem};
use archytas_dataset::{
    kitti_sequences, tunnel_sequences, HealthState, PipelineConfig, SequenceSpec, VioPipeline,
};
use archytas_hw::{FpgaPlatform, HIGH_PERF};
use archytas_mdfg::ProblemShape;
use archytas_slam::{rmse_translation, FactorWeights, Pose};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A named fault plan.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name (stable across seeds; used as the JSON key).
    pub name: String,
    /// The injection schedule.
    pub plan: FaultPlan,
    /// Sequence the scenario runs on; `None` means the standard matrix
    /// sequence (`kitti-01`).
    pub sequence: Option<SequenceSpec>,
    /// Duration override in seconds; `None` defers to the caller of
    /// [`run_scenario`]. Long-horizon scenarios pin their own duration —
    /// a tunnel drought does not fit in a 4-second episode.
    pub seconds: Option<f64>,
}

impl Scenario {
    /// A scenario on the standard matrix sequence.
    pub fn new(name: impl Into<String>, plan: FaultPlan) -> Self {
        Self {
            name: name.into(),
            plan,
            sequence: None,
            seconds: None,
        }
    }

    /// Pins the scenario to a specific sequence and duration (builder
    /// style) — the long-horizon hook.
    pub fn on_sequence(mut self, spec: SequenceSpec, seconds: f64) -> Self {
        self.sequence = Some(spec);
        self.seconds = Some(seconds);
        self
    }
}

/// Outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// Trajectory RMSE under injection (m); infinite when the run panicked
    /// or produced no windows.
    pub rmse_m: f64,
    /// RMSE of the fault-free run of the same sequence/config (m).
    pub nominal_rmse_m: f64,
    /// Windows completed.
    pub windows: usize,
    /// Windows that closed in the `Degraded` health state.
    pub degraded_windows: usize,
    /// Windows for which the runtime watchdog held the full configuration.
    pub watchdog_windows: usize,
    /// Windows from the last `Degraded` window until health returned to
    /// `Nominal` (`None` when never degraded or never recovered).
    pub recovery_latency_windows: Option<usize>,
    /// Whether the run completed without panicking.
    pub completed: bool,
    /// Newest-keyframe estimates, one per window (bit-comparable across
    /// runs for determinism checks).
    pub estimates: Vec<Pose>,
}

impl ScenarioResult {
    /// The fault matrix's accuracy acceptance bound: RMSE within `factor` ×
    /// the nominal run (degradation is allowed, divergence is not).
    pub fn within_rmse_bound(&self, factor: f64) -> bool {
        self.completed && self.rmse_m <= self.nominal_rmse_m * factor
    }
}

/// The standard fault matrix. Episodes sit in frames 24–32, inside any run
/// of ≥ 4 seconds (≥ 40 frames at 10 Hz) of the scenario sequence.
pub fn scenarios(seed: u64) -> Vec<Scenario> {
    let s = |name: &str, plan: FaultPlan| Scenario::new(name, plan);
    vec![
        s(
            "feature-drought",
            FaultPlan::new(seed).with(
                FaultKind::FeatureDrought {
                    keep_fraction: 0.25,
                },
                24,
                30,
            ),
        ),
        s(
            "vision-dropout",
            FaultPlan::new(seed).with(FaultKind::VisionDropout, 24, 28),
        ),
        s(
            "frame-drop",
            FaultPlan::new(seed).with(FaultKind::FrameDrop, 25, 27),
        ),
        s(
            "frame-duplicate",
            FaultPlan::new(seed).with(FaultKind::FrameDuplicate, 25, 28),
        ),
        s(
            "imu-bias-spike",
            FaultPlan::new(seed).with(
                FaultKind::ImuBiasSpike {
                    gyro: 0.05,
                    accel: 0.5,
                },
                24,
                28,
            ),
        ),
        s(
            // Clips the gravity reaction (9.81 m/s²) for two frames — a
            // curb-strike transient. Harder clips (e.g. 6 m/s²) held for
            // many frames are indistinguishable from real acceleration and
            // genuinely bias any inertial estimator.
            "imu-saturation",
            FaultPlan::new(seed).with(FaultKind::ImuSaturation { limit: 8.0 }, 24, 26),
        ),
        s(
            "imu-nan",
            FaultPlan::new(seed).with(FaultKind::ImuNan { probability: 0.3 }, 24, 28),
        ),
        s(
            "outliers",
            FaultPlan::new(seed).with(
                FaultKind::Outliers {
                    fraction: 0.15,
                    magnitude: 0.4,
                },
                24,
                30,
            ),
        ),
        s(
            "stacked",
            // Milder per-fault magnitudes than the single-fault scenarios:
            // the point is that overlapping episodes compose, and an
            // undetectable bias spike is strictly harder to absorb when a
            // simultaneous drought starves the vision correction.
            FaultPlan::new(seed)
                .with(FaultKind::FeatureDrought { keep_fraction: 0.5 }, 24, 29)
                .with(
                    FaultKind::ImuBiasSpike {
                        gyro: 0.005,
                        accel: 0.05,
                    },
                    25,
                    28,
                )
                .with(
                    FaultKind::Outliers {
                        fraction: 0.1,
                        magnitude: 0.3,
                    },
                    26,
                    30,
                ),
        ),
    ]
}

/// Long-horizon scenarios (ROADMAP item 3): minutes-scale regimes that do
/// not fit the standard 4-second episode window. Kept out of
/// [`scenarios`] so its indices and names stay stable for existing
/// consumers; the fault-matrix bin runs both lists.
pub fn long_horizon_scenarios(seed: u64) -> Vec<Scenario> {
    vec![
        // 150 s of tunnel-00: the vehicle enters the bore ~15 s in and
        // spends the remaining ~2 minutes in a feature drought generated by
        // the world itself (no injection needed for the drought). A mild
        // bias spike lands mid-bore, where no vision is left to absorb it.
        Scenario::new(
            "tunnel-drought",
            FaultPlan::new(seed).with(
                FaultKind::ImuBiasSpike {
                    gyro: 0.01,
                    accel: 0.1,
                },
                700,
                720,
            ),
        )
        .on_sequence(tunnel_sequences()[0].clone(), 150.0),
    ]
}

/// Pipeline configuration of every matrix run: the default pipeline with
/// Huber robust weighting armed (a fault harness without a robust kernel
/// would just measure the outlier magnitude).
fn matrix_config() -> PipelineConfig {
    PipelineConfig {
        weights: FactorWeights::default().with_huber(0.004),
        ..PipelineConfig::default()
    }
}

fn matrix_runtime() -> RuntimeSystem {
    RuntimeSystem::new(
        HIGH_PERF,
        &ProblemShape::typical(),
        2.5,
        &FpgaPlatform::zc706(),
        IterPolicy::default_table(),
    )
}

struct Drive {
    estimates: Vec<Pose>,
    ground_truths: Vec<Pose>,
    healths: Vec<HealthState>,
    watchdog_windows: usize,
    degraded_windows: usize,
}

/// Runs the pipeline + runtime stack over a frame stream.
fn drive(frames: &[archytas_dataset::Frame]) -> Drive {
    let mut pipeline = VioPipeline::new(matrix_config());
    let mut rt = matrix_runtime();
    let mut d = Drive {
        estimates: Vec::new(),
        ground_truths: Vec::new(),
        healths: Vec::new(),
        watchdog_windows: 0,
        degraded_windows: 0,
    };
    for frame in frames {
        if !pipeline.push_frame(frame) {
            continue;
        }
        let features = pipeline.window().num_landmarks();
        // The pre-solve health verdict (which sees faults latched for the
        // window about to be solved) feeds the runtime watchdog, so the
        // very window a fault lands in already runs at full capacity.
        let healthy = !pipeline.health().is_suspect();
        let decision = rt.step_with_health(features, healthy);
        if rt.watchdog().engaged() {
            d.watchdog_windows += 1;
        }
        let result = pipeline.optimize_and_slide(decision.iterations);
        if result.health == HealthState::Degraded {
            d.degraded_windows += 1;
        }
        d.healths.push(result.health);
        d.estimates.push(result.estimate);
        d.ground_truths.push(result.ground_truth);
    }
    d
}

/// A fault-free reference run.
#[derive(Debug, Clone)]
pub struct NominalRun {
    /// Newest-keyframe estimates, one per window.
    pub estimates: Vec<Pose>,
    /// Ground-truth poses aligned with `estimates`.
    pub ground_truths: Vec<Pose>,
    /// Trajectory RMSE (m).
    pub rmse_m: f64,
}

/// Runs the standard matrix sequence for `seconds` with no faults injected.
pub fn run_nominal(seconds: f64) -> NominalRun {
    run_nominal_on(&kitti_sequences()[1], seconds)
}

/// Runs an arbitrary sequence for `seconds` with no faults injected — the
/// fault-free reference for long-horizon scenarios pinned to their own
/// sequence.
pub fn run_nominal_on(spec: &SequenceSpec, seconds: f64) -> NominalRun {
    let data = spec.truncated(seconds).build();
    let d = drive(&data.frames);
    let rmse_m = if d.estimates.is_empty() {
        f64::INFINITY
    } else {
        rmse_translation(&d.estimates, &d.ground_truths)
    };
    NominalRun {
        estimates: d.estimates,
        ground_truths: d.ground_truths,
        rmse_m,
    }
}

/// Runs one scenario over `seconds` of its sequence (the standard matrix
/// sequence unless the scenario pins its own sequence/duration), comparing
/// against the fault-free run of the same sequence and configuration. A
/// panic anywhere in the faulted run is caught and reported as
/// `completed: false` rather than propagated.
pub fn run_scenario(scenario: &Scenario, seconds: f64) -> ScenarioResult {
    let standard = kitti_sequences()[1].clone();
    let spec = scenario.sequence.as_ref().unwrap_or(&standard);
    let seconds = scenario.seconds.unwrap_or(seconds);
    let nominal = run_nominal_on(spec, seconds);
    let data = spec.truncated(seconds).build();
    let frames = apply(&scenario.plan, &data.frames);

    match catch_unwind(AssertUnwindSafe(|| drive(&frames))) {
        Ok(d) => {
            let rmse_m = if d.estimates.is_empty() {
                f64::INFINITY
            } else {
                rmse_translation(&d.estimates, &d.ground_truths)
            };
            let last_degraded = d.healths.iter().rposition(|&h| h == HealthState::Degraded);
            let recovery_latency_windows = last_degraded.and_then(|i| {
                d.healths[i + 1..]
                    .iter()
                    .position(|&h| h == HealthState::Nominal)
                    .map(|k| k + 1)
            });
            ScenarioResult {
                name: scenario.name.clone(),
                rmse_m,
                nominal_rmse_m: nominal.rmse_m,
                windows: d.estimates.len(),
                degraded_windows: d.degraded_windows,
                watchdog_windows: d.watchdog_windows,
                recovery_latency_windows,
                completed: true,
                estimates: d.estimates,
            }
        }
        Err(_) => ScenarioResult {
            name: scenario.name.clone(),
            rmse_m: f64::INFINITY,
            nominal_rmse_m: nominal.rmse_m,
            windows: 0,
            degraded_windows: 0,
            watchdog_windows: 0,
            recovery_latency_windows: None,
            completed: false,
            estimates: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_names_are_unique() {
        let m = scenarios(7);
        let mut names: Vec<_> = m.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), m.len());
    }

    #[test]
    fn nominal_run_is_clean() {
        let n = run_nominal(4.0);
        assert!(!n.estimates.is_empty());
        assert!(n.rmse_m.is_finite());
        assert!(n.rmse_m < 1.0, "nominal rmse {}", n.rmse_m);
    }

    #[test]
    fn dropout_scenario_degrades_and_recovers() {
        let sc = &scenarios(7)[1]; // vision-dropout
        let r = run_scenario(sc, 4.0);
        assert!(r.completed);
        assert!(r.degraded_windows > 0, "dropout never degraded health");
        assert!(
            r.recovery_latency_windows.is_some(),
            "never recovered to Nominal"
        );
        assert!(r.watchdog_windows > 0, "watchdog never engaged");
        assert!(
            r.within_rmse_bound(3.0),
            "rmse {} vs nominal {}",
            r.rmse_m,
            r.nominal_rmse_m
        );
    }
}
