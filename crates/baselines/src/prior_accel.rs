//! Prior localization accelerator comparators (paper Sec. 7.5).
//!
//! A fair head-to-head is impossible even in the paper — π-BA, BAX, Zhang
//! et al. and PISCES target different algorithm variants, boards and
//! benchmarks — so the paper normalizes per NLS iteration against each
//! system's published numbers. This module encodes those published anchors
//! as *relative* models: given our High-Perf design's per-iteration latency
//! and energy, each comparator's numbers follow from the ratios its paper
//! reports. The `sec7_5` experiment binary regenerates the comparison table
//! from these anchors plus our independently computed High-Perf numbers.

use archytas_hw::cholesky_latency;

/// One prior accelerator, anchored by its published ratios to High-Perf.
#[derive(Debug, Clone, PartialEq)]
pub struct PriorAccelerator {
    /// System name as cited.
    pub name: &'static str,
    /// `their_latency / high_perf_latency` (per NLS iteration).
    pub latency_ratio: f64,
    /// `their_energy / high_perf_energy` (per NLS iteration).
    pub energy_ratio: f64,
    /// Evaluation context, for the generated table.
    pub notes: &'static str,
}

/// π-BA: FPGA accelerator for Jacobian + Schur elimination only, BAL
/// dataset. High-Perf is 137× faster with 132× less energy.
pub fn pi_ba() -> PriorAccelerator {
    PriorAccelerator {
        name: "pi-BA [45]",
        latency_ratio: 137.0,
        energy_ratio: 132.0,
        notes: "Jacobian+Schur only, BAL dataset, per-iteration normalization",
    }
}

/// BAX: full BA accelerator with generic vector units, BAL dataset.
/// High-Perf is 9× faster and uses 44 % less energy.
pub fn bax() -> PriorAccelerator {
    PriorAccelerator {
        name: "BAX [75]",
        latency_ratio: 9.0,
        energy_ratio: 1.0 / (1.0 - 0.44),
        notes: "full BA, decoupled access/execute, per-iteration normalization",
    }
}

/// Zhang et al. (on-chip VIO, Gauss–Newton): High-Perf achieves >20×
/// speedup on EuRoC using ≈2× the hardware resources.
pub fn zhang_vio() -> PriorAccelerator {
    PriorAccelerator {
        name: "Zhang et al. [88]",
        latency_ratio: 20.0,
        energy_ratio: 10.0,
        notes: "on-manifold GN co-design; High-Perf uses ~2x resources",
    }
}

/// PISCES: HLS-built whole-pipeline SLAM accelerator. Comparing the BA part,
/// High-Perf is ≈5.4× faster at ≈3× the energy (PISCES optimizes power).
pub fn pisces() -> PriorAccelerator {
    PriorAccelerator {
        name: "PISCES [9]",
        latency_ratio: 5.4,
        energy_ratio: 1.0 / 3.0,
        notes: "HLS, power-aware sparse algebra, EuRoC MH (BA stage only)",
    }
}

/// All four comparators in citation order.
pub fn all_prior_accelerators() -> Vec<PriorAccelerator> {
    vec![pi_ba(), bax(), zhang_vio(), pisces()]
}

impl PriorAccelerator {
    /// The comparator's per-iteration latency given ours (ms).
    pub fn latency_ms(&self, high_perf_iteration_ms: f64) -> f64 {
        high_perf_iteration_ms * self.latency_ratio
    }

    /// The comparator's per-iteration energy given ours (mJ).
    pub fn energy_mj(&self, high_perf_iteration_mj: f64) -> f64 {
        high_perf_iteration_mj * self.energy_ratio
    }
}

/// Model of the hand-optimized Vivado HLS Cholesky implementation the paper
/// compares against (Sec. 7.5, "HLS Comparison"): no Evaluate/Update
/// cross-iteration pipelining (HLS cannot see it), inner loops pipelined by
/// the tool, and a 30 % lower achieved clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HlsCholesky {
    /// Inner-loop pipelining credit HLS does achieve (calibrated so the
    /// overall gap at the reference design matches the paper's 16.4×).
    pub inner_pipelining: f64,
    /// Achieved clock relative to the hand design (0.7 = 30 % lower).
    pub clock_fraction: f64,
    /// Resource multiplier relative to the hand design.
    pub resource_factor: f64,
}

impl Default for HlsCholesky {
    fn default() -> Self {
        Self {
            inner_pipelining: 2.15,
            clock_fraction: 0.70,
            resource_factor: 2.0,
        }
    }
}

impl HlsCholesky {
    /// Effective cycles (normalized to the hand design's clock) of the HLS
    /// implementation factorizing an `m × m` matrix.
    pub fn latency_cycles(&self, m: usize) -> f64 {
        // Single Update lane, no cross-iteration overlap, scaled by the
        // inner pipelining credit and the clock gap.
        cholesky_latency(m, 1) / self.inner_pipelining / self.clock_fraction
    }

    /// Slowdown of the HLS design versus the hand-optimized block at the
    /// given matrix size and lane count.
    pub fn slowdown_vs_hand(&self, m: usize, s: usize) -> f64 {
        self.latency_cycles(m) / cholesky_latency(m, s)
    }
}

/// The `s` value at which the paper's 16.4× HLS gap is anchored (a mid-size
/// generated design's Cholesky lane count).
pub const HLS_REFERENCE_LANES: usize = 34;

/// Reference matrix size for the HLS comparison (the reduced system of a
/// 10-keyframe window).
pub const HLS_REFERENCE_DIM: usize = 150;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_published_ratios() {
        assert_eq!(pi_ba().latency_ratio, 137.0);
        assert_eq!(pi_ba().energy_ratio, 132.0);
        assert_eq!(bax().latency_ratio, 9.0);
        // BAX consumes more energy than High-Perf (44 % less from our side).
        assert!((bax().energy_ratio - 1.786).abs() < 0.01);
        // PISCES actually *wins* on energy (we are 3× higher).
        assert!(pisces().energy_ratio < 1.0);
    }

    #[test]
    fn derived_numbers_scale() {
        let hp_ms = 2.0;
        let hp_mj = 9.0;
        let p = pi_ba();
        assert_eq!(p.latency_ms(hp_ms), 274.0);
        assert_eq!(p.energy_mj(hp_mj), 1188.0);
    }

    #[test]
    fn hls_gap_matches_paper_anchor() {
        // Sec. 7.5: the HLS Cholesky is 16.4× slower overall.
        let hls = HlsCholesky::default();
        let gap = hls.slowdown_vs_hand(HLS_REFERENCE_DIM, HLS_REFERENCE_LANES);
        assert!(
            (gap - 16.4).abs() < 2.5,
            "HLS slowdown {gap:.1} should be ≈16.4×"
        );
        assert_eq!(hls.resource_factor, 2.0);
    }

    #[test]
    fn hls_gap_grows_with_lanes() {
        // The hand design's advantage comes precisely from the multi-lane
        // Update pipelining HLS cannot express.
        let hls = HlsCholesky::default();
        assert!(hls.slowdown_vs_hand(150, 34) > hls.slowdown_vs_hand(150, 4));
        assert!(hls.slowdown_vs_hand(150, 4) > 1.0);
    }

    #[test]
    fn four_comparators_listed() {
        assert_eq!(all_prior_accelerators().len(), 4);
    }
}
