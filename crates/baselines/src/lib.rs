//! Baseline executors and comparators for the Archytas evaluation
//! (paper Sec. 7.1/7.4/7.5).
//!
//! Two families: CPU platform cost models (the Intel Comet Lake and Arm
//! Cortex-A57 machines the paper measures, modelled by effective sustained
//! throughput + package power over the same M-DFG work the accelerator
//! executes) and prior-accelerator comparators (π-BA, BAX, Zhang et al.,
//! PISCES, and the hand-vs-HLS Cholesky study), anchored on those systems'
//! published numbers exactly as the paper's best-effort normalization does.

#![warn(missing_docs)]

mod cpu;
mod prior_accel;

pub use cpu::{
    CachedCpuPlatform, CpuPlatform, OVERHEAD_OPS_PER_ITERATION, OVERHEAD_OPS_PER_WINDOW,
};
pub use prior_accel::{
    all_prior_accelerators, bax, pi_ba, pisces, zhang_vio, HlsCholesky, PriorAccelerator,
    HLS_REFERENCE_DIM, HLS_REFERENCE_LANES,
};
