//! CPU baseline cost models (paper Sec. 7.1, "Baselines").
//!
//! The paper's software baseline is a multithreaded, vectorized ceres-based
//! bundle adjustment run on (a) a 12-core Intel Comet Lake at 2.9 GHz and
//! (b) the quad-core Arm Cortex-A57 of a Jetson TX1 at 1.9 GHz, with power
//! measured at the wall / via the TX1's sensing rails. Neither machine is
//! available here, so each platform is modelled by its *effective sustained
//! throughput* on this workload (arithmetic from the M-DFG cost model ÷
//! wall time) plus a package power. The throughputs are calibrated so the
//! paper's headline ratios (≈6.2×/74× vs Intel, ≈39.7×/14.6× vs Arm for
//! High-Perf) emerge from the same cost model that drives the accelerator's
//! latency — the comparison is therefore self-consistent: identical work,
//! different executors.

use archytas_mdfg::{build_mdfg, ProblemShape};

/// Fixed software overhead per NLS iteration (problem construction,
/// allocation, threading sync — ceres-class bookkeeping), expressed in
/// equivalent scalar ops. Dominant on small problems (Sec. 7.7's curve
/// fitting / pose estimation), marginal on full SLAM windows. The
/// accelerator's fixed-function pipeline has no analogue.
pub const OVERHEAD_OPS_PER_ITERATION: u64 = 1_200_000;

/// Fixed software overhead per window (marginalization bookkeeping).
pub const OVERHEAD_OPS_PER_WINDOW: u64 = 2_000_000;

/// A CPU platform executing the software MAP solver.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuPlatform {
    /// Human-readable name.
    pub name: &'static str,
    /// Effective sustained throughput on the sliding-window workload
    /// (scalar operations per second, *not* peak FLOPS — BA is memory- and
    /// branch-bound, so sustained is a few percent of peak).
    pub effective_ops_per_s: f64,
    /// Package power under this workload (W).
    pub power_w: f64,
}

impl CpuPlatform {
    /// The 12-core Intel Comet Lake @ 2.9 GHz baseline.
    pub fn intel_comet_lake() -> Self {
        Self {
            name: "Intel Comet Lake (12c, 2.9 GHz)",
            effective_ops_per_s: 5.1e9,
            power_w: 58.0,
        }
    }

    /// The quad-core Arm Cortex-A57 (Jetson TX1) @ 1.9 GHz baseline.
    pub fn arm_a57() -> Self {
        Self {
            name: "Arm Cortex-A57 (4c, 1.9 GHz)",
            effective_ops_per_s: 0.79e9,
            power_w: 1.9,
        }
    }

    /// Total arithmetic work of one sliding window (scalar ops): `Iter`
    /// NLS iterations plus one marginalization, from the M-DFG cost model.
    pub fn window_work_ops(shape: &ProblemShape, iterations: usize) -> u64 {
        let built = build_mdfg(shape);
        (built.nls.total_cost() + OVERHEAD_OPS_PER_ITERATION) * iterations as u64
            + built.marginalization.total_cost()
            + OVERHEAD_OPS_PER_WINDOW
    }

    /// Wall time of one window on this platform (ms).
    pub fn window_time_ms(&self, shape: &ProblemShape, iterations: usize) -> f64 {
        Self::window_work_ops(shape, iterations) as f64 / self.effective_ops_per_s * 1e3
    }

    /// Energy of one window on this platform (mJ).
    pub fn window_energy_mj(&self, shape: &ProblemShape, iterations: usize) -> f64 {
        self.window_time_ms(shape, iterations) * self.power_w
    }
}

/// A [`CpuPlatform`] with a memoized window-time evaluation.
///
/// [`CpuPlatform::window_work_ops`] rebuilds the M-DFG for every call — by
/// far the dominant cost of the Fig. 15/16 sweeps — yet depends only on
/// `(shape, iterations)`. This wrapper evaluates each distinct key exactly
/// once (energy derives from the cached time), mirrors
/// `archytas_hw::CachedAcceleratorModel`, and exposes the same hit/miss
/// counters for exactly-once assertions in tests.
#[derive(Debug)]
pub struct CachedCpuPlatform {
    cpu: CpuPlatform,
    time: archytas_par::Memo<(ProblemShape, usize), f64>,
}

// Shared across fleet sessions and sweep workers exactly like
// `CachedAcceleratorModel`; keep the compiler holding us to `Sync`.
const _: fn() = || {
    fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<CachedCpuPlatform>();
};

impl CachedCpuPlatform {
    /// Wraps `cpu` with an empty cache.
    pub fn new(cpu: CpuPlatform) -> Self {
        Self {
            cpu,
            time: archytas_par::Memo::new(),
        }
    }

    /// Wraps `cpu` for cross-thread sharing (mirror of
    /// `archytas_hw::CachedAcceleratorModel::shared`): all holders of the
    /// returned `Arc` fill each `(shape, iterations)` key exactly once.
    pub fn shared(cpu: CpuPlatform) -> std::sync::Arc<Self> {
        std::sync::Arc::new(Self::new(cpu))
    }

    /// The wrapped platform.
    pub fn cpu(&self) -> &CpuPlatform {
        &self.cpu
    }

    /// Memoized [`CpuPlatform::window_time_ms`].
    pub fn window_time_ms(&self, shape: &ProblemShape, iterations: usize) -> f64 {
        self.time.get_or_compute((*shape, iterations), || {
            self.cpu.window_time_ms(shape, iterations)
        })
    }

    /// Memoized [`CpuPlatform::window_energy_mj`] (reuses the cached time;
    /// package power is shape-independent).
    pub fn window_energy_mj(&self, shape: &ProblemShape, iterations: usize) -> f64 {
        self.window_time_ms(shape, iterations) * self.cpu.power_w
    }

    /// Cost-model evaluations actually performed (== distinct
    /// `(shape, iterations)` keys requested).
    pub fn evaluations(&self) -> usize {
        self.time.misses()
    }

    /// Lookups served from the cache without evaluation.
    pub fn cache_hits(&self) -> usize {
        self.time.hits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archytas_hw::{AcceleratorModel, FpgaPlatform, HIGH_PERF, LOW_POWER};

    fn typical() -> ProblemShape {
        ProblemShape::typical()
    }

    #[test]
    fn intel_is_faster_than_arm() {
        let shape = typical();
        let intel = CpuPlatform::intel_comet_lake().window_time_ms(&shape, 6);
        let arm = CpuPlatform::arm_a57().window_time_ms(&shape, 6);
        assert!(arm > intel * 4.0, "intel {intel:.1} ms vs arm {arm:.1} ms");
    }

    #[test]
    fn high_perf_speedups_in_paper_band() {
        // Fig. 16: High-Perf ≈6.2× over Intel, ≈39.7× over Arm. The bands
        // here are generous (±40 %): the shape must hold, not the digit.
        let shape = typical();
        let hp = AcceleratorModel::new(HIGH_PERF, FpgaPlatform::zc706());
        let accel_ms = hp.window_latency_ms(&shape, 6);
        let intel_x = CpuPlatform::intel_comet_lake().window_time_ms(&shape, 6) / accel_ms;
        let arm_x = CpuPlatform::arm_a57().window_time_ms(&shape, 6) / accel_ms;
        assert!((3.5..10.0).contains(&intel_x), "intel speedup {intel_x:.1}");
        assert!((24.0..60.0).contains(&arm_x), "arm speedup {arm_x:.1}");
        assert!(arm_x > intel_x, "arm speedup must exceed intel speedup");
    }

    #[test]
    fn high_perf_energy_reductions_in_paper_band() {
        // Fig. 16: ≈74× vs Intel, ≈14.6× vs Arm — note the *reversal*
        // (Intel is faster but burns far more power).
        let shape = typical();
        let hp = AcceleratorModel::new(HIGH_PERF, FpgaPlatform::zc706());
        let accel_mj = hp.window_energy_mj(&shape, 6);
        let intel_x = CpuPlatform::intel_comet_lake().window_energy_mj(&shape, 6) / accel_mj;
        let arm_x = CpuPlatform::arm_a57().window_energy_mj(&shape, 6) / accel_mj;
        assert!(
            (45.0..110.0).contains(&intel_x),
            "intel energy ratio {intel_x:.1}"
        );
        assert!((9.0..25.0).contains(&arm_x), "arm energy ratio {arm_x:.1}");
        assert!(
            intel_x > arm_x,
            "energy reduction vs Intel must exceed vs Arm (Intel's power dominates)"
        );
    }

    #[test]
    fn low_power_ratios_ordered_below_high_perf() {
        let shape = typical();
        let hp = AcceleratorModel::new(HIGH_PERF, FpgaPlatform::zc706());
        let lp = AcceleratorModel::new(LOW_POWER, FpgaPlatform::zc706());
        let intel = CpuPlatform::intel_comet_lake();
        let s_hp = intel.window_time_ms(&shape, 6) / hp.window_latency_ms(&shape, 6);
        let s_lp = intel.window_time_ms(&shape, 6) / lp.window_latency_ms(&shape, 6);
        assert!(s_hp > s_lp, "High-Perf must out-speed Low-Power");
        assert!(s_lp > 1.5, "Low-Power still beats the CPU ({s_lp:.1}×)");
    }

    #[test]
    fn work_scales_with_iterations() {
        let shape = typical();
        let w1 = CpuPlatform::window_work_ops(&shape, 1);
        let w6 = CpuPlatform::window_work_ops(&shape, 6);
        assert!(w6 > w1 * 3);
        assert!(w6 < w1 * 7);
    }

    #[test]
    fn cached_cpu_matches_and_evaluates_once() {
        let cpu = CpuPlatform::intel_comet_lake();
        let cached = CachedCpuPlatform::new(cpu.clone());
        let shape = typical();
        for _ in 0..4 {
            assert_eq!(
                cached.window_time_ms(&shape, 6).to_bits(),
                cpu.window_time_ms(&shape, 6).to_bits()
            );
            assert_eq!(
                cached.window_energy_mj(&shape, 6).to_bits(),
                cpu.window_energy_mj(&shape, 6).to_bits()
            );
        }
        assert_eq!(cached.evaluations(), 1);
        assert_eq!(cached.cache_hits(), 7);
    }

    #[test]
    fn shared_cpu_fills_exactly_once_under_concurrency() {
        let cpu = CpuPlatform::arm_a57();
        let cached = CachedCpuPlatform::shared(cpu.clone());
        let shape = typical();
        let jobs: Vec<usize> = (0..256).collect();
        let pool = archytas_par::Pool::with_threads(8).with_serial_threshold(0);
        let shared = std::sync::Arc::clone(&cached);
        let got = pool.par_map(&jobs, |_| shared.window_time_ms(&shape, 6));
        let want = cpu.window_time_ms(&shape, 6);
        assert!(got.iter().all(|v| v.to_bits() == want.to_bits()));
        assert_eq!(
            cached.evaluations(),
            1,
            "one fill despite 256 racing lookups"
        );
        assert_eq!(cached.cache_hits(), 255);
    }
}
