//! Counting-allocator proof that telemetry recording is allocation-free.
//!
//! The histograms sit on the fleet's per-window step path; a single heap
//! allocation there would multiply across every window of every session.
//! All state is inline fixed-size arrays, so recording — and merging —
//! must not touch the allocator at all.
//!
//! One test function only: the counter is a process-global, so this file
//! must not share its binary with other tests whose threads would
//! allocate concurrently. Same minimum-over-repeats discipline as
//! `crates/slam/tests/zero_alloc.rs` to shrug off harness noise.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use archytas_telemetry::{
    FleetTelemetry, Histogram, ScopeAggregate, SessionTelemetry, TrafficClass,
};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Minimum allocation count of `f` over several repeats (noise only adds).
fn min_allocs(mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..5 {
        let before = allocations();
        f();
        best = best.min(allocations() - before);
    }
    best
}

#[test]
fn recording_and_merging_allocate_nothing() {
    // Everything lives on the stack / in preexisting locals: construction
    // itself must already be allocation-free.
    let mut session = SessionTelemetry::new();
    let mut histogram = Histogram::new();
    let mut aggregate = ScopeAggregate::new();
    let other = {
        let mut t = SessionTelemetry::new();
        for w in 0..64u64 {
            t.record_window(1.0 + w as f64 * 0.17, 4.0 + w as f64 * 0.3, (w % 7) as u32);
        }
        t
    };

    // The per-window hot path: one histogram record.
    let raw = min_allocs(|| {
        for v in 0..1_000u64 {
            histogram.record(v.wrapping_mul(2_654_435_761));
        }
    });
    assert_eq!(raw, 0, "Histogram::record allocated {raw} times");

    // The fleet session step path: latency + energy + iteration slot.
    let windows = min_allocs(|| {
        for w in 0..1_000u64 {
            session.record_window(0.5 + w as f64 * 0.01, 2.0 + w as f64 * 0.05, (w % 9) as u32);
        }
    });
    assert_eq!(
        windows, 0,
        "SessionTelemetry::record_window allocated {windows} times"
    );

    // Post-drain aggregation: absorbing sessions and merging aggregates.
    let fold = min_allocs(|| {
        for _ in 0..100 {
            aggregate.absorb(&other);
        }
        let mut scratch = ScopeAggregate::new();
        scratch.merge(&aggregate);
        std::hint::black_box(scratch.watts());
    });
    assert_eq!(fold, 0, "aggregate fold allocated {fold} times");

    // A whole FleetTelemetry fold over a fixed-size session set: the only
    // permitted allocations are the caller's own collection, none here.
    let pairs = [
        (TrafficClass::Low, &other),
        (TrafficClass::Normal, &session),
        (TrafficClass::High, &other),
    ];
    let whole = min_allocs(|| {
        let t = FleetTelemetry::fold(pairs.iter().map(|(c, t)| (*c, *t)));
        std::hint::black_box(t.fleet.windows);
    });
    assert_eq!(whole, 0, "FleetTelemetry::fold allocated {whole} times");
}
