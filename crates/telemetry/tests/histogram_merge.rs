//! Property tests: histogram merging is *exactly* associative and
//! commutative (all-integer state), and a canonical-order fold of
//! per-worker partial aggregates is byte-identical no matter how many
//! workers the sessions were sharded across — the property the fleet's
//! 1-worker vs 8-worker OBSJSON byte-diff gate rests on.

use archytas_telemetry::{
    bucket_index, bucket_lower_bound, FleetTelemetry, Histogram, ScopeAggregate, SessionTelemetry,
    TrafficClass, BUCKETS,
};
use proptest::prelude::*;

/// Values spanning the full bucket range: zeros, unit buckets, exact
/// powers of two, mid octaves, and near-u64::MAX extremes.
fn value_strategy() -> impl Strategy<Value = u64> {
    (0u8..4, 0u64..u64::MAX).prop_map(|(kind, raw)| match kind {
        0 => raw % 16,
        1 => raw % 1_000_000,
        2 => 1u64 << (raw % 64),
        _ => raw,
    })
}

fn histogram_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// A deterministic per-session record stream derived from a seed.
fn session_from_seed(seed: u64, windows: u16) -> SessionTelemetry {
    let mut t = SessionTelemetry::new();
    let mut x = seed | 1;
    for _ in 0..windows {
        // xorshift: cheap, deterministic, full-range.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let latency_ms = (x % 10_000) as f64 / 100.0;
        let energy_mj = ((x >> 16) % 50_000) as f64 / 100.0;
        t.record_window(latency_ms, energy_mj, (x >> 32) as u32 % 9);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_exactly_associative(
        a in proptest::collection::vec(value_strategy(), 0..200),
        b in proptest::collection::vec(value_strategy(), 0..200),
        c in proptest::collection::vec(value_strategy(), 0..200),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_exactly_commutative(
        a in proptest::collection::vec(value_strategy(), 0..200),
        b in proptest::collection::vec(value_strategy(), 0..200),
    ) {
        let (ha, hb) = (histogram_of(&a), histogram_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_equals_concatenated_stream(
        a in proptest::collection::vec(value_strategy(), 0..300),
        b in proptest::collection::vec(value_strategy(), 0..300),
    ) {
        let mut merged = histogram_of(&a);
        merged.merge(&histogram_of(&b));
        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged, histogram_of(&concat));
    }

    #[test]
    fn bucket_index_is_total_monotone_and_inverted_by_lower_bound(
        v in value_strategy(),
        w in value_strategy(),
    ) {
        let (iv, iw) = (bucket_index(v), bucket_index(w));
        prop_assert!(iv < BUCKETS);
        if v <= w {
            prop_assert!(iv <= iw);
        }
        // The bucket's lower bound maps back to the same bucket and never
        // exceeds the value it classifies.
        prop_assert_eq!(bucket_index(bucket_lower_bound(iv)), iv);
        prop_assert!(bucket_lower_bound(iv) <= v);
    }

    /// The fleet claim: shard sessions across a worker pool, let each
    /// worker fold its own completions locally (in whatever order they
    /// finish), merge the partials in canonical worker order — the result
    /// is byte-identical for 1, 2, and 8 workers, and identical to the
    /// direct submission-order fold.
    #[test]
    fn sharded_fold_is_byte_identical_at_pools_1_2_and_8(
        seeds in proptest::collection::vec((0u64..u64::MAX, 0u16..120, 0usize..3), 1..24),
        scramble in 0u64..u64::MAX,
    ) {
        let sessions: Vec<(TrafficClass, SessionTelemetry)> = seeds
            .iter()
            .map(|&(seed, windows, class)| {
                (TrafficClass::ALL[class], session_from_seed(seed, windows))
            })
            .collect();
        let direct = FleetTelemetry::fold(sessions.iter().map(|(c, t)| (*c, t)));

        let mut folds = Vec::new();
        for workers in [1usize, 2, 8] {
            // Deterministic but arbitrary shard assignment.
            let mut partials = vec![ScopeAggregate::new(); workers];
            let mut assignments: Vec<(usize, usize)> = sessions
                .iter()
                .enumerate()
                .map(|(i, _)| (i, (i as u64 ^ scramble) as usize % workers))
                .collect();
            // Workers complete sessions in scrambled order, not submission
            // order — local absorption order must not matter.
            assignments.sort_by_key(|&(i, _)| (i as u64).wrapping_mul(scramble | 1));
            for (i, w) in assignments {
                partials[w].absorb(&sessions[i].1);
            }
            let mut merged = ScopeAggregate::new();
            for p in &partials {
                merged.merge(p);
            }
            folds.push(merged);
        }
        prop_assert_eq!(&folds[0], &folds[1]);
        prop_assert_eq!(&folds[1], &folds[2]);
        prop_assert_eq!(&folds[0], &direct.fleet);
        // Scalars agree too, including the derived watt figure.
        prop_assert_eq!(folds[0].watts().to_bits(), direct.fleet.watts().to_bits());
    }
}
