//! Zero-alloc, fixed-bucket streaming histograms with a bitwise-
//! deterministic merge.
//!
//! The serving layer records one latency and one energy sample per
//! optimized window, on the hot path, for every session in the fleet. That
//! rules out anything that allocates, hashes, or sorts at record time. A
//! [`Histogram`] is a flat `[u64; 256]` of bucket counts plus four scalar
//! accumulators — recording is a shift, a mask, and two integer adds.
//!
//! # Bucket layout
//!
//! Buckets are log-spaced with [`SUB_BITS`] = 2 sub-buckets per octave
//! (HDR-histogram style): a sample's bucket is its floored log2 refined by
//! the top two mantissa bits, giving ≤ 19 % relative bucket width across
//! the full `u64` range in [`BUCKETS`] = 256 fixed slots. The index is
//! computed from `leading_zeros` — no float math, no libm, so the layout
//! is identical on every platform.
//!
//! # Deterministic merge
//!
//! All state is integer (counts and sums of already-quantized samples), so
//! [`Histogram::merge`] is *exactly* associative and commutative — not
//! "close enough": merging any permutation of any partition of the same
//! per-session histograms produces byte-identical bits. The fleet
//! aggregator still folds sessions in canonical submission order (see
//! `FleetTelemetry`), so even a future non-commutative field would keep
//! 1-worker and 8-worker aggregates byte-identical. The proptest suite
//! `tests/histogram_merge.rs` pins both properties.

/// Sub-bucket resolution bits per octave.
pub const SUB_BITS: u32 = 2;

/// Sub-buckets per octave (`2^SUB_BITS`).
const SUB: u64 = 1 << SUB_BITS;

/// Total fixed bucket count. Values `0..SUB*2` get exact unit buckets;
/// octave `e ≥ SUB_BITS+1` contributes `SUB` buckets each, and the top
/// octave of `u64` lands at index `(63 - SUB_BITS) * SUB + SUB*2 - 1 = 251`.
pub const BUCKETS: usize = ((63 - SUB_BITS as usize) << SUB_BITS) + (SUB as usize) * 2;

/// A fixed-footprint streaming histogram over `u64` samples.
///
/// `Copy`-free but `Clone`-cheap (one flat memcpy): fleet sessions carry
/// their histograms inside the checkpointable `Core`, so a restart restores
/// the telemetry to exactly the bits it had at the checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    total: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a sample: unit buckets below `2*SUB`, then
/// `SUB` log-spaced sub-buckets per octave. Monotone in `v` and total over
/// the whole `u64` range (see unit tests).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB * 2 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as u64; // >= SUB_BITS + 1
    let sub = (v >> (exp - SUB_BITS as u64)) & (SUB - 1);
    (((exp - 1 - SUB_BITS as u64) << SUB_BITS) + SUB * 2 + sub) as usize
}

/// Inclusive lower bound of a bucket (the smallest sample mapping to it);
/// the exact inverse of [`bucket_index`]'s quantization.
pub fn bucket_lower_bound(index: usize) -> u64 {
    let i = index as u64;
    if i < SUB * 2 {
        return i;
    }
    let exp = ((i - SUB * 2) >> SUB_BITS) + 1 + SUB_BITS as u64;
    let sub = (i - SUB * 2) & (SUB - 1);
    (1u64 << exp) | (sub << (exp - SUB_BITS as u64))
}

impl Histogram {
    /// An empty histogram. All-zero except `min`, which starts at
    /// `u64::MAX` so the first merge/record wins.
    pub const fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample. Hot path: no allocation, no branch beyond the
    /// small-value fast case, wrapping-free for any realistic total.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.total = self.total.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Exactly associative and commutative:
    /// every field is an integer sum, min, or max.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.count += other.count;
        self.total = self.total.wrapping_add(other.total);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (wrapping, exact for realistic loads).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample (`u64::MAX` when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile, resolved to the bucket's lower bound —
    /// deterministic, and within one bucket width (≤ 19 %) of the exact
    /// order statistic.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower_bound(i);
            }
        }
        bucket_lower_bound(BUCKETS - 1)
    }

    /// Non-empty buckets as `(index, count)`, ascending — the sparse form
    /// the OBSJSON writer serializes.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }
}

/// Quantizes a modelled window latency (ms) to integer nanoseconds — the
/// latency histogram's sample unit. Pure function of the input bits, so
/// every pool size quantizes a window identically.
#[inline]
pub fn latency_ns(latency_ms: f64) -> u64 {
    quantize(latency_ms * 1e6)
}

/// Quantizes a modelled window energy (mJ) to integer nanojoules — the
/// energy histogram's sample unit.
#[inline]
pub fn energy_nj(energy_mj: f64) -> u64 {
    quantize(energy_mj * 1e6)
}

/// `f64 → u64` with round-half-up, clamped to `[0, u64::MAX]`; NaN maps
/// to 0. Deterministic: one multiply and one round, no environment-
/// dependent rounding mode.
#[inline]
fn quantize(v: f64) -> u64 {
    if v.is_nan() || v <= 0.0 {
        0
    } else if v >= u64::MAX as f64 {
        u64::MAX
    } else {
        (v + 0.5) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_total() {
        let probes: Vec<u64> = (0..200)
            .chain((1..63).flat_map(|e| {
                let b = 1u64 << e;
                [b - 1, b, b + 1, b + (b >> 2), b + (b >> 1)]
            }))
            .chain([u64::MAX - 1, u64::MAX])
            .collect();
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        let mut prev = 0usize;
        for v in sorted {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(i >= prev, "bucket index not monotone at {v}");
            prev = i;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_lower_bound_inverts_index() {
        for i in 0..BUCKETS {
            let lb = bucket_lower_bound(i);
            assert_eq!(bucket_index(lb), i, "lower bound of bucket {i}");
            if lb > 0 {
                assert!(bucket_index(lb - 1) < i, "bucket {i} lower bound tight");
            }
        }
    }

    #[test]
    fn bucket_width_is_bounded() {
        // Relative bucket width ≤ 1/4 above the unit-bucket region.
        for i in (SUB as usize * 2)..BUCKETS - 1 {
            let lo = bucket_lower_bound(i) as f64;
            let hi = bucket_lower_bound(i + 1) as f64;
            assert!(hi > lo);
            assert!((hi - lo) / lo <= 0.25 + 1e-12, "bucket {i} too wide");
        }
    }

    #[test]
    fn record_accumulates_scalars() {
        let mut h = Histogram::new();
        for v in [3u64, 1000, 1_000_000, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.total(), 1_001_006);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 1_000_000);
        assert!((h.mean() - 250_251.5).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_concatenated_recording() {
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..1000u64 {
            let s = v.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 20;
            all.record(s);
            if v % 2 == 0 { &mut a } else { &mut b }.record(s);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn percentile_hits_bucket_lower_bounds() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        assert_eq!(h.percentile(50.0), bucket_lower_bound(bucket_index(100)));
        assert_eq!(h.percentile(99.0), bucket_lower_bound(bucket_index(10_000)));
        assert_eq!(Histogram::new().percentile(50.0), 0);
    }

    #[test]
    fn quantizers_are_deterministic_and_sane() {
        assert_eq!(latency_ns(1.5), 1_500_000);
        assert_eq!(energy_nj(0.25), 250_000);
        assert_eq!(latency_ns(f64::NAN), 0);
        assert_eq!(latency_ns(-1.0), 0);
        assert_eq!(quantize(2.4), 2);
        assert_eq!(quantize(2.5), 3);
        assert_eq!(quantize(f64::INFINITY), u64::MAX);
    }
}
