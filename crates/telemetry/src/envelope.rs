//! Fleet-wide power-envelope bookkeeping.
//!
//! The CICC-style runtime reconfiguration argument (see PAPERS.md) is that
//! an accelerator fleet operates against an explicit watt budget, not just
//! a queue-depth budget. A [`PowerEnvelope`] prices every admitted session
//! at its deployed design's Eq. 17 power and answers one question during
//! admission planning: *does the next arrival still fit under the budget?*
//!
//! The envelope is evaluated once, serially, in arrival order, before any
//! worker starts — the decision is a pure function of the spec list and
//! the budget, never of runtime queue state. That is what lets the fleet
//! keep its bitwise serial-identical contract at every pool size: the same
//! sessions are shed or deferred whether one worker or eight drain the
//! batch.

use archytas_hw::{AcceleratorConfig, FpgaPlatform, PowerModel};

/// A fleet-wide watt budget priced against one deployed design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEnvelope {
    /// Total budget in watts (`f64::INFINITY` disables the envelope).
    pub budget_w: f64,
    /// Eq. 17 power of one active session's accelerator instance.
    pub session_draw_w: f64,
}

impl PowerEnvelope {
    /// An envelope pricing sessions at the full (ungated) Eq. 17 power of
    /// `design` on `platform` — the worst-case draw, so admission never
    /// over-commits the budget.
    pub fn new(budget_w: f64, design: &AcceleratorConfig, platform: &FpgaPlatform) -> Self {
        let model = PowerModel::for_platform(platform);
        Self {
            budget_w,
            session_draw_w: model.power_w(design),
        }
    }

    /// An envelope that admits everything.
    pub fn unlimited() -> Self {
        Self {
            budget_w: f64::INFINITY,
            session_draw_w: 0.0,
        }
    }

    /// Whether this envelope can ever reject anything.
    pub fn is_limited(&self) -> bool {
        self.budget_w.is_finite()
    }

    /// Whether one more concurrent session fits when `admitted` are
    /// already drawing power. Deterministic: a pure function of two
    /// integers and two constants, evaluated identically at every pool
    /// size.
    #[inline]
    pub fn fits(&self, admitted: usize) -> bool {
        if !self.is_limited() {
            return true;
        }
        (admitted as f64 + 1.0) * self.session_draw_w <= self.budget_w
    }

    /// How many sessions the budget supports concurrently
    /// (`usize::MAX` when unlimited).
    pub fn capacity(&self) -> usize {
        if !self.is_limited() {
            return usize::MAX;
        }
        if self.session_draw_w <= 0.0 {
            return usize::MAX;
        }
        (self.budget_w / self.session_draw_w).floor().max(0.0) as usize
    }

    /// Watts drawn by `admitted` concurrent sessions under this pricing.
    pub fn draw_w(&self, admitted: usize) -> f64 {
        admitted as f64 * self.session_draw_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archytas_hw::HIGH_PERF;

    #[test]
    fn unlimited_always_fits() {
        let e = PowerEnvelope::unlimited();
        assert!(!e.is_limited());
        assert!(e.fits(0));
        assert!(e.fits(1_000_000));
        assert_eq!(e.capacity(), usize::MAX);
    }

    #[test]
    fn capacity_matches_fits_boundary() {
        let e = PowerEnvelope::new(10.0, &HIGH_PERF, &FpgaPlatform::zc706());
        let cap = e.capacity();
        assert!(cap >= 1, "10 W should admit at least one HIGH_PERF session");
        assert!(e.fits(cap - 1), "one below capacity must fit");
        assert!(!e.fits(cap), "at capacity the next session must not fit");
    }

    #[test]
    fn draw_is_linear_in_admissions() {
        let e = PowerEnvelope::new(10.0, &HIGH_PERF, &FpgaPlatform::zc706());
        assert_eq!(e.draw_w(0), 0.0);
        assert!((e.draw_w(3) - 3.0 * e.session_draw_w).abs() < 1e-12);
    }

    #[test]
    fn pricing_uses_full_eq17_power() {
        let e = PowerEnvelope::new(100.0, &HIGH_PERF, &FpgaPlatform::zc706());
        let m = PowerModel::for_platform(&FpgaPlatform::zc706());
        assert_eq!(e.session_draw_w.to_bits(), m.power_w(&HIGH_PERF).to_bits());
    }
}
