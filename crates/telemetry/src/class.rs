//! Per-session and per-traffic-class telemetry scopes.
//!
//! Every fleet session owns one [`SessionTelemetry`] inside its
//! checkpointable core: the step path records the *modelled* latency and
//! energy of each optimized window (deterministic quantities — wall time
//! stays out of these records on purpose). After the fleet drains, the
//! driver folds the per-session telemetry into a [`FleetTelemetry`] in
//! canonical submission order, so a 1-worker and an 8-worker run of the
//! same batch produce byte-identical aggregates regardless of completion
//! order.

use crate::histogram::{energy_nj, latency_ns, Histogram};

/// Serving traffic classes, mirroring the fleet's session priorities.
///
/// Kept as a separate enum so `archytas-telemetry` stays below
/// `archytas-fleet` in the dependency graph; the fleet layer maps its
/// `Priority` into this via a trivial `From` impl.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TrafficClass {
    /// Best-effort sessions: first shed under pressure.
    Low,
    /// Default class: may be deferred, never shed.
    Normal,
    /// Safety-critical sessions: never shed, never deferred.
    High,
}

impl TrafficClass {
    /// All classes in canonical (ascending-priority) order.
    pub const ALL: [TrafficClass; 3] =
        [TrafficClass::Low, TrafficClass::Normal, TrafficClass::High];

    /// Stable index into per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name for machine-readable records.
    pub fn name(self) -> &'static str {
        match self {
            TrafficClass::Low => "low",
            TrafficClass::Normal => "normal",
            TrafficClass::High => "high",
        }
    }
}

/// Iteration-count distribution slots: per-window LM iteration decisions
/// are capped far below this (the runtime's `ITER_CAP` is 6), and larger
/// observations clamp into the last slot rather than widening the array.
pub const ITER_SLOTS: usize = 9;

/// Telemetry recorded by one session's step path.
///
/// All state is fixed-size integers — recording allocates nothing
/// (pinned by `tests/zero_alloc.rs`), and cloning it with the session's
/// checkpoint restores telemetry to exactly the bits it had when the
/// checkpoint was taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionTelemetry {
    /// Modelled per-window accelerator latency, quantized to ns.
    pub latency_ns: Histogram,
    /// Modelled per-window energy (Eq. 17 gated power × latency),
    /// quantized to nJ.
    pub energy_nj: Histogram,
    /// Windows observed at each LM iteration count (clamped to the last
    /// slot).
    pub iterations: [u64; ITER_SLOTS],
    /// Optimized windows recorded.
    pub windows: u64,
}

impl Default for SessionTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionTelemetry {
    /// An empty record.
    pub const fn new() -> Self {
        Self {
            latency_ns: Histogram::new(),
            energy_nj: Histogram::new(),
            iterations: [0; ITER_SLOTS],
            windows: 0,
        }
    }

    /// Records one optimized window: modelled latency (ms), modelled
    /// energy (mJ), and the runtime's iteration decision for the window.
    #[inline]
    pub fn record_window(&mut self, latency_ms: f64, energy_mj: f64, iterations: u32) {
        self.latency_ns.record(latency_ns(latency_ms));
        self.energy_nj.record(energy_nj(energy_mj));
        self.iterations[(iterations as usize).min(ITER_SLOTS - 1)] += 1;
        self.windows += 1;
    }
}

/// Aggregate over a set of sessions (the whole fleet, or one traffic
/// class). Built by folding [`SessionTelemetry`] records in canonical
/// submission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeAggregate {
    /// Sessions folded in.
    pub sessions: u64,
    /// Total optimized windows.
    pub windows: u64,
    /// Merged latency histogram (ns).
    pub latency_ns: Histogram,
    /// Merged energy histogram (nJ).
    pub energy_nj: Histogram,
    /// Summed iteration-count distribution.
    pub iterations: [u64; ITER_SLOTS],
}

impl Default for ScopeAggregate {
    fn default() -> Self {
        Self::new()
    }
}

impl ScopeAggregate {
    /// An empty aggregate.
    pub const fn new() -> Self {
        Self {
            sessions: 0,
            windows: 0,
            latency_ns: Histogram::new(),
            energy_nj: Histogram::new(),
            iterations: [0; ITER_SLOTS],
        }
    }

    /// Folds one session's telemetry in. Exactly associative (all-integer
    /// state), so any partition of the session set merges to the same
    /// bits as long as the final fold order is canonical.
    pub fn absorb(&mut self, t: &SessionTelemetry) {
        self.sessions += 1;
        self.windows += t.windows;
        self.latency_ns.merge(&t.latency_ns);
        self.energy_nj.merge(&t.energy_nj);
        for (a, b) in self.iterations.iter_mut().zip(&t.iterations) {
            *a += *b;
        }
    }

    /// Folds another aggregate in (for hierarchical merges).
    pub fn merge(&mut self, other: &Self) {
        self.sessions += other.sessions;
        self.windows += other.windows;
        self.latency_ns.merge(&other.latency_ns);
        self.energy_nj.merge(&other.energy_nj);
        for (a, b) in self.iterations.iter_mut().zip(&other.iterations) {
            *a += *b;
        }
    }

    /// Running power implied by the recorded samples: total modelled
    /// energy over total modelled busy time. The units cancel exactly
    /// (nJ / ns = W), so this is the Eq. 17 gated power averaged over
    /// every recorded window, weighted by window latency.
    pub fn watts(&self) -> f64 {
        let ns = self.latency_ns.total();
        if ns == 0 {
            0.0
        } else {
            self.energy_nj.total() as f64 / ns as f64
        }
    }

    /// Mean LM iterations per optimized window.
    pub fn mean_iterations(&self) -> f64 {
        if self.windows == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .iterations
            .iter()
            .enumerate()
            .map(|(i, &c)| i as u64 * c)
            .sum();
        weighted as f64 / self.windows as f64
    }
}

/// Fleet-wide telemetry: one aggregate per traffic class plus the total.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetTelemetry {
    /// Everything, all classes merged.
    pub fleet: ScopeAggregate,
    /// Per-class aggregates, indexed by [`TrafficClass::index`].
    pub classes: [ScopeAggregate; 3],
}

impl FleetTelemetry {
    /// Folds per-session telemetry in canonical (submission) order. The
    /// caller supplies sessions in arrival order; because every merge is
    /// exactly associative, the result is independent of which worker
    /// completed which session when.
    pub fn fold<'a>(
        sessions: impl IntoIterator<Item = (TrafficClass, &'a SessionTelemetry)>,
    ) -> Self {
        let mut out = Self::default();
        for (class, telemetry) in sessions {
            out.fleet.absorb(telemetry);
            out.classes[class.index()].absorb(telemetry);
        }
        out
    }

    /// The aggregate for one class.
    pub fn class(&self, class: TrafficClass) -> &ScopeAggregate {
        &self.classes[class.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_session(seed: u64, windows: u32) -> SessionTelemetry {
        let mut t = SessionTelemetry::new();
        for w in 0..windows {
            let x = (seed.wrapping_mul(31).wrapping_add(w as u64)) % 7;
            t.record_window(
                1.0 + x as f64 * 0.2,
                3.0 + x as f64 * 0.5,
                3 + (x as u32 % 4),
            );
        }
        t
    }

    #[test]
    fn record_window_fills_all_scopes() {
        let mut t = SessionTelemetry::new();
        t.record_window(2.0, 8.0, 4);
        assert_eq!(t.windows, 1);
        assert_eq!(t.latency_ns.count(), 1);
        assert_eq!(t.latency_ns.total(), 2_000_000);
        assert_eq!(t.energy_nj.total(), 8_000_000);
        assert_eq!(t.iterations[4], 1);
    }

    #[test]
    fn iteration_overflow_clamps_to_last_slot() {
        let mut t = SessionTelemetry::new();
        t.record_window(1.0, 1.0, 1_000);
        assert_eq!(t.iterations[ITER_SLOTS - 1], 1);
    }

    #[test]
    fn watts_is_energy_over_time() {
        let mut agg = ScopeAggregate::new();
        let mut t = SessionTelemetry::new();
        // 2 ms at 4 W → 8 mJ.
        t.record_window(2.0, 8.0, 3);
        agg.absorb(&t);
        assert!((agg.watts() - 4.0).abs() < 1e-9);
        assert_eq!(ScopeAggregate::new().watts(), 0.0);
    }

    #[test]
    fn fold_is_partition_independent() {
        let sessions: Vec<(TrafficClass, SessionTelemetry)> = (0..6)
            .map(|i| {
                let class = TrafficClass::ALL[i % 3];
                (class, sample_session(i as u64, 40 + i as u32))
            })
            .collect();
        let direct = FleetTelemetry::fold(sessions.iter().map(|(c, t)| (*c, t)));

        // Simulate workers finishing in scrambled order, then canonical fold.
        let mut partial: [ScopeAggregate; 3] = Default::default();
        for (c, t) in sessions.iter().rev() {
            partial[c.index()].absorb(t);
        }
        let mut merged = ScopeAggregate::new();
        for p in &partial {
            merged.merge(p);
        }
        assert_eq!(direct.fleet.windows, merged.windows);
        assert_eq!(direct.fleet.latency_ns, merged.latency_ns);
        assert_eq!(direct.fleet.energy_nj, merged.energy_nj);
    }

    #[test]
    fn mean_iterations_weights_by_count() {
        let mut agg = ScopeAggregate::new();
        let mut t = SessionTelemetry::new();
        t.record_window(1.0, 1.0, 2);
        t.record_window(1.0, 1.0, 6);
        agg.absorb(&t);
        assert!((agg.mean_iterations() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn class_names_are_stable() {
        assert_eq!(TrafficClass::Low.name(), "low");
        assert_eq!(TrafficClass::Normal.name(), "normal");
        assert_eq!(TrafficClass::High.name(), "high");
        assert_eq!(TrafficClass::High.index(), 2);
    }
}
