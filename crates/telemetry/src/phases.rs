//! Per-phase wall-time observability, hooked into `archytas-par`'s global
//! counters.
//!
//! Phase wall time is *timing*, not determinism: it belongs in the OBSJSON
//! superset line and the human table, never in the byte-diff-gated
//! aggregate records. This module wraps the counters' snapshot into rows
//! with derived shares so every consumer (the `obs` bin, future
//! dashboards) computes percentages the same way.

use archytas_par::counters;

/// One row of the phase wall-time table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseRow {
    /// Stable snake_case phase name.
    pub name: &'static str,
    /// Total attributed wall nanoseconds.
    pub wall_ns: u64,
    /// Timed scopes entered.
    pub calls: u64,
    /// Share of the total attributed time, in `[0, 1]`.
    pub share: f64,
}

/// Snapshot of every phase with at least one recorded call, in declaration
/// order, with shares of the attributed total.
pub fn phase_rows() -> Vec<PhaseRow> {
    let snap = counters::snapshot();
    let total_ns = counters::attributed_total_ns();
    snap.iter()
        .filter(|t| t.calls > 0)
        .map(|t| PhaseRow {
            name: t.name,
            wall_ns: t.ns,
            calls: t.calls,
            share: if total_ns == 0 {
                0.0
            } else {
                t.ns as f64 / total_ns as f64
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use archytas_par::counters::Phase;

    #[test]
    fn rows_reflect_recorded_phases() {
        // Counters are process-global; this is the only test in this crate
        // touching them, so no cross-test lock is needed here.
        counters::reset();
        counters::enable();
        counters::time(Phase::Factorization, || {
            std::hint::black_box((0..10_000).sum::<u64>())
        });
        counters::time(Phase::Assembly, || std::hint::black_box(1));
        counters::disable();
        let rows = phase_rows();
        counters::reset();
        assert!(rows.iter().any(|r| r.name == "factorization"));
        assert!(rows.iter().all(|r| r.calls > 0));
        let total_share: f64 = rows.iter().map(|r| r.share).sum();
        assert!((total_share - 1.0).abs() < 1e-9);
    }
}
