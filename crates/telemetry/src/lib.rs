//! Serving-grade observability for the Archytas fleet layer.
//!
//! Three concerns, one dependency-light crate that sits between the
//! hardware model (`archytas-hw`) and the fleet scheduler
//! (`archytas-fleet` depends on *us*, never the reverse):
//!
//! 1. **Streaming histograms** ([`histogram`]): zero-alloc, fixed-bucket,
//!    log-spaced, with a bitwise-deterministic merge. Sessions record
//!    modelled window latency (ns) and modelled window energy (nJ) on the
//!    hot path; aggregates fold in canonical submission order so every
//!    pool size produces byte-identical records.
//! 2. **Traffic-class energy accounting** ([`class`]): per-session
//!    telemetry rolls up per class and fleet-wide; because energy samples
//!    are Eq. 17 gated power × modelled latency, `energy/time` recovers
//!    the running fleet watts exactly (nJ/ns = W).
//! 3. **Power-envelope bookkeeping** ([`envelope`]): a fleet-wide watt
//!    budget priced at the deployed design's Eq. 17 power, evaluated
//!    serially in arrival order so admission decisions are identical at
//!    every pool size.
//!
//! Phase-level wall time ([`phases`]) rides along as a thin veneer over
//! `archytas-par`'s global counters — timing only, excluded from every
//! determinism gate.

#![forbid(unsafe_code)]

pub mod class;
pub mod envelope;
pub mod histogram;
pub mod phases;

pub use class::{FleetTelemetry, ScopeAggregate, SessionTelemetry, TrafficClass, ITER_SLOTS};
pub use envelope::PowerEnvelope;
pub use histogram::{bucket_index, bucket_lower_bound, energy_nj, latency_ns, Histogram, BUCKETS};
pub use phases::{phase_rows, PhaseRow};
