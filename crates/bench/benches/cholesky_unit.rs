//! Criterion bench for the Cholesky block (Sec. 4.3 / Sec. 7.5's HLS
//! study) and its ablation: multi-lane Update vs single-lane, plus the
//! software factorization it models.

use archytas_baselines::HlsCholesky;
use archytas_hw::{cholesky_latency, cholesky_timeline};
use archytas_math::{Cholesky, DMat};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn spd(n: usize) -> DMat {
    DMat::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.1)
        .gram()
        .add_diagonal(n as f64)
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky_unit");

    // Software factorization (what the CPU baseline executes).
    for n in [60usize, 150, 225] {
        let a = spd(n);
        group.bench_with_input(BenchmarkId::new("software_factor", n), &a, |b, a| {
            b.iter(|| Cholesky::factor(black_box(a)).expect("SPD"))
        });
    }

    // Event-driven microarchitecture simulation across lane counts
    // (ablation: balanced multi-Update pipeline vs s = 1).
    for s in [1usize, 6, 34, 97] {
        group.bench_with_input(BenchmarkId::new("timeline_sim_150", s), &s, |b, &s| {
            b.iter(|| cholesky_timeline(black_box(150), s))
        });
    }

    // Closed-form Eq. 7 (what the synthesizer's inner loop evaluates).
    group.bench_function("analytical_model_150x34", |b| {
        b.iter(|| cholesky_latency(black_box(150), black_box(34)))
    });

    // HLS comparator model.
    group.bench_function("hls_model_150", |b| {
        let hls = HlsCholesky::default();
        b.iter(|| hls.slowdown_vs_hand(black_box(150), black_box(34)))
    });

    group.finish();
}

criterion_group!(benches, bench_cholesky);
criterion_main!(benches);
