//! Criterion bench of the software solver — the native execution behind the
//! CPU baselines of Figs. 15–16: per-window linearization, Schur solve, and
//! a full LM pass.

use archytas_dataset::{kitti_sequences, PipelineConfig, VioPipeline};
use archytas_slam::{
    build_normal_equations, schur_linear_solver, solve, FactorWeights, LmConfig, SlidingWindow,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Builds one realistic full window from a KITTI-like sequence.
fn realistic_window() -> SlidingWindow {
    let data = kitti_sequences()[2].truncated(2.0).build();
    let mut pipeline = VioPipeline::new(PipelineConfig::default());
    for frame in &data.frames {
        if pipeline.push_frame(frame) {
            break;
        }
    }
    pipeline.window().clone()
}

fn bench_solver(c: &mut Criterion) {
    let window = realistic_window();
    let weights = FactorWeights::default();
    let mut group = c.benchmark_group("solver");
    group.sample_size(20);

    group.bench_function("build_normal_equations", |b| {
        b.iter(|| build_normal_equations(black_box(&window), &weights, None))
    });

    // Damp as the LM loop does: the raw normal equations of a freshly
    // initialized window can be rank-deficient before damping.
    let ne = build_normal_equations(&window, &weights, None);
    let mut damped = ne.a.clone();
    for i in 0..damped.rows() {
        damped.add_at(i, i, 1e-3 * ne.a.get(i, i).max(1e-9));
    }
    group.bench_function("schur_linear_solve", |b| {
        b.iter(|| {
            schur_linear_solver(black_box(&damped), black_box(&ne.b), ne.num_landmarks)
                .expect("solvable")
        })
    });

    group.bench_function("lm_full_window_6_iterations", |b| {
        b.iter(|| {
            let mut w = window.clone();
            solve(
                &mut w,
                &weights,
                None,
                &LmConfig::with_iterations(6),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
