//! Criterion bench of the software solver — the native execution behind the
//! CPU baselines of Figs. 15–16: per-window linearization, Schur solve, and
//! a full LM pass.

use archytas_dataset::{kitti_sequences, PipelineConfig, VioPipeline};
use archytas_math::fixed::{self, sub_scaled_panel, syrk_scatter};
use archytas_math::kernels::sub_scaled;
use archytas_math::{BlockSparseSystem, Cholesky, DMat, SchurScratch};
use archytas_par::{counters, Pool};
use archytas_slam::{
    build_block_normal_equations, build_normal_equations, schur_linear_solver, solve,
    solve_in_workspace, FactorWeights, LmConfig, SlidingWindow, SolverWorkspace,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Builds one realistic full window from a KITTI-like sequence.
fn realistic_window() -> SlidingWindow {
    let data = kitti_sequences()[2].truncated(2.0).build();
    let mut pipeline = VioPipeline::new(PipelineConfig::default());
    for frame in &data.frames {
        if pipeline.push_frame(frame) {
            break;
        }
    }
    pipeline.window().clone()
}

fn bench_solver(c: &mut Criterion) {
    let window = realistic_window();
    let weights = FactorWeights::default();
    let mut group = c.benchmark_group("solver");
    group.sample_size(20);

    group.bench_function("build_normal_equations", |b| {
        b.iter(|| build_normal_equations(black_box(&window), &weights, None))
    });

    // Damp as the LM loop does: the raw normal equations of a freshly
    // initialized window can be rank-deficient before damping.
    let ne = build_normal_equations(&window, &weights, None);
    let mut damped = ne.a.clone();
    for i in 0..damped.rows() {
        damped.add_at(i, i, 1e-3 * ne.a.get(i, i).max(1e-9));
    }
    group.bench_function("schur_linear_solve", |b| {
        b.iter(|| {
            schur_linear_solver(black_box(&damped), black_box(&ne.b), ne.num_landmarks)
                .expect("solvable")
        })
    });

    // Block-sparse counterparts: same window, assembled into the
    // block-structured system and solved via Schur elimination that never
    // materializes the dense `A` (bit-identical outputs by construction).
    let mut sys = BlockSparseSystem::new();
    group.bench_function("build_block_normal_equations", |b| {
        b.iter(|| build_block_normal_equations(black_box(&window), &weights, None, &mut sys))
    });

    build_block_normal_equations(&window, &weights, None, &mut sys);
    sys.damp(1e-3, 1e-9);
    let mut scratch = SchurScratch::default();
    let mut delta = archytas_math::DVec::zeros(0);
    let pool = Pool::global();
    group.bench_function("block_schur_linear_solve", |b| {
        b.iter(|| {
            sys.solve_into(&mut scratch, &pool, &mut delta)
                .expect("solvable");
            black_box(&delta);
        })
    });

    // Per-kernel microbenches: each deployed fixed-width form against an
    // open-coded replay of the slice predecessor on identical operands, so
    // BENCH_solver.json records the two means side by side and the perf gate
    // tracks the kernels independently of the end-to-end phases.
    let n_blk6 = 64;
    let mut dst6 = vec![0.25f64; 6 * n_blk6];
    let src6a: Vec<f64> = (0..6 * n_blk6)
        .map(|i| (i % 7) as f64 * 0.25 - 0.5)
        .collect();
    let src6b: Vec<f64> = (0..6 * n_blk6)
        .map(|i| (i % 5) as f64 * 0.5 - 1.0)
        .collect();
    group.bench_function("kernel_mac6_fixed", |b| {
        b.iter(|| {
            for blk in 0..n_blk6 {
                let at = blk * 6;
                fixed::Vec::<f64, 6>::from_mut_slice(&mut dst6[at..]).axpy_skip2(
                    fixed::Vec::from_slice(&src6a[at..]),
                    0.75,
                    fixed::Vec::from_slice(&src6b[at..]),
                    -0.25,
                );
            }
            black_box(&mut dst6);
        })
    });
    group.bench_function("kernel_mac6_slice", |b| {
        b.iter(|| {
            for blk in 0..n_blk6 {
                let at = blk * 6;
                for (src, s) in [(&src6a, 0.75), (&src6b, -0.25)] {
                    for t in 0..6 {
                        let v = src[at + t];
                        if v != 0.0 {
                            dst6[at + t] += s * v;
                        }
                    }
                }
            }
            black_box(&mut dst6);
        })
    });

    let n_blk15 = 32;
    let mut dst15 = vec![0.25f64; 15 * n_blk15];
    let src15: Vec<f64> = (0..15 * n_blk15)
        .map(|i| (i % 11) as f64 * 0.125 - 0.5)
        .collect();
    group.bench_function("kernel_mac15_fixed", |b| {
        b.iter(|| {
            for blk in 0..n_blk15 {
                let at = blk * 15;
                fixed::Vec::<f64, 15>::from_mut_slice(&mut dst15[at..])
                    .axpy_skip(fixed::Vec::from_slice(&src15[at..]), 0.375);
            }
            black_box(&mut dst15);
        })
    });
    group.bench_function("kernel_mac15_slice", |b| {
        b.iter(|| {
            for blk in 0..n_blk15 {
                let at = blk * 15;
                for t in 0..15 {
                    let v = src15[at + t];
                    if v != 0.0 {
                        dst15[at + t] += 0.375 * v;
                    }
                }
            }
            black_box(&mut dst15);
        })
    });

    // Rank-6 SYRK block scatter (the Schur elimination inner kernel): one
    // 6-high W block row applied at four block columns of a 6 x 128 panel.
    let pitch = 128;
    let mut syrk_rows = vec![0.5f64; 6 * pitch];
    let syrk_cols: Vec<u32> = vec![0, 30, 60, 90];
    let syrk_vals: Vec<f64> = (0..6 * 4).map(|i| (i % 9) as f64 * 0.25 - 1.0).collect();
    let syrk_s = [0.5, -0.25, 0.0, 1.5, 0.125, -1.0];
    group.bench_function("kernel_syrk6_fixed", |b| {
        b.iter(|| {
            syrk_scatter::<f64, 6>(&mut syrk_rows, pitch, &syrk_s, &syrk_cols, &syrk_vals);
            black_box(&mut syrk_rows);
        })
    });
    group.bench_function("kernel_syrk6_slice", |b| {
        b.iter(|| {
            for t in 0..6 {
                if syrk_s[t] == 0.0 {
                    continue;
                }
                for (bj, &c0) in syrk_cols.iter().enumerate() {
                    for i in 0..6 {
                        syrk_rows[t * pitch + c0 as usize + i] += syrk_s[t] * syrk_vals[bj * 6 + i];
                    }
                }
            }
            black_box(&mut syrk_rows);
        })
    });

    // PANEL-wide fused trailing update vs eight sequential rank-1 sweeps.
    let mut panel_dst = vec![1.0f64; 256];
    let panel_srcs: Vec<Vec<f64>> = (0..8)
        .map(|k| {
            (0..256)
                .map(|i| ((i + k) % 13) as f64 * 0.0625 - 0.375)
                .collect()
        })
        .collect();
    let panel_a = [0.5, -0.25, 0.125, 0.75, -0.5, 0.25, -0.125, 0.0625];
    group.bench_function("kernel_panel8_fixed", |b| {
        b.iter(|| {
            let refs: [&[f64]; 8] = std::array::from_fn(|k| panel_srcs[k].as_slice());
            sub_scaled_panel::<f64, 8>(&mut panel_dst, &refs, &panel_a);
            black_box(&mut panel_dst);
        })
    });
    group.bench_function("kernel_panel8_slice", |b| {
        b.iter(|| {
            for k in 0..8 {
                sub_scaled(&mut panel_dst, &panel_srcs[k], panel_a[k]);
            }
            black_box(&mut panel_dst);
        })
    });

    // The blocked in-place refactorization the LM loop runs every iteration
    // (panel sweeps + fused trailing updates) on a Schur-complement-sized
    // SPD matrix.
    let nq = 64;
    let spd = {
        let mut m = DMat::zeros(nq, nq);
        for r in 0..nq {
            for c in 0..nq {
                let v = 0.02 / (1.0 + (r as f64 - c as f64).abs());
                m.set(r, c, if r == c { 2.0 + v } else { v });
            }
        }
        m
    };
    let mut chol = Cholesky::factor(&spd).expect("SPD");
    group.bench_function("kernel_panel_factor", |b| {
        b.iter(|| {
            chol.refactor_with(black_box(&spd), &pool).expect("SPD");
            black_box(&mut chol);
        })
    });

    // Per-phase attribution of the full LM windows below: the counters are
    // live for exactly the two end-to-end benches, and their totals are
    // printed as a PERFJSON line that bench_smoke.sh folds into
    // BENCH_solver.json.
    counters::reset();
    counters::enable();

    group.bench_function("lm_full_window_6_iterations", |b| {
        b.iter(|| {
            let mut w = window.clone();
            solve(&mut w, &weights, None, &LmConfig::with_iterations(6))
        })
    });

    // Cross-window workspace reuse (the pipeline's steady state): every
    // buffer — block system, Schur scratch, increment, candidate window —
    // survives between solves.
    let mut ws = SolverWorkspace::new();
    group.bench_function("lm_full_window_reused_workspace", |b| {
        b.iter(|| {
            let mut w = window.clone();
            solve_in_workspace(
                &mut ws,
                &mut w,
                &weights,
                None,
                &LmConfig::with_iterations(6),
            )
        })
    });

    group.finish();
    counters::disable();
    println!("PERFJSON {}", counters::perfjson());
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
