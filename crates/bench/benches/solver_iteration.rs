//! Criterion bench of the software solver — the native execution behind the
//! CPU baselines of Figs. 15–16: per-window linearization, Schur solve, and
//! a full LM pass.

use archytas_dataset::{kitti_sequences, PipelineConfig, VioPipeline};
use archytas_math::{BlockSparseSystem, SchurScratch};
use archytas_par::{counters, Pool};
use archytas_slam::{
    build_block_normal_equations, build_normal_equations, schur_linear_solver, solve,
    solve_in_workspace, FactorWeights, LmConfig, SlidingWindow, SolverWorkspace,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Builds one realistic full window from a KITTI-like sequence.
fn realistic_window() -> SlidingWindow {
    let data = kitti_sequences()[2].truncated(2.0).build();
    let mut pipeline = VioPipeline::new(PipelineConfig::default());
    for frame in &data.frames {
        if pipeline.push_frame(frame) {
            break;
        }
    }
    pipeline.window().clone()
}

fn bench_solver(c: &mut Criterion) {
    let window = realistic_window();
    let weights = FactorWeights::default();
    let mut group = c.benchmark_group("solver");
    group.sample_size(20);

    group.bench_function("build_normal_equations", |b| {
        b.iter(|| build_normal_equations(black_box(&window), &weights, None))
    });

    // Damp as the LM loop does: the raw normal equations of a freshly
    // initialized window can be rank-deficient before damping.
    let ne = build_normal_equations(&window, &weights, None);
    let mut damped = ne.a.clone();
    for i in 0..damped.rows() {
        damped.add_at(i, i, 1e-3 * ne.a.get(i, i).max(1e-9));
    }
    group.bench_function("schur_linear_solve", |b| {
        b.iter(|| {
            schur_linear_solver(black_box(&damped), black_box(&ne.b), ne.num_landmarks)
                .expect("solvable")
        })
    });

    // Block-sparse counterparts: same window, assembled into the
    // block-structured system and solved via Schur elimination that never
    // materializes the dense `A` (bit-identical outputs by construction).
    let mut sys = BlockSparseSystem::new();
    group.bench_function("build_block_normal_equations", |b| {
        b.iter(|| build_block_normal_equations(black_box(&window), &weights, None, &mut sys))
    });

    build_block_normal_equations(&window, &weights, None, &mut sys);
    sys.damp(1e-3, 1e-9);
    let mut scratch = SchurScratch::default();
    let mut delta = archytas_math::DVec::zeros(0);
    let pool = Pool::global();
    group.bench_function("block_schur_linear_solve", |b| {
        b.iter(|| {
            sys.solve_into(&mut scratch, &pool, &mut delta)
                .expect("solvable");
            black_box(&delta);
        })
    });

    // Per-phase attribution of the full LM windows below: the counters are
    // live for exactly the two end-to-end benches, and their totals are
    // printed as a PERFJSON line that bench_smoke.sh folds into
    // BENCH_solver.json.
    counters::reset();
    counters::enable();

    group.bench_function("lm_full_window_6_iterations", |b| {
        b.iter(|| {
            let mut w = window.clone();
            solve(&mut w, &weights, None, &LmConfig::with_iterations(6))
        })
    });

    // Cross-window workspace reuse (the pipeline's steady state): every
    // buffer — block system, Schur scratch, increment, candidate window —
    // survives between solves.
    let mut ws = SolverWorkspace::new();
    group.bench_function("lm_full_window_reused_workspace", |b| {
        b.iter(|| {
            let mut w = window.clone();
            solve_in_workspace(
                &mut ws,
                &mut w,
                &weights,
                None,
                &LmConfig::with_iterations(6),
            )
        })
    });

    group.finish();
    counters::disable();
    println!("PERFJSON {}", counters::perfjson());
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
