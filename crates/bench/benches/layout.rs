//! Criterion bench for the S-matrix layout (Sec. 3.3): split-storage
//! assembly/reconstruction vs dense operations, plus the storage-model
//! evaluation the synthesizer performs.

use archytas_math::DMat;
use archytas_mdfg::{storage_words, LayoutScheme, SplitS, POSE_DOF};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn filled_split(k: usize, b: usize) -> SplitS<f64> {
    let mut s = SplitS::zeros(k, b);
    let diag = DMat::from_fn(k, k, |i, j| ((i + j) % 5) as f64);
    let sub = DMat::from_fn(k, k, |i, j| ((i * 2 + j) % 7) as f64);
    let cam = DMat::from_fn(POSE_DOF, POSE_DOF, |i, j| ((i * 3 + j) % 3) as f64);
    for i in 0..b {
        s.add_imu_block(i, i, &diag);
        if i + 1 < b {
            s.add_imu_block(i + 1, i, &sub);
        }
        for j in 0..=i {
            s.add_camera_block(i, j, &cam);
        }
    }
    s
}

fn bench_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout");

    for b_kf in [10usize, 15] {
        let split = filled_split(15, b_kf);
        group.bench_with_input(
            BenchmarkId::new("split_to_dense", b_kf),
            &split,
            |bench, split| bench.iter(|| split.to_dense()),
        );
        group.bench_with_input(
            BenchmarkId::new("split_assemble", b_kf),
            &b_kf,
            |bench, &b_kf| bench.iter(|| filled_split(15, black_box(b_kf))),
        );
    }

    group.bench_function("storage_model_all_schemes", |b| {
        b.iter(|| {
            [
                LayoutScheme::DenseFull,
                LayoutScheme::DenseSymmetric,
                LayoutScheme::SplitCompressed,
                LayoutScheme::Csr,
            ]
            .map(|s| storage_words(s, black_box(15), black_box(15)))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
