//! Criterion bench for Sec. 7.3: time for the synthesizer to identify a
//! design in the ~90,000-point space (paper: seconds vs 15 years of
//! synthesis-in-the-loop search), plus the re-synthesis paths the fleet
//! layer leans on — warm-started search and the memoized `SynthCache`.
//!
//! Every case runs one untimed warmup search first so one-time process
//! state (pool calibration, allocator warmup, lazy platform tables) is paid
//! outside the sampling loop — `zc706_min_latency`'s historical
//! 748 µs-on-3.8 ms stddev was exactly this first-sample pollution.
//!
//! After the timed runs, per-case search counters are printed as
//! `SYNTHJSON {...}` lines that `bench_smoke.sh` folds into
//! `BENCH_par.json`'s `synth_search` section.

use archytas_core::{
    synthesize, synthesize_warm, DesignSpec, Objective, SynthCache, SynthesizedDesign,
};
use archytas_hw::FpgaPlatform;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn zc706_min_latency_spec() -> DesignSpec {
    DesignSpec {
        objective: Objective::MinLatency,
        ..DesignSpec::zc706_power_optimal(0.0)
    }
}

fn virtex7_min_latency_spec() -> DesignSpec {
    DesignSpec {
        platform: FpgaPlatform::virtex7_690t(),
        objective: Objective::MinLatency,
        ..DesignSpec::zc706_power_optimal(0.0)
    }
}

fn synthjson(case: &str, d: &SynthesizedDesign) -> String {
    format!(
        "SYNTHJSON {{\"case\":\"{case}\",\"examined\":{},\"pruned\":{}}}",
        d.candidates_examined, d.candidates_pruned
    )
}

fn bench_synthesizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesizer");
    group.sample_size(20);
    let mut counters: Vec<String> = Vec::new();

    group.bench_function("zc706_power_optimal_20ms", |b| {
        let spec = DesignSpec::zc706_power_optimal(20.0);
        counters.push(synthjson(
            "zc706_power_optimal_20ms",
            &synthesize(&spec).expect("feasible"),
        ));
        b.iter(|| synthesize(black_box(&spec)).expect("feasible"))
    });

    group.bench_function("zc706_min_latency", |b| {
        let spec = zc706_min_latency_spec();
        counters.push(synthjson(
            "zc706_min_latency",
            &synthesize(&spec).expect("feasible"),
        ));
        b.iter(|| synthesize(black_box(&spec)).expect("feasible"))
    });

    group.bench_function("virtex7_min_latency_scaled_lattice", |b| {
        let spec = virtex7_min_latency_spec();
        counters.push(synthjson(
            "virtex7_min_latency_scaled_lattice",
            &synthesize(&spec).expect("feasible"),
        ));
        b.iter(|| synthesize(black_box(&spec)).expect("feasible"))
    });

    group.bench_function("virtex7_min_latency_warm_resynthesis", |b| {
        // The fleet re-optimization path: a neighboring deployment (same
        // board, drifted workload) supplies its optimum as the prior.
        let spec = virtex7_min_latency_spec();
        let mut drifted = spec.clone();
        drifted.shape.features += 30;
        drifted.shape.marginalized_features += 5;
        let prior = synthesize(&drifted).expect("feasible");
        counters.push(synthjson(
            "virtex7_min_latency_warm_resynthesis",
            &synthesize_warm(&spec, &prior).expect("feasible"),
        ));
        b.iter(|| synthesize_warm(black_box(&spec), black_box(&prior)).expect("feasible"))
    });

    group.bench_function("synth_cache_hit", |b| {
        // Steady-state fleet tick: the class's canonical spec is already
        // cached, so a lookup must cost microseconds, not a search.
        let cache = SynthCache::new();
        let spec = virtex7_min_latency_spec();
        cache.synthesize(&spec).expect("feasible");
        b.iter(|| cache.synthesize(black_box(&spec)).expect("feasible"));
        counters.push(format!(
            "SYNTHJSON {{\"case\":\"synth_cache_hit\",\"cache_hits\":{},\"cache_misses\":{}}}",
            cache.hits(),
            cache.searches()
        ));
    });

    group.finish();
    for line in counters {
        println!("{line}");
    }
}

criterion_group!(benches, bench_synthesizer);
criterion_main!(benches);
