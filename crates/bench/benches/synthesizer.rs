//! Criterion bench for Sec. 7.3: time for the synthesizer to identify a
//! design in the ~90,000-point space (paper: seconds vs 15 years of
//! synthesis-in-the-loop search).

use archytas_core::{synthesize, DesignSpec, Objective};
use archytas_hw::FpgaPlatform;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_synthesizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesizer");
    group.sample_size(20);

    group.bench_function("zc706_power_optimal_20ms", |b| {
        let spec = DesignSpec::zc706_power_optimal(20.0);
        b.iter(|| synthesize(black_box(&spec)).expect("feasible"))
    });

    group.bench_function("zc706_min_latency", |b| {
        let spec = DesignSpec {
            objective: Objective::MinLatency,
            ..DesignSpec::zc706_power_optimal(0.0)
        };
        b.iter(|| synthesize(black_box(&spec)).expect("feasible"))
    });

    group.bench_function("virtex7_min_latency_scaled_lattice", |b| {
        let spec = DesignSpec {
            platform: FpgaPlatform::virtex7_690t(),
            objective: Objective::MinLatency,
            ..DesignSpec::zc706_power_optimal(0.0)
        };
        b.iter(|| synthesize(black_box(&spec)).expect("feasible"))
    });

    group.finish();
}

criterion_group!(benches, bench_synthesizer);
criterion_main!(benches);
