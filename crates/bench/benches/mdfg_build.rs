//! Criterion bench for the M-DFG layer (Sec. 3): graph construction,
//! blocking-choice optimization, and the D-type-vs-direct ablation.

use archytas_mdfg::{build_mdfg, nls_schur_cost, optimal_nls_blocking, ProblemShape};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_mdfg(c: &mut Criterion) {
    let mut group = c.benchmark_group("mdfg");

    group.bench_function("build_typical", |b| {
        let shape = ProblemShape::typical();
        b.iter(|| build_mdfg(black_box(&shape)))
    });

    // Blocking sweep: the cost-model search behind Fig. 3's D-type choice.
    for features in [50usize, 150, 250] {
        let shape = ProblemShape {
            features,
            ..ProblemShape::typical()
        };
        group.bench_with_input(
            BenchmarkId::new("optimal_blocking", features),
            &shape,
            |b, shape| b.iter(|| optimal_nls_blocking(black_box(shape))),
        );
    }

    // Ablation: D-type Schur split vs the naive full-system solve (p = 0
    // degenerates to dense Cholesky of the whole system).
    group.bench_function("cost_dtype_vs_direct", |b| {
        let shape = ProblemShape::typical();
        b.iter(|| {
            let dtype = nls_schur_cost(black_box(&shape), shape.features);
            let direct_ish = nls_schur_cost(black_box(&shape), 1);
            (dtype, direct_ish)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_mdfg);
criterion_main!(benches);
