//! Criterion bench of the accelerator simulators: the per-window
//! cycle-level simulation (Figs. 13/15's inner loop), the f32 functional
//! datapath, and the dataflow ablation (feature-stationary vs a
//! keyframe-stationary Jacobian unit).

use archytas_dataset::{kitti_sequences, PipelineConfig, VioPipeline};
use archytas_hw::{
    f32_linear_solver, jacobian_feature_latency, simulate_window, AcceleratorConfig, HIGH_PERF,
};
use archytas_mdfg::ProblemShape;
use archytas_slam::{build_normal_equations, FactorWeights};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_accel(c: &mut Criterion) {
    let mut group = c.benchmark_group("accel_sim");

    let shape = ProblemShape::typical();
    for config in [AcceleratorConfig::new(8, 8, 16), HIGH_PERF] {
        group.bench_with_input(
            BenchmarkId::new("simulate_window", format!("nd{}", config.nd)),
            &config,
            |b, config| b.iter(|| simulate_window(black_box(&shape), config, 6)),
        );
    }

    // Dataflow ablation: the feature-stationary design pays No·Co per
    // feature (FIFO-fed); a keyframe-stationary alternative re-reads every
    // feature point from RAM, modelled as a 3× per-access penalty
    // (Sec. 4.2's power/latency argument for prioritizing feature reuse).
    group.bench_function("dataflow_ablation", |b| {
        b.iter(|| {
            let feature_stationary = shape.features as f64
                * jacobian_feature_latency(black_box(shape.obs_per_feature as f64));
            let keyframe_stationary = feature_stationary * 3.0;
            (feature_stationary, keyframe_stationary)
        })
    });

    // f32 functional datapath on a realistic window's normal equations.
    let data = kitti_sequences()[1].truncated(2.0).build();
    let mut pipeline = VioPipeline::new(PipelineConfig::default());
    for frame in &data.frames {
        if pipeline.push_frame(frame) {
            break;
        }
    }
    let ne = build_normal_equations(pipeline.window(), &FactorWeights::default(), None);
    // Damp exactly as the LM loop does before handing the system to the
    // datapath: the raw gauge-pinned normal equations mix scales beyond
    // f32's range.
    let mut damped = ne.a.clone();
    for i in 0..damped.rows() {
        let d = damped.get(i, i).max(1e-9);
        damped.add_at(i, i, 1e-3 * d);
    }
    group.sample_size(20);
    group.bench_function("f32_functional_solve", |b| {
        b.iter(|| {
            f32_linear_solver(black_box(&damped), black_box(&ne.b), ne.num_landmarks)
                .expect("solvable")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_accel);
criterion_main!(benches);
