//! Sec. 7.3 — hardware generator efficiency: the synthesizer identifies a
//! design in seconds where exhaustively synthesizing the ~90,000-point
//! design space through the FPGA flow would take ~15 years.
//!
//! Run: `cargo run --release -p archytas-bench --bin sec7_3`

use archytas_bench::banner;
use archytas_core::{synthesize, DesignSpec, ND_MAX, NM_MAX, S_MAX};
use std::time::Instant;

fn main() {
    banner("Sec. 7.3", "hardware generator efficiency");

    let space = ND_MAX * NM_MAX * S_MAX;
    println!(
        "design space: nd ∈ 1..={ND_MAX}, nm ∈ 1..={NM_MAX}, s ∈ 1..={S_MAX} → {space} designs"
    );

    // Exhaustive search through the real FPGA flow: ~1.5 h synthesis+layout
    // per design (paper's figure on their machine).
    let hours = space as f64 * 1.5;
    println!(
        "exhaustive search through synthesis/layout: {space} × 1.5 h ≈ {:.1} years (paper: 15 years)",
        hours / (24.0 * 365.0)
    );

    let mut total = std::time::Duration::ZERO;
    let mut designs = Vec::new();
    let bounds = [2.2, 3.0, 4.0, 6.0, 10.0];
    for bound in bounds {
        let start = Instant::now();
        let d = synthesize(&DesignSpec::zc706_power_optimal(bound)).expect("feasible");
        let dt = start.elapsed();
        total += dt;
        println!(
            "constraint {bound:>5.1} ms → (nd={:>2}, nm={:>2}, s={:>3}), power {:.2} W, found in {:?} ({} candidates)",
            d.config.nd, d.config.nm, d.config.s, d.power_w, dt, d.candidates_examined
        );
        designs.push(d);
    }
    println!();
    println!(
        "mean time to identify a design: {:.1} ms (paper: ~3 s including Verilog generation)",
        total.as_secs_f64() * 1e3 / bounds.len() as f64
    );
    println!(
        "speedup over exhaustive synthesis-in-the-loop search: ~{:.0e}x",
        hours * 3600.0 / (total.as_secs_f64() / bounds.len() as f64)
    );
}
