//! Sec. 6 ablation — three ways to drive the iteration knob:
//!
//! 1. **static cap** — no run-time optimization (every window at Iter = 6);
//! 2. **profiled LUT** — the paper's mechanism (offline table + 2-bit
//!    saturating counter + memoized gating);
//! 3. **adaptive** — the paper's future-work suggestion, implemented: an
//!    online-learned per-bucket requirement with no offline profiling.
//!
//! The estimator actually runs (f32 accelerator datapath); energy comes
//! from the gating tables.
//!
//! Run: `cargo run --release -p archytas-bench --bin sec6_ablation`

use archytas_bench::{banner, print_table};
use archytas_core::{AdaptiveIterPolicy, GatingTable, IterCounter, IterPolicy, ITER_CAP};
use archytas_dataset::{kitti_sequences, PipelineConfig, VioPipeline};
use archytas_hw::{f32_linear_solver, AcceleratorModel, FpgaPlatform, PowerModel, HIGH_PERF};
use archytas_mdfg::ProblemShape;
use archytas_slam::TrajectoryMetrics;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    StaticCap,
    ProfiledLut,
    Adaptive,
}

fn run(policy: Policy) -> (f64, f64, f64) {
    let duration = if std::env::var("ARCHYTAS_FULL").is_ok() {
        60.0
    } else {
        25.0
    };
    let data = kitti_sequences()[0].truncated(duration).build();
    let platform = FpgaPlatform::zc706();
    let model = AcceleratorModel::new(HIGH_PERF, platform.clone());
    let power = PowerModel::for_platform(&platform);
    let gating = GatingTable::build(&HIGH_PERF, &ProblemShape::typical(), 2.5, &platform);

    let lut = IterPolicy::default_table();
    let mut counter = IterCounter::new(ITER_CAP);
    let mut adaptive = AdaptiveIterPolicy::default();

    let mut pipeline = VioPipeline::new(PipelineConfig::default());
    let mut metrics = TrajectoryMetrics::new();
    let mut energy = 0.0;
    let mut iter_sum = 0usize;
    let mut windows = 0usize;

    for frame in &data.frames {
        if !pipeline.push_frame(frame) {
            continue;
        }
        let features = pipeline.window().num_landmarks();
        let iterations = match policy {
            Policy::StaticCap => ITER_CAP,
            Policy::ProfiledLut => counter.observe(lut.iterations_for(features)),
            Policy::Adaptive => adaptive.iterations_for(features),
        };
        let result = pipeline.optimize_and_slide_with(iterations, &f32_linear_solver);
        if policy == Policy::Adaptive {
            adaptive.observe(features, &result.report);
        }
        let shape = ProblemShape::from_workload(&result.workload);
        let latency = model.window_latency_ms(&shape, iterations);
        let p = match policy {
            Policy::StaticCap => model.power_w(),
            _ => power.gated_power_w(&HIGH_PERF, &gating.active_for(iterations)),
        };
        energy += latency * p;
        metrics.record(&result.estimate, &result.ground_truth, 0.0);
        iter_sum += iterations;
        windows += 1;
    }
    (
        energy,
        metrics.rmse() * 100.0,
        iter_sum as f64 / windows.max(1) as f64,
    )
}

fn main() {
    banner(
        "Sec. 6 ablation",
        "iteration-knob mechanisms: static cap vs profiled LUT vs online-adaptive",
    );
    let mut rows = Vec::new();
    let baseline = run(Policy::StaticCap);
    for (name, policy) in [
        ("static cap (no runtime)", Policy::StaticCap),
        ("profiled LUT + 2-bit counter (paper)", Policy::ProfiledLut),
        ("online adaptive (paper's future work)", Policy::Adaptive),
    ] {
        let (energy, rmse, avg_iter) = if policy == Policy::StaticCap {
            baseline
        } else {
            run(policy)
        };
        rows.push(vec![
            name.to_string(),
            format!("{energy:.1}"),
            format!("{:.1}%", (1.0 - energy / baseline.0) * 100.0),
            format!("{rmse:.1}"),
            format!("{avg_iter:.2}"),
        ]);
    }
    print_table(
        &["policy", "energy (mJ)", "saving", "RMSE (cm)", "avg Iter"],
        &rows,
    );
    println!();
    println!("expected shape: both dynamic policies save double-digit energy at ~unchanged RMSE;");
    println!("the adaptive policy needs no offline profiling pass but starts conservative");
    println!("(it must *observe* convergence before trimming the budget).");
}
