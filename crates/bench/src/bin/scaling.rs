//! Fleet scaling-curve bench: sweeps workers × sessions on the sharded
//! scheduler and proves the 1000-session story two ways.
//!
//! * **Sweep mode** (default): runs every point of
//!   `{1,2,4,8} workers × {8,64,512,2000} sessions` and emits one
//!   `SCALEJSON {...}` line per point — wall-clock throughput, pooled
//!   p50/p95/p99 frame latency, shard/steal/contention counters.
//!   `scripts/fleet_smoke.sh` folds these into `BENCH_fleet.json` and
//!   gates per-worker efficiency per point; `scripts/perf_gate.sh`
//!   regresses them against the committed baseline sweep point by point.
//! * **Soak mode** (`--soak`): a long-haul churn schedule — staggered
//!   joins, early leavers, mid-run priority flips, a restarted panic and a
//!   terminal quarantine — replayed at pools {1,2,8}. Every session must
//!   stay bitwise identical to `run_session_alone` and the quarantine set
//!   must be exact; any violation exits non-zero. Emits one
//!   `SOAKJSON {...}` line.
//!
//! Usage: `scaling [--quick] [--soak] [--seconds S] [--workers a,b,..]
//! [--sessions a,b,..]`

use archytas_bench::json::JsonLine;
use archytas_bench::scaling_fleet_specs;
use archytas_faults::{ChaosKind, ChaosPlan};
use archytas_fleet::{
    run_fleet, run_session_alone, FleetConfig, Priority, SessionOutcome, SessionSpec,
};

/// Active-set cap for every sweep point: large enough that any worker
/// count in the sweep can run width-8 parallel, small enough that a
/// 2000-session point holds ~64 activated frame streams resident, not
/// 2000 — the admitted-idle tail stays in its cheap pre-activation form.
const SWEEP_MAX_ACTIVE: usize = 64;

fn parse_list(v: &str) -> Vec<usize> {
    v.split(',')
        .map(|t| t.trim().parse().expect("comma-separated unsigned list"))
        .collect()
}

fn sweep_config(workers: usize) -> FleetConfig {
    FleetConfig {
        threads: workers,
        max_active: SWEEP_MAX_ACTIVE,
        ..FleetConfig::default()
    }
}

fn run_sweep_point(workers: usize, sessions: usize, seconds: f64, cpus: usize) {
    let specs = scaling_fleet_specs(sessions, seconds);
    let report = run_fleet(&specs, &sweep_config(workers));
    let completed = report
        .sessions
        .iter()
        .filter(|s| s.outcome == SessionOutcome::Completed)
        .count();
    assert_eq!(completed, sessions, "scaling sweep sessions must complete");
    let line = JsonLine::new()
        .uint("workers", workers as u64)
        .uint("sessions", sessions as u64)
        .uint("cpus", cpus as u64)
        .uint("max_active", SWEEP_MAX_ACTIVE as u64)
        .float("seconds", seconds, 2)
        .uint("frames", report.frames_processed as u64)
        .uint("windows", report.windows_processed as u64)
        .float("serving_wall_s", report.serving_wall_s, 6)
        .float("throughput_fps", report.throughput_fps, 3)
        .float("p50_us", report.latency.p50_ns as f64 / 1_000.0, 1)
        .float("p95_us", report.latency.p95_ns as f64 / 1_000.0, 1)
        .float("p99_us", report.latency.p99_ns as f64 / 1_000.0, 1)
        .uint("quanta", report.scheduler.quanta as u64)
        .uint("shards", report.scheduler.shards as u64)
        .uint("steals", report.scheduler.steals as u64)
        .uint("shard_steals", report.scheduler.shard_steals as u64)
        .uint("cross_steals", report.scheduler.cross_steals as u64)
        .uint("contended_probes", report.scheduler.contended_probes as u64)
        .uint("deferrals", report.scheduler.deferrals as u64)
        .uint(
            "workspaces_created",
            report.scheduler.scratch.created as u64,
        )
        .uint(
            "workspace_checkouts",
            report.scheduler.scratch.checkouts as u64,
        );
    println!("SCALEJSON {}", line.finish());
}

/// The churn schedule: 32 sessions where, past the 8 founding vehicles,
/// everyone arrives staggered on the quanta clock; every 5th session
/// leaves early; every 4th flips priority mid-run (and back); session 7
/// panics once and restarts from checkpoint; session 13 panics twice and
/// is terminally quarantined (restart budget 1).
fn churn_specs(sessions: usize, seconds: f64) -> Vec<SessionSpec> {
    scaling_fleet_specs(sessions, seconds)
        .into_iter()
        .enumerate()
        .map(|(i, mut spec)| {
            if i >= 8 {
                spec = spec.arriving_at((i - 7) * 12);
            }
            if i % 5 == 4 {
                spec = spec.leaving_after(30);
            }
            if i % 4 == 1 {
                spec = spec
                    .with_priority_flip(16, Priority::Low)
                    .with_priority_flip(28, Priority::High);
            }
            if i == 7 {
                spec =
                    spec.with_chaos(ChaosPlan::new(21).with(ChaosKind::SessionPanic { frame: 18 }));
            }
            if i == 13 {
                spec = spec.with_chaos(
                    ChaosPlan::new(22)
                        .with(ChaosKind::SessionPanic { frame: 12 })
                        .with(ChaosKind::SessionPanic { frame: 26 }),
                );
            }
            spec
        })
        .collect()
}

fn run_soak(seconds: f64, cpus: usize) {
    const SESSIONS: usize = 32;
    const POOLS: [usize; 3] = [1, 2, 8];
    let specs = churn_specs(SESSIONS, seconds);
    let config = FleetConfig {
        max_active: 12,
        defer_watermark: 10,
        ..FleetConfig::default()
    };
    let alone: Vec<_> = specs
        .iter()
        .map(|s| run_session_alone(s, &config))
        .collect();
    let mut violations = 0usize;
    let mut quanta_max = 0usize;
    let mut restarts = 0usize;
    let mut quarantined = 0usize;
    for pool in POOLS {
        let report = run_fleet(
            &specs,
            &FleetConfig {
                threads: pool,
                ..config.clone()
            },
        );
        quanta_max = quanta_max.max(report.scheduler.quanta);
        restarts = report.session_restarts;
        quarantined = report.quarantined_sessions;
        for (s, a) in report.sessions.iter().zip(&alone) {
            if s.digest() != a.digest() || s.outcome != a.outcome {
                eprintln!(
                    "SOAK VIOLATION: {}@{pool} workers diverges from serial-alone \
                     (digest {:016x} vs {:016x})",
                    s.name,
                    s.digest(),
                    a.digest()
                );
                violations += 1;
            }
        }
        let quarantined_names: Vec<&str> = report
            .sessions
            .iter()
            .filter(|s| s.outcome == SessionOutcome::Quarantined)
            .map(|s| s.name.as_str())
            .collect();
        if quarantined_names != ["car-0013"] {
            eprintln!(
                "SOAK VIOLATION: quarantine set at {pool} workers is \
                 {quarantined_names:?}, expected [\"car-0013\"]"
            );
            violations += 1;
        }
    }
    let joins = specs.iter().filter(|s| s.arrival_round > 0).count();
    let leaves = specs
        .iter()
        .filter(|s| s.leave_after_frames.is_some())
        .count();
    let flips: usize = specs.iter().map(|s| s.priority_flips.len()).sum();
    let line = JsonLine::new()
        .uint("sessions", SESSIONS as u64)
        .str("pools", "1,2,8")
        .uint("cpus", cpus as u64)
        .float("seconds", seconds, 2)
        .uint("churn_joins", joins as u64)
        .uint("churn_leaves", leaves as u64)
        .uint("priority_flips", flips as u64)
        .uint("restarts", restarts as u64)
        .uint("quarantined", quarantined as u64)
        .uint("quanta_max", quanta_max as u64)
        .uint("violations", violations as u64)
        .str("gate", if violations == 0 { "passed" } else { "failed" });
    println!("SOAKJSON {}", line.finish());
    if violations != 0 {
        eprintln!("soak gate FAILED: {violations} contract violations");
        std::process::exit(1);
    }
    eprintln!(
        "soak gate passed: {SESSIONS} sessions, pools 1/2/8, \
         {restarts} restart(s), {quarantined} quarantine(s), bitwise clean"
    );
}

fn main() {
    // Injected chaos panics are expected in soak mode; swallow their
    // default-hook backtrace noise but keep every real panic loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let chaos = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("chaos:"));
        if !chaos {
            default_hook(info);
        }
    }));

    let args: Vec<String> = std::env::args().collect();
    let mut workers: Vec<usize> = vec![1, 2, 4, 8];
    let mut sessions: Vec<usize> = vec![8, 64, 512, 2000];
    let mut seconds = 1.2f64;
    let mut soak = false;
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {
                workers = vec![1, 4];
                sessions = vec![8, 64];
            }
            "--soak" => soak = true,
            "--seconds" => {
                seconds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds needs a number");
            }
            "--workers" => workers = parse_list(it.next().expect("--workers needs a list")),
            "--sessions" => sessions = parse_list(it.next().expect("--sessions needs a list")),
            other => panic!("unknown argument {other}"),
        }
    }

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if soak {
        // The churn schedule's chaos frames need at least 4 s of sequence.
        run_soak(seconds.max(4.0), cpus);
        return;
    }
    for &s in &sessions {
        for &w in &workers {
            run_sweep_point(w, s, seconds, cpus);
        }
    }
}
