//! Serving-grade observability bench: runs the standard 8-vehicle batch
//! with telemetry and phase counters enabled and emits the fleet's
//! observability surface in both machine- and human-readable form.
//!
//! Usage: `obs [--threads N] [--seconds S] [--budget-w W]` (threads also
//! via `ARCHYTAS_FLEET_THREADS`, default 1; `--budget-w` overrides the
//! tight-envelope demo budget, default two sessions' Eq. 17 draw).
//!
//! Output for `scripts/obs_smoke.sh`:
//! * one `OBSREC {...}` line per scope (fleet + each traffic class) — the
//!   deterministic aggregate payload: merged latency/energy histograms in
//!   sparse `[bucket, count]` form, integer percentiles, the implied watt
//!   figure as a bit pattern. Byte-identical across pool sizes by the
//!   canonical-fold contract;
//! * one `OBSENV {...}` line per session of the tight-envelope run — the
//!   deterministic shed/defer/admit decision set plus post-run digests;
//! * one `OBSJSON {...}` line — a superset of the fleet bench's FLEETJSON
//!   record (same field prefix) extended with running fleet watts, the
//!   envelope verdicts, and per-phase wall-time attribution. Wall-clock
//!   fields live only here, never in OBSREC/OBSENV.
//!
//! A `perf_phases`-style human table of the same numbers goes to stdout
//! before the machine lines.

use archytas_bench::json::{array, JsonLine};
use archytas_bench::{banner, print_table, standard_fleet_specs};
use archytas_fleet::{
    plan_admission, run_fleet, FleetConfig, PowerEnvelope, SessionOutcome, TrafficClass,
};
use archytas_par::counters;
use archytas_telemetry::{phase_rows, Histogram, ScopeAggregate};

fn bucket_array(h: &Histogram) -> String {
    array(h.nonzero_buckets().map(|(i, c)| format!("[{i},{c}]")))
}

/// One deterministic OBSREC payload for a scope (fleet or class).
fn scope_record(scope: &str, agg: &ScopeAggregate) -> String {
    let lat = &agg.latency_ns;
    let nrg = &agg.energy_nj;
    JsonLine::new()
        .str("scope", scope)
        .uint("sessions", agg.sessions)
        .uint("windows", agg.windows)
        .uint("lat_total_ns", lat.total())
        .uint("lat_min_ns", if lat.count() == 0 { 0 } else { lat.min() })
        .uint("lat_max_ns", lat.max())
        .uint("lat_p50_ns", lat.percentile(50.0))
        .uint("lat_p95_ns", lat.percentile(95.0))
        .uint("lat_p99_ns", lat.percentile(99.0))
        .uint("energy_total_nj", nrg.total())
        .uint("energy_p99_nj", nrg.percentile(99.0))
        .bits("watts_bits", agg.watts().to_bits())
        .float("watts", agg.watts(), 6)
        .float("mean_iterations", agg.mean_iterations(), 6)
        .raw("lat_buckets", &bucket_array(lat))
        .raw("energy_buckets", &bucket_array(nrg))
        .finish()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut threads: usize = std::env::var("ARCHYTAS_FLEET_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut seconds = 4.0f64;
    let mut budget_override: Option<f64> = None;
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs an unsigned integer");
            }
            "--seconds" => {
                seconds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds needs a number");
            }
            "--budget-w" => {
                budget_override = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--budget-w needs a number"),
                );
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let specs = standard_fleet_specs(seconds);
    let config = FleetConfig {
        threads,
        ..FleetConfig::default()
    };

    // Phase counters attribute solver wall time (assembly, factorization,
    // back-substitution, ...) across the whole serving run. Timing only —
    // everything deterministic flows through the telemetry instead.
    counters::reset();
    counters::enable();
    let report = run_fleet(&specs, &config);
    counters::disable();
    let phases = phase_rows();

    // ---- Human tables --------------------------------------------------
    banner("OBS", "fleet observability: per-class telemetry + power");
    let scopes: Vec<(String, &ScopeAggregate)> =
        std::iter::once(("fleet".to_string(), &report.telemetry.fleet))
            .chain(
                TrafficClass::ALL
                    .iter()
                    .map(|c| (format!("class/{}", c.name()), report.telemetry.class(*c))),
            )
            .collect();
    print_table(
        &[
            "scope",
            "sessions",
            "windows",
            "p50 µs",
            "p95 µs",
            "p99 µs",
            "energy mJ",
            "watts",
            "iters",
        ],
        &scopes
            .iter()
            .map(|(name, agg)| {
                vec![
                    name.clone(),
                    agg.sessions.to_string(),
                    agg.windows.to_string(),
                    format!("{:.1}", agg.latency_ns.percentile(50.0) as f64 / 1e3),
                    format!("{:.1}", agg.latency_ns.percentile(95.0) as f64 / 1e3),
                    format!("{:.1}", agg.latency_ns.percentile(99.0) as f64 / 1e3),
                    format!("{:.3}", agg.energy_nj.total() as f64 / 1e6),
                    format!("{:.3}", agg.watts()),
                    format!("{:.2}", agg.mean_iterations()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!();
    print_table(
        &["phase", "wall ms", "calls", "share"],
        &phases
            .iter()
            .map(|p| {
                vec![
                    p.name.to_string(),
                    format!("{:.3}", p.wall_ns as f64 / 1e6),
                    p.calls.to_string(),
                    format!("{:.1}%", p.share * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // ---- Tight-envelope demo -------------------------------------------
    // A watt budget sized for two concurrent sessions of the deployed
    // design: admission must shed Low and defer Normal arrivals past the
    // boundary — the same set at every pool size.
    let draw = PowerEnvelope::new(f64::INFINITY, &config.design, &config.platform).session_draw_w;
    let budget_w = budget_override.unwrap_or(2.0 * draw + 1e-9);
    let envelope = PowerEnvelope::new(budget_w, &config.design, &config.platform);
    let decisions = plan_admission(&specs, config.max_active, config.shed_watermark, &envelope);
    let env_config = FleetConfig {
        power_envelope_w: budget_w,
        ..config.clone()
    };
    let env_report = run_fleet(&specs, &env_config);

    println!();
    banner(
        "OBS/ENV",
        &format!(
            "power envelope {budget_w:.2} W (capacity {} × {draw:.2} W sessions)",
            envelope.capacity()
        ),
    );
    print_table(
        &["session", "class", "decision", "outcome", "windows"],
        &specs
            .iter()
            .zip(&decisions)
            .zip(&env_report.sessions)
            .map(|((spec, d), s)| {
                vec![
                    spec.name.clone(),
                    TrafficClass::from(spec.priority).name().to_string(),
                    format!("{d:?}"),
                    format!("{:?}", s.outcome),
                    s.windows.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // ---- Machine-readable lines ----------------------------------------
    for (name, agg) in &scopes {
        println!("OBSREC {}", scope_record(name, agg));
    }
    for ((spec, decision), s) in specs.iter().zip(&decisions).zip(&env_report.sessions) {
        let line = JsonLine::new()
            .str("session", &spec.name)
            .str("class", TrafficClass::from(spec.priority).name())
            .str("decision", &format!("{decision:?}"))
            .str("outcome", &format!("{:?}", s.outcome))
            .uint("windows", s.windows as u64)
            .bits(
                "digest",
                if s.outcome == SessionOutcome::Shed {
                    0
                } else {
                    s.digest()
                },
            );
        println!("OBSENV {}", line.finish());
    }

    let completed = report
        .sessions
        .iter()
        .filter(|s| s.outcome == SessionOutcome::Completed)
        .count();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let phase_json = array(phases.iter().map(|p| {
        JsonLine::new()
            .str("name", p.name)
            .uint("wall_ns", p.wall_ns)
            .uint("calls", p.calls)
            .float("share", p.share, 6)
            .finish()
    }));
    // Superset of the fleet bench's FLEETJSON record: identical leading
    // fields, then the observability extensions.
    let line = JsonLine::new()
        .uint("threads", report.threads as u64)
        .uint("cpus", cpus as u64)
        .uint("sessions", report.sessions.len() as u64)
        .uint("completed", completed as u64)
        .uint("frames", report.frames_processed as u64)
        .uint("windows", report.windows_processed as u64)
        .float("serving_wall_s", report.serving_wall_s, 6)
        .float("throughput_fps", report.throughput_fps, 3)
        .float("p50_us", report.latency.p50_ns as f64 / 1_000.0, 1)
        .float("p95_us", report.latency.p95_ns as f64 / 1_000.0, 1)
        .float("p99_us", report.latency.p99_ns as f64 / 1_000.0, 1)
        .uint("model_evaluations", report.model_evaluations as u64)
        .uint("model_cache_hits", report.model_cache_hits as u64)
        .uint("gating_builds", report.gating_builds as u64)
        .uint("gating_hits", report.gating_hits as u64)
        .uint("quarantined", report.quarantined_sessions as u64)
        .uint("session_restarts", report.session_restarts as u64)
        .uint("deadline_misses", report.deadline_misses as u64)
        .uint("steals", report.scheduler.steals as u64)
        .uint("deferrals", report.scheduler.deferrals as u64)
        .uint("quanta", report.scheduler.quanta as u64)
        .uint("resurrections", report.scheduler.resurrections as u64)
        .float("fleet_power_w", report.fleet_power_w, 6)
        .float("session_draw_w", draw, 6)
        .float("envelope_budget_w", budget_w, 6)
        .uint("envelope_capacity", envelope.capacity() as u64)
        .uint("envelope_shed", env_report.shed_sessions as u64)
        .uint("envelope_deferred", env_report.deferred_sessions as u64)
        .uint(
            "envelope_deferrals",
            env_report.scheduler.envelope_deferrals as u64,
        )
        .float("envelope_fleet_power_w", env_report.fleet_power_w, 6)
        .uint("attributed_ns", counters::attributed_total_ns())
        .raw("phases", &phase_json);
    println!("OBSJSON {}", line.finish());
}
