//! Fig. 16 — average speedup and energy reduction (±1 σ across sequences)
//! of the High-Perf and Low-Power designs over the Intel and Arm baselines
//! on the full KITTI + EuRoC suites (no dynamic optimization).
//!
//! Run: `cargo run --release -p archytas-bench --bin fig16`
//! (`ARCHYTAS_FULL=1` for full-length sequences).

use archytas_bench::{banner, mean, print_table, sequence_shapes, suite};
use archytas_baselines::CpuPlatform;
use archytas_hw::{AcceleratorModel, FpgaPlatform, HIGH_PERF, LOW_POWER};
use archytas_slam::mean_stdev;

fn main() {
    banner(
        "Fig. 16",
        "mean speedup & energy reduction of High-Perf / Low-Power (KITTI + EuRoC)",
    );

    let designs = [("High-Perf", HIGH_PERF), ("Low-Power", LOW_POWER)];
    let cpus = [CpuPlatform::intel_comet_lake(), CpuPlatform::arm_a57()];

    // Per-sequence per-design ratios.
    let mut rows = Vec::new();
    for (dname, config) in designs {
        let model = AcceleratorModel::new(config, FpgaPlatform::zc706());
        for cpu in &cpus {
            let mut speedups = Vec::new();
            let mut energies = Vec::new();
            for spec in suite() {
                let data = spec.build();
                let shapes = sequence_shapes(&data, 10);
                if shapes.is_empty() {
                    continue;
                }
                let accel_ms = mean(
                    &shapes
                        .iter()
                        .map(|s| model.window_latency_ms(s, 6))
                        .collect::<Vec<_>>(),
                );
                let accel_mj = mean(
                    &shapes
                        .iter()
                        .map(|s| model.window_energy_mj(s, 6))
                        .collect::<Vec<_>>(),
                );
                let cpu_ms = mean(
                    &shapes
                        .iter()
                        .map(|s| cpu.window_time_ms(s, 6))
                        .collect::<Vec<_>>(),
                );
                let cpu_mj = mean(
                    &shapes
                        .iter()
                        .map(|s| cpu.window_energy_mj(s, 6))
                        .collect::<Vec<_>>(),
                );
                speedups.push(cpu_ms / accel_ms);
                energies.push(cpu_mj / accel_mj);
            }
            let (sm, ss) = mean_stdev(&speedups);
            let (em, es) = mean_stdev(&energies);
            rows.push(vec![
                dname.to_string(),
                cpu.name.split(' ').next().unwrap_or("?").to_string(),
                format!("{sm:.1}x ± {ss:.1}"),
                format!("{em:.1}x ± {es:.1}"),
            ]);
        }
    }
    print_table(
        &["design", "baseline", "speedup", "energy reduction"],
        &rows,
    );

    println!();
    println!("paper's Fig. 16: High-Perf 6.2x/74.0x (Intel), 39.7x/14.6x (Arm);");
    println!("                 Low-Power 3.7x/68.6x (Intel), 23.6x/13.6x (Arm)");
    println!("shape checks: High-Perf > Low-Power in speedup; energy reduction vs Intel ≫ vs Arm;");
    println!("              error bars small relative to means (consistent across sequences)");
}
