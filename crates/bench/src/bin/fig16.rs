//! Fig. 16 — average speedup and energy reduction (±1 σ across sequences)
//! of the High-Perf and Low-Power designs over the Intel and Arm baselines
//! on the full KITTI + EuRoC suites (no dynamic optimization).
//!
//! Sequences are generated in parallel (`ARCHYTAS_THREADS` controls the
//! worker count) and every model evaluation is memoized, so each distinct
//! `(shape, iterations)` key is costed exactly once per platform.
//!
//! Run: `cargo run --release -p archytas-bench --bin fig16`
//! (`ARCHYTAS_FULL=1` for full-length sequences).

use archytas_bench::{banner, fig16_result, print_table, suite};

fn main() {
    banner(
        "Fig. 16",
        "mean speedup & energy reduction of High-Perf / Low-Power (KITTI + EuRoC)",
    );

    let result = fig16_result(&suite());
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.design.to_string(),
                r.baseline.split(' ').next().unwrap_or("?").to_string(),
                format!("{:.1}x ± {:.1}", r.speedup.0, r.speedup.1),
                format!("{:.1}x ± {:.1}", r.energy_reduction.0, r.energy_reduction.1),
            ]
        })
        .collect();
    print_table(
        &["design", "baseline", "speedup", "energy reduction"],
        &rows,
    );

    println!();
    println!(
        "model cache: {} distinct (shape, iter) keys;",
        result.distinct_keys
    );
    for s in &result.cache_stats {
        println!(
            "  {:<40} {} evaluations, {} cache hits",
            s.name, s.evaluations, s.hits
        );
    }

    println!();
    println!("paper's Fig. 16: High-Perf 6.2x/74.0x (Intel), 39.7x/14.6x (Arm);");
    println!("                 Low-Power 3.7x/68.6x (Intel), 23.6x/13.6x (Arm)");
    println!("shape checks: High-Perf > Low-Power in speedup; energy reduction vs Intel ≫ vs Arm;");
    println!("              error bars small relative to means (consistent across sequences)");
}
