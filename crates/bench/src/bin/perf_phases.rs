//! Per-phase cost attribution of the solver hot path on one realistic
//! window — the measurement behind DESIGN.md's "Solver hot path" table.
//!
//! Runs the full LM solve with `archytas_par::counters` enabled, plus
//! a component-level micro-timing pass (factor evaluation vs. scatter) that
//! the aggregate phase counters cannot separate, and prints one `PERFJSON`
//! line with everything.

use archytas_dataset::{kitti_sequences, PipelineConfig, VioPipeline};
use archytas_par::counters;
use archytas_slam::{
    build_block_normal_equations, evaluate_cost, evaluate_imu, evaluate_visual, solve_in_workspace,
    FactorWeights, LmConfig, SlidingWindow, SolverWorkspace,
};
use std::hint::black_box;
use std::time::Instant;

fn realistic_window() -> SlidingWindow {
    let data = kitti_sequences()[2].truncated(2.0).build();
    let mut pipeline = VioPipeline::new(PipelineConfig::default());
    for frame in &data.frames {
        if pipeline.push_frame(frame) {
            break;
        }
    }
    pipeline.window().clone()
}

fn time_n(n: usize, mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    for _ in 0..n {
        f();
    }
    t.elapsed().as_nanos() as f64 / n as f64
}

fn main() {
    let window = realistic_window();
    let weights = FactorWeights::default();
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40);

    println!(
        "window: {} keyframes, {} landmarks, {} observations, {} imu factors",
        window.num_keyframes(),
        window.num_landmarks(),
        window.observations.len(),
        window.imu.len()
    );

    // Component micro-timings (not separable by the phase counters).
    let visual_eval_ns = time_n(reps, || {
        for obs in &window.observations {
            let lm = &window.landmarks[obs.landmark];
            if lm.anchor == obs.keyframe {
                continue;
            }
            black_box(evaluate_visual(
                &window.keyframes[lm.anchor].pose,
                &window.keyframes[obs.keyframe].pose,
                &lm.bearing,
                lm.inv_depth,
                obs.uv,
            ));
        }
    });
    let imu_eval_ns = time_n(reps, || {
        for cons in &window.imu {
            black_box(evaluate_imu(
                &window.keyframes[cons.first],
                &window.keyframes[cons.first + 1],
                &cons.preintegration,
            ));
        }
    });
    let mut sys = archytas_math::BlockSparseSystem::new();
    let assemble_ns = time_n(reps, || {
        black_box(build_block_normal_equations(
            &window, &weights, None, &mut sys,
        ));
    });
    let cost_ns = time_n(reps, || {
        black_box(evaluate_cost(&window, &weights, None));
    });
    println!("assemble total: {:>10.0} ns", assemble_ns);
    println!("  visual evals: {:>10.0} ns", visual_eval_ns);
    println!("  imu evals:    {:>10.0} ns", imu_eval_ns);
    println!(
        "  scatter(rest):{:>10.0} ns",
        assemble_ns - visual_eval_ns - imu_eval_ns
    );
    println!("evaluate_cost:  {:>10.0} ns", cost_ns);

    // Aggregate phase counters over full LM solves.
    let mut ws = SolverWorkspace::new();
    let config = LmConfig::with_iterations(6);
    counters::reset();
    counters::enable();
    let t = Instant::now();
    for _ in 0..reps {
        let mut w = window.clone();
        black_box(solve_in_workspace(&mut ws, &mut w, &weights, None, &config));
    }
    let total_ns = t.elapsed().as_nanos() as f64 / reps as f64;
    counters::disable();
    println!(
        "lm_6_iterations total: {:.0} ns/solve over {reps} solves",
        total_ns
    );
    for ph in counters::snapshot() {
        if ph.calls > 0 {
            println!(
                "  {:<18} {:>12.0} ns/solve  ({} calls)",
                ph.name,
                ph.ns as f64 / reps as f64,
                ph.calls
            );
        }
    }
    println!("PERFJSON {}", counters::perfjson());
}
