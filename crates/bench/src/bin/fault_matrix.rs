//! Runs the standard fault matrix and emits one JSON line per scenario.
//!
//! Lives in `archytas-bench` with the other experiment binaries so all
//! machine-readable emitters share one JSON writer (`archytas_bench::json`).
//!
//! Usage: `fault_matrix [SEED] [SECONDS]` (defaults 7 and 8.0; the seed can
//! also come from `ARCHYTAS_FAULT_SEED`). Exits nonzero when any scenario
//! panics or exceeds the 3× nominal RMSE bound.

use archytas_bench::json::JsonLine;
use archytas_faults::{long_horizon_scenarios, run_scenario, scenarios};

const RMSE_BOUND: f64 = 3.0;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args
        .get(1)
        .cloned()
        .or_else(|| std::env::var("ARCHYTAS_FAULT_SEED").ok())
        .map(|s| s.parse().expect("seed must be an unsigned integer"))
        .unwrap_or(7);
    let seconds: f64 = args
        .get(2)
        .map(|s| s.parse().expect("seconds must be a number"))
        .unwrap_or(8.0);

    let mut failures = 0usize;
    // The standard seconds-scale matrix, then the long-horizon scenarios
    // (which pin their own sequence and duration, ignoring `seconds`).
    for sc in scenarios(seed)
        .into_iter()
        .chain(long_horizon_scenarios(seed))
    {
        let r = run_scenario(&sc, seconds);
        let ok = r.within_rmse_bound(RMSE_BOUND);
        if !ok {
            failures += 1;
        }
        let line = JsonLine::new()
            .str("scenario", &r.name)
            .uint("seed", seed)
            .boolean("completed", r.completed)
            .boolean("pass", ok)
            .float("rmse_m", r.rmse_m, 6)
            .float("nominal_rmse_m", r.nominal_rmse_m, 6)
            .uint("windows", r.windows as u64)
            .uint("degraded_windows", r.degraded_windows as u64)
            .uint("watchdog_windows", r.watchdog_windows as u64)
            .opt_uint(
                "recovery_latency_windows",
                r.recovery_latency_windows.map(|w| w as u64),
            );
        println!("FAULTJSON {}", line.finish());
    }
    if failures > 0 {
        eprintln!("fault matrix: {failures} scenario(s) failed");
        std::process::exit(1);
    }
}
