//! Sec. 7.5 — best-effort comparison against prior localization
//! accelerators (π-BA, BAX, Zhang et al., PISCES) and the hand-vs-HLS
//! Cholesky study.
//!
//! Run: `cargo run --release -p archytas-bench --bin sec7_5`

use archytas_baselines::{
    all_prior_accelerators, HlsCholesky, HLS_REFERENCE_DIM, HLS_REFERENCE_LANES,
};
use archytas_bench::{banner, print_table};
use archytas_hw::{
    cholesky_latency, nls_iteration_cycles, AcceleratorModel, FpgaPlatform, HIGH_PERF,
};
use archytas_mdfg::ProblemShape;

fn main() {
    banner(
        "Sec. 7.5",
        "prior accelerator comparison (per-NLS-iteration normalization)",
    );

    let shape = ProblemShape::typical();
    let platform = FpgaPlatform::zc706();
    let model = AcceleratorModel::new(HIGH_PERF, platform.clone());
    let iter_ms = nls_iteration_cycles(&shape, &HIGH_PERF) / (platform.clock_mhz * 1e3);
    let iter_mj = iter_ms * model.power_w();

    println!("High-Perf per NLS iteration: {iter_ms:.3} ms, {iter_mj:.3} mJ (typical window)\n");

    let mut rows = Vec::new();
    for p in all_prior_accelerators() {
        rows.push(vec![
            p.name.to_string(),
            format!("{:.2}", p.latency_ms(iter_ms)),
            format!("{:.2}", p.energy_mj(iter_mj)),
            format!("{:.1}x", p.latency_ratio),
            format!("{:.1}x", p.energy_ratio),
            p.notes.to_string(),
        ]);
    }
    print_table(
        &[
            "system",
            "latency (ms/iter)",
            "energy (mJ/iter)",
            "High-Perf speedup",
            "energy ratio (ours=1)",
            "context",
        ],
        &rows,
    );

    println!();
    println!("--- HLS comparison (Cholesky block) ---");
    let hls = HlsCholesky::default();
    let hand = cholesky_latency(HLS_REFERENCE_DIM, HLS_REFERENCE_LANES);
    let hls_cycles = hls.latency_cycles(HLS_REFERENCE_DIM);
    println!(
        "hand-optimized unit ({}x{} system, s={}): {:.0} cycles",
        HLS_REFERENCE_DIM, HLS_REFERENCE_DIM, HLS_REFERENCE_LANES, hand
    );
    println!(
        "Vivado-HLS implementation (clock-normalized): {:.0} cycles → {:.1}x slower (paper: 16.4x)",
        hls_cycles,
        hls.slowdown_vs_hand(HLS_REFERENCE_DIM, HLS_REFERENCE_LANES)
    );
    println!(
        "HLS design also runs at {:.0}% lower clock and ~{:.0}x the resources (paper: 30%, ~2x)",
        (1.0 - hls.clock_fraction) * 100.0,
        hls.resource_factor
    );
    println!(
        "gap source: the Evaluate/Update cross-iteration pipelining and multi-lane Update\n\
         independence (Fig. 10) that the HLS tool cannot discover"
    );
}
