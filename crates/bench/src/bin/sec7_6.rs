//! Sec. 7.6 — dynamic optimization: per-window clock gating driven by the
//! iteration-count knob saves double-digit energy with no accuracy loss.
//!
//! Unlike Figs. 13–16 (model-driven sweeps), this experiment *runs the
//! estimator*: every window is optimized through the accelerator's f32
//! functional datapath, so the accuracy numbers are real.
//!
//! Run: `cargo run --release -p archytas-bench --bin sec7_6`

use archytas_bench::{banner, print_table};
use archytas_core::{run_sequence, Executor, IterPolicy, RuntimeSystem};
use archytas_dataset::{euroc_sequences, kitti_sequences, SequenceSpec};
use archytas_hw::{AcceleratorModel, FpgaPlatform, HIGH_PERF, LOW_POWER};
use archytas_mdfg::ProblemShape;

fn run_pair(
    spec: &SequenceSpec,
    config: archytas_hw::AcceleratorConfig,
    bound_ms: f64,
) -> Vec<String> {
    let data = spec.build();
    let platform = FpgaPlatform::zc706();

    let mut static_exec = Executor::Accelerator {
        model: AcceleratorModel::new(config, platform.clone()),
        runtime: None,
    };
    let static_run = run_sequence(&data, &mut static_exec);

    let mut dynamic_exec = Executor::Accelerator {
        model: AcceleratorModel::new(config, platform.clone()),
        runtime: Some(RuntimeSystem::new(
            config,
            &ProblemShape::typical(),
            bound_ms,
            &platform,
            IterPolicy::default_table(),
        )),
    };
    let dynamic_run = run_sequence(&data, &mut dynamic_exec);

    let saving = (1.0 - dynamic_run.total_energy_mj / static_run.total_energy_mj) * 100.0;
    let d_rmse_cm = (dynamic_run.rmse_m - static_run.rmse_m) * 100.0;
    vec![
        spec.name.clone(),
        format!("{:.1}", static_run.total_energy_mj),
        format!("{:.1}", dynamic_run.total_energy_mj),
        format!("{saving:.1}%"),
        format!("{:.2}", static_run.rmse_m * 100.0),
        format!("{:.2}", dynamic_run.rmse_m * 100.0),
        format!("{d_rmse_cm:+.2}"),
    ]
}

fn main() {
    banner(
        "Sec. 7.6",
        "dynamic optimization: energy saving and accuracy impact (estimator actually runs)",
    );

    let duration = if std::env::var("ARCHYTAS_FULL").is_ok() {
        40.0
    } else {
        12.0
    };
    let sequences = [
        kitti_sequences()[0].truncated(duration),
        kitti_sequences()[4].truncated(duration),
        euroc_sequences()[0].truncated(duration),
        euroc_sequences()[2].truncated(duration),
    ];

    for (dname, config, bound) in [("High-Perf", HIGH_PERF, 2.5), ("Low-Power", LOW_POWER, 3.5)] {
        println!("\n--- {dname} (gating bound {bound} ms) ---");
        // Each pair runs the full estimator twice — by far enough work to
        // justify one worker per sequence. Rows come back in input order.
        let rows: Vec<Vec<String>> = archytas_par::Pool::global()
            .with_serial_threshold(2)
            .par_map(&sequences, |s| run_pair(s, config, bound));
        print_table(
            &[
                "sequence",
                "static E (mJ)",
                "dynamic E (mJ)",
                "saving",
                "static RMSE (cm)",
                "dynamic RMSE (cm)",
                "ΔRMSE (cm)",
            ],
            &rows,
        );
    }

    println!();
    println!("paper: High-Perf saves 21.6% (KITTI) / 20.8% (EuRoC); Low-Power 7.7% / 6.8%;");
    println!("       accuracy unchanged on KITTI, ≤0.01 cm mean degradation on EuRoC");
    println!("shape checks: double-digit savings on High-Perf > single/low-double on Low-Power;");
    println!("              ΔRMSE within noise (sometimes negative — the stochastic effect the paper notes)");
}
