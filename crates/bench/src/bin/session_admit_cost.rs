//! Session admission-cost microbench: what does an admitted-but-idle
//! session cost, in nanoseconds and resident bytes?
//!
//! A counting global allocator meters live heap bytes while the bench
//! admits `--sessions` (default 2000) idle sessions through the same
//! [`AdmittedSession::admit`] path `run_fleet` uses. For the "former"
//! cost — what each admitted session used to pay before state pooling —
//! it activates a sample of sessions (building their frame streams and
//! restart checkpoints) and grows one private `SolverWorkspace` per
//! sampled session by stepping it to its first optimized window, exactly
//! the per-session residency of the pre-pooling fleet layer.
//!
//! Emits one `ADMITJSON {...}` line; `scripts/fleet_smoke.sh` folds it
//! into `BENCH_fleet.json` (gating `ratio_pct < 10`) and
//! `scripts/perf_gate.sh` regresses the committed numbers.
//!
//! Usage: `session_admit_cost [--sessions N] [--sample K] [--seconds S]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use archytas_bench::json::JsonLine;
use archytas_bench::scaling_fleet_specs;
use archytas_fleet::{AdmittedSession, FleetConfig, FleetServices};
use archytas_slam::SolverWorkspace;

/// Allocator wrapper keeping a live-bytes counter. Alloc/dealloc symmetry
/// is all the bench needs; per-thread attribution is irrelevant because
/// the measurement sections are single-threaded.
struct CountingAlloc;

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            LIVE_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            LIVE_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn live() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut sessions: usize = 2000;
    let mut sample: usize = 16;
    let mut seconds = 1.2f64;
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sessions" => {
                sessions = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sessions needs an unsigned integer");
            }
            "--sample" => {
                sample = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sample needs an unsigned integer");
            }
            "--seconds" => {
                seconds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds needs a number");
            }
            other => panic!("unknown argument {other}"),
        }
    }
    sample = sample.clamp(1, sessions);

    let specs = scaling_fleet_specs(sessions, seconds);
    let services = FleetServices::new(&FleetConfig::default());
    // Warm the shared caches (gating LUT, latency model) outside the
    // measured section: their fill is exactly-once per *fleet*, so
    // charging it to the first session would misprice every batch after
    // the first.
    drop(services.runtime());

    // Admitted-idle cost: ns and live bytes per session, the new steady
    // state of a 2000-session fleet where most sessions await activation.
    let bytes_before = live();
    let t0 = Instant::now();
    let mut admitted: Vec<AdmittedSession> = specs
        .iter()
        .map(|spec| AdmittedSession::admit(spec, &services))
        .collect();
    let admit_ns = t0.elapsed().as_nanos() as u64 / sessions as u64;
    let idle_bytes = (live().saturating_sub(bytes_before)) / sessions as u64;

    // Former per-session cost: activation (frame stream + checkpoint) plus
    // a private workspace grown to working size — what every admitted
    // session owned before pooling, measured on a sample.
    let bytes_active_before = live();
    let t1 = Instant::now();
    for s in admitted.iter_mut().take(sample) {
        s.activate();
    }
    let activate_ns = t1.elapsed().as_nanos() as u64 / sample as u64;
    let activation_bytes = (live().saturating_sub(bytes_active_before)) / sample as u64;

    let bytes_ws_before = live();
    let mut grown: Vec<Box<SolverWorkspace>> = Vec::with_capacity(sample);
    for s in admitted.iter_mut().take(sample) {
        let mut ws = Box::new(SolverWorkspace::new());
        while s.windows() == 0 && s.step(&mut ws) {}
        grown.push(ws);
    }
    let workspace_bytes = (live().saturating_sub(bytes_ws_before)) / sample as u64;
    let former_bytes = idle_bytes + activation_bytes + workspace_bytes;
    let ratio_pct = idle_bytes as f64 / former_bytes as f64 * 100.0;
    drop(grown);

    let line = JsonLine::new()
        .uint("sessions", sessions as u64)
        .uint("sample", sample as u64)
        .float("seconds", seconds, 2)
        .uint("admit_ns_per_session", admit_ns)
        .uint("idle_bytes_per_session", idle_bytes)
        .uint("activate_ns_per_session", activate_ns)
        .uint("activation_bytes_per_session", activation_bytes)
        .uint("workspace_bytes_per_session", workspace_bytes)
        .uint("former_bytes_per_session", former_bytes)
        .float("ratio_pct", ratio_pct, 2);
    println!("ADMITJSON {}", line.finish());
    eprintln!(
        "admitted-idle: {admit_ns} ns, {idle_bytes} B/session; former \
         (activation {activation_bytes} B + workspace {workspace_bytes} B): \
         {former_bytes} B/session — idle is {ratio_pct:.2}% of former"
    );
}
