//! Sec. 7.7 — generality: other FPGA boards (Kintex-7, Virtex-7) and other
//! MAP algorithms (curve fitting for planning, pose estimation for AR).
//!
//! Run: `cargo run --release -p archytas-bench --bin sec7_7`

use archytas_baselines::CpuPlatform;
use archytas_bench::{banner, mean, print_table, sequence_shapes};
use archytas_core::{AlgorithmDescription, Archytas, DesignSpec, Objective};
use archytas_dataset::euroc_sequences;
use archytas_hw::{AcceleratorModel, FpgaPlatform};
use archytas_mdfg::ProblemShape;

fn main() {
    banner("Sec. 7.7", "other FPGA platforms and other MAP algorithms");

    // --- other boards: biggest (min-latency) design per board, EuRoC ---
    println!("--- other FPGA boards (EuRoC workloads, biggest design per board) ---");
    let data = euroc_sequences()[1].truncated(12.0).build();
    let shapes = sequence_shapes(&data, 10);
    let intel = CpuPlatform::intel_comet_lake();
    let arm = CpuPlatform::arm_a57();
    let slam = AlgorithmDescription::slam_typical();

    let mut rows = Vec::new();
    for platform in [
        FpgaPlatform::kintex7_160t(),
        FpgaPlatform::zc706(),
        FpgaPlatform::virtex7_690t(),
    ] {
        let spec = DesignSpec {
            platform: platform.clone(),
            objective: Objective::MinLatency,
            ..DesignSpec::zc706_power_optimal(0.0)
        };
        let acc = Archytas::generate(&slam, &spec).expect("feasible");
        let model = AcceleratorModel::new(acc.design.config, platform.clone());
        let a_ms = mean(
            &shapes
                .iter()
                .map(|s| model.window_latency_ms(s, 6))
                .collect::<Vec<_>>(),
        );
        let a_mj = mean(
            &shapes
                .iter()
                .map(|s| model.window_energy_mj(s, 6))
                .collect::<Vec<_>>(),
        );
        let i_ms = mean(
            &shapes
                .iter()
                .map(|s| intel.window_time_ms(s, 6))
                .collect::<Vec<_>>(),
        );
        let i_mj = mean(
            &shapes
                .iter()
                .map(|s| intel.window_energy_mj(s, 6))
                .collect::<Vec<_>>(),
        );
        let r_ms = mean(
            &shapes
                .iter()
                .map(|s| arm.window_time_ms(s, 6))
                .collect::<Vec<_>>(),
        );
        let r_mj = mean(
            &shapes
                .iter()
                .map(|s| arm.window_energy_mj(s, 6))
                .collect::<Vec<_>>(),
        );
        rows.push(vec![
            platform.name.to_string(),
            format!(
                "({}, {}, {})",
                acc.design.config.nd, acc.design.config.nm, acc.design.config.s
            ),
            format!("{:.1}x / {:.1}x", i_ms / a_ms, i_mj / a_mj),
            format!("{:.1}x / {:.1}x", r_ms / a_ms, r_mj / a_mj),
        ]);
    }
    print_table(
        &[
            "board",
            "(nd, nm, s)",
            "vs Intel (speed/energy)",
            "vs Arm (speed/energy)",
        ],
        &rows,
    );
    println!("paper: Kintex-7 6.6x/105.1x and Virtex-7 10.2x/114.6x vs Intel;");
    println!("       56.2x/68.9x and 86.3x/75.1x vs Arm");
    println!("shape check: bigger boards → bigger designs → higher speedups\n");

    // --- other algorithms ---
    println!("--- other MAP algorithms (fastest ZC706 design per algorithm) ---");
    let mut rows = Vec::new();
    for (desc, paper) in [
        (AlgorithmDescription::curve_fitting(), "8.5x / 257.0x"),
        (AlgorithmDescription::pose_estimation(), "7.0x / 124.8x"),
    ] {
        let spec = DesignSpec {
            objective: Objective::MinLatency,
            ..DesignSpec::zc706_power_optimal(0.0)
        };
        let acc = Archytas::generate(&desc, &spec).expect("feasible");
        let model = AcceleratorModel::new(acc.design.config, FpgaPlatform::zc706());
        let shape: ProblemShape = desc.shape;
        let a_ms = model.window_latency_ms(&shape, 6);
        let a_mj = model.window_energy_mj(&shape, 6);
        let i_ms = intel.window_time_ms(&shape, 6);
        let i_mj = intel.window_energy_mj(&shape, 6);
        rows.push(vec![
            format!("{:?}", desc.kind),
            format!(
                "({}, {}, {})",
                acc.design.config.nd, acc.design.config.nm, acc.design.config.s
            ),
            format!("{:.1}x", i_ms / a_ms),
            format!("{:.1}x", i_mj / a_mj),
            paper.to_string(),
        ]);
    }
    print_table(
        &[
            "algorithm",
            "(nd, nm, s)",
            "speedup vs Intel",
            "energy red. vs Intel",
            "paper",
        ],
        &rows,
    );
    println!("shape check: order-of-magnitude speedups and 2-orders energy reductions carry over");
}
