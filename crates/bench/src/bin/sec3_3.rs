//! Sec. 3.3 — S-matrix data-layout optimization: the split `Si`/`Sc`
//! compression vs dense, dense-symmetric and CSR storage.
//!
//! Run: `cargo run --release -p archytas-bench --bin sec3_3`

use archytas_bench::{banner, print_table};
use archytas_mdfg::{saving_vs_dense, storage_words, LayoutScheme};

fn main() {
    banner(
        "Sec. 3.3",
        "S-matrix storage: split compression vs alternatives",
    );

    let configs = [(15usize, 8usize), (15, 10), (15, 15), (15, 20)];
    let mut rows = Vec::new();
    for (k, b) in configs {
        let dense = storage_words(LayoutScheme::DenseFull, k, b);
        let sym = storage_words(LayoutScheme::DenseSymmetric, k, b);
        let split = storage_words(LayoutScheme::SplitCompressed, k, b);
        let csr = storage_words(LayoutScheme::Csr, k, b);
        rows.push(vec![
            format!("k={k}, b={b}"),
            dense.to_string(),
            sym.to_string(),
            csr.to_string(),
            split.to_string(),
            format!(
                "{:.1}%",
                saving_vs_dense(LayoutScheme::SplitCompressed, k, b) * 100.0
            ),
            format!("{:.1}%", (1.0 - split as f64 / csr as f64) * 100.0),
        ]);
    }
    print_table(
        &[
            "window",
            "dense",
            "symmetric",
            "CSR",
            "split (paper)",
            "saving vs dense",
            "saving vs CSR",
        ],
        &rows,
    );

    println!();
    println!("paper's headline at k=15, b=15: 78% saving vs dense, 17.8% less than CSR");
    println!("(S contributes 40–80% of total on-chip storage, so these savings are first-order)");
}
