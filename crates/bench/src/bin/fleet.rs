//! Fleet serving bench: runs the standard 8-vehicle batch on the fleet
//! scheduler and emits machine-readable lines for `scripts/fleet_smoke.sh`.
//!
//! Usage: `fleet [--threads N] [--seconds S]` (threads also via
//! `ARCHYTAS_FLEET_THREADS`, default 1).
//!
//! Output:
//! * one `FLEETDET {...}` line per session — the deterministic payload
//!   (digests and bit patterns only, no timing), byte-identical across
//!   pool sizes by the fleet contract;
//! * one `FLEETJSON {...}` line — wall-clock throughput, pooled frame
//!   latency percentiles, shared-cache and scheduler counters.

use archytas_bench::json::JsonLine;
use archytas_bench::standard_fleet_specs;
use archytas_fleet::{run_fleet, FleetConfig, SessionOutcome};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut threads: usize = std::env::var("ARCHYTAS_FLEET_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut seconds = 4.0f64;
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs an unsigned integer");
            }
            "--seconds" => {
                seconds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds needs a number");
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let config = FleetConfig {
        threads,
        ..FleetConfig::default()
    };
    let report = run_fleet(&standard_fleet_specs(seconds), &config);

    for s in &report.sessions {
        let line = JsonLine::new()
            .str("session", &s.name)
            .str("outcome", &format!("{:?}", s.outcome))
            .str("phase", &s.phase.to_string())
            .uint("windows", s.windows as u64)
            .bits("digest", s.digest())
            .uint("iterations_sum", s.iterations.iter().sum::<usize>() as u64)
            .bits("rmse_bits", s.rmse_m.to_bits())
            .bits("latency_bits", s.modelled_latency_ms.to_bits())
            .bits("energy_bits", s.modelled_energy_mj.to_bits())
            .uint("degraded_windows", s.degraded_windows as u64)
            .uint("watchdog_windows", s.watchdog_windows as u64)
            .uint("sensor_fault_windows", s.sensor_fault_windows as u64)
            .uint(
                "solver_divergence_windows",
                s.solver_divergence_windows as u64,
            )
            .uint("prior_reset_windows", s.prior_reset_windows as u64)
            .uint("restarts", s.restarts as u64)
            .uint("deadline_misses", s.deadline_misses as u64);
        println!("FLEETDET {}", line.finish());
    }
    let completed = report
        .sessions
        .iter()
        .filter(|s| s.outcome == SessionOutcome::Completed)
        .count();
    // The machine's CPU count rides in every run record (not only the
    // gate block fleet_smoke.sh appends) so a single record is
    // interpretable on its own — a 4-worker run on a 1-CPU box is
    // timeslicing, not parallelism.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let line = JsonLine::new()
        .uint("threads", report.threads as u64)
        .uint("cpus", cpus as u64)
        .uint("sessions", report.sessions.len() as u64)
        .uint("completed", completed as u64)
        .uint("frames", report.frames_processed as u64)
        .uint("windows", report.windows_processed as u64)
        .float("serving_wall_s", report.serving_wall_s, 6)
        .float("throughput_fps", report.throughput_fps, 3)
        .float("p50_us", report.latency.p50_ns as f64 / 1_000.0, 1)
        .float("p95_us", report.latency.p95_ns as f64 / 1_000.0, 1)
        .float("p99_us", report.latency.p99_ns as f64 / 1_000.0, 1)
        .uint("model_evaluations", report.model_evaluations as u64)
        .uint("model_cache_hits", report.model_cache_hits as u64)
        .uint("gating_builds", report.gating_builds as u64)
        .uint("gating_hits", report.gating_hits as u64)
        .uint("quarantined", report.quarantined_sessions as u64)
        .uint("session_restarts", report.session_restarts as u64)
        .uint("deadline_misses", report.deadline_misses as u64)
        .uint("steals", report.scheduler.steals as u64)
        .uint("shard_steals", report.scheduler.shard_steals as u64)
        .uint("cross_steals", report.scheduler.cross_steals as u64)
        .uint("contended_probes", report.scheduler.contended_probes as u64)
        .uint("shards", report.scheduler.shards as u64)
        .uint(
            "workspaces_created",
            report.scheduler.scratch.created as u64,
        )
        .uint(
            "workspace_checkouts",
            report.scheduler.scratch.checkouts as u64,
        )
        .uint("deferrals", report.scheduler.deferrals as u64)
        .uint("quanta", report.scheduler.quanta as u64)
        .uint("resurrections", report.scheduler.resurrections as u64);
    println!("FLEETJSON {}", line.finish());
}
