//! Fleet serving bench: runs the standard 8-vehicle batch on the fleet
//! scheduler and emits machine-readable lines for `scripts/fleet_smoke.sh`.
//!
//! Usage: `fleet [--threads N] [--seconds S]` (threads also via
//! `ARCHYTAS_FLEET_THREADS`, default 1).
//!
//! Output:
//! * one `FLEETDET {...}` line per session — the deterministic payload
//!   (digests and bit patterns only, no timing), byte-identical across
//!   pool sizes by the fleet contract;
//! * one `FLEETJSON {...}` line — wall-clock throughput, pooled frame
//!   latency percentiles, shared-cache and scheduler counters.

use archytas_dataset::{euroc_sequences, kitti_sequences};
use archytas_faults::{FaultKind, FaultPlan};
use archytas_fleet::{run_fleet, FleetConfig, Priority, SessionOutcome, SessionSpec};

fn specs(seconds: f64) -> Vec<SessionSpec> {
    let kitti = kitti_sequences();
    let euroc = euroc_sequences();
    let fault_len = seconds.max(4.0);
    vec![
        SessionSpec::new("car-0", kitti[0].truncated(seconds), Priority::High),
        SessionSpec::new("car-1", kitti[1].truncated(seconds), Priority::Normal),
        SessionSpec::new("car-2", kitti[2].truncated(seconds), Priority::Low),
        SessionSpec::new("drone-0", euroc[0].truncated(seconds), Priority::Normal),
        SessionSpec::new("drone-1", euroc[1].truncated(seconds), Priority::Low),
        SessionSpec::new("car-3", kitti[3].truncated(seconds), Priority::Normal),
        SessionSpec::new("car-flaky", kitti[1].truncated(fault_len), Priority::High)
            .with_faults(FaultPlan::new(11).with(FaultKind::VisionDropout, 24, 28)),
        SessionSpec::new("drone-flaky", euroc[0].truncated(fault_len), Priority::Low)
            .with_faults(FaultPlan::new(13).with(FaultKind::ImuNan { probability: 0.3 }, 24, 27)),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut threads: usize = std::env::var("ARCHYTAS_FLEET_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut seconds = 4.0f64;
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs an unsigned integer");
            }
            "--seconds" => {
                seconds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds needs a number");
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let config = FleetConfig {
        threads,
        ..FleetConfig::default()
    };
    let report = run_fleet(&specs(seconds), &config);

    for s in &report.sessions {
        println!(
            "FLEETDET {{\"session\":\"{}\",\"outcome\":\"{:?}\",\"phase\":\"{}\",\
             \"windows\":{},\
             \"digest\":\"{:016x}\",\"iterations_sum\":{},\"rmse_bits\":\"{:016x}\",\
             \"latency_bits\":\"{:016x}\",\"energy_bits\":\"{:016x}\",\
             \"degraded_windows\":{},\"watchdog_windows\":{},\
             \"sensor_fault_windows\":{},\"solver_divergence_windows\":{},\
             \"prior_reset_windows\":{},\"restarts\":{},\"deadline_misses\":{}}}",
            s.name,
            s.outcome,
            s.phase,
            s.windows,
            s.digest(),
            s.iterations.iter().sum::<usize>(),
            s.rmse_m.to_bits(),
            s.modelled_latency_ms.to_bits(),
            s.modelled_energy_mj.to_bits(),
            s.degraded_windows,
            s.watchdog_windows,
            s.sensor_fault_windows,
            s.solver_divergence_windows,
            s.prior_reset_windows,
            s.restarts,
            s.deadline_misses,
        );
    }
    let completed = report
        .sessions
        .iter()
        .filter(|s| s.outcome == SessionOutcome::Completed)
        .count();
    // The machine's CPU count rides in every run record (not only the
    // gate block fleet_smoke.sh appends) so a single record is
    // interpretable on its own — a 4-worker run on a 1-CPU box is
    // timeslicing, not parallelism.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "FLEETJSON {{\"threads\":{},\"cpus\":{cpus},\"sessions\":{},\"completed\":{},\
         \"frames\":{},\"windows\":{},\"serving_wall_s\":{:.6},\
         \"throughput_fps\":{:.3},\"p50_us\":{:.1},\"p95_us\":{:.1},\"p99_us\":{:.1},\
         \"model_evaluations\":{},\"model_cache_hits\":{},\
         \"gating_builds\":{},\"gating_hits\":{},\
         \"quarantined\":{},\"session_restarts\":{},\"deadline_misses\":{},\
         \"steals\":{},\"deferrals\":{},\"quanta\":{},\"resurrections\":{}}}",
        report.threads,
        report.sessions.len(),
        completed,
        report.frames_processed,
        report.windows_processed,
        report.serving_wall_s,
        report.throughput_fps,
        report.latency.p50_ns as f64 / 1_000.0,
        report.latency.p95_ns as f64 / 1_000.0,
        report.latency.p99_ns as f64 / 1_000.0,
        report.model_evaluations,
        report.model_cache_hits,
        report.gating_builds,
        report.gating_hits,
        report.quarantined_sessions,
        report.session_restarts,
        report.deadline_misses,
        report.scheduler.steals,
        report.scheduler.deferrals,
        report.scheduler.quanta,
        report.scheduler.resurrections,
    );
}
