//! Fig. 14 — latency-vs-power Pareto frontier of power-optimized designs,
//! validated by perturbing the frontier designs (no perturbation may
//! dominate the frontier).
//!
//! Run: `cargo run --release -p archytas-bench --bin fig14`

use archytas_bench::{banner, print_table};
use archytas_core::{pareto_frontier, validate_by_perturbation, DesignSpec};

fn main() {
    banner(
        "Fig. 14",
        "latency-vs-power Pareto frontier of generated designs (ZC706)",
    );

    let base = DesignSpec::zc706_power_optimal(20.0);
    // Our calibrated models put feasible windows at ~1.9–10 ms (the paper's
    // axis runs 20–100 ms on its larger absolute scale; the frontier shape
    // is the reproduction target).
    let frontier = pareto_frontier(&base, (2.2, 10.0), 16);

    let rows: Vec<Vec<String>> = frontier
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.latency_constraint_ms),
                format!("{:.2}", p.design.latency_ms),
                format!("{:.2}", p.design.power_w),
                format!(
                    "({}, {}, {})",
                    p.design.config.nd, p.design.config.nm, p.design.config.s
                ),
            ]
        })
        .collect();
    print_table(
        &[
            "constraint (ms)",
            "latency (ms)",
            "power (W)",
            "(nd, nm, s)",
        ],
        &rows,
    );

    let (perturbed, violations) = validate_by_perturbation(&base, &frontier);
    println!();
    println!(
        "validation: {} perturbed neighbours examined, {} dominate the frontier",
        perturbed.len(),
        violations
    );
    println!(
        "Pareto optimality {}: every perturbed design (circle) is dominated by the frontier (squares)",
        if violations == 0 { "VALIDATED" } else { "VIOLATED" }
    );
    let p_hi = frontier.first().map(|p| p.design.power_w).unwrap_or(0.0);
    let p_lo = frontier.last().map(|p| p.design.power_w).unwrap_or(0.0);
    println!(
        "frontier spans {:.2} W → {:.2} W as the latency constraint relaxes (paper: ~5 W → ~2.5 W)",
        p_hi, p_lo
    );
}
