//! Chaos bench: drives the standard 8-vehicle fleet batch through the
//! execution-level chaos matrix (session panics, step stalls, poisoned
//! observations, worker jitter) and *gates in-process* on the fault-
//! isolation contract before emitting anything:
//!
//! * the set of terminally quarantined sessions equals each case's
//!   expectation — chaos quarantines exactly its targets, never a
//!   neighbor;
//! * every session (faulted or not) is bitwise identical to running that
//!   same spec alone, serially, at pools {1, 2, 8};
//! * every *non-faulted* session additionally matches the chaos-free
//!   serial reference — a neighbor's panic, stall, or jitter never costs
//!   a healthy vehicle one bit.
//!
//! Usage: `chaos [--workers N] [--seconds S]` (workers also via
//! `ARCHYTAS_FLEET_THREADS`, default 1).
//!
//! Output for `scripts/chaos_smoke.sh`:
//! * one `CHAOSDET {...}` line per (case, session) — deterministic fields
//!   only, byte-identical across pool sizes;
//! * one `CHAOSJSON {...}` line per case — wall-clock timing and fleet
//!   counters from the `--workers` run.
//!
//! Exits non-zero on any contract violation.

use archytas_bench::json::JsonLine;
use archytas_bench::standard_fleet_specs as base_specs;
use archytas_faults::{ChaosKind, ChaosPlan};
use archytas_fleet::{
    run_fleet, run_session_alone, DeadlinePolicy, FleetConfig, FleetReport, RestartPolicy,
    SessionOutcome, SessionReport, SessionSpec,
};
use std::collections::HashMap;

/// One chaos scenario: which sessions get which chaos, under which
/// policies, and which sessions are expected to end quarantined.
struct ChaosCase {
    name: &'static str,
    /// `(session name, chaos plan)` — applied on top of the base batch.
    chaos: Vec<(&'static str, ChaosPlan)>,
    deadline: DeadlinePolicy,
    restart: RestartPolicy,
    /// Sessions that must end `SessionOutcome::Quarantined` — exactly.
    expect_quarantined: Vec<&'static str>,
    /// Chaos-touched sessions expected to nevertheless match the
    /// *chaos-free* serial bits (restart replay, timing-only chaos).
    expect_clean_bits: Vec<&'static str>,
}

fn cases() -> Vec<ChaosCase> {
    vec![
        ChaosCase {
            name: "panic-restart",
            chaos: vec![(
                "car-3",
                ChaosPlan::new(41).with(ChaosKind::SessionPanic { frame: 15 }),
            )],
            deadline: DeadlinePolicy::default(),
            restart: RestartPolicy::default(), // one restart
            expect_quarantined: vec![],
            // The one-shot panic does not re-fire after the checkpoint
            // restore, so car-3 replays to the chaos-free bits.
            expect_clean_bits: vec!["car-3"],
        },
        ChaosCase {
            name: "panic-quarantine",
            chaos: vec![(
                "car-1",
                ChaosPlan::new(7).with(ChaosKind::SessionPanic { frame: 10 }),
            )],
            deadline: DeadlinePolicy::default(),
            restart: RestartPolicy {
                max_restarts: 0,
                ..RestartPolicy::default()
            },
            expect_quarantined: vec!["car-1"],
            expect_clean_bits: vec![],
        },
        ChaosCase {
            name: "step-stall",
            chaos: vec![(
                "drone-0",
                ChaosPlan::new(5).with(ChaosKind::StepStall {
                    frame: 14,
                    rounds: 11,
                }),
            )],
            deadline: DeadlinePolicy {
                multiplier: 4.0,
                misses_to_quarantine: 1,
                ..DeadlinePolicy::default()
            },
            restart: RestartPolicy {
                max_restarts: 0,
                ..RestartPolicy::default()
            },
            expect_quarantined: vec!["drone-0"],
            expect_clean_bits: vec![],
        },
        ChaosCase {
            name: "poisoned-observation",
            chaos: vec![(
                "car-2",
                ChaosPlan::new(3).with(ChaosKind::PoisonedObservation { start: 12, end: 16 }),
            )],
            deadline: DeadlinePolicy::default(),
            restart: RestartPolicy::default(),
            // The fallible solver absorbs the non-finite costs through the
            // degradation ladder; the session survives with different (but
            // deterministic) bits.
            expect_quarantined: vec![],
            expect_clean_bits: vec![],
        },
        ChaosCase {
            name: "worker-jitter",
            chaos: vec![
                (
                    "car-0",
                    ChaosPlan::new(9)
                        .with(ChaosKind::WorkerJitter { max_spins: 4000 })
                        .with(ChaosKind::StepStall {
                            frame: 8,
                            rounds: 3,
                        }),
                ),
                (
                    "drone-1",
                    ChaosPlan::new(17).with(ChaosKind::WorkerJitter { max_spins: 4000 }),
                ),
            ],
            deadline: DeadlinePolicy::default(),
            restart: RestartPolicy::default(),
            expect_quarantined: vec![],
            // Timing-only chaos: bits must equal the chaos-free reference.
            expect_clean_bits: vec!["car-0", "drone-1"],
        },
    ]
}

fn specs_for(case: &ChaosCase, seconds: f64) -> Vec<SessionSpec> {
    let mut specs = base_specs(seconds);
    for (name, plan) in &case.chaos {
        let spec = specs
            .iter_mut()
            .find(|s| s.name == *name)
            .expect("chaos target exists in the base batch");
        *spec = spec.clone().with_chaos(plan.clone());
    }
    specs
}

fn config_for(case: &ChaosCase, threads: usize) -> FleetConfig {
    FleetConfig {
        threads,
        deadline: case.deadline,
        restart: case.restart,
        ..FleetConfig::default()
    }
}

/// Compares the deterministic payload of two reports; returns a
/// description of the first divergence instead of panicking, so the bench
/// can report every violation before exiting.
fn diff(a: &SessionReport, b: &SessionReport) -> Option<String> {
    if a.outcome != b.outcome {
        return Some(format!("outcome {:?} vs {:?}", a.outcome, b.outcome));
    }
    if a.windows != b.windows {
        return Some(format!("windows {} vs {}", a.windows, b.windows));
    }
    if a.digest() != b.digest() {
        return Some(format!("digest {:016x} vs {:016x}", a.digest(), b.digest()));
    }
    None
}

/// Runs one case at one pool size and checks the quarantine set and the
/// per-session bits against the references. Returns violation strings.
fn gate_one_pool(
    case: &ChaosCase,
    threads: usize,
    report: &FleetReport,
    alone_chaotic: &HashMap<String, SessionReport>,
    alone_clean: &HashMap<String, SessionReport>,
) -> Vec<String> {
    let mut violations = Vec::new();
    let quarantined: Vec<&str> = report
        .sessions
        .iter()
        .filter(|s| s.outcome == SessionOutcome::Quarantined)
        .map(|s| s.name.as_str())
        .collect();
    if quarantined != case.expect_quarantined {
        violations.push(format!(
            "{}@{threads}t: quarantine set {:?}, expected {:?}",
            case.name, quarantined, case.expect_quarantined
        ));
    }
    let touched: Vec<&str> = case.chaos.iter().map(|(n, _)| *n).collect();
    for s in &report.sessions {
        // Contract 1: fleet == alone with the *same* chaos, for everyone.
        if let Some(d) = diff(s, &alone_chaotic[&s.name]) {
            violations.push(format!(
                "{}@{threads}t: {} diverges from chaotic serial-alone: {d}",
                case.name, s.name
            ));
        }
        // Contract 2: untouched sessions == the chaos-free reference.
        let expect_clean = !touched.contains(&s.name.as_str())
            || case.expect_clean_bits.contains(&s.name.as_str());
        if expect_clean {
            if let Some(d) = diff(s, &alone_clean[&s.name]) {
                violations.push(format!(
                    "{}@{threads}t: {} diverges from chaos-free serial-alone: {d}",
                    case.name, s.name
                ));
            }
        }
    }
    violations
}

fn main() {
    // Injected chaos panics are expected; swallow their default-hook
    // backtrace noise but keep every real panic loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let chaos = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("chaos:"));
        if !chaos {
            default_hook(info);
        }
    }));

    let args: Vec<String> = std::env::args().collect();
    let mut workers: usize = std::env::var("ARCHYTAS_FLEET_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut seconds = 4.0f64;
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers needs an unsigned integer");
            }
            "--seconds" => {
                seconds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds needs a number");
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut violations: Vec<String> = Vec::new();

    // The chaos-free serial reference, shared by every case: a clean
    // session's bits do not depend on the deadline/restart policy (the
    // watchdog only observes, checkpoints only clone), so one reference
    // under the default config serves all cases.
    let alone_clean: HashMap<String, SessionReport> = base_specs(seconds)
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                run_session_alone(s, &FleetConfig::default()),
            )
        })
        .collect();

    for case in cases() {
        let specs = specs_for(&case, seconds);
        let serial_cfg = config_for(&case, 1);
        // Chaotic serial references: only chaos-touched specs need a fresh
        // run under the case's policies; everyone else IS the clean twin.
        let alone_chaotic: HashMap<String, SessionReport> = specs
            .iter()
            .map(|s| {
                let report = if s.chaos.is_some() {
                    run_session_alone(s, &serial_cfg)
                } else {
                    alone_clean[&s.name].clone()
                };
                (s.name.clone(), report)
            })
            .collect();

        // The hard gate runs at pools {1, 2, 8} regardless of --workers.
        let mut workers_report: Option<FleetReport> = None;
        for threads in [1usize, 2, 8] {
            let report = run_fleet(&specs, &config_for(&case, threads));
            violations.extend(gate_one_pool(
                &case,
                threads,
                &report,
                &alone_chaotic,
                &alone_clean,
            ));
            if threads == workers {
                workers_report = Some(report);
            }
        }
        let report =
            workers_report.unwrap_or_else(|| run_fleet(&specs, &config_for(&case, workers)));

        for s in &report.sessions {
            let failure = s.failure.as_ref().map(|f| f.cause.to_string());
            let line = JsonLine::new()
                .str("case", case.name)
                .str("session", &s.name)
                .str("outcome", &format!("{:?}", s.outcome))
                .str("phase", &s.phase.to_string())
                .uint("windows", s.windows as u64)
                .bits("digest", s.digest())
                .uint("restarts", s.restarts as u64)
                .uint("deadline_misses", s.deadline_misses as u64)
                .opt_str("failure", failure.as_deref());
            println!("CHAOSDET {}", line.finish());
        }
        let line = JsonLine::new()
            .str("case", case.name)
            .uint("workers", report.threads as u64)
            .uint("cpus", cpus as u64)
            .uint("sessions", report.sessions.len() as u64)
            .uint("quarantined", report.quarantined_sessions as u64)
            .uint("session_restarts", report.session_restarts as u64)
            .uint("deadline_misses", report.deadline_misses as u64)
            .uint("frames", report.frames_processed as u64)
            .uint("windows", report.windows_processed as u64)
            .float("serving_wall_s", report.serving_wall_s, 6)
            .float("throughput_fps", report.throughput_fps, 3)
            .uint("resurrections", report.scheduler.resurrections as u64)
            .uint("quanta", report.scheduler.quanta as u64);
        println!("CHAOSJSON {}", line.finish());
    }

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("CHAOS GATE VIOLATION: {v}");
        }
        eprintln!("chaos gate FAILED: {} violation(s)", violations.len());
        std::process::exit(1);
    }
    eprintln!("chaos gate passed: quarantine sets exact, all sessions bitwise == serial-alone at pools {{1,2,8}}");
}
