//! Fig. 12 — RMSE falls as the average NLS iteration count rises
//! (profiled on KITTI).
//!
//! Run: `cargo run --release -p archytas-bench --bin fig12`

use archytas_bench::{banner, print_table};
use archytas_dataset::{kitti_sequences, PipelineConfig, VioPipeline};
use archytas_slam::TrajectoryMetrics;

fn main() {
    banner("Fig. 12", "RMSE vs NLS iteration count (KITTI profiling)");

    // Sequence 00 includes the feature droughts that make the iteration
    // count matter (Fig. 11) — the same coupling the paper's run-time
    // system exploits.
    let duration = if std::env::var("ARCHYTAS_FULL").is_ok() {
        100.0
    } else {
        40.0
    };
    let data = kitti_sequences()[0].truncated(duration).build();

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for iterations in 1..=6usize {
        let mut pipeline = VioPipeline::new(PipelineConfig::default());
        let mut metrics = TrajectoryMetrics::new();
        for frame in &data.frames {
            if pipeline.push_frame(frame) {
                let r = pipeline.optimize_and_slide(iterations);
                metrics.record(&r.estimate, &r.ground_truth, 0.0);
            }
        }
        // Report RMSE in centimetres (the paper's axis is unit-normalized).
        let rmse_cm = metrics.rmse() * 100.0;
        series.push(rmse_cm);
        rows.push(vec![iterations.to_string(), format!("{rmse_cm:.2}")]);
    }
    print_table(&["avg NLS iterations", "RMSE (cm)"], &rows);

    let first = series[0];
    let last = series[5];
    println!();
    println!(
        "RMSE at 1 iteration: {first:.2} cm → at 6 iterations: {last:.2} cm ({:.1}x lower)",
        first / last.max(1e-9)
    );
    let mostly_monotone = series.windows(2).filter(|w| w[1] <= w[0] * 1.05).count() >= 4;
    println!(
        "paper's Fig. 12 shape {}: more iterations lower the error, with diminishing returns",
        if last < first && mostly_monotone {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
