//! Tbl. 2 — FPGA resource consumption (utilization percentages and absolute
//! numbers) and customization parameters of the High-Perf and Low-Power
//! designs on the ZC706.
//!
//! Run: `cargo run --release -p archytas-bench --bin table2`

use archytas_bench::{banner, print_table};
use archytas_core::{synthesize, DesignSpec};
use archytas_hw::{FpgaPlatform, ResourceModel, HIGH_PERF, LOW_POWER};

fn main() {
    banner(
        "Tbl. 2",
        "resource consumption and (nd, nm, s) of High-Perf / Low-Power (ZC706)",
    );

    let platform = FpgaPlatform::zc706();
    let model = ResourceModel::calibrated();
    let mut rows = Vec::new();
    for (name, config, paper) in [
        (
            "High-Perf",
            HIGH_PERF,
            "62.41%(136432) 37.28%(163006) 46.88%(255.5) 94.33%(849)",
        ),
        (
            "Low-Power",
            LOW_POWER,
            "43.81%(95777) 28.97%(126670) 26.79%(146) 49.11%(442)",
        ),
    ] {
        let util = model.utilization(&config, &platform);
        let fmt = |i: usize| format!("{:.2}%({:.0})", util[i].2 * 100.0, util[i].1);
        let bram = format!("{:.2}%({:.1})", util[2].2 * 100.0, util[2].1);
        rows.push(vec![
            name.to_string(),
            fmt(0),
            fmt(1),
            bram,
            fmt(3),
            config.nd.to_string(),
            config.nm.to_string(),
            config.s.to_string(),
        ]);
        println!("paper {name}: {paper}  nd/nm/s per Tbl. 2");
    }
    println!();
    print_table(
        &["design", "LUT", "FF", "BRAM", "DSP", "nd", "nm", "s"],
        &rows,
    );

    // The designs the synthesizer produces under equivalent constraints on
    // our workload scale (our absolute latency calibration is faster than
    // the paper's testbed, so the equivalent constraints are tighter).
    println!();
    println!("synthesized equivalents on this reproduction's latency scale:");
    let mut rows = Vec::new();
    for (name, bound) in [("High-Perf-like", 2.5), ("Low-Power-like", 3.5)] {
        if let Ok(d) = synthesize(&DesignSpec::zc706_power_optimal(bound)) {
            rows.push(vec![
                name.to_string(),
                format!("{:.2} ms", d.latency_ms),
                format!("{:.2} W", d.power_w),
                format!("({}, {}, {})", d.config.nd, d.config.nm, d.config.s),
                format!("{:.0} DSP", d.resources.dsp),
            ]);
        }
    }
    print_table(
        &["design", "latency", "power", "(nd, nm, s)", "DSPs"],
        &rows,
    );
}
