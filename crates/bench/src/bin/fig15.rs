//! Fig. 15 — speedup and energy reduction of the Fig. 14 Pareto-optimal
//! designs over the Intel and Arm baselines on a KITTI trace.
//!
//! The frontier sweep itself fans out over the worker pool (one synthesis
//! per latency bound), the CPU baselines are memoized, and the per-design
//! evaluation rows are computed in parallel — all bit-identical to the
//! serial path by `archytas-par`'s determinism contract.
//!
//! Run: `cargo run --release -p archytas-bench --bin fig15`

use archytas_baselines::{CachedCpuPlatform, CpuPlatform};
use archytas_bench::{banner, mean, print_table, sequence_shapes};
use archytas_core::{pareto_frontier, DesignSpec};
use archytas_dataset::kitti_sequences;
use archytas_hw::{AcceleratorModel, FpgaPlatform};
use archytas_par::Pool;

fn main() {
    banner(
        "Fig. 15",
        "speedup & energy reduction of Pareto designs over Intel/Arm (KITTI trace)",
    );

    let data = kitti_sequences()[2].truncated(12.0).build();
    let shapes = sequence_shapes(&data, 10);
    let intel = CachedCpuPlatform::new(CpuPlatform::intel_comet_lake());
    let arm = CachedCpuPlatform::new(CpuPlatform::arm_a57());

    let base = DesignSpec::zc706_power_optimal(20.0);
    let frontier = pareto_frontier(&base, (2.2, 10.0), 12);

    // The CPU means are design-independent; hoist them out of the loop
    // (the caches would collapse the recomputation anyway).
    let intel_ms = mean(
        &shapes
            .iter()
            .map(|s| intel.window_time_ms(s, 6))
            .collect::<Vec<_>>(),
    );
    let intel_mj = mean(
        &shapes
            .iter()
            .map(|s| intel.window_energy_mj(s, 6))
            .collect::<Vec<_>>(),
    );
    let arm_ms = mean(
        &shapes
            .iter()
            .map(|s| arm.window_time_ms(s, 6))
            .collect::<Vec<_>>(),
    );
    let arm_mj = mean(
        &shapes
            .iter()
            .map(|s| arm.window_energy_mj(s, 6))
            .collect::<Vec<_>>(),
    );

    // One evaluation task per frontier design, fanned out over the pool.
    let evals = Pool::global()
        .with_serial_threshold(2)
        .par_map(&frontier, |p| {
            let model = AcceleratorModel::new(p.design.config, FpgaPlatform::zc706());
            let accel_ms: Vec<f64> = shapes
                .iter()
                .map(|s| model.window_latency_ms(s, 6))
                .collect();
            let accel_mj: Vec<f64> = shapes
                .iter()
                .map(|s| model.window_energy_mj(s, 6))
                .collect();
            (
                intel_ms / mean(&accel_ms),
                intel_mj / mean(&accel_mj),
                arm_ms / mean(&accel_ms),
                arm_mj / mean(&accel_mj),
            )
        });

    let mut rows = Vec::new();
    let mut best = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (p, (s_intel, e_intel, s_arm, e_arm)) in frontier.iter().zip(evals) {
        if s_intel > best.0 {
            best = (s_intel, e_intel, s_arm, e_arm);
        }
        rows.push(vec![
            format!("{:.2}", p.design.latency_ms),
            format!("{:.2}", p.design.power_w),
            format!("{s_intel:.1}x"),
            format!("{e_intel:.1}x"),
            format!("{s_arm:.1}x"),
            format!("{e_arm:.1}x"),
        ]);
    }
    print_table(
        &[
            "latency (ms)",
            "power (W)",
            "speedup vs Intel",
            "energy red. vs Intel",
            "speedup vs Arm",
            "energy red. vs Arm",
        ],
        &rows,
    );

    println!();
    println!(
        "best design: {:.1}x / {:.1}x over Intel, {:.1}x / {:.1}x over Arm",
        best.0, best.1, best.2, best.3
    );
    println!("paper's best on this figure: 7.4x / 83.1x over Intel, 32.0x / 12.9x over Arm");
    println!(
        "shape checks: higher speedup ⇒ higher energy reduction with taper; Arm speedup > Intel speedup; Intel energy reduction > Arm energy reduction"
    );
}
