//! Fig. 13 — influence of the three customization knobs `nd`, `nm`, `s` on
//! FPGA resources (left y: DSP/LUT/BRAM/FF %) and execution time (right y).
//!
//! Run: `cargo run --release -p archytas-bench --bin fig13`

use archytas_bench::{banner, print_table};
use archytas_hw::{window_cycles, AcceleratorConfig, FpgaPlatform, ResourceKind, ResourceModel};
use archytas_mdfg::ProblemShape;

fn sweep(
    label: &str,
    values: &[usize],
    make: impl Fn(usize) -> AcceleratorConfig,
    shape: &ProblemShape,
    platform: &FpgaPlatform,
    resources: &ResourceModel,
) {
    println!("\n--- Fig. 13{label}: sweep ---");
    let mut rows = Vec::new();
    let mut times = Vec::new();
    for &v in values {
        let config = make(v);
        let r = resources.resources(&config);
        let cycles = window_cycles(shape, &config, 6);
        let ms = cycles / (platform.clock_mhz * 1e3);
        times.push(ms);
        rows.push(vec![
            v.to_string(),
            format!(
                "{:.1}",
                platform.utilization(ResourceKind::Dsp, r.dsp) * 100.0
            ),
            format!(
                "{:.1}",
                platform.utilization(ResourceKind::Lut, r.lut) * 100.0
            ),
            format!(
                "{:.1}",
                platform.utilization(ResourceKind::Bram, r.bram) * 100.0
            ),
            format!(
                "{:.1}",
                platform.utilization(ResourceKind::Ff, r.ff) * 100.0
            ),
            format!("{ms:.2}"),
        ]);
    }
    print_table(
        &["value", "DSP %", "LUT %", "BRAM %", "FF %", "time (ms)"],
        &rows,
    );
    let span = times.first().unwrap() / times.last().unwrap();
    println!("  time span over this sweep: {span:.1}x (diminishing returns at the tail)");
}

fn main() {
    banner(
        "Fig. 13",
        "knob sweeps: resources (left y) and execution time (right y)",
    );
    let shape = ProblemShape::typical();
    let platform = FpgaPlatform::zc706();
    let resources = ResourceModel::calibrated();

    let nd_vals: Vec<usize> = (1..=20).step_by(2).collect();
    sweep(
        "a (nd)",
        &nd_vals,
        |nd| AcceleratorConfig::new(nd, 8, 16),
        &shape,
        &platform,
        &resources,
    );

    let nm_vals: Vec<usize> = (1..=20).step_by(2).collect();
    sweep(
        "b (nm)",
        &nm_vals,
        |nm| AcceleratorConfig::new(8, nm, 16),
        &shape,
        &platform,
        &resources,
    );

    let s_vals: Vec<usize> = vec![1, 5, 10, 20, 30, 40, 50, 60, 70, 80];
    sweep(
        "c (s)",
        &s_vals,
        |s| AcceleratorConfig::new(8, 8, s),
        &shape,
        &platform,
        &resources,
    );

    // Sec. 7.2 headline claims.
    let slowest = window_cycles(&shape, &AcceleratorConfig::new(1, 1, 1), 6);
    let fastest = window_cycles(&shape, &AcceleratorConfig::new(30, 24, 120), 6);
    let r_min = resources.resources(&AcceleratorConfig::new(1, 1, 1));
    let r_max = resources.resources(&AcceleratorConfig::new(30, 24, 120));
    println!();
    println!(
        "knobs span {:.0}x latency (paper: >20x); resources span {:.1}x LUT / {:.1}x DSP (paper: ~3x overall)",
        slowest / fastest,
        r_max.lut / r_min.lut,
        r_max.dsp / r_min.dsp
    );
    println!(
        "s is the dominant resource knob: +{:.0}% DSP from s=1 to s=80 (paper: ~50% DSP increase)",
        (resources.resources(&AcceleratorConfig::new(8, 8, 80)).dsp
            - resources.resources(&AcceleratorConfig::new(8, 8, 1)).dsp)
            / platform.capacity.dsp
            * 100.0
    );
}
