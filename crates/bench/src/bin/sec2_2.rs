//! Sec. 2.2 — MAP vs filtering: the paper's motivation for targeting MAP is
//! that it "is more robust in long-term localization and is more efficient,
//! as quantified by accuracy per unit of computing time" than non-linear
//! filtering. This experiment runs both estimator classes on the same
//! KITTI-like drive and reports exactly that quotient.
//!
//! Run: `cargo run --release -p archytas-bench --bin sec2_2`

use archytas_baselines::CpuPlatform;
use archytas_bench::{banner, print_table};
use archytas_dataset::{kitti_sequences, PipelineConfig, VioPipeline};
use archytas_mdfg::ProblemShape;
use archytas_slam::{EkfConfig, EkfVio, TrajectoryMetrics};

fn main() {
    banner(
        "Sec. 2.2",
        "MAP vs non-linear filtering: accuracy per unit of computing time",
    );
    let duration = if std::env::var("ARCHYTAS_FULL").is_ok() {
        60.0
    } else {
        25.0
    };
    let data = kitti_sequences()[0].truncated(duration).build();

    // --- MAP (sliding-window LM, the paper's target) ---
    let mut pipeline = VioPipeline::new(PipelineConfig::default());
    let mut map_metrics = TrajectoryMetrics::new();
    let mut map_ops: u64 = 0;
    for frame in &data.frames {
        if pipeline.push_frame(frame) {
            let r = pipeline.optimize_and_slide(4);
            map_metrics.record(&r.estimate, &r.ground_truth, 0.0);
            let shape = ProblemShape::from_workload(&r.workload);
            map_ops += CpuPlatform::window_work_ops(&shape, r.report.iterations.max(1));
        }
    }

    // --- EKF (filtering baseline) ---
    let mut ekf = EkfVio::new(data.frames[0].gt, EkfConfig::default());
    let mut ekf_metrics = TrajectoryMetrics::new();
    for frame in &data.frames {
        ekf.propagate(&frame.imu);
        for feat in &frame.features {
            ekf.visual_update(feat.id, feat.uv, Some(feat.depth * 1.05));
        }
        ekf_metrics.record(&ekf.pose(), &frame.gt.pose, 0.0);
    }
    let ekf_ops = ekf.ops();

    // --- MAP's compute-vs-accuracy knob: the iteration sweep ---
    // Filtering has no equivalent: its accuracy saturates wherever its
    // one-shot update leaves it, while MAP converts extra compute into
    // extra accuracy (Fig. 12). This is the quantitative form of the
    // paper's "accuracy per unit of computing time" argument.
    let mut rows = Vec::new();
    for iterations in [1usize, 2] {
        let mut p = VioPipeline::new(PipelineConfig::default());
        let mut m = TrajectoryMetrics::new();
        let mut ops = 0u64;
        for frame in &data.frames {
            if p.push_frame(frame) {
                let r = p.optimize_and_slide(iterations);
                m.record(&r.estimate, &r.ground_truth, 0.0);
                ops += CpuPlatform::window_work_ops(
                    &ProblemShape::from_workload(&r.workload),
                    iterations,
                );
            }
        }
        rows.push(vec![
            format!("MAP, Iter = {iterations}"),
            format!("{:.1}", m.rmse() * 100.0),
            format!("{:.0}", ops as f64 / 1e6),
        ]);
    }
    rows.push(vec![
        "MAP, Iter = 4".to_string(),
        format!("{:.1}", map_metrics.rmse() * 100.0),
        format!("{:.0}", map_ops as f64 / 1e6),
    ]);
    rows.push(vec![
        "EKF (filtering, no knob)".to_string(),
        format!("{:.1}", ekf_metrics.rmse() * 100.0),
        format!("{:.0}", ekf_ops as f64 / 1e6),
    ]);
    print_table(&["estimator", "RMSE (cm)", "compute (Mops)"], &rows);

    println!();
    println!(
        "MAP is {:.1}x more accurate than filtering over this drive ({:.1}x the compute);",
        ekf_metrics.rmse() / map_metrics.rmse(),
        map_ops as f64 / ekf_ops as f64
    );
    println!(
        "no amount of filtering compute reaches MAP accuracy — the filter has no iteration knob,"
    );
    println!("which is exactly the knob Archytas's run-time system exploits (Sec. 6).");
    println!(
        "paper's Sec. 2.2 claim (MAP more robust in long-term localization) {}",
        if map_metrics.rmse() < ekf_metrics.rmse() {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    let (applied, gated) = ekf.update_stats();
    println!(
        "EKF internals: {applied} updates applied, {gated} gated, {} landmarks mapped",
        ekf.map_len()
    );
}
