//! Fig. 11 — relative error (left y) rises as the number of feature points
//! (right y) falls, on a KITTI snapshot (sliding windows 400–900).
//!
//! Run: `cargo run --release -p archytas-bench --bin fig11`
//! (set `ARCHYTAS_FULL=1` for the full 400–900 window range; the default
//! covers a shorter stretch for turnaround).

use archytas_bench::{banner, mean, print_table};
use archytas_dataset::{kitti_sequences, PipelineConfig, VioPipeline};

/// Lag (in windows) over which the relative error is measured: 1 s of
/// motion, matching the scale of KITTI's segment-relative error metric.
const LAG: usize = 10;

fn main() {
    banner(
        "Fig. 11",
        "relative error vs feature-point count (KITTI snapshot)",
    );

    // The full 100 s drive covers the deep feature droughts (down to ~20
    // features/window); the paper's snapshot shows windows 400–900 of the
    // same kind of stretch.
    let (duration, first_window, last_window) = (100.0, 10usize, usize::MAX);
    let data = kitti_sequences()[0].truncated(duration).build();
    let mut pipeline = VioPipeline::new(PipelineConfig::default());

    let mut history: Vec<(usize, usize, archytas_slam::Pose, archytas_slam::Pose)> = Vec::new();
    for frame in &data.frames {
        if !pipeline.push_frame(frame) {
            continue;
        }
        let r = pipeline.optimize_and_slide(4);
        history.push((r.window_id, r.workload.features, r.estimate, r.ground_truth));
    }
    // Relative error over a LAG-window (≈1 s) span ending at each window.
    let mut series: Vec<(usize, usize, f64)> = Vec::new(); // (window, features, rel err)
    for i in LAG..history.len() {
        let (w, f, est, gt) = history[i];
        if !(first_window..=last_window).contains(&w) {
            continue;
        }
        let (_, _, est0, gt0) = history[i - LAG];
        let rel = archytas_slam::relative_error(&est0, &est, &gt0, &gt);
        series.push((w, f, rel));
    }

    // Print a decimated series (every 25th window) as the figure's points.
    let rows: Vec<Vec<String>> = series
        .iter()
        .step_by(25)
        .map(|(w, f, e)| vec![w.to_string(), f.to_string(), format!("{e:.4}")])
        .collect();
    print_table(&["window", "features", "relative error"], &rows);

    // The figure's claim: fewer features ⇒ higher error. Quantify with the
    // error split between the bottom and top feature-count quartiles.
    let mut sorted: Vec<usize> = series.iter().map(|(_, f, _)| *f).collect();
    sorted.sort_unstable();
    let q1 = sorted[sorted.len() / 4];
    let q3 = sorted[3 * sorted.len() / 4];
    let poor: Vec<f64> = series
        .iter()
        .filter(|(_, f, _)| *f <= q1)
        .map(|(_, _, e)| *e)
        .collect();
    let rich: Vec<f64> = series
        .iter()
        .filter(|(_, f, _)| *f >= q3)
        .map(|(_, _, e)| *e)
        .collect();
    println!();
    println!(
        "windows: {}   feature count range: {}..{} (Q1 {q1}, Q3 {q3})",
        series.len(),
        sorted[0],
        sorted[sorted.len() - 1]
    );
    println!(
        "mean relative error | feature-poor quartile: {:.4}   feature-rich quartile: {:.4} ({:.0}% higher when scarce)",
        mean(&poor),
        mean(&rich),
        (mean(&poor) / mean(&rich) - 1.0) * 100.0
    );
    println!(
        "paper's Fig. 11 shape {}: error is higher when features are scarce",
        if mean(&poor) > mean(&rich) * 1.1 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
