//! One-line JSON record builder shared by the bench binaries.
//!
//! The smoke scripts (`scripts/*_smoke.sh`) sed-extract prefixed lines
//! (`FLEETJSON {...}`, `CHAOSDET {...}`, `OBSJSON {...}`, ...) and paste
//! them into larger documents, so every record must be a single line of
//! valid JSON with a stable field order. Before this module each binary
//! hand-rolled its records in one giant `format!` — identical escaping
//! bugs waiting to happen in four places. [`JsonLine`] centralizes the
//! quoting rules; field order is insertion order.

use std::fmt::Write;

/// Builder for one single-line JSON object.
///
/// ```
/// use archytas_bench::json::JsonLine;
/// let line = JsonLine::new()
///     .str("session", "car-0")
///     .uint("windows", 42)
///     .bits("digest", 0xdead_beef)
///     .float("wall_s", 1.25, 6)
///     .boolean("pass", true)
///     .finish();
/// assert_eq!(
///     line,
///     "{\"session\":\"car-0\",\"windows\":42,\
///      \"digest\":\"00000000deadbeef\",\"wall_s\":1.250000,\"pass\":true}"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct JsonLine {
    buf: String,
}

impl Default for JsonLine {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonLine {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, key: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Adds a string field, or `null` when absent.
    pub fn opt_str(self, key: &str, value: Option<&str>) -> Self {
        match value {
            Some(v) => self.str(key, v),
            None => self.null(key),
        }
    }

    /// Adds an unsigned integer field.
    pub fn uint(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds an unsigned integer field, or `null` when absent.
    pub fn opt_uint(self, key: &str, value: Option<u64>) -> Self {
        match value {
            Some(v) => self.uint(key, v),
            None => self.null(key),
        }
    }

    /// Adds a float field with fixed `decimals` digits. Non-finite values
    /// (not representable in JSON) become `null`.
    pub fn float(mut self, key: &str, value: f64, decimals: usize) -> Self {
        if !value.is_finite() {
            return self.null(key);
        }
        self.key(key);
        let _ = write!(self.buf, "{value:.decimals$}");
        self
    }

    /// Adds a `u64` bit pattern as a fixed-width hex *string* — the exact
    /// form the determinism byte-diff gates compare (`digest`,
    /// `rmse_bits`, ...). Never a JSON number: 64-bit patterns do not
    /// survive f64-parsing JSON consumers.
    pub fn bits(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "\"{value:016x}\"");
        self
    }

    /// Adds a boolean field.
    pub fn boolean(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds an explicit `null` field.
    pub fn null(mut self, key: &str) -> Self {
        self.key(key);
        self.buf.push_str("null");
        self
    }

    /// Adds a pre-rendered JSON value verbatim (nested object/array built
    /// by another [`JsonLine`] or an array literal). The caller vouches
    /// for its validity.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Closes the object and returns the line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Renders `items` as a JSON array of pre-rendered values (for
/// [`JsonLine::raw`]).
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_order_is_insertion_order() {
        let line = JsonLine::new().uint("b", 2).uint("a", 1).finish();
        assert_eq!(line, "{\"b\":2,\"a\":1}");
    }

    #[test]
    fn strings_are_escaped() {
        let line = JsonLine::new().str("s", "a\"b\\c\nd\u{1}").finish();
        assert_eq!(line, "{\"s\":\"a\\\"b\\\\c\\nd\\u0001\"}");
    }

    #[test]
    fn bits_render_fixed_width_hex_strings() {
        let line = JsonLine::new().bits("digest", 0xbeef).finish();
        assert_eq!(line, "{\"digest\":\"000000000000beef\"}");
    }

    #[test]
    fn options_and_non_finite_floats_become_null() {
        let line = JsonLine::new()
            .opt_str("cause", None)
            .opt_uint("recovery", None)
            .float("watts", f64::INFINITY, 3)
            .opt_str("other", Some("x"))
            .finish();
        assert_eq!(
            line,
            "{\"cause\":null,\"recovery\":null,\"watts\":null,\"other\":\"x\"}"
        );
    }

    #[test]
    fn arrays_join_prerendered_values() {
        let items = (0..3).map(|i| JsonLine::new().uint("i", i).finish());
        assert_eq!(array(items), "[{\"i\":0},{\"i\":1},{\"i\":2}]");
        assert_eq!(array(std::iter::empty()), "[]");
    }

    #[test]
    fn empty_object_is_valid() {
        assert_eq!(JsonLine::new().finish(), "{}");
    }
}
