//! Shared harness utilities for the experiment binaries that regenerate
//! every table and figure of the Archytas paper (see DESIGN.md's experiment
//! index and EXPERIMENTS.md for paper-vs-measured numbers).

#![warn(missing_docs)]

use archytas_baselines::{CachedCpuPlatform, CpuPlatform};
use archytas_dataset::{euroc_sequences, kitti_sequences, SequenceData, SequenceSpec};
use archytas_faults::{FaultKind, FaultPlan};
use archytas_fleet::{Priority, SessionSpec};
use archytas_hw::{AcceleratorModel, CachedAcceleratorModel, FpgaPlatform, HIGH_PERF, LOW_POWER};
use archytas_mdfg::ProblemShape;
use archytas_par::Pool;
use archytas_slam::mean_stdev;

pub mod json;

/// The standard 8-vehicle serving batch shared by the `fleet`, `chaos` and
/// `obs` binaries: four cars, two drones, mixed priorities, and two
/// vehicles hitting sensor faults mid-sequence. Durations truncate to
/// `seconds`, except the faulted pair which needs at least 4 s so their
/// frame-24..28 fault windows actually land (10 Hz).
pub fn standard_fleet_specs(seconds: f64) -> Vec<SessionSpec> {
    let kitti = kitti_sequences();
    let euroc = euroc_sequences();
    let fault_len = seconds.max(4.0);
    vec![
        SessionSpec::new("car-0", kitti[0].truncated(seconds), Priority::High),
        SessionSpec::new("car-1", kitti[1].truncated(seconds), Priority::Normal),
        SessionSpec::new("car-2", kitti[2].truncated(seconds), Priority::Low),
        SessionSpec::new("drone-0", euroc[0].truncated(seconds), Priority::Normal),
        SessionSpec::new("drone-1", euroc[1].truncated(seconds), Priority::Low),
        SessionSpec::new("car-3", kitti[3].truncated(seconds), Priority::Normal),
        SessionSpec::new("car-flaky", kitti[1].truncated(fault_len), Priority::High)
            .with_faults(FaultPlan::new(11).with(FaultKind::VisionDropout, 24, 28)),
        SessionSpec::new("drone-flaky", euroc[0].truncated(fault_len), Priority::Low)
            .with_faults(FaultPlan::new(13).with(FaultKind::ImuNan { probability: 0.3 }, 24, 27)),
    ]
}

/// A deterministic `n`-vehicle batch for the scaling sweep: sequences
/// cycle through the KITTI-like and EuRoC-like sets, priorities cycle
/// High/Normal/Normal/Low, durations truncate to `seconds`. A pure
/// function of `(n, seconds)`, so every sweep point and every pool size
/// serves byte-identical work.
pub fn scaling_fleet_specs(n: usize, seconds: f64) -> Vec<SessionSpec> {
    let kitti = kitti_sequences();
    let euroc = euroc_sequences();
    (0..n)
        .map(|i| {
            let (kind, seq) = if i % 3 == 2 {
                ("drone", &euroc[(i / 3) % euroc.len()])
            } else {
                ("car", &kitti[i % kitti.len()])
            };
            let priority = match i % 4 {
                0 => Priority::High,
                3 => Priority::Low,
                _ => Priority::Normal,
            };
            SessionSpec::new(format!("{kind}-{i:04}"), seq.truncated(seconds), priority)
        })
        .collect()
}

/// Prints a fixed-width text table (header + separator + rows).
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&sep);
    for row in rows {
        line(row);
    }
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("==============================================================");
}

/// Truncation (seconds) for suite runs; override with
/// `ARCHYTAS_FULL=1` to run the full sequence durations.
pub fn suite_truncation() -> Option<f64> {
    if std::env::var("ARCHYTAS_FULL").is_ok() {
        None
    } else {
        Some(15.0)
    }
}

/// The benchmark suite: all KITTI-like and EuRoC-like sequences, truncated
/// unless `ARCHYTAS_FULL=1`.
pub fn suite() -> Vec<SequenceSpec> {
    let trunc = suite_truncation();
    kitti_sequences()
        .into_iter()
        .chain(euroc_sequences())
        .map(|s| match trunc {
            Some(t) => s.truncated(t),
            None => s,
        })
        .collect()
}

/// Per-window problem shapes of a sequence, from the fast workload path.
pub fn sequence_shapes(data: &SequenceData, window_size: usize) -> Vec<ProblemShape> {
    data.window_workloads(window_size)
        .iter()
        .map(ProblemShape::from_workload)
        .collect()
}

/// Builds every sequence of `specs` and extracts its per-window shapes, in
/// parallel on the global pool. Order matches `specs`; sequences too short
/// for a window yield an empty shape list.
pub fn build_suite_shapes(
    specs: &[SequenceSpec],
    window_size: usize,
) -> Vec<(String, Vec<ProblemShape>)> {
    // Sequence generation dominates the sweep binaries; each build is
    // hundreds of frames of work, so parallelize per sequence.
    Pool::global()
        .with_serial_threshold(2)
        .par_map(specs, |spec| {
            let data = spec.build();
            (spec.name.clone(), sequence_shapes(&data, window_size))
        })
}

/// One row of the Fig. 16 table: a design compared against a CPU baseline
/// across the whole suite.
#[derive(Debug, Clone)]
pub struct Fig16Row {
    /// Design name (`High-Perf` / `Low-Power`).
    pub design: &'static str,
    /// Baseline platform name.
    pub baseline: &'static str,
    /// Mean and standard deviation of per-sequence speedups.
    pub speedup: (f64, f64),
    /// Mean and standard deviation of per-sequence energy reductions.
    pub energy_reduction: (f64, f64),
}

/// Cache counters of one memoized evaluator after the Fig. 16 sweep.
#[derive(Debug, Clone)]
pub struct EvalCacheStats {
    /// Evaluator name.
    pub name: String,
    /// Cost-model evaluations performed (cache misses).
    pub evaluations: usize,
    /// Lookups served from the cache.
    pub hits: usize,
}

/// Full result of the Fig. 16 computation.
#[derive(Debug, Clone)]
pub struct Fig16Result {
    /// Table rows, one per (design, baseline) pair.
    pub rows: Vec<Fig16Row>,
    /// Cache counters per evaluator (two accelerator designs, two CPUs).
    pub cache_stats: Vec<EvalCacheStats>,
    /// Distinct `(shape, iterations)` keys in the whole suite — the floor
    /// (and, with the caches, the exact count) of model evaluations any
    /// platform performs.
    pub distinct_keys: usize,
}

/// Fig. 16 computation: mean speedup and energy reduction of the High-Perf
/// and Low-Power designs over the Intel and Arm baselines across `specs`.
///
/// Sequences are built in parallel ([`build_suite_shapes`]); every model
/// evaluation is memoized per platform, so each of the `distinct_keys`
/// `(shape, 6)` keys is evaluated exactly once per platform no matter how
/// many designs, baselines, or repeated window shapes reference it.
pub fn fig16_result(specs: &[SequenceSpec]) -> Fig16Result {
    let iterations = 6;
    let suite_shapes = build_suite_shapes(specs, 10);
    let designs = [("High-Perf", HIGH_PERF), ("Low-Power", LOW_POWER)];
    let models: Vec<(&'static str, CachedAcceleratorModel)> = designs
        .iter()
        .map(|&(name, config)| {
            (
                name,
                CachedAcceleratorModel::new(AcceleratorModel::new(config, FpgaPlatform::zc706())),
            )
        })
        .collect();
    let cpus = [
        CachedCpuPlatform::new(CpuPlatform::intel_comet_lake()),
        CachedCpuPlatform::new(CpuPlatform::arm_a57()),
    ];

    let mut rows = Vec::new();
    for (dname, model) in &models {
        for cpu in &cpus {
            let mut speedups = Vec::new();
            let mut energies = Vec::new();
            for (_, shapes) in &suite_shapes {
                if shapes.is_empty() {
                    continue;
                }
                let eval = |f: &dyn Fn(&ProblemShape) -> f64| {
                    mean(&shapes.iter().map(f).collect::<Vec<_>>())
                };
                let accel_ms = eval(&|s| model.window_latency_ms(s, iterations));
                let accel_mj = eval(&|s| model.window_energy_mj(s, iterations));
                let cpu_ms = eval(&|s| cpu.window_time_ms(s, iterations));
                let cpu_mj = eval(&|s| cpu.window_energy_mj(s, iterations));
                speedups.push(cpu_ms / accel_ms);
                energies.push(cpu_mj / accel_mj);
            }
            rows.push(Fig16Row {
                design: dname,
                baseline: cpu.cpu().name,
                speedup: mean_stdev(&speedups),
                energy_reduction: mean_stdev(&energies),
            });
        }
    }

    let distinct_keys = suite_shapes
        .iter()
        .flat_map(|(_, shapes)| shapes.iter().map(|s| (*s, iterations)))
        .collect::<std::collections::HashSet<_>>()
        .len();
    let mut cache_stats: Vec<EvalCacheStats> = models
        .iter()
        .map(|(name, m)| EvalCacheStats {
            name: format!("accel/{name}"),
            evaluations: m.evaluations(),
            hits: m.cache_hits(),
        })
        .collect();
    cache_stats.extend(cpus.iter().map(|c| EvalCacheStats {
        name: format!("cpu/{}", c.cpu().name),
        evaluations: c.evaluations(),
        hits: c.cache_hits(),
    }));
    Fig16Result {
        rows,
        cache_stats,
        distinct_keys,
    }
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of strictly positive values (0 for empty input).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_both_datasets() {
        let s = suite();
        assert_eq!(s.len(), 16);
        assert!(s.iter().any(|x| x.name.starts_with("kitti")));
        assert!(s.iter().any(|x| x.name.starts_with("euroc")));
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shapes_from_short_sequence() {
        let data = kitti_sequences()[5].truncated(3.0).build();
        let shapes = sequence_shapes(&data, 10);
        assert!(!shapes.is_empty());
        assert!(shapes.iter().all(|s| s.features > 0));
    }

    #[test]
    fn build_suite_shapes_matches_serial_build() {
        let specs: Vec<SequenceSpec> = suite()
            .into_iter()
            .take(3)
            .map(|s| s.truncated(3.0))
            .collect();
        let parallel = build_suite_shapes(&specs, 10);
        for (spec, (name, shapes)) in specs.iter().zip(&parallel) {
            assert_eq!(&spec.name, name);
            assert_eq!(shapes, &sequence_shapes(&spec.build(), 10));
        }
    }

    #[test]
    fn fig16_evaluates_each_key_exactly_once_per_platform() {
        let specs: Vec<SequenceSpec> = vec![
            kitti_sequences()[1].truncated(4.0),
            euroc_sequences()[0].truncated(4.0),
        ];
        let result = fig16_result(&specs);
        assert_eq!(result.rows.len(), 4);
        assert!(result.distinct_keys > 0);
        // Repeated shapes exist in real traces, and every platform touches
        // each key 4× (two ratio terms × two outer loops for its pair);
        // the caches must collapse all of that to exactly one evaluation
        // per distinct (shape, iterations) key per platform.
        for stats in &result.cache_stats {
            assert_eq!(
                stats.evaluations, result.distinct_keys,
                "{}: {} evaluations for {} distinct keys",
                stats.name, stats.evaluations, result.distinct_keys
            );
            assert!(
                stats.hits > stats.evaluations,
                "{}: caching is doing work",
                stats.name
            );
        }
        // Sanity on the numbers themselves: accelerator wins on speed,
        // Intel burns more energy than it saves.
        for row in &result.rows {
            assert!(row.speedup.0 > 1.0, "{} vs {}", row.design, row.baseline);
            assert!(row.energy_reduction.0 > 1.0);
        }
    }
}
