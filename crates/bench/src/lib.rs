//! Shared harness utilities for the experiment binaries that regenerate
//! every table and figure of the Archytas paper (see DESIGN.md's experiment
//! index and EXPERIMENTS.md for paper-vs-measured numbers).

#![warn(missing_docs)]

use archytas_dataset::{euroc_sequences, kitti_sequences, SequenceData, SequenceSpec};
use archytas_mdfg::ProblemShape;

/// Prints a fixed-width text table (header + separator + rows).
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&sep);
    for row in rows {
        line(row);
    }
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("==============================================================");
}

/// Truncation (seconds) for suite runs; override with
/// `ARCHYTAS_FULL=1` to run the full sequence durations.
pub fn suite_truncation() -> Option<f64> {
    if std::env::var("ARCHYTAS_FULL").is_ok() {
        None
    } else {
        Some(15.0)
    }
}

/// The benchmark suite: all KITTI-like and EuRoC-like sequences, truncated
/// unless `ARCHYTAS_FULL=1`.
pub fn suite() -> Vec<SequenceSpec> {
    let trunc = suite_truncation();
    kitti_sequences()
        .into_iter()
        .chain(euroc_sequences())
        .map(|s| match trunc {
            Some(t) => s.truncated(t),
            None => s,
        })
        .collect()
}

/// Per-window problem shapes of a sequence, from the fast workload path.
pub fn sequence_shapes(data: &SequenceData, window_size: usize) -> Vec<ProblemShape> {
    data.window_workloads(window_size)
        .iter()
        .map(ProblemShape::from_workload)
        .collect()
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of strictly positive values (0 for empty input).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_both_datasets() {
        let s = suite();
        assert_eq!(s.len(), 16);
        assert!(s.iter().any(|x| x.name.starts_with("kitti")));
        assert!(s.iter().any(|x| x.name.starts_with("euroc")));
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shapes_from_short_sequence() {
        let data = kitti_sequences()[5].truncated(3.0).build();
        let shapes = sequence_shapes(&data, 10);
        assert!(!shapes.is_empty());
        assert!(shapes.iter().all(|s| s.features > 0));
    }
}
