//! Schur complements and Schur-elimination linear solves.
//!
//! Two flavours, mirroring the paper's hardware blocks (Sec. 3.2, Sec. 4.4):
//!
//! * **D-type** — `V − W·U⁻¹·Wᵀ` with a *diagonal* `U`: inversion costs
//!   `O(p)` and the elimination is dominated by the rank-`p` outer-product
//!   accumulation. This is the NLS-solver path.
//! * **M-type** — `A − Λ·M⁻¹·Λᵀ` with a generic symmetric positive-definite
//!   `M`, inverted through Cholesky. This is the marginalization path.

use crate::block::{split_vector, BlockSpec, Blocked2x2};
use crate::cholesky::Cholesky;
use crate::diag::DiagMat;
use crate::error::{MathError, Result};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::vector::Vector;

/// D-type Schur complement `v − w·u⁻¹·wᵀ` (paper Fig. 3b).
///
/// `w` is the `q × p` lower-left block; the upper-right block is implied by
/// symmetry (`X = Wᵀ`), which is exactly the storage saving the paper notes
/// for the diagonal-`U` blocking.
///
/// # Errors
///
/// Returns [`MathError::SingularDiagonal`] when `u` has a zero entry and
/// [`MathError::DimensionMismatch`] when the block shapes disagree.
pub fn diag_schur_complement<T: Scalar>(
    u: &DiagMat<T>,
    w: &Matrix<T>,
    v: &Matrix<T>,
) -> Result<Matrix<T>> {
    if w.cols() != u.dim() || v.rows() != w.rows() || !v.is_square() {
        return Err(MathError::DimensionMismatch {
            op: "diag_schur",
            lhs: w.shape(),
            rhs: v.shape(),
        });
    }
    let u_inv = u.inverse()?;
    // w·u⁻¹ is a column scaling of w: O(q·p).
    let wu_inv = u_inv.mul_dense_right(w);
    // (w·u⁻¹)·wᵀ: O(q²·p) multiply-accumulates — the MAC workload of the
    // D-type Schur hardware block.
    let prod = wu_inv.try_mul(&w.transpose())?;
    Ok(v - &prod)
}

/// M-type Schur complement `a − λ·m⁻¹·λᵀ` with a generic SPD `m`
/// (paper Sec. 3.2.3).
///
/// # Errors
///
/// Returns [`MathError::NotPositiveDefinite`] when `m` is not SPD and
/// [`MathError::DimensionMismatch`] when the block shapes disagree.
pub fn dense_schur_complement<T: Scalar>(
    m: &Matrix<T>,
    lambda: &Matrix<T>,
    a: &Matrix<T>,
) -> Result<Matrix<T>> {
    if lambda.cols() != m.rows() || a.rows() != lambda.rows() || !a.is_square() {
        return Err(MathError::DimensionMismatch {
            op: "dense_schur",
            lhs: lambda.shape(),
            rhs: a.shape(),
        });
    }
    let m_inv = Cholesky::factor(m)?.inverse();
    let lm = lambda.try_mul(&m_inv)?;
    let prod = lm.try_mul(&lambda.transpose())?;
    Ok(a - &prod)
}

/// A blocked symmetric linear system `A·δp = b` solved by Schur elimination
/// with a diagonal leading block (paper Eq. 3–4).
///
/// ```
/// use archytas_math::{DMat, DVec, BlockSpec, SchurSystem};
///
/// // A = [diag(4,4)  X; Xᵀ  V] — the structure the M-DFG builder produces.
/// let a = DMat::from_rows(&[
///     &[4.0, 0.0, 1.0],
///     &[0.0, 4.0, 2.0],
///     &[1.0, 2.0, 6.0],
/// ]);
/// let b = DVec::from(vec![1.0, 2.0, 3.0]);
/// let sys = SchurSystem::new(&a, &b, BlockSpec::new(2, 3)?)?;
/// let x = sys.solve()?;
/// assert!((&a.mat_vec(&x) - &b).norm() < 1e-10);
/// # Ok::<(), archytas_math::MathError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SchurSystem<T: Scalar> {
    u: DiagMat<T>,
    w: Matrix<T>,
    v: Matrix<T>,
    bx: Vector<T>,
    by: Vector<T>,
}

impl<T: Scalar> SchurSystem<T> {
    /// Blocks `a` and `b` at `spec`, requiring the leading block to be
    /// diagonal.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] on shape disagreements. The
    /// leading block's off-diagonal content is *not* validated here (the
    /// M-DFG builder guarantees it by construction); use
    /// [`Blocked2x2::leading_block_is_diagonal`] to check explicitly.
    pub fn new(a: &Matrix<T>, b: &Vector<T>, spec: BlockSpec) -> Result<Self> {
        let blocked = Blocked2x2::partition(a, spec)?;
        let (bx, by) = split_vector(b, spec)?;
        Ok(Self {
            u: DiagMat::from_dense_diagonal(&blocked.u),
            w: blocked.w,
            v: blocked.v,
            bx,
            by,
        })
    }

    /// Builds the system directly from its blocks (the layout the hardware
    /// buffers hold — `U` never exists in dense form on chip).
    pub fn from_blocks(
        u: DiagMat<T>,
        w: Matrix<T>,
        v: Matrix<T>,
        bx: Vector<T>,
        by: Vector<T>,
    ) -> Self {
        Self { u, w, v, bx, by }
    }

    /// Size of the diagonal (eliminated) block.
    pub fn p(&self) -> usize {
        self.u.dim()
    }

    /// Size of the reduced system.
    pub fn q(&self) -> usize {
        self.v.rows()
    }

    /// The reduced `q × q` Schur complement `V − W·U⁻¹·Wᵀ` and reduced
    /// right-hand side `by − W·U⁻¹·bx`.
    ///
    /// # Errors
    ///
    /// Propagates [`MathError::SingularDiagonal`] from the `U` inversion.
    pub fn reduced(&self) -> Result<(Matrix<T>, Vector<T>)> {
        let schur = diag_schur_complement(&self.u, &self.w, &self.v)?;
        let u_inv = self.u.inverse()?;
        let rhs = &self.by - &self.w.mat_vec(&u_inv.mul_vec(&self.bx));
        Ok((schur, rhs))
    }

    /// Solves the full system, returning `δp = [δpx; δpy]`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotPositiveDefinite`] when the reduced system is
    /// not SPD and [`MathError::SingularDiagonal`] when `U` is singular.
    pub fn solve(&self) -> Result<Vector<T>> {
        let (schur, rhs) = self.reduced()?;
        let dy = Cholesky::factor(&schur)?.solve(&rhs);
        // Back-substitute into the first block row: U·δpx = bx − Wᵀ·δpy.
        let u_inv = self.u.inverse()?;
        let wt_dy = self.w.transpose_mat_vec(&dy);
        let dx = u_inv.mul_vec(&(&self.bx - &wt_dy));
        Ok(dx.concat(&dy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    type M = Matrix<f64>;
    type V = Vector<f64>;

    /// SPD matrix with a diagonal leading p×p block.
    fn structured_spd(p: usize, q: usize) -> M {
        let n = p + q;
        let mut a = M::zeros(n, n);
        for i in 0..p {
            a.set(i, i, 4.0 + i as f64);
        }
        for i in 0..q {
            for j in 0..q {
                let v = if i == j {
                    8.0 + i as f64
                } else {
                    0.5 / (1.0 + (i as f64 - j as f64).abs())
                };
                a.set(p + i, p + j, v);
            }
        }
        for i in 0..p {
            for j in 0..q {
                let v = ((i * 3 + j) % 5) as f64 * 0.2 - 0.3;
                a.set(i, p + j, v);
                a.set(p + j, i, v);
            }
        }
        a
    }

    #[test]
    fn diag_schur_matches_dense_reference() {
        let a = structured_spd(4, 3);
        let spec = BlockSpec::new(4, 7).unwrap();
        let blocked = Blocked2x2::partition(&a, spec).unwrap();
        assert!(blocked.leading_block_is_diagonal(0.0));
        let u = DiagMat::from_dense_diagonal(&blocked.u);
        let fast = diag_schur_complement(&u, &blocked.w, &blocked.v).unwrap();
        // Reference: dense inversion path.
        let dense = dense_schur_complement(&blocked.u, &blocked.w, &blocked.v).unwrap();
        assert!((&fast - &dense).max_abs() < 1e-10);
    }

    #[test]
    fn schur_solve_matches_direct_cholesky() {
        let a = structured_spd(5, 4);
        let b: V = (0..9).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let spec = BlockSpec::new(5, 9).unwrap();
        let sys = SchurSystem::new(&a, &b, spec).unwrap();
        let x_schur = sys.solve().unwrap();
        let x_direct = Cholesky::factor(&a).unwrap().solve(&b);
        assert!((&x_schur - &x_direct).norm() < 1e-9);
        assert!((&a.mat_vec(&x_schur) - &b).norm() < 1e-9);
    }

    #[test]
    fn reduced_system_dimensions() {
        let a = structured_spd(3, 2);
        let b = V::zeros(5);
        let sys = SchurSystem::new(&a, &b, BlockSpec::new(3, 5).unwrap()).unwrap();
        assert_eq!(sys.p(), 3);
        assert_eq!(sys.q(), 2);
        let (s, rhs) = sys.reduced().unwrap();
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(rhs.len(), 2);
    }

    #[test]
    fn dense_schur_on_spd_m() {
        // M-type: marginalize a 2-dim SPD block out of a 5-dim system.
        let full = structured_spd(0, 5); // fully dense SPD
        let m = full.submatrix(0, 0, 2, 2);
        let lambda = full.submatrix(2, 0, 3, 2);
        let a = full.submatrix(2, 2, 3, 3);
        let s = dense_schur_complement(&m, &lambda, &a).unwrap();
        // The Schur complement of an SPD matrix is SPD.
        assert!(Cholesky::factor(&s).is_ok());
        assert!(s.is_symmetric(1e-10));
    }

    #[test]
    fn singular_u_is_reported() {
        let mut a = structured_spd(2, 2);
        a.set(0, 0, 0.0);
        let sys = SchurSystem::new(&a, &V::zeros(4), BlockSpec::new(2, 4).unwrap()).unwrap();
        assert!(matches!(
            sys.solve(),
            Err(MathError::SingularDiagonal { index: 0 })
        ));
    }

    #[test]
    fn shape_validation() {
        let u = DiagMat::new(vec![1.0, 2.0]);
        let w = M::zeros(3, 2);
        let v = M::zeros(2, 2); // wrong: must be 3x3
        assert!(diag_schur_complement(&u, &w, &v).is_err());
    }
}
