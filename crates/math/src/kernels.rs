//! Slice micro-kernels for the solver hot path.
//!
//! Every routine here is a flat loop over contiguous slices with the bounds
//! checks hoisted, shaped so LLVM's autovectorizer can emit SIMD for the
//! independent-element cases. They exist to give the block-sparse assembler,
//! the Schur elimination and the Cholesky update *one* shared, auditable set
//! of inner loops instead of N slightly-different open-coded variants.
//!
//! # Bit-identity rules
//!
//! The callers of these kernels promise bit-identical results across code
//! paths (dense vs. block-sparse, serial vs. parallel — see the
//! `block_sparse` module docs), so each kernel documents its floating-point
//! contract precisely:
//!
//! - Elementwise-independent updates (`add_scaled*`, `sub_scaled*`) perform
//!   exactly one rounding per element per source row, with a fixed operand
//!   order (`dst[i] op scale * src[i]`). Fusing several source rows into one
//!   traversal keeps the per-element operation *sequence* of the unfused
//!   calls, so the stored bits cannot change.
//! - No kernel reassociates a reduction; anything that sums across elements
//!   stays with its caller.
//!
//! The zero-skip variants replicate the assembler's `v != 0` guard: skipped
//! contributions are exact no-ops on the destination (see
//! [`NormalEqSink::add_a_row`](../../archytas_slam) docs for why `±0.0`
//! additions are bit-safe there), but the guard is part of the replayed
//! operation sequence, so the kernels keep it rather than reason about it
//! per call site. The guard is *evaluated branchlessly* (candidate
//! multiply-add plus a select, see [`crate::fixed`] module docs for the
//! bit-identity argument) so the loop body stays branch-free for the
//! autovectorizer.
//!
//! # Fixed-width dispatch
//!
//! The SLAM layout's run widths are compile-time constants — `6` (the
//! pose-tangent block height `kb`) and `15` (the full state `stride`) — so
//! the zero-skip kernels dispatch those lengths to the fully unrolled
//! const-generic forms in [`crate::fixed`] and keep the runtime-width loop
//! as the generic fallback (any other `kb`/`stride`, e.g. the block tests'
//! kb = 4 layout). Both forms replay the identical per-element operation
//! sequence, so dispatch is invisible in the stored bits — the
//! `kernel_equivalence` proptests pin this.

use crate::fixed;
use crate::scalar::Scalar;

/// `dst[i] += s * src[i]` for every element — no zero skip.
///
/// The Schur-product inner loop: one multiply-add per element, operand order
/// `s * src[i]` first, then the add. `src` must be at least as long as `dst`.
#[inline(always)]
pub fn add_scaled<T: Scalar>(dst: &mut [T], src: &[T], s: T) {
    if dst.len() == 6 {
        return fixed::Vec::<T, 6>::from_mut_slice(dst).axpy(fixed::Vec::from_slice(src), s);
    }
    let n = dst.len();
    let src = &src[..n];
    for i in 0..n {
        dst[i] += s * src[i];
    }
}

/// [`add_scaled`] with a compile-time length, for fully unrolled fixed-size
/// block runs (`N = 6` is the `W` block height of the sliding window).
///
/// # Panics
///
/// Panics when either slice is shorter than `N`.
#[inline]
pub fn add_scaled_fixed<T: Scalar, const N: usize>(dst: &mut [T], src: &[T], s: T) {
    let dst: &mut [T; N] = (&mut dst[..N]).try_into().unwrap();
    let src: &[T; N] = (&src[..N]).try_into().unwrap();
    for i in 0..N {
        dst[i] += s * src[i];
    }
}

/// `dst[i] += s * src[i]` for every element with `src[i] != 0` — the
/// contiguous-run scatter write of the normal-equation assemblers.
#[inline(always)]
pub fn add_scaled_skip<T: Scalar>(dst: &mut [T], src: &[T], s: T) {
    match dst.len() {
        6 => fixed::Vec::<T, 6>::from_mut_slice(dst).axpy_skip(fixed::Vec::from_slice(src), s),
        15 => fixed::Vec::<T, 15>::from_mut_slice(dst).axpy_skip(fixed::Vec::from_slice(src), s),
        n => {
            let src = &src[..n];
            for i in 0..n {
                let v = src[i];
                let cand = dst[i] + s * v;
                dst[i] = if v != T::ZERO { cand } else { dst[i] };
            }
        }
    }
}

/// Fused pair form of [`add_scaled_skip`]: applies source row 0 then source
/// row 1 to each element in one traversal.
///
/// Per element the operation sequence — row 0's guarded multiply-add, then
/// row 1's — is exactly that of two sequential [`add_scaled_skip`] calls, so
/// the result is bit-identical while the destination is walked (and its
/// bounds checked) once instead of twice.
#[inline(always)]
pub fn add_scaled_skip2<T: Scalar>(dst: &mut [T], src0: &[T], s0: T, src1: &[T], s1: T) {
    match dst.len() {
        6 => fixed::Vec::<T, 6>::from_mut_slice(dst).axpy_skip2(
            fixed::Vec::from_slice(src0),
            s0,
            fixed::Vec::from_slice(src1),
            s1,
        ),
        15 => fixed::Vec::<T, 15>::from_mut_slice(dst).axpy_skip2(
            fixed::Vec::from_slice(src0),
            s0,
            fixed::Vec::from_slice(src1),
            s1,
        ),
        n => {
            let src0 = &src0[..n];
            let src1 = &src1[..n];
            for i in 0..n {
                let mut acc = dst[i];
                let v0 = src0[i];
                let c0 = acc + s0 * v0;
                acc = if v0 != T::ZERO { c0 } else { acc };
                let v1 = src1[i];
                let c1 = acc + s1 * v1;
                acc = if v1 != T::ZERO { c1 } else { acc };
                dst[i] = acc;
            }
        }
    }
}

/// Fused many-row form of [`add_scaled_skip`]: applies every `(src, s)`
/// source row, in slice order, to each element in one traversal.
///
/// Bit-identical to calling [`add_scaled_skip`] once per row in the same
/// order (each destination element receives the same guarded multiply-adds
/// in the same sequence); the destination cache line is loaded once per
/// element instead of once per row.
#[inline(always)]
pub fn add_scaled_skip_rows<T: Scalar>(dst: &mut [T], rows: &[(&[T], T)]) {
    match dst.len() {
        6 => fixed::Vec::<T, 6>::from_mut_slice(dst).axpy_skip_rows(rows),
        15 => fixed::Vec::<T, 15>::from_mut_slice(dst).axpy_skip_rows(rows),
        n => {
            for i in 0..n {
                let mut acc = dst[i];
                for &(src, s) in rows {
                    let v = src[i];
                    let cand = acc + s * v;
                    acc = if v != T::ZERO { cand } else { acc };
                }
                dst[i] = acc;
            }
        }
    }
}

/// `dst[i] = dst[i] - src[i] * a` for every element — the Cholesky Update
/// phase's rank-1 row operation (`S_j ← S_j − l_k·l_jk`), operand order
/// `src[i] * a` then the subtract, matching the textbook serial loop.
#[inline]
pub fn sub_scaled<T: Scalar>(dst: &mut [T], src: &[T], a: T) {
    let n = dst.len();
    let src = &src[..n];
    for i in 0..n {
        dst[i] -= src[i] * a;
    }
}

/// Fused rank-4 form of [`sub_scaled`]: subtracts four scaled source rows
/// from `dst` in one traversal, in argument order.
///
/// Per element the four subtractions happen sequentially (`w −= src0·a0`,
/// then `src1·a1`, …) — each with its own rounding, exactly as four
/// [`sub_scaled`] calls would — so a blocked Cholesky trailing update built
/// on this kernel is bit-identical to the unblocked column-at-a-time loop
/// while touching the trailing row once per four columns.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn sub_scaled4<T: Scalar>(
    dst: &mut [T],
    src0: &[T],
    a0: T,
    src1: &[T],
    a1: T,
    src2: &[T],
    a2: T,
    src3: &[T],
    a3: T,
) {
    let n = dst.len();
    let src0 = &src0[..n];
    let src1 = &src1[..n];
    let src2 = &src2[..n];
    let src3 = &src3[..n];
    for i in 0..n {
        let mut w = dst[i];
        w -= src0[i] * a0;
        w -= src1[i] * a1;
        w -= src2[i] * a2;
        w -= src3[i] * a3;
        dst[i] = w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: usize, seed: u64) -> Vec<f64> {
        // Deterministic, scale-diverse values with a sprinkling of zeros.
        (0..n)
            .map(|i| {
                let x = ((i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed)
                    >> 33) as f64
                    / 4.0e9
                    - 0.25;
                if i % 7 == 3 {
                    0.0
                } else {
                    x * (10.0f64).powi((i % 5) as i32 - 2)
                }
            })
            .collect()
    }

    #[test]
    fn add_scaled_matches_scalar_loop() {
        let src = vals(33, 7);
        let mut dst = vals(33, 11);
        let mut reference = dst.clone();
        add_scaled(&mut dst, &src, 1.7);
        for (r, &v) in reference.iter_mut().zip(&src) {
            *r += 1.7 * v;
        }
        assert_eq!(dst, reference);
    }

    #[test]
    fn add_scaled_fixed_matches_generic() {
        let src = vals(6, 3);
        let mut a = vals(6, 5);
        let mut b = a.clone();
        add_scaled(&mut a, &src, -0.3);
        add_scaled_fixed::<f64, 6>(&mut b, &src, -0.3);
        assert_eq!(a, b);
    }

    #[test]
    fn skip2_matches_two_sequential_calls() {
        let s0 = vals(29, 1);
        let s1 = vals(29, 2);
        let mut fused = vals(29, 9);
        let mut seq = fused.clone();
        add_scaled_skip2(&mut fused, &s0, 0.9, &s1, -1.1);
        add_scaled_skip(&mut seq, &s0, 0.9);
        add_scaled_skip(&mut seq, &s1, -1.1);
        for (f, s) in fused.iter().zip(&seq) {
            assert_eq!(f.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn skip_rows_matches_sequential_calls() {
        let srcs: Vec<Vec<f64>> = (0..15).map(|k| vals(15, 100 + k)).collect();
        let scales: Vec<f64> = (0..15).map(|k| 0.1 * k as f64 - 0.7).collect();
        let rows: Vec<(&[f64], f64)> = srcs
            .iter()
            .zip(&scales)
            .map(|(s, &a)| (s.as_slice(), a))
            .collect();
        let mut fused = vals(15, 999);
        let mut seq = fused.clone();
        add_scaled_skip_rows(&mut fused, &rows);
        for &(src, a) in &rows {
            add_scaled_skip(&mut seq, src, a);
        }
        for (f, s) in fused.iter().zip(&seq) {
            assert_eq!(f.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn sub_scaled4_matches_four_sequential_calls() {
        let s: Vec<Vec<f64>> = (0..4).map(|k| vals(41, 50 + k)).collect();
        let a = [0.3, -2.5, 1e-3, 7.0];
        let mut fused = vals(41, 77);
        let mut seq = fused.clone();
        sub_scaled4(
            &mut fused, &s[0], a[0], &s[1], a[1], &s[2], a[2], &s[3], a[3],
        );
        for k in 0..4 {
            sub_scaled(&mut seq, &s[k], a[k]);
        }
        for (f, q) in fused.iter().zip(&seq) {
            assert_eq!(f.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn works_in_f32() {
        let src: Vec<f32> = vals(12, 4).iter().map(|&v| v as f32).collect();
        let mut dst: Vec<f32> = vals(12, 6).iter().map(|&v| v as f32).collect();
        let mut reference = dst.clone();
        sub_scaled(&mut dst, &src, 0.5f32);
        for (r, &v) in reference.iter_mut().zip(&src) {
            *r -= v * 0.5;
        }
        assert_eq!(dst, reference);
    }
}
