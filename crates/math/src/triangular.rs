//! Forward and backward substitution — the `FBSub` M-DFG primitive.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::vector::Vector;

/// Solves `L · x = b` for lower-triangular `L` by forward substitution.
///
/// Only the lower triangle of `l` is read, so callers may pass a full
/// Cholesky factor buffer whose upper triangle is garbage.
///
/// # Panics
///
/// Panics when `l` is not square, when `b.len() != l.rows()`, or when a
/// diagonal element is zero.
pub fn solve_lower<T: Scalar>(l: &Matrix<T>, b: &Vector<T>) -> Vector<T> {
    let mut x = Vector::zeros(l.rows());
    solve_lower_into(l, b, &mut x);
    x
}

/// [`solve_lower`] writing into a caller-owned vector (resized to fit), so a
/// reused buffer makes the substitution allocation-free. Every element of
/// `x` is assigned before it is read, so the buffer's previous contents never
/// reach an arithmetic instruction — same bits as the allocating form.
///
/// # Panics
///
/// Same conditions as [`solve_lower`].
pub fn solve_lower_into<T: Scalar>(l: &Matrix<T>, b: &Vector<T>, x: &mut Vector<T>) {
    assert!(l.is_square(), "solve_lower: matrix must be square");
    let n = l.rows();
    assert_eq!(b.len(), n, "solve_lower: rhs length mismatch");
    x.resize_fill(n, T::ZERO);
    for i in 0..n {
        let mut acc = b[i];
        for j in 0..i {
            acc -= l.get(i, j) * x[j];
        }
        let d = l.get(i, i);
        assert!(d != T::ZERO, "solve_lower: zero diagonal at {i}");
        x[i] = acc / d;
    }
}

/// Solves `U · x = b` for upper-triangular `U` by backward substitution.
///
/// Only the upper triangle of `u` is read.
///
/// # Panics
///
/// Panics when `u` is not square, when `b.len() != u.rows()`, or when a
/// diagonal element is zero.
pub fn solve_upper<T: Scalar>(u: &Matrix<T>, b: &Vector<T>) -> Vector<T> {
    let mut x = Vector::zeros(u.rows());
    solve_upper_into(u, b, &mut x);
    x
}

/// [`solve_upper`] writing into a caller-owned vector (resized to fit) — the
/// backward-substitution twin of [`solve_lower_into`], with the same
/// buffer-reuse and bit-identity properties.
///
/// # Panics
///
/// Same conditions as [`solve_upper`].
pub fn solve_upper_into<T: Scalar>(u: &Matrix<T>, b: &Vector<T>, x: &mut Vector<T>) {
    assert!(u.is_square(), "solve_upper: matrix must be square");
    let n = u.rows();
    assert_eq!(b.len(), n, "solve_upper: rhs length mismatch");
    x.resize_fill(n, T::ZERO);
    for i in (0..n).rev() {
        let mut acc = b[i];
        for j in (i + 1)..n {
            acc -= u.get(i, j) * x[j];
        }
        let d = u.get(i, i);
        assert!(d != T::ZERO, "solve_upper: zero diagonal at {i}");
        x[i] = acc / d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    type M = Matrix<f64>;
    type V = Vector<f64>;

    #[test]
    fn forward_substitution() {
        let l = M::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        let b = V::from(vec![4.0, 11.0]);
        let x = solve_lower(&l, &b);
        assert_eq!(x.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn backward_substitution() {
        let u = M::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        let b = V::from(vec![7.0, 9.0]);
        let x = solve_upper(&u, &b);
        assert_eq!(x.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn lower_ignores_upper_garbage() {
        let l = M::from_rows(&[&[2.0, 999.0], &[1.0, 3.0]]);
        let b = V::from(vec![4.0, 11.0]);
        assert_eq!(solve_lower(&l, &b).as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn upper_ignores_lower_garbage() {
        let u = M::from_rows(&[&[2.0, 1.0], &[999.0, 3.0]]);
        let b = V::from(vec![7.0, 9.0]);
        assert_eq!(solve_upper(&u, &b).as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn residual_is_small_on_random_triangular() {
        // Deterministic pseudo-random lower-triangular system.
        let n = 12;
        let mut seed = 1u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64) / (u32::MAX as f64) + 0.1
        };
        let l = M::from_fn(n, n, |i, j| {
            if j < i {
                next() - 0.5
            } else if j == i {
                next() + 1.0
            } else {
                0.0
            }
        });
        let b: V = (0..n).map(|i| (i as f64) - 3.0).collect();
        let x = solve_lower(&l, &b);
        let r = &l.mat_vec(&x) - &b;
        assert!(r.norm() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn zero_diagonal_panics() {
        let l = M::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        let _ = solve_lower(&l, &V::zeros(2));
    }
}
