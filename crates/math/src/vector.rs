//! Dense column vector.

use crate::scalar::Scalar;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// Dense column vector over a [`Scalar`].
///
/// Used for residuals, right-hand sides, and state increments throughout the
/// solver. Arithmetic on references avoids cloning in hot loops:
///
/// ```
/// use archytas_math::DVec;
/// let a = DVec::from(vec![1.0, 2.0]);
/// let b = DVec::from(vec![3.0, 4.0]);
/// let c = &a + &b;
/// assert_eq!(c.as_slice(), &[4.0, 6.0]);
/// ```
#[derive(PartialEq)]
pub struct Vector<T: Scalar> {
    data: Vec<T>,
}

impl<T: Scalar> Clone for Vector<T> {
    fn clone(&self) -> Self {
        Self {
            data: self.data.clone(),
        }
    }

    /// Copies `source` into `self`, reusing the existing allocation when it is
    /// large enough (the derived impl would reallocate on every call).
    fn clone_from(&mut self, source: &Self) {
        self.data.clone_from(&source.data);
    }
}

impl<T: Scalar> Vector<T> {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            data: vec![T::ZERO; n],
        }
    }

    /// Resizes to `n` elements, all set to `value`, reusing the allocation.
    pub fn resize_fill(&mut self, n: usize, value: T) {
        self.data.clear();
        self.data.resize(n, value);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }

    /// Euclidean norm.
    pub fn norm(&self) -> T {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (no square root; cheaper for comparisons).
    pub fn norm_squared(&self) -> T {
        self.dot(self)
    }

    /// Inner product with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Self) -> T {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Returns `self + alpha * other` (the BLAS `axpy` shape).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&self, alpha: T, other: &Self) -> Self {
        assert_eq!(self.len(), other.len(), "axpy: length mismatch");
        Self {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a + alpha * b)
                .collect(),
        }
    }

    /// Scales every element by `alpha`.
    pub fn scale(&self, alpha: T) -> Self {
        Self {
            data: self.data.iter().map(|&a| a * alpha).collect(),
        }
    }

    /// Contiguous sub-vector `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn segment(&self, start: usize, len: usize) -> Self {
        Self {
            data: self.data[start..start + len].to_vec(),
        }
    }

    /// Writes `seg` into `[start, start + seg.len())`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn set_segment(&mut self, start: usize, seg: &Self) {
        self.data[start..start + seg.len()].copy_from_slice(&seg.data);
    }

    /// Concatenates two vectors.
    pub fn concat(&self, other: &Self) -> Self {
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Self { data }
    }

    /// Largest absolute element, or zero for the empty vector.
    pub fn max_abs(&self) -> T {
        self.data
            .iter()
            .map(|v| v.abs())
            .fold(T::ZERO, |acc, v| if v > acc { v } else { acc })
    }

    /// `true` when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Converts element-wise to another scalar width (e.g. `f64` → `f32` when
    /// handing data to the hardware functional model).
    pub fn cast<U: Scalar>(&self) -> Vector<U> {
        let mut out = Vector::zeros(0);
        self.cast_into(&mut out);
        out
    }

    /// [`Vector::cast`] into a caller-owned vector — allocation-free once
    /// `out`'s buffer has grown to this length.
    pub fn cast_into<U: Scalar>(&self, out: &mut Vector<U>) {
        out.data.clear();
        out.data
            .extend(self.data.iter().map(|v| U::from_f64(v.to_f64())));
    }

    /// Iterator over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }
}

impl<T: Scalar> From<Vec<T>> for Vector<T> {
    fn from(data: Vec<T>) -> Self {
        Self { data }
    }
}

impl<T: Scalar> FromIterator<T> for Vector<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl<T: Scalar> Extend<T> for Vector<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl<T: Scalar> Index<usize> for Vector<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.data[i]
    }
}

impl<T: Scalar> IndexMut<usize> for Vector<T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }
}

impl<T: Scalar> fmt::Debug for Vector<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector(len={}) {:?}", self.len(), self.data)
    }
}

impl<T: Scalar> Add for &Vector<T> {
    type Output = Vector<T>;
    fn add(self, rhs: Self) -> Vector<T> {
        assert_eq!(self.len(), rhs.len(), "add: length mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a + b)
            .collect()
    }
}

impl<T: Scalar> Sub for &Vector<T> {
    type Output = Vector<T>;
    fn sub(self, rhs: Self) -> Vector<T> {
        assert_eq!(self.len(), rhs.len(), "sub: length mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a - b)
            .collect()
    }
}

impl<T: Scalar> Neg for &Vector<T> {
    type Output = Vector<T>;
    fn neg(self) -> Vector<T> {
        self.data.iter().map(|&a| -a).collect()
    }
}

impl<T: Scalar> Mul<T> for &Vector<T> {
    type Output = Vector<T>;
    fn mul(self, rhs: T) -> Vector<T> {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    type V = Vector<f64>;

    #[test]
    fn zeros_and_len() {
        let v = V::zeros(4);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert_eq!(v.norm(), 0.0);
        assert!(V::zeros(0).is_empty());
    }

    #[test]
    fn dot_and_norm() {
        let v = V::from(vec![3.0, 4.0]);
        assert_eq!(v.dot(&v), 25.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_squared(), 25.0);
    }

    #[test]
    fn axpy_matches_manual() {
        let a = V::from(vec![1.0, 2.0]);
        let b = V::from(vec![10.0, 20.0]);
        let c = a.axpy(0.5, &b);
        assert_eq!(c.as_slice(), &[6.0, 12.0]);
    }

    #[test]
    fn segment_roundtrip() {
        let mut v = V::zeros(5);
        let seg = V::from(vec![1.0, 2.0]);
        v.set_segment(2, &seg);
        assert_eq!(v.segment(2, 2).as_slice(), &[1.0, 2.0]);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[2], 1.0);
    }

    #[test]
    fn arithmetic_on_refs() {
        let a = V::from(vec![1.0, 2.0]);
        let b = V::from(vec![3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn max_abs_and_finite() {
        let v = V::from(vec![-7.0, 3.0]);
        assert_eq!(v.max_abs(), 7.0);
        assert!(v.all_finite());
        let bad = V::from(vec![f64::NAN]);
        assert!(!bad.all_finite());
        assert_eq!(V::zeros(0).max_abs(), 0.0);
    }

    #[test]
    fn cast_narrows() {
        let v = V::from(vec![1.0 + 1e-12]);
        let f: Vector<f32> = v.cast();
        assert_eq!(f[0], 1.0f32);
    }

    #[test]
    fn concat_and_collect() {
        let a = V::from(vec![1.0]);
        let b = V::from(vec![2.0, 3.0]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        let collected: V = (0..3).map(|i| i as f64).collect();
        assert_eq!(collected.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_mismatch_panics() {
        let _ = V::zeros(2).dot(&V::zeros(3));
    }
}
