//! Dense row-major matrix.

use crate::error::{MathError, Result};
use crate::scalar::Scalar;
use crate::vector::Vector;
use archytas_par::Pool;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// Row-block granularity for the parallel product/Gram kernels: each worker
/// task computes this many output rows, amortizing chunk-claim overhead while
/// still load-balancing tall matrices.
const ROW_BLOCK: usize = 8;

/// Dense row-major matrix over a [`Scalar`].
///
/// This is the `MatMul`/`MatSub`/`MatTp` operand type of the M-DFG (paper
/// Tbl. 1). Fallible, dimension-checked variants (`try_*`) are provided for
/// library users; the panicking operator overloads are kept for solver-internal
/// code where dimensions are statically known.
///
/// ```
/// use archytas_math::DMat;
/// let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = a.transpose();
/// assert_eq!(b.get(0, 1), 3.0);
/// ```
#[derive(PartialEq)]
pub struct Matrix<T: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Clone for Matrix<T> {
    fn clone(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
        }
    }

    /// Copies `source` into `self`, reusing the existing allocation when it is
    /// large enough — the derived impl would reallocate on every call, which
    /// matters for per-iteration buffers in the solver hot loop.
    fn clone_from(&mut self, source: &Self) {
        self.rows = source.rows;
        self.cols = source.cols;
        self.data.clone_from(&source.data);
    }
}

impl<T: Scalar> Matrix<T> {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Reshapes to `rows × cols` and zero-fills, reusing the allocation.
    ///
    /// Equivalent to `*self = Matrix::zeros(rows, cols)` without the
    /// reallocation; used by the solver's reusable workspaces.
    pub fn reset_zeros(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, T::ZERO);
    }

    /// Sets `self = a − b` elementwise, reshaping to `a`'s shape and reusing
    /// the allocation — one fused pass instead of a zero-fill, a copy and an
    /// in-place subtraction. Each element is the single rounded difference
    /// `a[i] − b[i]`, exactly as the unfused formulation stores it.
    ///
    /// # Panics
    ///
    /// Panics when `a` and `b` differ in shape.
    pub fn set_sub_of(&mut self, a: &Self, b: &Self) {
        assert_eq!(a.shape(), b.shape(), "set_sub_of shape mismatch");
        self.rows = a.rows;
        self.cols = a.cols;
        self.data.clear();
        self.data
            .extend(a.data.iter().zip(&b.data).map(|(&x, &y)| x - y));
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, T::ONE);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a closure evaluated at every `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Builds a matrix taking ownership of a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` for a square matrix.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.rows && j < self.cols, "get: index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)` to `v`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.rows && j < self.cols, "set: index out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to element `(i, j)`.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, v: T) {
        assert!(
            i < self.rows && j < self.cols,
            "add_at: index out of bounds"
        );
        self.data[i * self.cols + j] += v;
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over all rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[T]> {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Read-only row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        self.transpose_into(&mut t);
        t
    }

    /// Writes this matrix's transpose into `out`, reshaping and reusing its
    /// allocation.
    pub fn transpose_into(&self, out: &mut Self) {
        out.reset_zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
    }

    /// Matrix product, dimension-checked, on the global pool.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when `self.cols != rhs.rows`.
    pub fn try_mul(&self, rhs: &Self) -> Result<Self> {
        self.try_mul_with(rhs, &Pool::global())
    }

    /// Matrix product on an explicit pool.
    ///
    /// Output rows are independent, so they are computed in [`ROW_BLOCK`]
    /// blocks across the pool's workers. Within each output row the i-k-j
    /// accumulation order is exactly the serial kernel's, so the result is
    /// bit-identical for any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when `self.cols != rhs.rows`.
    pub fn try_mul_with(&self, rhs: &Self, pool: &Pool) -> Result<Self> {
        if self.cols != rhs.rows {
            return Err(MathError::DimensionMismatch {
                op: "mat_mul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Self::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        if n == 0 {
            return Ok(out);
        }
        // One multiply-accumulate per (i, k, j) triple.
        let est_ops = self.rows * self.cols * n;
        pool.par_chunks_mut_weighted(&mut out.data, ROW_BLOCK * n, est_ops, |blk, out_block| {
            let i0 = blk * ROW_BLOCK;
            for (r, out_row) in out_block.chunks_mut(n).enumerate() {
                let a_row = self.row(i0 + r);
                // i-k-j order keeps both streams sequential in row-major
                // storage; k ascends exactly as in the serial kernel.
                for (k, &a) in a_row.iter().enumerate() {
                    if a == T::ZERO {
                        continue;
                    }
                    for (o, &b) in out_row.iter_mut().zip(rhs.row(k)) {
                        *o += a * b;
                    }
                }
            }
        });
        Ok(out)
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics when `self.cols != v.len()`.
    pub fn mat_vec(&self, v: &Vector<T>) -> Vector<T> {
        assert_eq!(self.cols, v.len(), "mat_vec: dimension mismatch");
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v.as_slice())
                    .map(|(&a, &b)| a * b)
                    .sum()
            })
            .collect()
    }

    /// `selfᵀ · v` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics when `self.rows != v.len()`.
    pub fn transpose_mat_vec(&self, v: &Vector<T>) -> Vector<T> {
        assert_eq!(self.rows, v.len(), "transpose_mat_vec: dimension mismatch");
        let mut out = Vector::zeros(self.cols);
        for (row, &vi) in self.rows_iter().zip(v.as_slice()) {
            if vi == T::ZERO {
                continue;
            }
            for (o, &a) in out.as_mut_slice().iter_mut().zip(row) {
                *o += a * vi;
            }
        }
        out
    }

    /// Gram product `selfᵀ · self` (the information-matrix kernel `H = JᵀJ`)
    /// on the global pool.
    pub fn gram(&self) -> Self {
        self.gram_with(&Pool::global())
    }

    /// Gram product on an explicit pool.
    ///
    /// Each output row `i` holds `out[i][j] = Σ_k self[k][i]·self[k][j]`
    /// (upper triangle, mirrored afterwards); rows are independent and are
    /// computed in [`ROW_BLOCK`] blocks across the pool's workers. `k`
    /// ascends per output element exactly as in a serial rank-1-update
    /// formulation, so the result is bit-identical for any thread count.
    pub fn gram_with(&self, pool: &Pool) -> Self {
        let n = self.cols;
        let mut out = Self::zeros(n, n);
        if n == 0 {
            return out;
        }
        // Upper triangle only: one multiply-accumulate per (i ≤ j, k) triple.
        let est_ops = n * (n + 1) / 2 * self.rows;
        pool.par_chunks_mut_weighted(&mut out.data, ROW_BLOCK * n, est_ops, |blk, out_block| {
            let i0 = blk * ROW_BLOCK;
            for (r, out_row) in out_block.chunks_mut(n).enumerate() {
                let i = i0 + r;
                for row in self.rows_iter() {
                    let a = row[i];
                    if a == T::ZERO {
                        continue;
                    }
                    for (o, &b) in out_row[i..].iter_mut().zip(&row[i..]) {
                        *o += a * b;
                    }
                }
            }
        });
        // Mirror the upper triangle.
        for i in 0..n {
            for j in 0..i {
                let v = out.get(j, i);
                out.set(i, j, v);
            }
        }
        out
    }

    /// Copies the `rows × cols` sub-matrix starting at `(row0, col0)`.
    ///
    /// # Panics
    ///
    /// Panics when the window exceeds the matrix bounds.
    pub fn submatrix(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> Self {
        assert!(
            row0 + rows <= self.rows && col0 + cols <= self.cols,
            "submatrix: window out of bounds"
        );
        Self::from_fn(rows, cols, |i, j| self.get(row0 + i, col0 + j))
    }

    /// Writes `block` at offset `(row0, col0)`.
    ///
    /// # Panics
    ///
    /// Panics when the block exceeds the matrix bounds.
    pub fn set_submatrix(&mut self, row0: usize, col0: usize, block: &Self) {
        assert!(
            row0 + block.rows <= self.rows && col0 + block.cols <= self.cols,
            "set_submatrix: window out of bounds"
        );
        for i in 0..block.rows {
            for j in 0..block.cols {
                self.set(row0 + i, col0 + j, block.get(i, j));
            }
        }
    }

    /// Adds `block` into the window at `(row0, col0)`.
    ///
    /// # Panics
    ///
    /// Panics when the block exceeds the matrix bounds.
    pub fn add_submatrix(&mut self, row0: usize, col0: usize, block: &Self) {
        assert!(
            row0 + block.rows <= self.rows && col0 + block.cols <= self.cols,
            "add_submatrix: window out of bounds"
        );
        for i in 0..block.rows {
            for j in 0..block.cols {
                self.add_at(row0 + i, col0 + j, block.get(i, j));
            }
        }
    }

    /// Scales every element by `alpha`.
    pub fn scale(&self, alpha: T) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v * alpha).collect(),
        }
    }

    /// Adds `alpha` to each diagonal element (Levenberg–Marquardt damping).
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square.
    pub fn add_diagonal(&self, alpha: T) -> Self {
        assert!(self.is_square(), "add_diagonal: matrix must be square");
        let mut out = self.clone();
        for i in 0..self.rows {
            out.add_at(i, i, alpha);
        }
        out
    }

    /// Maximum absolute element, or zero for an empty matrix.
    pub fn max_abs(&self) -> T {
        self.data
            .iter()
            .map(|v| v.abs())
            .fold(T::ZERO, |acc, v| if v > acc { v } else { acc })
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> T {
        self.data.iter().map(|&v| v * v).sum::<T>().sqrt()
    }

    /// `true` when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Symmetry check within tolerance `tol` (max-abs element difference).
    pub fn is_symmetric(&self, tol: T) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Element-wise cast to another scalar width.
    pub fn cast<U: Scalar>(&self) -> Matrix<U> {
        let mut out = Matrix::zeros(0, 0);
        self.cast_into(&mut out);
        out
    }

    /// [`Matrix::cast`] into a caller-owned matrix — allocation-free once
    /// `out`'s buffer has grown to this shape (the f32 functional-model
    /// solver casts every damping retry through one reused buffer).
    pub fn cast_into<U: Scalar>(&self, out: &mut Matrix<U>) {
        out.rows = self.rows;
        out.cols = self.cols;
        out.data.clear();
        out.data
            .extend(self.data.iter().map(|v| U::from_f64(v.to_f64())));
    }

    /// Cholesky factorization of `self` (must be symmetric positive definite).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotPositiveDefinite`] when a pivot is
    /// non-positive, and [`MathError::DimensionMismatch`] when not square.
    pub fn cholesky(&self) -> Result<crate::cholesky::Cholesky<T>> {
        crate::cholesky::Cholesky::factor(self)
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    fn index(&self, (i, j): (usize, usize)) -> &T {
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix({}x{})", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        Ok(())
    }
}

impl<T: Scalar> Add for &Matrix<T> {
    type Output = Matrix<T>;
    fn add(self, rhs: Self) -> Matrix<T> {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl<T: Scalar> Sub for &Matrix<T> {
    type Output = Matrix<T>;
    fn sub(self, rhs: Self) -> Matrix<T> {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl<T: Scalar> Neg for &Matrix<T> {
    type Output = Matrix<T>;
    fn neg(self) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| -v).collect(),
        }
    }
}

impl<T: Scalar> Mul for &Matrix<T> {
    type Output = Matrix<T>;
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch; use [`Matrix::try_mul`] for a
    /// fallible variant.
    fn mul(self, rhs: Self) -> Matrix<T> {
        self.try_mul(rhs)
            .expect("matrix product dimension mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    type M = Matrix<f64>;
    type V = Vector<f64>;

    fn sample() -> M {
        M::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn shape_accessors() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert!(!m.is_square());
        assert!(M::identity(3).is_square());
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let m = sample();
        let i3 = M::identity(3);
        assert_eq!(&m * &i3, m);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn mul_matches_manual() {
        let a = M::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = M::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = &a * &b;
        assert_eq!(c, M::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn try_mul_rejects_mismatch() {
        let a = M::zeros(2, 3);
        let b = M::zeros(2, 3);
        assert!(matches!(
            a.try_mul(&b),
            Err(MathError::DimensionMismatch { op: "mat_mul", .. })
        ));
    }

    #[test]
    fn mat_vec_and_transpose_mat_vec() {
        let m = sample();
        let v = V::from(vec![1.0, 1.0, 1.0]);
        assert_eq!(m.mat_vec(&v).as_slice(), &[6.0, 15.0]);
        let w = V::from(vec![1.0, 1.0]);
        assert_eq!(m.transpose_mat_vec(&w).as_slice(), &[5.0, 7.0, 9.0]);
        // Consistency with the explicit transpose.
        assert_eq!(
            m.transpose_mat_vec(&w).as_slice(),
            m.transpose().mat_vec(&w).as_slice()
        );
    }

    #[test]
    fn gram_equals_explicit_product() {
        let m = sample();
        let g = m.gram();
        let explicit = &m.transpose() * &m;
        assert_eq!(g, explicit);
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn submatrix_roundtrip() {
        let m = sample();
        let s = m.submatrix(0, 1, 2, 2);
        assert_eq!(s, M::from_rows(&[&[2.0, 3.0], &[5.0, 6.0]]));
        let mut z = M::zeros(3, 3);
        z.set_submatrix(1, 1, &s);
        assert_eq!(z.get(1, 1), 2.0);
        assert_eq!(z.get(2, 2), 6.0);
        z.add_submatrix(1, 1, &s);
        assert_eq!(z.get(1, 1), 4.0);
    }

    #[test]
    fn damping_adds_to_diagonal_only() {
        let m = M::identity(2);
        let d = m.add_diagonal(0.5);
        assert_eq!(d.get(0, 0), 1.5);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn norms() {
        let m = M::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn symmetry_check() {
        let s = M::from_rows(&[&[1.0, 2.0], &[2.0, 3.0]]);
        assert!(s.is_symmetric(0.0));
        let ns = M::from_rows(&[&[1.0, 2.0], &[2.1, 3.0]]);
        assert!(!ns.is_symmetric(1e-3));
        assert!(!sample().is_symmetric(1.0));
    }

    #[test]
    fn cast_width() {
        let m = M::from_rows(&[&[1.0 + 1e-12]]);
        let f: Matrix<f32> = m.cast();
        assert_eq!(f.get(0, 0), 1.0f32);
    }

    #[test]
    #[should_panic(expected = "from_vec: buffer size mismatch")]
    fn from_vec_checks_len() {
        let _ = M::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn row_mut_edits_in_place() {
        let mut m = sample();
        m.row_mut(1)[2] = 42.0;
        assert_eq!(m.get(1, 2), 42.0);
        m.row_mut(0).fill(0.0);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn rows_iter_walks_all_rows() {
        let m = sample();
        let rows: Vec<&[f64]> = m.rows_iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], &[1.0, 2.0, 3.0]);
        assert_eq!(rows[1], &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn explicit_pool_kernels_match_serial() {
        use archytas_par::Pool;
        let a = M::from_fn(37, 23, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let b = M::from_fn(23, 29, |i, j| ((i * 7 + j * 11) % 17) as f64 * 0.25);
        let serial = Pool::with_threads(1);
        let forced = Pool::with_threads(4).with_serial_threshold(0);
        assert_eq!(
            a.try_mul_with(&b, &serial).unwrap(),
            a.try_mul_with(&b, &forced).unwrap()
        );
        assert_eq!(a.gram_with(&serial), a.gram_with(&forced));
    }
}
