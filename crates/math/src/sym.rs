//! Symmetric matrix with packed lower-triangular storage.
//!
//! The linear-system parameter matrix `S` of the NLS solver is symmetric
//! (paper Sec. 3.3, Fig. 4); exploiting the symmetry alone halves the on-chip
//! storage, before the SLAM-specific `Si`/`Sc` split applied by
//! `archytas-mdfg::layout`.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::vector::Vector;
use std::fmt;

/// Symmetric matrix storing only the lower triangle (row-packed).
#[derive(Clone, PartialEq)]
pub struct SymMat<T: Scalar> {
    dim: usize,
    /// Row-packed lower triangle: row i contributes i+1 entries.
    data: Vec<T>,
}

impl<T: Scalar> SymMat<T> {
    /// Creates a zero symmetric matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            dim: n,
            data: vec![T::ZERO; n * (n + 1) / 2],
        }
    }

    /// Packs a dense symmetric matrix. The strict upper triangle of `m` is
    /// ignored, so callers holding an "almost symmetric" matrix (e.g. from
    /// accumulated floating-point noise) get a canonical symmetrization.
    ///
    /// # Panics
    ///
    /// Panics when `m` is not square.
    pub fn from_dense(m: &Matrix<T>) -> Self {
        assert!(m.is_square(), "from_dense: matrix must be square");
        let n = m.rows();
        let mut s = Self::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                s.set(i, j, m.get(i, j));
            }
        }
        s
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of scalars actually stored (`n(n+1)/2`).
    pub fn stored_len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i >= j);
        i * (i + 1) / 2 + j
    }

    /// Element `(i, j)`; symmetry makes the order of the indices irrelevant.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.dim && j < self.dim, "get: index out of bounds");
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        self.data[self.idx(i, j)]
    }

    /// Sets element `(i, j)` (and implicitly `(j, i)`).
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.dim && j < self.dim, "set: index out of bounds");
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        let k = self.idx(i, j);
        self.data[k] = v;
    }

    /// Adds `v` to element `(i, j)` (and implicitly `(j, i)`).
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn add_at(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.dim && j < self.dim, "add_at: index out of bounds");
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        let k = self.idx(i, j);
        self.data[k] += v;
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> Matrix<T> {
        Matrix::from_fn(self.dim, self.dim, |i, j| self.get(i, j))
    }

    /// Product with a vector, exploiting symmetry to read each stored element
    /// at most twice.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != self.dim()`.
    pub fn mul_vec(&self, v: &Vector<T>) -> Vector<T> {
        assert_eq!(v.len(), self.dim, "mul_vec: dimension mismatch");
        let mut out = Vector::zeros(self.dim);
        for i in 0..self.dim {
            for j in 0..=i {
                let s = self.data[self.idx(i, j)];
                out[i] += s * v[j];
                if i != j {
                    out[j] += s * v[i];
                }
            }
        }
        out
    }
}

impl<T: Scalar> fmt::Debug for SymMat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymMat(dim={}, stored={})", self.dim, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    type M = Matrix<f64>;
    type S = SymMat<f64>;

    fn sample_dense() -> M {
        M::from_rows(&[&[2.0, 1.0, 0.5], &[1.0, 3.0, -1.0], &[0.5, -1.0, 4.0]])
    }

    #[test]
    fn storage_is_half() {
        let s = S::zeros(10);
        assert_eq!(s.stored_len(), 55);
        assert_eq!(s.dim(), 10);
    }

    #[test]
    fn dense_roundtrip() {
        let d = sample_dense();
        let s = S::from_dense(&d);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn set_mirrors() {
        let mut s = S::zeros(3);
        s.set(0, 2, 7.0);
        assert_eq!(s.get(2, 0), 7.0);
        s.add_at(2, 0, 1.0);
        assert_eq!(s.get(0, 2), 8.0);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let d = sample_dense();
        let s = S::from_dense(&d);
        let v = Vector::from(vec![1.0, -2.0, 3.0]);
        let fast = s.mul_vec(&v);
        let dense = d.mat_vec(&v);
        for i in 0..3 {
            assert!((fast[i] - dense[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn from_dense_canonicalizes_asymmetry() {
        let mut d = sample_dense();
        d.set(0, 2, 999.0); // strict upper triangle is ignored
        let s = S::from_dense(&d);
        assert_eq!(s.get(0, 2), 0.5);
    }
}
