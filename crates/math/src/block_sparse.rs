//! Block-sparse normal equations for the sliding-window solver.
//!
//! [`SchurSystem`](crate::SchurSystem) consumes a *dense* `A` and pays three
//! O(n²)–O(n³) round-trips per solve: partitioning copies every block,
//! `W·U⁻¹·Wᵀ` runs through a dense `try_mul` against a materialized
//! `transpose()`, and each retry of the LM damping loop re-clones the whole
//! matrix. But the window's normal equations are never dense (paper Fig. 3b):
//! `U` is diagonal (one inverse depth per landmark), and each landmark's `W`
//! column intersects only the few keyframes that observe it, in fixed-height
//! blocks (the pose-tangent slots of each 15-dim keyframe state).
//!
//! [`BlockSparseSystem`] stores exactly that structure — `U` as a diagonal
//! vector, `W` as per-landmark block lists (block-CSR with a fixed block
//! height `kb` and row pitch `stride`), `V` dense — and solves by Schur
//! elimination directly on it, skipping the dense assembly entirely. The
//! upper-right block `X = Wᵀ` is implied by symmetry and never stored, the
//! storage saving the paper notes for the diagonal-`U` blocking.
//!
//! # Bit-identity contract
//!
//! For a system whose dense image ([`BlockSparseSystem::to_dense`]) is handed
//! to [`SchurSystem`](crate::SchurSystem), [`BlockSparseSystem::solve_into`]
//! returns the *bit-identical* increment, for any thread count. This holds
//! because every floating-point operation of the dense path is replayed with
//! the same operands in the same order, except for additions of structural
//! zeros — and those are exact no-ops: assembled entries are accumulated sums
//! of nonzero terms, which under round-to-nearest can produce `+0.0` but
//! never `-0.0`, so an accumulator never sits at `-0.0` where adding `+0.0`
//! would flip its sign. The per-entry accumulation order matches because the
//! block lists are kept sorted by row and iterated in ascending landmark
//! order, exactly the `i-k-j` order of the dense `try_mul` kernel.
//!
//! # Damping without clones
//!
//! [`BlockSparseSystem::damp`] applies the Marquardt diagonal scaling
//! `A + λ·diag(A)` in place: the first call snapshots the undamped diagonal,
//! and every call (including re-damps at a higher λ after a rejected step)
//! rewrites the diagonal from that snapshot. [`BlockSparseSystem::undamp`]
//! restores it. No full-matrix copy is ever taken.

use crate::cholesky::Cholesky;
use crate::error::{MathError, Result};
use crate::fixed;
use crate::kernels;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::vector::Vector;
use archytas_par::counters::{self, Phase};
use archytas_par::Pool;

/// Normal equations `[U Wᵀ; W V]·δp = [bx; by]` in block-sparse form.
///
/// Dimensions: `U` is `p × p` diagonal, `V` is `q × q` dense, `W` is `q × p`
/// with each landmark column holding a sorted list of `kb`-high blocks whose
/// start rows are multiples of `stride` (the per-keyframe state pitch).
///
/// Build one with [`BlockSparseSystem::reset`] followed by the `add_*`
/// scatter methods, then [`BlockSparseSystem::damp`] and
/// [`BlockSparseSystem::solve_into`]. The struct is designed to be allocated
/// once and reused across LM iterations and windows: `reset` and the solve
/// scratch keep every buffer's allocation alive.
#[derive(Debug, Clone)]
pub struct BlockSparseSystem<T: Scalar> {
    p: usize,
    q: usize,
    kb: usize,
    stride: usize,
    /// Diagonal of `U` (one entry per landmark).
    u: Vec<T>,
    /// Per-landmark sorted block start rows (within the `q`-dim pose region).
    w_rows: Vec<Vec<u32>>,
    /// Per-landmark block values, `kb` contiguous entries per block, in the
    /// same order as `w_rows`.
    w_vals: Vec<Vec<T>>,
    /// Dense keyframe block `V`.
    v: Matrix<T>,
    bx: Vec<T>,
    by: Vec<T>,
    /// Undamped diagonals of `U` and `V`, captured by the first [`damp`]
    /// after an assembly; see the module docs.
    ///
    /// [`damp`]: BlockSparseSystem::damp
    saved_u: Vec<T>,
    saved_v: Vec<T>,
    damp_saved: bool,
    /// Memo of the last `W` block located by [`add_w`]: `(lm, b0, pos)`.
    /// Scatter writes arrive in per-block runs (a visual row touches up to
    /// `kb` consecutive rows of one block), so this absorbs most lookups.
    /// Refreshed on every call, so it can never go stale across inserts.
    ///
    /// [`add_w`]: BlockSparseSystem::add_w
    w_memo: (usize, u32, usize),
}

impl<T: Scalar> Default for BlockSparseSystem<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> BlockSparseSystem<T> {
    /// Creates an empty system; call [`BlockSparseSystem::reset`] before use.
    pub fn new() -> Self {
        Self {
            p: 0,
            q: 0,
            kb: 1,
            stride: 1,
            u: Vec::new(),
            w_rows: Vec::new(),
            w_vals: Vec::new(),
            v: Matrix::zeros(0, 0),
            bx: Vec::new(),
            by: Vec::new(),
            saved_u: Vec::new(),
            saved_v: Vec::new(),
            damp_saved: false,
            w_memo: (usize::MAX, 0, 0),
        }
    }

    /// Clears the system to an all-zero `p`/`q` shape, reusing allocations.
    ///
    /// `kb` is the `W` block height and `stride` the row pitch blocks are
    /// aligned to (`stride = 15`, `kb = 6` for the sliding window: visual
    /// factors touch only the pose-tangent slots of each keyframe state).
    ///
    /// # Panics
    ///
    /// Panics when `kb` is zero or exceeds `stride`, or when `q` is not a
    /// multiple of `stride`.
    pub fn reset(&mut self, p: usize, q: usize, kb: usize, stride: usize) {
        assert!(
            kb >= 1 && kb <= stride,
            "block height {kb} must be in 1..={stride}"
        );
        assert!(
            q.is_multiple_of(stride),
            "pose dimension {q} is not a multiple of the stride {stride}"
        );
        self.p = p;
        self.q = q;
        self.kb = kb;
        self.stride = stride;
        self.u.clear();
        self.u.resize(p, T::ZERO);
        if self.w_rows.len() < p {
            self.w_rows.resize_with(p, Vec::new);
            self.w_vals.resize_with(p, Vec::new);
        }
        for lm in 0..p {
            self.w_rows[lm].clear();
            self.w_vals[lm].clear();
        }
        self.v.reset_zeros(q, q);
        self.bx.clear();
        self.bx.resize(p, T::ZERO);
        self.by.clear();
        self.by.resize(q, T::ZERO);
        self.damp_saved = false;
        self.w_memo = (usize::MAX, 0, 0);
    }

    /// Size of the diagonal (eliminated) block.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Size of the reduced (keyframe) block.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Full system dimension `p + q`.
    pub fn dim(&self) -> usize {
        self.p + self.q
    }

    /// Number of `W` blocks currently stored.
    pub fn nnz_blocks(&self) -> usize {
        self.w_rows[..self.p].iter().map(Vec::len).sum()
    }

    /// Scalars stored for the matrix (`U` diagonal + `W` blocks + dense `V`),
    /// versus the `(p + q)²` a dense assembly would hold.
    pub fn stored_entries(&self) -> usize {
        self.p + self.nnz_blocks() * self.kb + self.q * self.q
    }

    /// Adds `val` to the diagonal `U` entry of landmark `j`.
    pub fn add_u(&mut self, j: usize, val: T) {
        self.u[j] += val;
    }

    /// Adds `val` to `V[r][c]` (`r`, `c` relative to the pose region).
    pub fn add_v(&mut self, r: usize, c: usize, val: T) {
        self.v.add_at(r, c, val);
    }

    /// Adds `scale·vals[t]` to `V[r][c0 + t]` for each nonzero `vals[t]`.
    ///
    /// Run form of [`BlockSparseSystem::add_v`]: one contiguous row write per
    /// call instead of a bounds-checked scatter per element. Skipping the
    /// zero entries matches the assembler's zero-Jacobian guard and cannot
    /// change stored bits besides: accumulated entries are sums of nonzero
    /// terms, hence never `-0.0`, and adding `±0.0` to anything that is not
    /// `-0.0` leaves its bit pattern alone.
    pub fn add_v_row(&mut self, r: usize, c0: usize, vals: &[T], scale: T) {
        kernels::add_scaled_skip(&mut self.v.row_mut(r)[c0..c0 + vals.len()], vals, scale);
    }

    /// Fused pair form of [`BlockSparseSystem::add_v_row`]: applies
    /// `scale0·vals0` then `scale1·vals1` at the same `(r, c0)` run in one
    /// traversal. Per cell the contribution order matches two sequential
    /// `add_v_row` calls bit for bit (see [`kernels::add_scaled_skip2`]).
    pub fn add_v_row2(
        &mut self,
        r: usize,
        c0: usize,
        vals0: &[T],
        scale0: T,
        vals1: &[T],
        scale1: T,
    ) {
        debug_assert_eq!(vals0.len(), vals1.len());
        kernels::add_scaled_skip2(
            &mut self.v.row_mut(r)[c0..c0 + vals0.len()],
            vals0,
            scale0,
            vals1,
            scale1,
        );
    }

    /// Fused many-row form of [`BlockSparseSystem::add_v_row`]: applies every
    /// `(vals, scale)` source, in slice order, at the same `(r, c0)` run in
    /// one traversal — bit-identical to the equivalent sequence of
    /// `add_v_row` calls (see [`kernels::add_scaled_skip_rows`]).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when the sources do not all share `len`.
    pub fn add_v_row_fused(&mut self, r: usize, c0: usize, len: usize, rows: &[(&[T], T)]) {
        debug_assert!(rows.iter().all(|(v, _)| v.len() >= len));
        kernels::add_scaled_skip_rows(&mut self.v.row_mut(r)[c0..c0 + len], rows);
    }

    /// Copies `V`'s strict upper triangle onto its lower one.
    ///
    /// Assemblers that accumulate only upper-triangle pose–pose writes (the
    /// mirror of every contribution carries the exact same value, so the
    /// eagerly-mirrored lower triangle would be bitwise equal anyway) call
    /// this once at the end instead of paying a strided write per entry.
    pub fn reflect_v_upper(&mut self) {
        for r in 0..self.q {
            for c in (r + 1)..self.q {
                let v = self.v.get(r, c);
                self.v.set(c, r, v);
            }
        }
    }

    /// Adds `val` to `W[r][lm]` (`r` relative to the pose region), creating
    /// the enclosing block on first touch.
    ///
    /// `r` must fall inside the leading `kb` rows of its `stride`-aligned
    /// block — an assembler invariant, checked in debug builds only (this
    /// is the per-observation hot path).
    pub fn add_w(&mut self, lm: usize, r: usize, val: T) {
        *self.w_entry_mut(lm, r) += val;
    }

    /// Adds `scale·vals[t]` to `W[r0 + t][lm]` for each nonzero `vals[t]`,
    /// resolving the enclosing block once for the whole run (the run form of
    /// [`BlockSparseSystem::add_w`], with the zero-skip semantics of
    /// [`BlockSparseSystem::add_v_row`]).
    ///
    /// The run must stay inside the leading `kb` rows of one
    /// `stride`-aligned block — an assembler invariant, checked in debug
    /// builds only (this is the per-observation hot path).
    pub fn add_w_run(&mut self, lm: usize, r0: usize, vals: &[T], scale: T) {
        if vals.is_empty() {
            return;
        }
        let b0 = r0 - r0 % self.stride;
        let local = r0 - b0;
        debug_assert!(
            local + vals.len() <= self.kb,
            "w run {r0}..{} leaves the {}-high block starting at {b0}",
            r0 + vals.len(),
            self.kb
        );
        let pos = self.w_block_pos(lm, b0);
        let at = pos * self.kb + local;
        kernels::add_scaled_skip(&mut self.w_vals[lm][at..at + vals.len()], vals, scale);
    }

    /// Fused pair form of [`BlockSparseSystem::add_w_run`]: one block lookup
    /// and one traversal for two scaled source rows at the same `(lm, r0)`
    /// run, bit-identical to two sequential `add_w_run` calls.
    pub fn add_w_run2(
        &mut self,
        lm: usize,
        r0: usize,
        vals0: &[T],
        scale0: T,
        vals1: &[T],
        scale1: T,
    ) {
        debug_assert_eq!(vals0.len(), vals1.len());
        if vals0.is_empty() {
            return;
        }
        let b0 = r0 - r0 % self.stride;
        let local = r0 - b0;
        debug_assert!(
            local + vals0.len() <= self.kb,
            "w run {r0}..{} leaves the {}-high block starting at {b0}",
            r0 + vals0.len(),
            self.kb
        );
        let pos = self.w_block_pos(lm, b0);
        let at = pos * self.kb + local;
        kernels::add_scaled_skip2(
            &mut self.w_vals[lm][at..at + vals0.len()],
            vals0,
            scale0,
            vals1,
            scale1,
        );
    }

    /// Fused whole-observation scatter of one visual factor in the SLAM
    /// layout: landmark `lm`'s rank-2 contribution through its two residual
    /// rows, touching the `U` diagonal, `bx`, two 6-high `W` runs (pose rows
    /// `rf` and `rs`, `rf < rs`), `by`, and the upper-triangle `V` blocks.
    ///
    /// `jr` holds the two rows' inverse-depth Jacobians, `f`/`s` their
    /// 6-wide pose-tangent runs, `e` the residuals and `w2` the shared
    /// squared weight. Bit-identical to the generic per-source-column
    /// scatter (the `scatter_runs2` replay through the single-entry sink
    /// methods): every destination cell receives the same guarded
    /// multiply-adds in the same row-0-then-row-1 order, including the
    /// single-row fallbacks where one residual row's Jacobian is zero at a
    /// source column. What changes is only the plumbing — the `V` row is
    /// resolved once per source column instead of once per sink call, and
    /// the always-6-wide cross runs go straight to the unrolled kernels.
    ///
    /// # Panics
    ///
    /// Debug-panics unless `kb == 6` (callers dispatch on the layout).
    #[allow(clippy::too_many_arguments)]
    pub fn add_visual_obs6(
        &mut self,
        lm: usize,
        rf: usize,
        rs: usize,
        jr: [T; 2],
        f: [&[T; 6]; 2],
        s: [&[T; 6]; 2],
        e: [T; 2],
        w2: T,
    ) {
        debug_assert_eq!(self.kb, 6, "fused visual scatter requires kb = 6");
        debug_assert!(rf < rs, "pose runs must arrive in ascending order");
        // Source column 1: the inverse depth. Primaries land on U and bx;
        // the mirrors of the pose cross terms are the W runs' only storage.
        let (v0, v1) = (jr[0], jr[1]);
        if v0 != T::ZERO || v1 != T::ZERO {
            let wv0 = w2 * v0;
            let wv1 = w2 * v1;
            if v0 != T::ZERO {
                self.bx[lm] -= wv0 * e[0];
            }
            if v1 != T::ZERO {
                self.bx[lm] -= wv1 * e[1];
            }
            // Pose runs start at keyframe offsets, i.e. block starts — no
            // `% stride` round-down needed. Resolving `rf` before `rs`
            // matches the sequential `add_w_run*` lookups (and `rs > rf`
            // keeps the first position valid across a second-block insert).
            debug_assert_eq!(rf % self.stride, 0);
            debug_assert_eq!(rs % self.stride, 0);
            let pf = 6 * self.w_block_pos(lm, rf);
            let ps = 6 * self.w_block_pos(lm, rs);
            let wv = &mut self.w_vals[lm];
            if v0 != T::ZERO && v1 != T::ZERO {
                self.u[lm] += wv0 * v0;
                self.u[lm] += wv1 * v1;
                fixed::Vec::<T, 6>::from_mut_slice(&mut wv[pf..]).axpy_skip2(
                    fixed::Vec::from_slice(f[0]),
                    wv0,
                    fixed::Vec::from_slice(f[1]),
                    wv1,
                );
                fixed::Vec::<T, 6>::from_mut_slice(&mut wv[ps..]).axpy_skip2(
                    fixed::Vec::from_slice(s[0]),
                    wv0,
                    fixed::Vec::from_slice(s[1]),
                    wv1,
                );
            } else if v0 != T::ZERO {
                self.u[lm] += wv0 * v0;
                fixed::Vec::<T, 6>::from_mut_slice(&mut wv[pf..])
                    .axpy_skip(fixed::Vec::from_slice(f[0]), wv0);
                fixed::Vec::<T, 6>::from_mut_slice(&mut wv[ps..])
                    .axpy_skip(fixed::Vec::from_slice(s[0]), wv0);
            } else {
                self.u[lm] += wv1 * v1;
                fixed::Vec::<T, 6>::from_mut_slice(&mut wv[pf..])
                    .axpy_skip(fixed::Vec::from_slice(f[1]), wv1);
                fixed::Vec::<T, 6>::from_mut_slice(&mut wv[ps..])
                    .axpy_skip(fixed::Vec::from_slice(s[1]), wv1);
            }
        }
        // Source columns in the pose runs. Each column's diagonal-block tail
        // has a compile-time length (`6 - TI`), so the per-column bodies are
        // expanded by macro with every kernel call fully unrolled — the
        // guarded multiply-add sequence per cell is exactly the generic
        // loop's (the unrolled and the runtime-length forms are bitwise
        // interchangeable, see the `kernel_equivalence` suite).
        let q = self.q;
        let by = &mut self.by[..q];
        let vdat = self.v.as_mut_slice();
        // First run: upper diagonal-block tail plus the full 6-wide cross
        // block against the second run. `$cross: true` emits the cross part.
        macro_rules! pose_col {
            ($j0:expr, $j1:expr, $r0:expr, $cross:expr, $ti:literal) => {{
                const TI: usize = $ti;
                let (v0, v1) = ($j0[TI], $j1[TI]);
                if v0 != T::ZERO || v1 != T::ZERO {
                    let ri = $r0 + TI;
                    let wv0 = w2 * v0;
                    let wv1 = w2 * v1;
                    if v0 != T::ZERO {
                        by[ri] -= wv0 * e[0];
                    }
                    if v1 != T::ZERO {
                        by[ri] -= wv1 * e[1];
                    }
                    let row = &mut vdat[ri * q..(ri + 1) * q];
                    let tail0: &[T; 6 - TI] = (&$j0[TI..]).try_into().unwrap();
                    let tail1: &[T; 6 - TI] = (&$j1[TI..]).try_into().unwrap();
                    let dtail = fixed::Vec::<T, { 6 - TI }>::from_mut_slice(&mut row[ri..]);
                    if v0 != T::ZERO && v1 != T::ZERO {
                        dtail.axpy_skip2(
                            fixed::Vec::from_slice(tail0),
                            wv0,
                            fixed::Vec::from_slice(tail1),
                            wv1,
                        );
                        if $cross {
                            fixed::Vec::<T, 6>::from_mut_slice(&mut row[rs..]).axpy_skip2(
                                fixed::Vec::from_slice(s[0]),
                                wv0,
                                fixed::Vec::from_slice(s[1]),
                                wv1,
                            );
                        }
                    } else if v0 != T::ZERO {
                        dtail.axpy_skip(fixed::Vec::from_slice(tail0), wv0);
                        if $cross {
                            fixed::Vec::<T, 6>::from_mut_slice(&mut row[rs..])
                                .axpy_skip(fixed::Vec::from_slice(s[0]), wv0);
                        }
                    } else {
                        dtail.axpy_skip(fixed::Vec::from_slice(tail1), wv1);
                        if $cross {
                            fixed::Vec::<T, 6>::from_mut_slice(&mut row[rs..])
                                .axpy_skip(fixed::Vec::from_slice(s[1]), wv1);
                        }
                    }
                }
            }};
            ($j0:expr, $j1:expr, $r0:expr, $cross:expr) => {
                pose_col!($j0, $j1, $r0, $cross, 0);
                pose_col!($j0, $j1, $r0, $cross, 1);
                pose_col!($j0, $j1, $r0, $cross, 2);
                pose_col!($j0, $j1, $r0, $cross, 3);
                pose_col!($j0, $j1, $r0, $cross, 4);
                pose_col!($j0, $j1, $r0, $cross, 5);
            };
        }
        pose_col!(f[0], f[1], rf, true);
        // Second run: only its diagonal-block tail remains.
        pose_col!(s[0], s[1], rs, false);
    }

    /// Subtracts `val` from the landmark right-hand side `bx[j]` (the scatter
    /// convention of Gauss–Newton assembly: `b -= Jᵀ·W·e`).
    pub fn sub_bx(&mut self, j: usize, val: T) {
        self.bx[j] -= val;
    }

    /// Subtracts `val` from the pose right-hand side `by[r]`.
    pub fn sub_by(&mut self, r: usize, val: T) {
        self.by[r] -= val;
    }

    fn w_entry_mut(&mut self, lm: usize, r: usize) -> &mut T {
        let b0 = r - r % self.stride;
        let local = r - b0;
        debug_assert!(
            local < self.kb,
            "w row {r} falls outside the {}-high block starting at {b0}",
            self.kb
        );
        let pos = self.w_block_pos(lm, b0);
        &mut self.w_vals[lm][pos * self.kb + local]
    }

    /// Index of the block starting at pose row `b0` in landmark `lm`'s block
    /// list, inserting a zeroed block on first touch. Memoizes the last
    /// lookup — the assembler writes each block as a burst of entries.
    fn w_block_pos(&mut self, lm: usize, b0: usize) -> usize {
        if self.w_memo.0 == lm && self.w_memo.1 == b0 as u32 {
            return self.w_memo.2;
        }
        let rows = &mut self.w_rows[lm];
        let pos = match rows.binary_search(&(b0 as u32)) {
            Ok(pos) => pos,
            Err(pos) => {
                rows.insert(pos, b0 as u32);
                let at = pos * self.kb;
                self.w_vals[lm].splice(at..at, std::iter::repeat_n(T::ZERO, self.kb));
                pos
            }
        };
        self.w_memo = (lm, b0 as u32, pos);
        pos
    }

    /// Applies Marquardt damping `A + λ·diag(A)` (with `floor` as the minimum
    /// diagonal magnitude) in place.
    ///
    /// The first call after [`BlockSparseSystem::reset`] snapshots the
    /// undamped diagonal; every call rewrites the diagonal from that
    /// snapshot, so re-damping at a different λ needs no undo in between.
    /// Matches the dense reference `a[i][i] + λ·max(a[i][i], floor)`
    /// bit-for-bit.
    pub fn damp(&mut self, lambda: T, floor: T) {
        if !self.damp_saved {
            self.saved_u.clone_from(&self.u);
            self.saved_v.clear();
            self.saved_v.extend((0..self.q).map(|i| self.v.get(i, i)));
            self.damp_saved = true;
        }
        for (u, &s) in self.u.iter_mut().zip(&self.saved_u) {
            let d = if s > floor { s } else { floor };
            *u = s + lambda * d;
        }
        for (i, &s) in self.saved_v.iter().enumerate() {
            let d = if s > floor { s } else { floor };
            self.v.set(i, i, s + lambda * d);
        }
    }

    /// Restores the undamped diagonal captured by the first
    /// [`BlockSparseSystem::damp`]; a no-op when no damping is active.
    pub fn undamp(&mut self) {
        if !self.damp_saved {
            return;
        }
        self.u.copy_from_slice(&self.saved_u);
        for (i, &s) in self.saved_v.iter().enumerate() {
            self.v.set(i, i, s);
        }
        self.damp_saved = false;
    }

    /// Solves the system by D-type Schur elimination into `out`
    /// (`δp = [δpx; δpy]`), using `scratch` for every intermediate buffer.
    ///
    /// Bit-identical to [`SchurSystem::solve`](crate::SchurSystem::solve) on
    /// the dense image of this system, for any `pool` configuration (see the
    /// module docs). The `q × q` outer-product accumulation — the dominant
    /// cost — is row-parallel with a FLOP-weighted dispatch gate, so small
    /// windows never pay a fork/join.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::SingularDiagonal`] when a `U` entry is zero or
    /// not finite, and [`MathError::NotPositiveDefinite`] when the reduced
    /// system fails to factor (the LM loop responds by raising λ).
    pub fn solve_into(
        &self,
        scratch: &mut SchurScratch<T>,
        pool: &Pool,
        out: &mut Vector<T>,
    ) -> Result<()> {
        let (p, q, kb) = (self.p, self.q, self.kb);
        counters::time(Phase::SchurProduct, || self.schur_reduce(scratch, pool))?;
        // The reduced system S = V − prod is factored straight from its two
        // operands — never materialized — with the identical per-element
        // subtraction the explicit Schur matrix would have stored.
        counters::time(Phase::Factorization, || {
            scratch
                .chol
                .refactor_diff_with(&self.v, &scratch.prod, pool)
        })?;
        counters::time(Phase::BackSubstitution, || {
            let SchurScratch {
                chol,
                rhs,
                ytmp,
                dy,
                uinv,
                ..
            } = scratch;
            chol.solve_into(rhs, ytmp, dy);
            let dy = &*dy;
            // Back-substitute: U·δpx = bx − Wᵀ·δpy, then concatenate.
            out.resize_fill(p + q, T::ZERO);
            let o = out.as_mut_slice();
            let dy_s = dy.as_slice();
            for lm in 0..p {
                let mut acc = T::ZERO;
                let vals = &self.w_vals[lm];
                for (bi, &r0) in self.w_rows[lm].iter().enumerate() {
                    if kb == 6 {
                        // Unrolled branchless fold; same serial accumulation
                        // order and skip guard as the loop below.
                        acc = fixed::Vec::<T, 6>::from_slice(&vals[bi * 6..])
                            .dot_skip_fold(fixed::Vec::from_slice(&dy_s[r0 as usize..]), acc);
                    } else {
                        for t in 0..kb {
                            let vi = dy_s[r0 as usize + t];
                            // transpose_mat_vec's zero-row skip.
                            if vi == T::ZERO {
                                continue;
                            }
                            acc += vals[bi * kb + t] * vi;
                        }
                    }
                }
                o[lm] = uinv[lm] * (self.bx[lm] - acc);
            }
            o[p..].copy_from_slice(dy.as_slice());
        });
        Ok(())
    }

    /// The Schur-reduction half of [`BlockSparseSystem::solve_into`]: fills
    /// `scratch` with `U⁻¹`, the elimination product `W·U⁻¹·Wᵀ` and the
    /// reduced right-hand side. The reduced system `S = V − W·U⁻¹·Wᵀ` itself
    /// is never materialized — the factorization seeds its work buffer with
    /// the difference directly ([`Cholesky::refactor_diff_with`]).
    ///
    /// Two equivalent elimination kernels share this function. The serial
    /// one sweeps landmark-major — for each landmark, one rank-1 update of
    /// the block pattern with fused `kb`-wide row writes — and needs no
    /// auxiliary index at all. The row-parallel one (taken when the
    /// FLOP-weighted gate fires) partitions `prod` by pose row and gathers
    /// through a flat CSR transpose index built on demand. Per output cell
    /// both orders are the same: contributions arrive in ascending landmark
    /// order — the dense kernel's `i-k-j` order restricted to the nonzero
    /// pattern — with identical operands, so the two kernels (and the dense
    /// path) agree bit for bit.
    fn schur_reduce(&self, scratch: &mut SchurScratch<T>, pool: &Pool) -> Result<()> {
        let (p, q, kb) = (self.p, self.q, self.kb);
        // U⁻¹, with DiagMat::inverse's exact singularity test.
        scratch.uinv.clear();
        for (i, &d) in self.u[..p].iter().enumerate() {
            if d == T::ZERO || !d.is_finite() {
                return Err(MathError::SingularDiagonal { index: i });
            }
            scratch.uinv.push(T::ONE / d);
        }
        // Exact multiply-accumulate count of the elimination — landmark `lm`
        // contributes (nnz_lm·kb)² — which the dispatch decision weighs.
        let mut mac_ops = 0usize;
        for lm in 0..p {
            let nnz = self.w_rows[lm].len() * kb;
            mac_ops += nnz * nnz;
        }
        // Reduced RHS scaling: s2 = U⁻¹·bx.
        scratch.s2.clear();
        scratch
            .s2
            .extend(scratch.uinv.iter().zip(&self.bx).map(|(&ui, &b)| ui * b));

        scratch.prod.reset_zeros(q, q);
        scratch.rhs.resize_fill(q, T::ZERO);
        if pool.should_parallelize_work(q * q, mac_ops) {
            // Row-parallel path: the same gate par_chunks_mut_weighted
            // applies to the prod buffer below, pre-checked here so the
            // transpose index is only built when it will actually be used.
            self.build_row_index(scratch);
            let SchurScratch {
                uinv,
                s2,
                row_ptr,
                row_ent,
                prod,
                rhs,
                ..
            } = scratch;
            let uinv: &[T] = uinv;
            let row_ptr: &[u32] = row_ptr;
            let row_ent: &[(u32, u32)] = row_ent;
            let w_rows = &self.w_rows;
            let w_vals = &self.w_vals;
            pool.par_chunks_mut_weighted(prod.as_mut_slice(), q, mac_ops, |r, prow| {
                for &(lm, off) in &row_ent[row_ptr[r] as usize..row_ptr[r + 1] as usize] {
                    let lm = lm as usize;
                    // Same operand order as the dense path: (w·u⁻¹) first,
                    // and the same skip as try_mul's zero-multiplicand test.
                    let s = w_vals[lm][off as usize] * uinv[lm];
                    if s == T::ZERO {
                        continue;
                    }
                    let vals = &w_vals[lm];
                    for (bi, &c0) in w_rows[lm].iter().enumerate() {
                        let c0 = c0 as usize;
                        kernels::add_scaled(
                            &mut prow[c0..c0 + kb],
                            &vals[bi * kb..(bi + 1) * kb],
                            s,
                        );
                    }
                }
            });
            // Reduced RHS: by − W·s2, row-major through the same index.
            let rhs = rhs.as_mut_slice();
            for r in 0..q {
                let mut acc = T::ZERO;
                for &(lm, off) in &row_ent[row_ptr[r] as usize..row_ptr[r + 1] as usize] {
                    acc += w_vals[lm as usize][off as usize] * s2[lm as usize];
                }
                rhs[r] = self.by[r] - acc;
            }
        } else {
            // Landmark-major blocked SYRK. `s` is computed once per W row
            // instead of once per (pose row, landmark) gather, and every
            // inner write is a fused kb-wide row run.
            let prod = &mut scratch.prod;
            let prod_s = prod.as_mut_slice();
            for lm in 0..p {
                let rows = &self.w_rows[lm];
                let vals = &self.w_vals[lm];
                let ui = scratch.uinv[lm];
                if kb == 6 {
                    // The sliding window's block height: the whole 6-high
                    // block-pair update runs through the unrolled
                    // fixed-width SYRK kernel. Per destination cell one
                    // landmark contributes exactly one multiply-add, so the
                    // kernel's block-column-major loop order is
                    // bit-identical to the row-major fallback below (see
                    // `fixed::syrk_scatter`); the per-row scale is the same
                    // `(w·u⁻¹)`-first product, with zero rows skipped like
                    // the fallback's `continue`.
                    for (bi, &r0) in rows.iter().enumerate() {
                        let r0 = r0 as usize;
                        let s: [T; 6] = core::array::from_fn(|t| vals[bi * 6 + t] * ui);
                        fixed::syrk_scatter::<T, 6>(
                            &mut prod_s[r0 * q..(r0 + 6) * q],
                            q,
                            &s,
                            rows,
                            vals,
                        );
                    }
                } else {
                    for (bi, &r0) in rows.iter().enumerate() {
                        let r0 = r0 as usize;
                        for t in 0..kb {
                            // Same operand order as the dense path: (w·u⁻¹)
                            // first, and the same skip as try_mul's
                            // zero-multiplicand test.
                            let s = vals[bi * kb + t] * ui;
                            if s == T::ZERO {
                                continue;
                            }
                            let prow = &mut prod_s[(r0 + t) * q..(r0 + t + 1) * q];
                            for (bj, &c0) in rows.iter().enumerate() {
                                let c0 = c0 as usize;
                                kernels::add_scaled(
                                    &mut prow[c0..c0 + kb],
                                    &vals[bj * kb..(bj + 1) * kb],
                                    s,
                                );
                            }
                        }
                    }
                }
            }
            // Reduced RHS by the same landmark-major sweep: racc[r] gathers
            // its terms in ascending-lm order — exactly the order the
            // row-major loop above adds them into its scalar accumulator —
            // and the single closing subtraction lands on by, so the bits
            // match the indexed path.
            scratch.racc.clear();
            scratch.racc.resize(q, T::ZERO);
            for lm in 0..p {
                let s2 = scratch.s2[lm];
                let vals = &self.w_vals[lm];
                for (bi, &r0) in self.w_rows[lm].iter().enumerate() {
                    let r0 = r0 as usize;
                    if kb == 6 {
                        // Unrolled, with the sweep's src-first operand order.
                        fixed::Vec::<T, 6>::from_mut_slice(&mut scratch.racc[r0..])
                            .axpy_src_s(fixed::Vec::from_slice(&vals[bi * 6..]), s2);
                    } else {
                        for t in 0..kb {
                            scratch.racc[r0 + t] += vals[bi * kb + t] * s2;
                        }
                    }
                }
            }
            let rhs = scratch.rhs.as_mut_slice();
            for ((rh, &b), &acc) in rhs.iter_mut().zip(&self.by).zip(&scratch.racc) {
                *rh = b - acc;
            }
        }
        Ok(())
    }

    /// Builds the flat (CSR) transpose index of the `W` pattern into
    /// `scratch`: for each pose row, the landmarks whose blocks cover it —
    /// in ascending order — with the offset of their value for that row.
    /// Counting sort over the block lists: O(nnz), no per-row vectors.
    fn build_row_index(&self, scratch: &mut SchurScratch<T>) {
        let (p, q, kb) = (self.p, self.q, self.kb);
        let cur = &mut scratch.row_cur;
        cur.clear();
        cur.resize(q + 1, 0u32);
        for lm in 0..p {
            for &r0 in &self.w_rows[lm] {
                for t in 0..kb {
                    cur[r0 as usize + t + 1] += 1;
                }
            }
        }
        for r in 0..q {
            cur[r + 1] += cur[r];
        }
        scratch.row_ptr.clear();
        scratch.row_ptr.extend_from_slice(cur);
        let total = cur[q] as usize;
        scratch.row_ent.clear();
        scratch.row_ent.resize(total, (0, 0));
        for lm in 0..p {
            for (bi, &r0) in self.w_rows[lm].iter().enumerate() {
                for t in 0..kb {
                    let r = r0 as usize + t;
                    scratch.row_ent[cur[r] as usize] = (lm as u32, (bi * kb + t) as u32);
                    cur[r] += 1;
                }
            }
        }
    }

    /// Materializes the dense `(A, b)` this system represents (symmetric,
    /// with `X = Wᵀ` filled in) — the input the dense
    /// [`SchurSystem`](crate::SchurSystem) path partitions. For tests and the
    /// equivalence suite.
    pub fn to_dense(&self) -> (Matrix<T>, Vector<T>) {
        let n = self.p + self.q;
        let mut a = Matrix::zeros(n, n);
        let mut b = Vector::zeros(n);
        for j in 0..self.p {
            a.set(j, j, self.u[j]);
            b[j] = self.bx[j];
        }
        for lm in 0..self.p {
            for (bi, &r0) in self.w_rows[lm].iter().enumerate() {
                for t in 0..self.kb {
                    let val = self.w_vals[lm][bi * self.kb + t];
                    let r = self.p + r0 as usize + t;
                    a.set(r, lm, val);
                    a.set(lm, r, val);
                }
            }
        }
        for r in 0..self.q {
            for c in 0..self.q {
                a.set(self.p + r, self.p + c, self.v.get(r, c));
            }
            b[self.p + r] = self.by[r];
        }
        (a, b)
    }
}

/// Reusable intermediate buffers for [`BlockSparseSystem::solve_into`].
///
/// Allocate once (`SchurScratch::default()`), reuse for every solve — across
/// damping retries, LM iterations and windows. All buffers grow to the
/// largest window seen and stay allocated.
#[derive(Debug, Clone)]
pub struct SchurScratch<T: Scalar> {
    uinv: Vec<T>,
    s2: Vec<T>,
    /// RHS gather buffer of the landmark-major (serial) elimination kernel.
    racc: Vec<T>,
    /// Flat (CSR) transpose index of the `W` pattern — row pointers, fill
    /// cursors and `(landmark, value-offset)` entries — built only when the
    /// row-parallel elimination path runs.
    row_ptr: Vec<u32>,
    row_cur: Vec<u32>,
    row_ent: Vec<(u32, u32)>,
    prod: Matrix<T>,
    rhs: Vector<T>,
    chol: Cholesky<T>,
    /// Forward-substitution intermediate and pose solution of the reduced
    /// system — reused so the triangular solves never allocate.
    ytmp: Vector<T>,
    dy: Vector<T>,
}

impl<T: Scalar> Default for SchurScratch<T> {
    fn default() -> Self {
        Self {
            uinv: Vec::new(),
            s2: Vec::new(),
            racc: Vec::new(),
            row_ptr: Vec::new(),
            row_cur: Vec::new(),
            row_ent: Vec::new(),
            prod: Matrix::zeros(0, 0),
            rhs: Vector::zeros(0),
            chol: Cholesky::default(),
            ytmp: Vector::zeros(0),
            dy: Vector::zeros(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockSpec;
    use crate::schur::SchurSystem;

    type Sys = BlockSparseSystem<f64>;

    /// A well-conditioned system: 3 landmarks, 2 pose blocks of stride 7 with
    /// kb = 4 (deliberately not the SLAM 15/6 to exercise generality).
    fn build() -> Sys {
        let (p, q, kb, stride) = (3, 14, 4, 7);
        let mut s = Sys::new();
        s.reset(p, q, kb, stride);
        for j in 0..p {
            s.add_u(j, 5.0 + j as f64);
            s.sub_bx(j, -(0.3 + 0.1 * j as f64));
        }
        for r in 0..q {
            s.add_v(r, r, 10.0 + r as f64 * 0.5);
            s.sub_by(r, -(r as f64 * 0.7 - 2.0));
            for c in (r + 1)..q {
                let v = 0.3 / (1.0 + (r as f64 - c as f64).abs());
                s.add_v(r, c, v);
                s.add_v(c, r, v);
            }
        }
        // Landmark 0 seen by both keyframe blocks, 1 only by the first,
        // 2 only by the second; insert out of order to exercise sorting.
        for t in 0..kb {
            s.add_w(0, 7 + t, 0.2 * t as f64 - 0.3);
            s.add_w(0, t, 0.1 * t as f64 + 0.05);
            s.add_w(1, t, -0.15 + 0.07 * t as f64);
            s.add_w(2, 7 + t, 0.12 - 0.04 * t as f64);
        }
        s
    }

    #[test]
    fn solve_matches_dense_schur_bitwise() {
        let s = build();
        let (a, b) = s.to_dense();
        let spec = BlockSpec::new(s.p(), s.dim()).unwrap();
        let reference = SchurSystem::new(&a, &b, spec).unwrap().solve().unwrap();
        let mut scratch = SchurScratch::default();
        let mut out = Vector::zeros(0);
        for pool in [
            Pool::with_threads(1),
            Pool::with_threads(2).with_serial_threshold(0),
            Pool::with_threads(8).with_serial_threshold(0),
        ] {
            s.solve_into(&mut scratch, &pool, &mut out).unwrap();
            assert_eq!(out.as_slice(), reference.as_slice());
        }
    }

    #[test]
    fn damp_matches_dense_damping_and_undamp_restores() {
        let mut s = build();
        let (a0, _) = s.to_dense();
        s.damp(1e-3, 1e-9);
        s.damp(10.0, 1e-9); // re-damp at a higher λ, no undo in between
        let (ad, _) = s.to_dense();
        for i in 0..s.dim() {
            let d = a0.get(i, i);
            assert_eq!(ad.get(i, i), d + 10.0 * d.max(1e-9), "diag {i}");
        }
        // Off-diagonals untouched.
        for i in 0..s.dim() {
            for j in 0..s.dim() {
                if i != j {
                    assert_eq!(ad.get(i, j), a0.get(i, j));
                }
            }
        }
        s.undamp();
        let (ar, _) = s.to_dense();
        for i in 0..s.dim() {
            assert_eq!(ar.get(i, i), a0.get(i, i));
        }
    }

    #[test]
    fn damped_solve_matches_dense_damped_solve() {
        let mut s = build();
        s.damp(0.37, 1e-9);
        let (a, b) = s.to_dense();
        let reference = SchurSystem::new(&a, &b, BlockSpec::new(s.p(), s.dim()).unwrap())
            .unwrap()
            .solve()
            .unwrap();
        let mut scratch = SchurScratch::default();
        let mut out = Vector::zeros(0);
        s.solve_into(
            &mut scratch,
            &Pool::with_threads(4).with_serial_threshold(0),
            &mut out,
        )
        .unwrap();
        assert_eq!(out.as_slice(), reference.as_slice());
    }

    #[test]
    fn empty_landmark_block_degenerates_to_dense_cholesky() {
        let mut s = Sys::new();
        s.reset(0, 4, 2, 2);
        for r in 0..4 {
            s.add_v(r, r, 6.0 + r as f64);
            s.sub_by(r, -(1.0 + r as f64));
        }
        s.add_v(0, 1, 0.5);
        s.add_v(1, 0, 0.5);
        let (a, b) = s.to_dense();
        let reference = Cholesky::factor(&a).unwrap().solve(&b);
        let mut scratch = SchurScratch::default();
        let mut out = Vector::zeros(0);
        s.solve_into(&mut scratch, &Pool::with_threads(1), &mut out)
            .unwrap();
        assert_eq!(out.as_slice(), reference.as_slice());
    }

    #[test]
    fn scratch_reuse_across_shapes_is_clean() {
        let s1 = build();
        let mut s2 = Sys::new();
        // Smaller system after a bigger one: stale scratch rows must not leak.
        s2.reset(1, 7, 4, 7);
        s2.add_u(0, 4.0);
        s2.sub_bx(0, -1.0);
        for r in 0..7 {
            s2.add_v(r, r, 9.0);
            s2.sub_by(r, -0.5);
        }
        for t in 0..4 {
            s2.add_w(0, t, 0.1 + 0.1 * t as f64);
        }
        let mut scratch = SchurScratch::default();
        let mut out = Vector::zeros(0);
        let pool = Pool::with_threads(1);
        s1.solve_into(&mut scratch, &pool, &mut out).unwrap();
        let (a, b) = s2.to_dense();
        let reference = SchurSystem::new(&a, &b, BlockSpec::new(1, 8).unwrap())
            .unwrap()
            .solve()
            .unwrap();
        s2.solve_into(&mut scratch, &pool, &mut out).unwrap();
        assert_eq!(out.as_slice(), reference.as_slice());
    }

    #[test]
    fn singular_u_is_reported_with_index() {
        let mut s = build();
        s.reset(2, 7, 4, 7);
        s.add_u(0, 3.0); // landmark 1 left at zero
        assert!(matches!(
            s.solve_into(
                &mut SchurScratch::default(),
                &Pool::with_threads(1),
                &mut Vector::zeros(0)
            ),
            Err(MathError::SingularDiagonal { index: 1 })
        ));
    }

    #[test]
    fn storage_is_sparse() {
        let s = build();
        assert_eq!(s.nnz_blocks(), 4);
        assert!(s.stored_entries() < s.dim() * s.dim());
    }

    #[test]
    #[should_panic(expected = "falls outside")]
    fn out_of_block_row_is_rejected() {
        let mut s = Sys::new();
        s.reset(1, 7, 4, 7);
        s.add_w(0, 5, 1.0); // rows 4..7 of the stride-7 block are not in kb=4
    }
}
