//! Diagonal matrix — the `DMatInv` / `DMatMul` operand of the M-DFG.
//!
//! The D-type Schur complement (paper Sec. 3.2.2) owes its cheapness to the
//! fact that the `U` block of the blocked linear system is diagonal: inversion
//! is `O(n)` and products against it are `O(n²)` rather than `O(n³)`.

use crate::error::{MathError, Result};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::vector::Vector;
use std::fmt;

/// Diagonal matrix stored as just its diagonal.
#[derive(Clone, PartialEq)]
pub struct DiagMat<T: Scalar> {
    diag: Vec<T>,
}

impl<T: Scalar> DiagMat<T> {
    /// Creates a diagonal matrix from its diagonal entries.
    pub fn new(diag: Vec<T>) -> Self {
        Self { diag }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self {
            diag: vec![T::ONE; n],
        }
    }

    /// Extracts the diagonal of a square dense matrix, ignoring off-diagonal
    /// content.
    ///
    /// # Panics
    ///
    /// Panics when `m` is not square.
    pub fn from_dense_diagonal(m: &Matrix<T>) -> Self {
        assert!(m.is_square(), "from_dense_diagonal: matrix must be square");
        Self {
            diag: (0..m.rows()).map(|i| m.get(i, i)).collect(),
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.diag.len()
    }

    /// Diagonal entries.
    pub fn diagonal(&self) -> &[T] {
        &self.diag
    }

    /// Inverse — the `DMatInv` M-DFG primitive; `O(n)`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::SingularDiagonal`] when an entry is zero or not
    /// finite.
    pub fn inverse(&self) -> Result<Self> {
        let mut inv = Vec::with_capacity(self.diag.len());
        for (i, &d) in self.diag.iter().enumerate() {
            if d == T::ZERO || !d.is_finite() {
                return Err(MathError::SingularDiagonal { index: i });
            }
            inv.push(T::ONE / d);
        }
        Ok(Self { diag: inv })
    }

    /// Left product `self · m` — the `DMatMul` M-DFG primitive; `O(n·cols)`.
    ///
    /// # Panics
    ///
    /// Panics when `m.rows() != self.dim()`.
    pub fn mul_dense(&self, m: &Matrix<T>) -> Matrix<T> {
        assert_eq!(m.rows(), self.dim(), "mul_dense: dimension mismatch");
        Matrix::from_fn(m.rows(), m.cols(), |i, j| self.diag[i] * m.get(i, j))
    }

    /// Right product `m · self`; `O(rows·n)`.
    ///
    /// # Panics
    ///
    /// Panics when `m.cols() != self.dim()`.
    pub fn mul_dense_right(&self, m: &Matrix<T>) -> Matrix<T> {
        assert_eq!(m.cols(), self.dim(), "mul_dense_right: dimension mismatch");
        Matrix::from_fn(m.rows(), m.cols(), |i, j| m.get(i, j) * self.diag[j])
    }

    /// Product with a vector; `O(n)`.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != self.dim()`.
    pub fn mul_vec(&self, v: &Vector<T>) -> Vector<T> {
        assert_eq!(v.len(), self.dim(), "mul_vec: dimension mismatch");
        self.diag
            .iter()
            .zip(v.as_slice())
            .map(|(&d, &x)| d * x)
            .collect()
    }

    /// Expands to a dense matrix (for testing and for paths that have no
    /// diagonal specialization).
    pub fn to_dense(&self) -> Matrix<T> {
        let n = self.dim();
        Matrix::from_fn(n, n, |i, j| if i == j { self.diag[i] } else { T::ZERO })
    }
}

impl<T: Scalar> fmt::Debug for DiagMat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DiagMat(dim={}) {:?}", self.dim(), self.diag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    type D = DiagMat<f64>;
    type M = Matrix<f64>;

    #[test]
    fn inverse_roundtrip() {
        let d = D::new(vec![2.0, 4.0, 8.0]);
        let inv = d.inverse().unwrap();
        assert_eq!(inv.diagonal(), &[0.5, 0.25, 0.125]);
        let product = inv.mul_dense(&d.to_dense());
        assert_eq!(product, M::identity(3));
    }

    #[test]
    fn inverse_rejects_zero() {
        let d = D::new(vec![1.0, 0.0]);
        assert_eq!(
            d.inverse().unwrap_err(),
            MathError::SingularDiagonal { index: 1 }
        );
    }

    #[test]
    fn inverse_rejects_nan() {
        let d = D::new(vec![f64::NAN]);
        assert!(d.inverse().is_err());
    }

    #[test]
    fn left_product_matches_dense() {
        let d = D::new(vec![2.0, 3.0]);
        let m = M::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let fast = d.mul_dense(&m);
        let dense = &d.to_dense() * &m;
        assert_eq!(fast, dense);
    }

    #[test]
    fn right_product_matches_dense() {
        let d = D::new(vec![2.0, 3.0]);
        let m = M::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let fast = d.mul_dense_right(&m);
        let dense = &m * &d.to_dense();
        assert_eq!(fast, dense);
    }

    #[test]
    fn vec_product() {
        let d = D::new(vec![2.0, -1.0]);
        let v = Vector::from(vec![3.0, 4.0]);
        assert_eq!(d.mul_vec(&v).as_slice(), &[6.0, -4.0]);
    }

    #[test]
    fn from_dense_takes_diagonal_only() {
        let m = M::from_rows(&[&[5.0, 9.0], &[9.0, 7.0]]);
        let d = D::from_dense_diagonal(&m);
        assert_eq!(d.diagonal(), &[5.0, 7.0]);
    }

    #[test]
    fn identity_has_unit_diagonal() {
        assert_eq!(D::identity(2).diagonal(), &[1.0, 1.0]);
    }
}
