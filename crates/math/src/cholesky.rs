//! Cholesky decomposition — the `CD` M-DFG primitive.
//!
//! The factorization is written in the Evaluate/Update formulation the
//! Archytas hardware template uses (paper Sec. 4.3, Fig. 8): iteration `i`
//! first *evaluates* column `i` of `L` and then *updates* the trailing
//! `(n−i−1)²/2` sub-matrix. The hardware crate reuses this exact structure to
//! count per-phase operations, so the software factorization and the cycle
//! model cannot drift apart.

use crate::error::{MathError, Result};
use crate::fixed;
use crate::kernels;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::triangular::{solve_lower, solve_upper};
use crate::vector::Vector;
use archytas_par::Pool;

/// Column-panel width of the blocked trailing update in
/// [`Cholesky::refactor_with`]. Eight columns per sweep lets the update
/// kernel apply a rank-8 modification per trailing-row traversal — an 8×
/// reduction in trailing-matrix memory traffic over the unblocked loop —
/// while the const-generic [`fixed::sub_scaled_panel`] keeps the per-element
/// subtraction sequence of the unblocked formulation (the panel width only
/// moves *when* a subtraction happens, never its operands or its position in
/// an element's sequence, so any width factors bit-identically).
const PANEL: usize = 8;

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky<T: Scalar> {
    l: Matrix<T>,
    /// `Lᵀ`, kept row-major: the factorization writes columns of `L`
    /// contiguously into it, and back-substitution reads it without the
    /// per-solve transpose it would otherwise re-materialize.
    lt: Matrix<T>,
}

/// Operation counts of one factorization, split by the hardware template's
/// two pipeline phases.
///
/// At iteration `i` of an `m × m` factorization the Evaluate phase performs
/// `m − i` operations (one square root plus divisions) and the Update phase
/// performs `(m − i − 1)(m − i)/2` multiply-subtract operations; these counts
/// feed the latency model of the Cholesky hardware block (paper Eq. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CholeskyOpCounts {
    /// Total Evaluate-phase operations across all iterations.
    pub evaluate_ops: usize,
    /// Total Update-phase operations across all iterations.
    pub update_ops: usize,
    /// Number of Evaluate/Update iterations (the matrix dimension).
    pub iterations: usize,
}

impl<T: Scalar> Default for Cholesky<T> {
    /// An empty (0-dimensional) factorization, as a reusable-buffer seed for
    /// [`Cholesky::refactor_with`].
    fn default() -> Self {
        Self {
            l: Matrix::zeros(0, 0),
            lt: Matrix::zeros(0, 0),
        }
    }
}

impl<T: Scalar> Cholesky<T> {
    /// Factors the symmetric positive-definite matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when `a` is not square and
    /// [`MathError::NotPositiveDefinite`] when a pivot is non-positive or not
    /// finite. Symmetry is assumed (only the upper triangle is read).
    pub fn factor(a: &Matrix<T>) -> Result<Self> {
        if !a.is_square() {
            return Err(MathError::DimensionMismatch {
                op: "cholesky",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let (l, _) = Self::factor_counting(a)?;
        Ok(l)
    }

    /// Factors `a` and reports the per-phase operation counts used by the
    /// hardware latency model. Uses the global pool.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cholesky::factor`].
    pub fn factor_counting(a: &Matrix<T>) -> Result<(Self, CholeskyOpCounts)> {
        Self::factor_counting_with(a, &Pool::global())
    }

    /// Factors `a` on an explicit pool.
    ///
    /// The Evaluate phase is inherently sequential (each pivot depends on all
    /// previous updates), but the Update phase's trailing rows are mutually
    /// independent — the same property the hardware template's parallel
    /// Update lanes exploit (paper Fig. 8) — so they are distributed across
    /// the pool's workers. Each element receives the single multiply-subtract
    /// it would in the serial loop, so the factor is bit-identical for any
    /// thread count, and [`CholeskyOpCounts`] is unchanged: the Update count
    /// per iteration is the exact closed form `(n−k−1)(n−k)/2` the serial
    /// increments sum to.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cholesky::factor`].
    pub fn factor_counting_with(a: &Matrix<T>, pool: &Pool) -> Result<(Self, CholeskyOpCounts)> {
        let mut fact = Self {
            l: Matrix::zeros(0, 0),
            lt: Matrix::zeros(0, 0),
        };
        let counts = fact.refactor_with(a, pool)?;
        Ok((fact, counts))
    }

    /// Re-runs the factorization on `a`, reusing this value's buffers — no
    /// allocation when `a` has the shape of the previous factorization. The
    /// arithmetic is identical to [`Cholesky::factor_counting_with`].
    ///
    /// On error the value is left in an unspecified (but safe) state; run
    /// another `refactor_with` before using it again.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cholesky::factor`].
    pub fn refactor_with(&mut self, a: &Matrix<T>, pool: &Pool) -> Result<CholeskyOpCounts> {
        let n = a.rows();
        // The trailing sub-matrix S_k is stored TRANSPOSED (see
        // `refactor_seeded`); seeding it from `a`'s rows reads the upper
        // triangle (symmetry is assumed). `self.l` doubles as the buffer; it
        // is overwritten with the final row-major factor afterwards.
        self.l.clone_from(a);
        self.refactor_seeded(n, pool)
    }

    /// Factors the difference `v − prod` without materializing it: the
    /// work buffer is seeded with the elementwise difference directly, so
    /// the Schur complement `S = V − W·U⁻¹·Wᵀ` never exists as a separate
    /// matrix (saving two full-matrix passes per solve).
    ///
    /// Each seeded element is the identical single rounded `v[i] − prod[i]`
    /// a materialized subtraction would store, so the factor is bit-identical
    /// to `refactor_with` on the explicit difference.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cholesky::factor`] (the difference must be
    /// square, symmetric and positive definite).
    pub fn refactor_diff_with(
        &mut self,
        v: &Matrix<T>,
        prod: &Matrix<T>,
        pool: &Pool,
    ) -> Result<CholeskyOpCounts> {
        if !v.is_square() {
            return Err(MathError::DimensionMismatch {
                op: "cholesky",
                lhs: v.shape(),
                rhs: prod.shape(),
            });
        }
        let n = v.rows();
        self.l.set_sub_of(v, prod);
        self.refactor_seeded(n, pool)
    }

    /// The shared factorization body: `self.l` holds the seeded work matrix
    /// (the input, upper triangle valid), `self.lt` receives the factor.
    fn refactor_seeded(&mut self, n: usize, pool: &Pool) -> Result<CholeskyOpCounts> {
        // The factor is accumulated as `Lᵀ` (row-major): the Evaluate phase
        // then writes column k of `L` into one contiguous row, and the Update
        // phase reads that same row sequentially — the strided column
        // traffic of a row-major `L` would cost a cache line per element.
        self.lt.reset_zeros(n, n);
        // The trailing sub-matrix S_k, also stored TRANSPOSED: row j holds
        // the elements (i, j), i ≥ j, contiguously, so the Evaluate phase's
        // column read and the Update phase's row walks are all sequential.
        let work = &mut self.l;
        let mut counts = CholeskyOpCounts {
            iterations: n,
            ..Default::default()
        };
        // The factorization proceeds in column panels of width PANEL: each
        // panel is evaluated column by column (applying the panel's earlier
        // columns to each pivot row as it is reached), then the whole panel
        // is applied to the trailing rows in one fused rank-PANEL sweep.
        //
        // Bit-identity with the unblocked column-at-a-time loop: every
        // trailing element (i, j) receives its multiply-subtracts in the same
        // ascending-k order — columns before the panel via earlier trailing
        // sweeps, panel columns in sequence inside `sub_scaled_panel` / the
        // remainder loop — each as a separately-rounded `w − l_ki·l_kj` with
        // the exact operands of the serial formulation. The blocking only
        // changes *when* a subtraction happens, never its inputs or its
        // position in the element's subtraction sequence, so the factor is
        // identical bit for bit (and so is the parallel row distribution, as
        // before).
        let mut k0 = 0;
        while k0 < n {
            let kend = (k0 + PANEL).min(n);
            for k in k0..kend {
                // Bring row k of the trailing block up to date with the
                // panel columns evaluated before it (ascending, as always).
                for kk in k0..k {
                    let ljk = self.lt.get(kk, k);
                    let lrow = self.lt.row(kk);
                    kernels::sub_scaled(&mut work.row_mut(k)[k..], &lrow[k..], ljk);
                }
                // --- Evaluate phase: column k of L ---
                let pivot = work.get(k, k);
                if pivot <= T::ZERO || !pivot.is_finite() {
                    return Err(MathError::NotPositiveDefinite { pivot: k });
                }
                let d = pivot.sqrt();
                counts.evaluate_ops += n - k;
                {
                    let wrow = work.row(k);
                    let col = self.lt.row_mut(k);
                    col[k] = d;
                    for i in (k + 1)..n {
                        col[i] = wrow[i] / d;
                    }
                }
                // The per-iteration Update cost of the hardware model
                // (paper Eq. 7) — the closed form the fused sweeps below
                // sum to, kept per column so the counts cannot drift from
                // the unblocked formulation.
                counts.update_ops += (n - 1 - k) * (n - k) / 2;
            }
            // --- Update phase: S ← S − L_panel·L_panelᵀ on rows kend..n ---
            // Transposed row j of the trailing block only reads rows
            // k0..kend of Lᵀ (fully written above) and writes elements
            // (i, j) for i ≥ j, so rows update in parallel; chunks of one
            // row keep the borrow regions disjoint. The weight is the
            // panel's share of multiply-subtracts on those rows — small
            // trailing blocks (every iteration of a window-sized Schur
            // complement) never pay a fork/join.
            if kend < n {
                let nb = kend - k0;
                let rows_below = n - kend;
                let sweep_ops = nb * rows_below * (rows_below + 1) / 2;
                let lt = &self.lt;
                pool.par_chunks_mut_weighted(
                    &mut work.as_mut_slice()[kend * n..],
                    n,
                    sweep_ops,
                    |c, wr| {
                        let j = kend + c;
                        let w = &mut wr[j..];
                        if nb == PANEL {
                            let srcs: [&[T]; PANEL] =
                                core::array::from_fn(|kk| &lt.row(k0 + kk)[j..]);
                            let a: [T; PANEL] = core::array::from_fn(|kk| lt.get(k0 + kk, j));
                            fixed::sub_scaled_panel::<T, PANEL>(w, &srcs, &a);
                        } else {
                            for kk in k0..kend {
                                kernels::sub_scaled(w, &lt.row(kk)[j..], lt.get(kk, j));
                            }
                        }
                    },
                );
            }
            k0 = kend;
        }
        self.lt.transpose_into(&mut self.l);
        Ok(counts)
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix<T> {
        &self.l
    }

    /// Consumes the factorization and returns `L`.
    pub fn into_l(self) -> Matrix<T> {
        self.l
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A·x = b` by forward then backward substitution.
    ///
    /// # Panics
    ///
    /// Panics when `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &Vector<T>) -> Vector<T> {
        let y = solve_lower(&self.l, b);
        solve_upper(&self.lt, &y)
    }

    /// [`Cholesky::solve`] into caller-owned buffers: `y` holds the forward
    /// substitution intermediate, `x` the solution (both resized to fit).
    /// With reused buffers the whole triangular solve performs no heap
    /// allocation; the arithmetic is identical to the allocating form.
    ///
    /// # Panics
    ///
    /// Panics when `b.len()` differs from the matrix dimension.
    pub fn solve_into(&self, b: &Vector<T>, y: &mut Vector<T>, x: &mut Vector<T>) {
        crate::triangular::solve_lower_into(&self.l, b, y);
        crate::triangular::solve_upper_into(&self.lt, y, x);
    }

    /// Dense inverse `A⁻¹`, computed by solving against the identity columns.
    ///
    /// Used by the M-type Schur path when a generic (non-diagonal) block must
    /// be inverted (paper Eq. 5 resolves this to two smaller inversions, but
    /// the recursion bottoms out here).
    pub fn inverse(&self) -> Matrix<T> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = Vector::zeros(n);
            e[j] = T::ONE;
            let col = self.solve(&e);
            for i in 0..n {
                inv.set(i, j, col[i]);
            }
        }
        inv
    }

    /// Log-determinant of `A` (`2·Σ log Lᵢᵢ`), useful for covariance sanity
    /// checks in tests.
    pub fn log_det(&self) -> f64 {
        (0..self.dim())
            .map(|i| self.l.get(i, i).to_f64().ln())
            .sum::<f64>()
            * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    type M = Matrix<f64>;
    type V = Vector<f64>;

    fn spd(n: usize) -> M {
        // Deterministic SPD matrix: B·Bᵀ + n·I.
        let b = M::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 / 11.0 - 0.4);
        b.gram().add_diagonal(n as f64)
    }

    #[test]
    fn reconstruction() {
        let a = spd(8);
        let ch = Cholesky::factor(&a).unwrap();
        let rec = &ch.l().try_mul(&ch.l().transpose()).unwrap() - &a;
        assert!(rec.max_abs() < 1e-10);
    }

    #[test]
    fn factor_is_lower_triangular() {
        let a = spd(6);
        let ch = Cholesky::factor(&a).unwrap();
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert_eq!(ch.l().get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn solve_residual() {
        let a = spd(10);
        let b: V = (0..10).map(|i| i as f64 - 4.0).collect();
        let x = Cholesky::factor(&a).unwrap().solve(&b);
        assert!((&a.mat_vec(&x) - &b).norm() < 1e-9);
    }

    #[test]
    fn inverse_matches_identity() {
        let a = spd(5);
        let inv = Cholesky::factor(&a).unwrap().inverse();
        let eye = a.try_mul(&inv).unwrap();
        assert!((&eye - &M::identity(5)).max_abs() < 1e-10);
    }

    #[test]
    fn rejects_non_spd() {
        let a = M::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(MathError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = M::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn op_counts_match_closed_form() {
        // Paper Sec. 4.3: Evaluate at iteration i costs (n-i) ops; Update
        // costs (n-i-1)(n-i)/2. Summing i = 0..n gives the totals below.
        let n = 9;
        let a = spd(n);
        let (_, counts) = Cholesky::factor_counting(&a).unwrap();
        let expected_eval: usize = (1..=n).sum();
        let expected_update: usize = (0..n).map(|k| (n - k - 1) * (n - k) / 2).sum();
        assert_eq!(counts.iterations, n);
        assert_eq!(counts.evaluate_ops, expected_eval);
        assert_eq!(counts.update_ops, expected_update);
    }

    #[test]
    fn log_det_of_diagonal() {
        let a = M::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let ld = Cholesky::factor(&a).unwrap().log_det();
        assert!((ld - (36.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn works_in_f32() {
        let a = spd(4).cast::<f32>();
        let ch = Cholesky::factor(&a).unwrap();
        let rec = &ch.l().try_mul(&ch.l().transpose()).unwrap() - &a;
        assert!(rec.max_abs() < 1e-4);
    }
}
