//! Error type shared by all fallible kernels in this crate.

use std::error::Error;
use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, MathError>;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MathError {
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand (rows, cols).
        lhs: (usize, usize),
        /// Dimensions of the right operand (rows, cols).
        rhs: (usize, usize),
    },
    /// Cholesky factorization hit a non-positive pivot: the matrix is not
    /// (numerically) positive definite.
    NotPositiveDefinite {
        /// Index of the offending pivot.
        pivot: usize,
    },
    /// A diagonal inversion hit a (near-)zero entry.
    SingularDiagonal {
        /// Index of the offending entry.
        index: usize,
    },
    /// A block specification does not tile the matrix it is applied to.
    InvalidBlockSpec {
        /// Requested split point.
        split: usize,
        /// Dimension being split.
        dim: usize,
    },
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MathError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            MathError::SingularDiagonal { index } => {
                write!(f, "diagonal entry {index} is zero or not finite")
            }
            MathError::InvalidBlockSpec { split, dim } => {
                write!(f, "block split {split} exceeds dimension {dim}")
            }
        }
    }
}

impl Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = MathError::DimensionMismatch {
            op: "mat_mul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("mat_mul"));
        assert!(s.contains("2x3"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<MathError>();
    }
}
