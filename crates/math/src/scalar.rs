//! Scalar abstraction so the same kernels serve the `f64` software solver and
//! the `f32` hardware functional model.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point scalar usable in every kernel of this crate.
///
/// This trait is sealed: it is implemented for `f32` and `f64` only, which
/// mirrors the two datapath widths that exist in the system (double-precision
/// host software, single-precision FPGA datapath).
///
/// `Send + Sync` are supertraits so matrices can be shared with the scoped
/// workers of `archytas-par` (trivially true for both float widths).
pub trait Scalar:
    Copy
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + private::Sealed
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon for this width.
    const EPSILON: Self;

    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Largest finite value.
    fn max_value() -> Self;
    /// Lossy conversion from `f64` (identity for `f64`).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (identity for `f64`).
    fn to_f64(self) -> f64;
    /// `true` when the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f64::EPSILON;

    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    fn abs(self) -> Self {
        f64::abs(self)
    }
    fn max_value() -> Self {
        f64::MAX
    }
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f32::EPSILON;

    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    fn abs(self) -> Self {
        f32::abs(self)
    }
    fn max_value() -> Self {
        f32::MAX
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        assert_eq!(f64::from_f64(1.5), 1.5);
        assert_eq!(1.5f64.to_f64(), 1.5);
        assert_eq!(4.0f64.sqrt(), 2.0);
    }

    #[test]
    fn f32_narrowing() {
        let narrowed = f32::from_f64(1.0 + 1e-12);
        assert_eq!(narrowed, 1.0f32);
        assert!((2.0f32).sqrt().to_f64() - std::f64::consts::SQRT_2 < 1e-7);
    }

    #[test]
    fn finiteness() {
        assert!(1.0f64.is_finite());
        assert!(!(f64::MAX * 2.0).is_finite());
        assert!(!f32::NAN.is_finite());
    }
}
