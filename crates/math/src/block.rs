//! 2×2 block partitioning of square matrices.
//!
//! The Schur elimination in the NLS solver (paper Eq. 3–4) and the prior
//! computation in marginalization (paper Eq. 5) both start by blocking a
//! square matrix `A` as `[U X; W V]` at a split point chosen by the M-DFG
//! cost model.

use crate::error::{MathError, Result};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::vector::Vector;

/// A split point partitioning an `n × n` matrix into a 2×2 block structure
/// with a leading `p × p` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpec {
    /// Size of the leading block (`U` / `M₁₁`).
    pub p: usize,
    /// Size of the trailing block (`V` / `M₂₂`).
    pub q: usize,
}

impl BlockSpec {
    /// Creates a spec splitting dimension `n` at `p`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidBlockSpec`] when `p > n`.
    pub fn new(p: usize, n: usize) -> Result<Self> {
        if p > n {
            return Err(MathError::InvalidBlockSpec { split: p, dim: n });
        }
        Ok(Self { p, q: n - p })
    }

    /// Total dimension `p + q`.
    pub fn dim(&self) -> usize {
        self.p + self.q
    }
}

/// A square matrix partitioned as `[u x; w v]` with a matching right-hand
/// side split `[bx; by]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Blocked2x2<T: Scalar> {
    /// Leading `p × p` block (`U` in Eq. 3; diagonal under the optimal split).
    pub u: Matrix<T>,
    /// Upper-right `p × q` block.
    pub x: Matrix<T>,
    /// Lower-left `q × p` block (`Wᵀ = X` for symmetric `A`).
    pub w: Matrix<T>,
    /// Trailing `q × q` block.
    pub v: Matrix<T>,
}

impl<T: Scalar> Blocked2x2<T> {
    /// Partitions `a` according to `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when `a` is not square or its
    /// dimension differs from `spec.dim()`.
    pub fn partition(a: &Matrix<T>, spec: BlockSpec) -> Result<Self> {
        if !a.is_square() || a.rows() != spec.dim() {
            return Err(MathError::DimensionMismatch {
                op: "block_partition",
                lhs: a.shape(),
                rhs: (spec.dim(), spec.dim()),
            });
        }
        let (p, q) = (spec.p, spec.q);
        Ok(Self {
            u: a.submatrix(0, 0, p, p),
            x: a.submatrix(0, p, p, q),
            w: a.submatrix(p, 0, q, p),
            v: a.submatrix(p, p, q, q),
        })
    }

    /// Reassembles the four blocks into a dense matrix.
    pub fn assemble(&self) -> Matrix<T> {
        let p = self.u.rows();
        let q = self.v.rows();
        let mut a = Matrix::zeros(p + q, p + q);
        a.set_submatrix(0, 0, &self.u);
        a.set_submatrix(0, p, &self.x);
        a.set_submatrix(p, 0, &self.w);
        a.set_submatrix(p, p, &self.v);
        a
    }

    /// `true` when the leading block `U` is diagonal within tolerance `tol` —
    /// the precondition for the cheap D-type Schur path.
    pub fn leading_block_is_diagonal(&self, tol: T) -> bool {
        for i in 0..self.u.rows() {
            for j in 0..self.u.cols() {
                if i != j && self.u.get(i, j).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

/// Splits a vector `[bx; by]` at `spec.p`.
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] when `b.len() != spec.dim()`.
pub fn split_vector<T: Scalar>(b: &Vector<T>, spec: BlockSpec) -> Result<(Vector<T>, Vector<T>)> {
    if b.len() != spec.dim() {
        return Err(MathError::DimensionMismatch {
            op: "split_vector",
            lhs: (b.len(), 1),
            rhs: (spec.dim(), 1),
        });
    }
    Ok((b.segment(0, spec.p), b.segment(spec.p, spec.q)))
}

#[cfg(test)]
mod tests {
    use super::*;
    type M = Matrix<f64>;

    fn sample() -> M {
        M::from_fn(5, 5, |i, j| (i * 5 + j) as f64)
    }

    #[test]
    fn spec_validation() {
        assert!(BlockSpec::new(3, 5).is_ok());
        assert!(BlockSpec::new(6, 5).is_err());
        assert_eq!(BlockSpec::new(2, 5).unwrap().q, 3);
    }

    #[test]
    fn partition_assemble_roundtrip() {
        let a = sample();
        let spec = BlockSpec::new(2, 5).unwrap();
        let blocked = Blocked2x2::partition(&a, spec).unwrap();
        assert_eq!(blocked.u.shape(), (2, 2));
        assert_eq!(blocked.x.shape(), (2, 3));
        assert_eq!(blocked.w.shape(), (3, 2));
        assert_eq!(blocked.v.shape(), (3, 3));
        assert_eq!(blocked.assemble(), a);
    }

    #[test]
    fn diagonal_detection() {
        let mut a = M::zeros(4, 4);
        for i in 0..4 {
            a.set(i, i, 2.0);
        }
        a.set(2, 3, 5.0); // off-diagonal but outside the leading block
        let blocked = Blocked2x2::partition(&a, BlockSpec::new(2, 4).unwrap()).unwrap();
        assert!(blocked.leading_block_is_diagonal(0.0));
        let mut b = a.clone();
        b.set(0, 1, 1.0);
        let blocked = Blocked2x2::partition(&b, BlockSpec::new(2, 4).unwrap()).unwrap();
        assert!(!blocked.leading_block_is_diagonal(0.0));
    }

    #[test]
    fn vector_split() {
        let v = Vector::from(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let (bx, by) = split_vector(&v, BlockSpec::new(2, 5).unwrap()).unwrap();
        assert_eq!(bx.as_slice(), &[1.0, 2.0]);
        assert_eq!(by.as_slice(), &[3.0, 4.0, 5.0]);
        assert!(split_vector(&v, BlockSpec { p: 2, q: 2 }).is_err());
    }

    #[test]
    fn partition_rejects_bad_dim() {
        let a = sample();
        assert!(Blocked2x2::partition(&a, BlockSpec { p: 2, q: 2 }).is_err());
    }
}
