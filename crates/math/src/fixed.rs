//! Const-generic fixed-size block types and fully unrolled micro-kernels.
//!
//! The sliding-window factor graph has a *fixed, known-at-design-time* block
//! structure — `stride = 15` state columns, `kb = 6` pose-tangent rows per
//! `W` block, scalar inverse-depth landmarks — and Archytas's synthesized
//! accelerators win precisely by specializing datapaths to those widths
//! (paper Sec. 4–5). This module is the software analogue: [`Vec`] and
//! [`Mat`] wrap `[F; N]` / `[[F; N]; M]` behind `#[repr(transparent)]` so a
//! slice of a larger row can be reinterpreted as a fixed-width block in
//! place, and every kernel below runs over compile-time trip counts that
//! LLVM fully unrolls and autovectorizes.
//!
//! # Bit-identity rules
//!
//! These kernels are drop-in replacements for the runtime-width forms in
//! [`crate::kernels`], dispatched when a run's length matches the SLAM
//! layout. They must therefore replay the slice kernels' per-element
//! floating-point operation sequence exactly:
//!
//! - The zero-skip forms compute the guarded multiply-add *branchlessly*:
//!   the candidate `acc + s·v` is always evaluated, and a select keeps the
//!   old `acc` when `v == 0`. A skipped element's stored bits are untouched
//!   (exactly as if the branch had been taken) and a kept element's value is
//!   the identical single-rounded multiply-add, so the result is
//!   bit-identical to the branchy form while the loop body stays
//!   branch-free for the vectorizer.
//! - Fused many-row forms traverse row-major (all elements of source row 0,
//!   then row 1, …) over an accumulator array instead of element-major.
//!   Each destination element still receives its guarded multiply-adds in
//!   ascending row order — the per-element sequence is unchanged, only the
//!   interleaving *between* independent elements differs — so the stored
//!   bits cannot change.
//! - [`syrk_scatter`] performs exactly one multiply-add per destination cell
//!   per call; with at most one operation per cell the loop nesting order is
//!   bit-free, and callers keep cross-call (per-landmark) ordering.
//! - No kernel reassociates a reduction.

use crate::scalar::Scalar;

/// Fixed-length vector view: a `#[repr(transparent)]` wrapper over `[F; N]`
/// so that an `N`-long prefix of any slice can be reinterpreted as a
/// fixed-width block without copying (the cooper-style column trick).
#[repr(transparent)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec<F, const N: usize>(pub [F; N]);

/// Fixed-shape matrix: `M` rows of `N` elements, row-major, contiguous.
/// `#[repr(transparent)]` over `[[F; N]; M]`, so an `M·N`-long slice (or a
/// nested array such as a Jacobian block) reinterprets in place.
#[repr(transparent)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat<F, const M: usize, const N: usize>(pub [[F; N]; M]);

impl<F: Scalar, const N: usize> Vec<F, N> {
    /// Reinterprets the first `N` elements of `s` as a fixed-width vector.
    ///
    /// # Panics
    ///
    /// Panics when `s.len() < N`.
    #[inline(always)]
    pub fn from_slice(s: &[F]) -> &Self {
        let arr: &[F; N] = (&s[..N]).try_into().unwrap();
        // SAFETY: repr(transparent) over [F; N].
        unsafe { &*(arr as *const [F; N] as *const Self) }
    }

    /// Mutable form of [`Vec::from_slice`].
    ///
    /// # Panics
    ///
    /// Panics when `s.len() < N`.
    #[inline(always)]
    pub fn from_mut_slice(s: &mut [F]) -> &mut Self {
        let arr: &mut [F; N] = (&mut s[..N]).try_into().unwrap();
        // SAFETY: repr(transparent) over [F; N].
        unsafe { &mut *(arr as *mut [F; N] as *mut Self) }
    }

    /// The elements as a plain slice.
    #[inline(always)]
    pub fn as_slice(&self) -> &[F] {
        &self.0
    }

    /// `self[i] += s * src[i]` — [`crate::kernels::add_scaled`] at width `N`.
    #[inline(always)]
    pub fn axpy(&mut self, src: &Self, s: F) {
        for i in 0..N {
            self.0[i] += s * src.0[i];
        }
    }

    /// `self[i] += src[i] * s` — the source-first operand order of the
    /// reduced-RHS sweep (`racc[r] += w·s2`). Multiplication order is kept
    /// distinct from [`Vec::axpy`] so each call site replays its slice
    /// predecessor's operand order exactly.
    #[inline(always)]
    pub fn axpy_src_s(&mut self, src: &Self, s: F) {
        for i in 0..N {
            self.0[i] += src.0[i] * s;
        }
    }

    /// Branchless fixed-width [`crate::kernels::add_scaled_skip`]:
    /// `self[i] += s * src[i]` wherever `src[i] != 0`, bit-identical to the
    /// guarded loop (see module docs).
    #[inline(always)]
    pub fn axpy_skip(&mut self, src: &Self, s: F) {
        for i in 0..N {
            let v = src.0[i];
            let cand = self.0[i] + s * v;
            self.0[i] = if v != F::ZERO { cand } else { self.0[i] };
        }
    }

    /// Branchless fixed-width [`crate::kernels::add_scaled_skip2`]: row 0's
    /// guarded multiply-add then row 1's, per element, in one traversal.
    #[inline(always)]
    pub fn axpy_skip2(&mut self, src0: &Self, s0: F, src1: &Self, s1: F) {
        for i in 0..N {
            let mut acc = self.0[i];
            let v0 = src0.0[i];
            let c0 = acc + s0 * v0;
            acc = if v0 != F::ZERO { c0 } else { acc };
            let v1 = src1.0[i];
            let c1 = acc + s1 * v1;
            acc = if v1 != F::ZERO { c1 } else { acc };
            self.0[i] = acc;
        }
    }

    /// Guarded fold for the `Wᵀ·δpy` gather of the back-substitution:
    /// returns `acc` after adding `self[i]·w[i]` for every `w[i] != 0`, in
    /// ascending element order. A reduction's accumulation order is part of
    /// its bits, so the chain stays serial; only the skip guard is evaluated
    /// branchlessly (the discarded candidate cannot perturb `acc`, see the
    /// module docs), which removes the data-dependent branch of the slice
    /// loop without touching its rounding sequence.
    #[inline(always)]
    pub fn dot_skip_fold(&self, w: &Self, mut acc: F) -> F {
        for i in 0..N {
            let v = w.0[i];
            let cand = acc + self.0[i] * v;
            acc = if v != F::ZERO { cand } else { acc };
        }
        acc
    }

    /// Branchless fixed-width [`crate::kernels::add_scaled_skip_rows`]:
    /// applies every `(src, s)` source row, in slice order, to each element.
    ///
    /// Traverses row-major over a register-resident accumulator copy of the
    /// destination (the element-major slice form would reload `dst` per
    /// element); per destination element the guarded multiply-adds still
    /// arrive in ascending row order, so the stored bits match the slice
    /// kernel exactly.
    ///
    /// # Panics
    ///
    /// Panics when any source row is shorter than `N`.
    #[inline(always)]
    pub fn axpy_skip_rows(&mut self, rows: &[(&[F], F)]) {
        let mut acc = self.0;
        for &(src, s) in rows {
            let src: &[F; N] = (&src[..N]).try_into().unwrap();
            for i in 0..N {
                let v = src[i];
                let cand = acc[i] + s * v;
                acc[i] = if v != F::ZERO { cand } else { acc[i] };
            }
        }
        self.0 = acc;
    }
}

impl<F: Scalar, const M: usize, const N: usize> Mat<F, M, N> {
    /// Reinterprets the first `M·N` elements of `s` as an `M × N` row-major
    /// block (rows must be contiguous, i.e. pitch `N`).
    ///
    /// # Panics
    ///
    /// Panics when `s.len() < M * N`.
    #[inline(always)]
    pub fn from_slice(s: &[F]) -> &Self {
        assert!(s.len() >= M * N);
        // SAFETY: [[F; N]; M] is M·N contiguous Fs; repr(transparent).
        unsafe { &*(s.as_ptr() as *const Self) }
    }

    /// Row `i` as a fixed-width vector.
    #[inline(always)]
    pub fn row(&self, i: usize) -> &Vec<F, N> {
        // SAFETY: repr(transparent) over [F; N].
        unsafe { &*(&self.0[i] as *const [F; N] as *const Vec<F, N>) }
    }
}

/// Rank-`K` block-scatter SYRK update — the landmark-major Schur elimination
/// inner kernel at the sliding window's `kb = K` block height.
///
/// For one `K`-high `W` block row (scales `s[t] = w[t]·u⁻¹` precomputed by
/// the caller), adds `s[t] · w_block[bj]` into row `t` of `block_rows` at
/// every block column `c0 = cols[bj]`; `block_rows` is the `K` consecutive
/// destination rows (`pitch` elements each, contiguous).
///
/// Loop order is block-column-major (each `K`-wide source block is loaded
/// once and applied to all `K` destination rows) while the slice predecessor
/// is row-major; every destination cell receives exactly *one* multiply-add
/// per call either way — same operands, same single rounding — so the
/// interchange cannot change stored bits. Rows with `s[t] == 0` are skipped
/// exactly as the slice path's `continue` does.
///
/// # Panics
///
/// Panics when `block_rows` is shorter than `K·pitch`, a column run leaves a
/// row, or `vals` is shorter than `cols.len()·K`.
#[inline]
pub fn syrk_scatter<F: Scalar, const K: usize>(
    block_rows: &mut [F],
    pitch: usize,
    s: &[F; K],
    cols: &[u32],
    vals: &[F],
) {
    assert!(block_rows.len() >= K * pitch);
    for (bj, &c0) in cols.iter().enumerate() {
        let src = *Vec::<F, K>::from_slice(&vals[bj * K..]);
        let c0 = c0 as usize;
        for t in 0..K {
            if s[t] == F::ZERO {
                continue;
            }
            Vec::<F, K>::from_mut_slice(&mut block_rows[t * pitch + c0..]).axpy(&src, s[t]);
        }
    }
}

/// Fused rank-`K` trailing-update kernel — [`crate::kernels::sub_scaled4`]
/// generalized to a const panel width, for the blocked Cholesky.
///
/// Per element the `K` subtractions happen sequentially in slice order
/// (`w −= srcs[0]·a[0]`, then `srcs[1]·a[1]`, …), each with its own rounding
/// and the operand order `src·a` of [`crate::kernels::sub_scaled`], so a
/// panel of any width stays bit-identical to the unblocked
/// column-at-a-time loop.
#[inline]
pub fn sub_scaled_panel<F: Scalar, const K: usize>(dst: &mut [F], srcs: &[&[F]; K], a: &[F; K]) {
    let n = dst.len();
    for i in 0..n {
        let mut w = dst[i];
        for k in 0..K {
            w -= srcs[k][i] * a[k];
        }
        dst[i] = w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    fn vals(n: usize, seed: u64) -> std::vec::Vec<f64> {
        (0..n)
            .map(|i| {
                let x = ((i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed)
                    >> 33) as f64
                    / 4.0e9
                    - 0.25;
                if i % 5 == 2 {
                    0.0
                } else {
                    x * (10.0f64).powi((i % 7) as i32 - 3)
                }
            })
            .collect()
    }

    fn assert_bits(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn view_roundtrip_is_in_place() {
        let mut s = vals(10, 1);
        let orig = s.clone();
        let v = Vec::<f64, 6>::from_mut_slice(&mut s);
        v.0[3] += 1.0;
        assert_eq!(s[3], orig[3] + 1.0);
        assert_eq!(s[6..], orig[6..]);
    }

    #[test]
    fn axpy_skip_matches_guarded_slice_kernel() {
        let src = vals(6, 3);
        let mut a = vals(6, 9);
        let mut b = a.clone();
        kernels::add_scaled_skip(&mut a, &src, -1.3);
        Vec::<f64, 6>::from_mut_slice(&mut b).axpy_skip(Vec::from_slice(&src), -1.3);
        assert_bits(&a, &b);
    }

    #[test]
    fn axpy_skip_discards_nonfinite_candidates() {
        // s non-finite and v == 0: the branchy kernel skips, so the
        // branchless select must discard the NaN candidate it computed.
        let src = [0.0, 2.0, -0.0];
        let mut a = [1.0, 1.0, 1.0];
        Vec::<f64, 3>::from_mut_slice(&mut a).axpy_skip(Vec::from_slice(&src), f64::INFINITY);
        assert_eq!(a[0], 1.0);
        assert_eq!(a[1], f64::INFINITY);
        assert_eq!(a[2], 1.0);
    }

    #[test]
    fn dot_skip_fold_matches_guarded_loop() {
        let w = vals(6, 13);
        let v = vals(6, 17);
        let mut acc = 0.375;
        let folded = Vec::<f64, 6>::from_slice(&v).dot_skip_fold(Vec::from_slice(&w), acc);
        for t in 0..6 {
            if w[t] == 0.0 {
                continue;
            }
            acc += v[t] * w[t];
        }
        assert_eq!(folded.to_bits(), acc.to_bits());
    }

    #[test]
    fn axpy_skip2_matches_slice_kernel() {
        let s0 = vals(15, 4);
        let s1 = vals(15, 5);
        let mut a = vals(15, 11);
        let mut b = a.clone();
        kernels::add_scaled_skip2(&mut a, &s0, 0.7, &s1, -0.2);
        Vec::<f64, 15>::from_mut_slice(&mut b).axpy_skip2(
            Vec::from_slice(&s0),
            0.7,
            Vec::from_slice(&s1),
            -0.2,
        );
        assert_bits(&a, &b);
    }

    #[test]
    fn axpy_skip_rows_matches_slice_kernel() {
        let srcs: std::vec::Vec<std::vec::Vec<f64>> = (0..9).map(|k| vals(15, 40 + k)).collect();
        let rows: std::vec::Vec<(&[f64], f64)> = srcs
            .iter()
            .enumerate()
            .map(|(k, s)| (s.as_slice(), 0.3 * k as f64 - 1.1))
            .collect();
        let mut a = vals(15, 77);
        let mut b = a.clone();
        kernels::add_scaled_skip_rows(&mut a, &rows);
        Vec::<f64, 15>::from_mut_slice(&mut b).axpy_skip_rows(&rows);
        assert_bits(&a, &b);
    }

    #[test]
    fn syrk_scatter_matches_row_major_slice_loop() {
        // One landmark's rank-1 block update, replayed both ways.
        let pitch = 20;
        let cols: [u32; 3] = [0, 6, 12];
        let vals_ = vals(18, 8);
        let s = [0.5, 0.0, -1.5, 2.0, 0.25, -0.125];
        let mut a = vals(6 * pitch, 21);
        let mut b = a.clone();
        // Slice predecessor: row-major with the kb == 6 unroll.
        for (t, &st) in s.iter().enumerate() {
            if st == 0.0 {
                continue;
            }
            let prow = &mut a[t * pitch..(t + 1) * pitch];
            for (bj, &c0) in cols.iter().enumerate() {
                kernels::add_scaled_fixed::<f64, 6>(&mut prow[c0 as usize..], &vals_[bj * 6..], st);
            }
        }
        syrk_scatter::<f64, 6>(&mut b, pitch, &s, &cols, &vals_);
        assert_bits(&a, &b);
    }

    #[test]
    fn sub_scaled_panel_matches_sequential_calls() {
        let srcs: std::vec::Vec<std::vec::Vec<f64>> = (0..8).map(|k| vals(33, 60 + k)).collect();
        let refs: std::vec::Vec<&[f64]> = srcs.iter().map(|s| s.as_slice()).collect();
        let a: [f64; 8] = core::array::from_fn(|k| 0.4 * k as f64 - 1.3);
        let mut fused = vals(33, 91);
        let mut seq = fused.clone();
        sub_scaled_panel::<f64, 8>(&mut fused, refs.as_slice().try_into().unwrap(), &a);
        for k in 0..8 {
            kernels::sub_scaled(&mut seq, &srcs[k], a[k]);
        }
        assert_bits(&fused, &seq);
    }

    #[test]
    fn mat_view_rows() {
        let s = vals(12, 2);
        let m = Mat::<f64, 2, 6>::from_slice(&s);
        assert_eq!(m.row(0).as_slice(), &s[..6]);
        assert_eq!(m.row(1).as_slice(), &s[6..12]);
    }
}
