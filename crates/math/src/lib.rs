//! Dense and block linear algebra substrate for the Archytas reproduction.
//!
//! The Archytas paper (MICRO 2021) lowers a sliding-window MAP estimator to a
//! macro data-flow graph whose nodes are coarse linear-algebra operations:
//! dense and diagonal matrix products, Cholesky decomposition,
//! forward/backward substitution, and Schur complements (Sec. 3, Tbl. 1).
//! This crate provides exactly those operations, from scratch, with no
//! external linear-algebra dependencies.
//!
//! Everything is generic over the scalar type through the [`Scalar`] trait so
//! that the software solver can run in `f64` while the hardware functional
//! model runs in `f32` (the accelerator datapath is single precision).
//!
//! # Example
//!
//! ```
//! use archytas_math::{DMat, DVec};
//!
//! // Solve a small SPD system with the same Cholesky + substitution
//! // pipeline the accelerator template uses.
//! let a = DMat::from_rows(&[
//!     &[4.0, 2.0, 0.0],
//!     &[2.0, 5.0, 1.0],
//!     &[0.0, 1.0, 3.0],
//! ]);
//! let b = DVec::from(vec![1.0, 2.0, 3.0]);
//! let x = a.cholesky().expect("SPD").solve(&b);
//! let r = &a.mat_vec(&x) - &b;
//! assert!(r.norm() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod block;
mod block_sparse;
mod cholesky;
mod diag;
mod error;
pub mod fixed;
pub mod kernels;
mod matrix;
mod scalar;
mod schur;
mod sym;
mod triangular;
mod vector;

pub use block::{split_vector, BlockSpec, Blocked2x2};
pub use block_sparse::{BlockSparseSystem, SchurScratch};
pub use cholesky::Cholesky;
pub use diag::DiagMat;
pub use error::{MathError, Result};
pub use matrix::Matrix;
pub use scalar::Scalar;
pub use schur::{dense_schur_complement, diag_schur_complement, SchurSystem};
pub use sym::SymMat;
pub use triangular::{solve_lower, solve_lower_into, solve_upper, solve_upper_into};
pub use vector::Vector;

/// Double-precision dense matrix, the workhorse of the software solver.
pub type DMat = Matrix<f64>;
/// Double-precision dense vector.
pub type DVec = Vector<f64>;
/// Single-precision dense matrix used by the hardware functional model.
pub type FMat = Matrix<f32>;
/// Single-precision dense vector used by the hardware functional model.
pub type FVec = Vector<f32>;
