//! Parallel kernels must be bit-identical to serial execution for every
//! thread count — the determinism contract of `archytas-par` applied to the
//! `archytas-math` hot paths.

use archytas_math::{Cholesky, DMat, DVec, Scalar};
use archytas_par::Pool;
use proptest::prelude::*;

/// Pools covering the serial path, an even split, and heavy oversubscription
/// (the container may have a single core — oversubscription is exactly what
/// must NOT change results). Threshold 0 forces the parallel code path.
fn pools() -> [Pool; 3] {
    [1, 2, 8].map(|t| Pool::with_threads(t).with_serial_threshold(0))
}

fn bits(m: &DMat) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Deterministic pseudo-random fill (SplitMix64-style) so proptest only has
/// to draw shapes and a seed, not whole buffers.
fn fill(rows: usize, cols: usize, seed: u64) -> DMat {
    DMat::from_fn(rows, cols, |i, j| {
        let mut z = seed
            .wrapping_add((i as u64) << 32 | j as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        ((z >> 11) as f64 / (1u64 << 53) as f64) * 20.0 - 10.0
    })
}

#[test]
fn mul_bit_identical_across_pools() {
    let a = fill(67, 45, 1);
    let b = fill(45, 53, 2);
    let reference = bits(&a.try_mul_with(&b, &pools()[0]).unwrap());
    for pool in &pools()[1..] {
        assert_eq!(bits(&a.try_mul_with(&b, pool).unwrap()), reference);
    }
}

#[test]
fn gram_bit_identical_across_pools() {
    let a = fill(91, 40, 3);
    let reference = bits(&a.gram_with(&pools()[0]));
    for pool in &pools()[1..] {
        assert_eq!(bits(&a.gram_with(pool)), reference);
    }
}

#[test]
fn cholesky_bit_identical_across_pools() {
    // n = 90 keeps early trailing blocks (≈ n² elements) above the
    // factorization's internal parallelism floor, so the Update phase truly
    // runs on the workers for multi-thread pools.
    let n = 90;
    let spd = fill(n, n, 4).gram().add_diagonal(n as f64);
    let (l0, c0) = Cholesky::factor_counting_with(&spd, &pools()[0]).unwrap();
    for pool in &pools()[1..] {
        let (l, c) = Cholesky::factor_counting_with(&spd, pool).unwrap();
        assert_eq!(bits(l.l()), bits(l0.l()));
        assert_eq!(c, c0, "op counts must not depend on the thread count");
    }
}

#[test]
fn transpose_mat_vec_matches_explicit_transpose() {
    let a = fill(33, 21, 5);
    let v: DVec = (0..33).map(|i| (i as f64 * 0.37).cos()).collect();
    let fused = a.transpose_mat_vec(&v);
    let explicit = a.transpose().mat_vec(&v);
    let close = fused
        .as_slice()
        .iter()
        .zip(explicit.as_slice())
        .all(|(x, y)| (x - y).abs() <= 1e-12 * (1.0 + y.abs()));
    assert!(close);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mul_equivalence_random_shapes(
        (r, k, c) in (1usize..28, 1usize..28, 1usize..28),
        seed in 0u64..1_000_000,
    ) {
        let a = fill(r, k, seed);
        let b = fill(k, c, seed ^ 0xDEAD_BEEF);
        let reference = bits(&a.try_mul_with(&b, &pools()[0]).unwrap());
        for pool in &pools()[1..] {
            prop_assert_eq!(bits(&a.try_mul_with(&b, pool).unwrap()), reference.clone());
        }
    }

    #[test]
    fn gram_equivalence_random_shapes(
        (r, c) in (1usize..40, 1usize..32),
        seed in 0u64..1_000_000,
    ) {
        let a = fill(r, c, seed);
        let reference = bits(&a.gram_with(&pools()[0]));
        for pool in &pools()[1..] {
            prop_assert_eq!(bits(&a.gram_with(pool)), reference.clone());
        }
        // And the parallel Gram still equals the explicit product shape-wise.
        prop_assert_eq!(a.gram_with(&pools()[2]).shape(), (c, c));
    }

    #[test]
    fn cholesky_equivalence_random_sizes(n in 1usize..24, seed in 0u64..1_000_000) {
        let spd = fill(n, n, seed).gram().add_diagonal(n as f64 + 1.0);
        let (l0, c0) = Cholesky::factor_counting_with(&spd, &pools()[0]).unwrap();
        for pool in &pools()[1..] {
            let (l, cts) = Cholesky::factor_counting_with(&spd, pool).unwrap();
            prop_assert_eq!(bits(l.l()), bits(l0.l()));
            prop_assert_eq!(cts, c0);
        }
    }

    #[test]
    fn zero_skip_never_changes_results(r in 1usize..20, c in 1usize..20, seed in 0u64..1000) {
        // Sparse-ish matrices exercise the a == 0 fast path.
        let mut a = fill(r, c, seed);
        for i in 0..r {
            for j in 0..c {
                if (i + j + seed as usize).is_multiple_of(3) {
                    a.set(i, j, f64::ZERO);
                }
            }
        }
        let reference = bits(&a.gram_with(&pools()[0]));
        for pool in &pools()[1..] {
            prop_assert_eq!(bits(&a.gram_with(pool)), reference.clone());
        }
    }
}
