//! Property-based tests for the linear-algebra substrate.

use archytas_math::{
    solve_lower, solve_upper, BlockSpec, Blocked2x2, Cholesky, DMat, DVec, DiagMat, SchurSystem,
    SymMat,
};
use proptest::prelude::*;

const DIM: std::ops::RangeInclusive<usize> = 1..=10;

fn vec_strategy(n: usize) -> impl Strategy<Value = DVec> {
    proptest::collection::vec(-10.0..10.0f64, n).prop_map(DVec::from)
}

fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = DMat> {
    proptest::collection::vec(-5.0..5.0f64, rows * cols)
        .prop_map(move |data| DMat::from_vec(rows, cols, data))
}

/// Any B produces an SPD matrix B·Bᵀ + (n+1)·I.
fn spd_strategy(n: usize) -> impl Strategy<Value = DMat> {
    mat_strategy(n, n).prop_map(move |b| {
        let g = b.transpose().gram(); // (Bᵀ)ᵀ·Bᵀ = B·Bᵀ
        g.add_diagonal(n as f64 + 1.0)
    })
}

proptest! {
    #[test]
    fn transpose_is_involutive(n in DIM, m in DIM, seed in 0u64..1000) {
        let a = DMat::from_fn(n, m, |i, j| ((i * 31 + j * 17 + seed as usize) % 13) as f64);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_associates_with_vector((a, b, v) in DIM.prop_flat_map(|n| {
        (mat_strategy(n, n), mat_strategy(n, n), vec_strategy(n))
    })) {
        // (A·B)·v == A·(B·v)
        let lhs = a.try_mul(&b).unwrap().mat_vec(&v);
        let rhs = a.mat_vec(&b.mat_vec(&v));
        prop_assert!((&lhs - &rhs).norm() < 1e-8 * (1.0 + lhs.norm()));
    }

    #[test]
    fn gram_is_symmetric_psd(a in DIM.prop_flat_map(|n| mat_strategy(n + 2, n))) {
        let g = a.gram();
        prop_assert!(g.is_symmetric(1e-12));
        // xᵀGx = |Ax|² ≥ 0 for a few probe vectors.
        for k in 0..3 {
            let x: DVec = (0..g.rows()).map(|i| ((i + k) % 3) as f64 - 1.0).collect();
            let quad = x.dot(&g.mat_vec(&x));
            prop_assert!(quad >= -1e-9);
        }
    }

    #[test]
    fn cholesky_reconstructs(a in DIM.prop_flat_map(spd_strategy)) {
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.l().try_mul(&ch.l().transpose()).unwrap();
        prop_assert!((&rec - &a).max_abs() < 1e-8 * (1.0 + a.max_abs()));
    }

    #[test]
    fn cholesky_solve_has_small_residual((a, b) in DIM.prop_flat_map(|n| {
        (spd_strategy(n), vec_strategy(n))
    })) {
        let x = Cholesky::factor(&a).unwrap().solve(&b);
        prop_assert!((&a.mat_vec(&x) - &b).norm() < 1e-7 * (1.0 + b.norm()));
    }

    #[test]
    fn triangular_solvers_invert((a, b) in DIM.prop_flat_map(|n| {
        (spd_strategy(n), vec_strategy(n))
    })) {
        let l = Cholesky::factor(&a).unwrap().into_l();
        let y = solve_lower(&l, &b);
        prop_assert!((&l.mat_vec(&y) - &b).norm() < 1e-8 * (1.0 + b.norm()));
        let u = l.transpose();
        let z = solve_upper(&u, &b);
        prop_assert!((&u.mat_vec(&z) - &b).norm() < 1e-8 * (1.0 + b.norm()));
    }

    #[test]
    fn diag_inverse_roundtrips(d in proptest::collection::vec(0.1..10.0f64, 1..12)) {
        let dm = DiagMat::new(d);
        let inv = dm.inverse().unwrap();
        let product = inv.mul_dense(&dm.to_dense());
        prop_assert!((&product - &DMat::identity(dm.dim())).max_abs() < 1e-12);
    }

    #[test]
    fn block_partition_roundtrips((a, p) in DIM.prop_flat_map(|n| {
        (mat_strategy(n, n), 0..=n)
    })) {
        let n = a.rows();
        let spec = BlockSpec::new(p, n).unwrap();
        let blocked = Blocked2x2::partition(&a, spec).unwrap();
        prop_assert_eq!(blocked.assemble(), a);
    }

    /// Schur elimination must agree with a direct dense solve on any SPD
    /// system whose leading block has been diagonalized — the core soundness
    /// property behind the paper's D-type Schur optimization.
    #[test]
    fn schur_solve_equals_direct((a0, b, p) in (2..=10usize).prop_flat_map(|n| {
        (spd_strategy(n), vec_strategy(n), 1..n)
    })) {
        // Zero the off-diagonal entries of the leading p×p block (symmetry is
        // preserved), then boost the diagonal so the result is strictly
        // diagonally dominant and therefore still SPD.
        let n = a0.rows();
        let mut a = a0.clone();
        for i in 0..p {
            for j in 0..p {
                if i != j {
                    a.set(i, j, 0.0);
                }
            }
        }
        let max_off_row_sum = (0..n)
            .map(|i| (0..n).filter(|&j| j != i).map(|j| a.get(i, j).abs()).sum::<f64>())
            .fold(0.0f64, f64::max);
        let a = a.add_diagonal(max_off_row_sum + 1.0);
        let spec = BlockSpec::new(p, n).unwrap();
        let sys = SchurSystem::new(&a, &b, spec).unwrap();
        let x_schur = sys.solve().unwrap();
        let x_direct = Cholesky::factor(&a).unwrap().solve(&b);
        prop_assert!((&x_schur - &x_direct).norm() < 1e-6 * (1.0 + x_direct.norm()));
    }

    #[test]
    fn symmat_matvec_matches_dense((a, v) in DIM.prop_flat_map(|n| {
        (spd_strategy(n), vec_strategy(n))
    })) {
        let s = SymMat::from_dense(&a);
        let fast = s.mul_vec(&v);
        let dense = a.mat_vec(&v);
        prop_assert!((&fast - &dense).norm() < 1e-9 * (1.0 + dense.norm()));
    }

    #[test]
    fn f32_cast_stays_close(a in DIM.prop_flat_map(spd_strategy)) {
        // The hardware functional model runs in f32; casting must stay within
        // single-precision distance of the f64 original.
        let f = a.cast::<f32>().cast::<f64>();
        prop_assert!((&f - &a).max_abs() <= 1e-4 * (1.0 + a.max_abs()));
    }
}
