//! Property-based bitwise-equivalence suite for the solver micro-kernels.
//!
//! The hot-path rewrite replaced open-coded inner loops with the fused /
//! blocked kernels in [`archytas_math::kernels`], promising *bit-identical*
//! results to the paths they replaced. These properties stress that promise
//! over random shapes (including empty and sub-`PANEL` edge cases), operand
//! sets with a deliberate mass of exact zeros (so every zero-skip guard
//! fires), and overlapping scatter destinations — at pool shapes {1, 2, 8}
//! with the serial threshold forced to zero, so the parallel code paths run
//! even on tiny inputs.

use archytas_math::kernels::{
    add_scaled, add_scaled_fixed, add_scaled_skip, add_scaled_skip2, add_scaled_skip_rows,
    sub_scaled, sub_scaled4,
};
use archytas_math::{
    BlockSparseSystem, BlockSpec, Cholesky, DMat, DVec, SchurScratch, SchurSystem,
};
use archytas_par::Pool;
use proptest::prelude::*;

/// The three pool shapes of the determinism contract: serial, small
/// parallel, oversubscribed parallel. Threshold 0 forces the parallel path
/// regardless of problem size.
fn pools() -> [Pool; 3] {
    [
        Pool::with_threads(1),
        Pool::with_threads(2).with_serial_threshold(0),
        Pool::with_threads(8).with_serial_threshold(0),
    ]
}

/// Kernel operand values: signed, scale-diverse, with a deliberate mass of
/// exact zeros so the zero-skip guards actually take both branches.
fn val() -> impl Strategy<Value = f64> {
    (0u8..6, -10.0..10.0f64).prop_map(|(sel, v)| match sel {
        0 => 0.0,
        5 => v * 1e-7,
        _ => v,
    })
}

fn vals(n: impl Into<proptest::collection::SizeRange>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(val(), n)
}

fn assert_bits_eq(actual: &[f64], expected: &[f64]) -> std::result::Result<(), TestCaseError> {
    prop_assert_eq!(actual.len(), expected.len());
    for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
        prop_assert!(
            a.to_bits() == e.to_bits(),
            "element {} differs: {} vs {}",
            i,
            a,
            e
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The unrolled fixed-width kernel is the generic one at N = 6.
    #[test]
    fn fixed6_matches_generic_bitwise(
        (dst, src, s) in (6usize..=16).prop_flat_map(|n| (vals(n), vals(n), val()))
    ) {
        let mut fixed = dst.clone();
        let mut generic = dst;
        add_scaled_fixed::<f64, 6>(&mut fixed, &src, s);
        add_scaled(&mut generic[..6], &src[..6], s);
        assert_bits_eq(&fixed, &generic)?;
    }

    /// Fused two-row scatter == two sequential guarded scatters.
    #[test]
    fn skip2_matches_sequential_bitwise(
        (dst, s0, s1, a0, a1) in (0usize..=40).prop_flat_map(|n| {
            (vals(n), vals(n), vals(n), val(), val())
        })
    ) {
        let mut fused = dst.clone();
        let mut seq = dst;
        add_scaled_skip2(&mut fused, &s0, a0, &s1, a1);
        add_scaled_skip(&mut seq, &s0, a0);
        add_scaled_skip(&mut seq, &s1, a1);
        assert_bits_eq(&fused, &seq)?;
    }

    /// Fused many-row scatter == sequential guarded scatters, in row order —
    /// every source row aliases the same destination element.
    #[test]
    fn skip_rows_matches_sequential_bitwise(
        (dst, srcs, scales) in (0usize..=24, 0usize..=8).prop_flat_map(|(n, rows)| {
            (vals(n), proptest::collection::vec(vals(n), rows), vals(rows))
        })
    ) {
        let rows: Vec<(&[f64], f64)> = srcs
            .iter()
            .zip(&scales)
            .map(|(s, &a)| (s.as_slice(), a))
            .collect();
        let mut fused = dst.clone();
        let mut seq = dst;
        add_scaled_skip_rows(&mut fused, &rows);
        for &(src, a) in &rows {
            add_scaled_skip(&mut seq, src, a);
        }
        assert_bits_eq(&fused, &seq)?;
    }

    /// Fused rank-4 trailing update == four sequential rank-1 updates.
    #[test]
    fn sub_scaled4_matches_sequential_bitwise(
        (dst, srcs, a) in (0usize..=40).prop_flat_map(|n| {
            (vals(n), proptest::collection::vec(vals(n), 4), vals(4usize))
        })
    ) {
        let mut fused = dst.clone();
        let mut seq = dst;
        sub_scaled4(
            &mut fused, &srcs[0], a[0], &srcs[1], a[1], &srcs[2], a[2], &srcs[3], a[3],
        );
        for k in 0..4 {
            sub_scaled(&mut seq, &srcs[k], a[k]);
        }
        assert_bits_eq(&fused, &seq)?;
    }
}

/// Any B yields an SPD matrix B·Bᵀ + (n+1)·I.
fn spd_strategy(n: usize) -> impl Strategy<Value = DMat> {
    proptest::collection::vec(-5.0..5.0f64, n * n).prop_map(move |data| {
        let b = DMat::from_vec(n, n, data);
        b.transpose().gram().add_diagonal(n as f64 + 1.0)
    })
}

/// Textbook unblocked column-at-a-time Cholesky in the same transposed
/// formulation as [`Cholesky::refactor_with`]: evaluate column `k`, then
/// immediately apply it to every trailing row. Returns `Lᵀ`. This is the
/// pre-blocking reference the `PANEL`-wide fused sweeps must reproduce bit
/// for bit.
fn unblocked_cholesky_lt(a: &DMat) -> DMat {
    let n = a.rows();
    let mut lt = DMat::zeros(n, n);
    let mut work = a.clone();
    for k in 0..n {
        let d = work.get(k, k).sqrt();
        lt.set(k, k, d);
        for i in (k + 1)..n {
            lt.set(k, i, work.get(k, i) / d);
        }
        for j in (k + 1)..n {
            let ljk = lt.get(k, j);
            for i in j..n {
                work.set(j, i, work.get(j, i) - lt.get(k, i) * ljk);
            }
        }
    }
    lt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The panel-blocked, kernel-fused, row-parallel factorization equals the
    /// unblocked serial loop bitwise — for sizes straddling the panel width
    /// and at every pool shape.
    #[test]
    fn blocked_cholesky_matches_unblocked_bitwise(a in (1usize..=12).prop_flat_map(spd_strategy)) {
        let reference = unblocked_cholesky_lt(&a).transpose();
        for pool in pools() {
            let (ch, _) = Cholesky::factor_counting_with(&a, &pool).unwrap();
            assert_bits_eq(ch.l().as_slice(), reference.as_slice())?;
        }
    }

    /// The buffer-reusing triangular solve equals the allocating one bitwise,
    /// including when the reused buffers arrive with a stale shape.
    #[test]
    fn solve_into_matches_solve_bitwise(
        (a, b) in (1usize..=10).prop_flat_map(|n| (spd_strategy(n), vals(n)))
    ) {
        let b = DVec::from(b);
        let ch = Cholesky::factor(&a).unwrap();
        let reference = ch.solve(&b);
        let mut y = DVec::zeros(3);
        let mut x = DVec::zeros(17);
        ch.solve_into(&b, &mut y, &mut x);
        assert_bits_eq(x.as_slice(), reference.as_slice())?;
    }
}

/// A randomly shaped D-type block system: `p` landmarks, `nblocks` pose
/// blocks of `stride` rows with `kb`-row observation blocks, a random `W`
/// sparsity pattern (possibly empty rows), and diagonals boosted to strict
/// dominance so the assembled matrix is SPD.
#[derive(Debug, Clone)]
struct BlockProblem {
    p: usize,
    kb: usize,
    stride: usize,
    nblocks: usize,
    u: Vec<f64>,
    v_upper: Vec<f64>,
    pattern: Vec<Vec<u8>>,
    w: Vec<f64>,
    bx: Vec<f64>,
    by: Vec<f64>,
    lambda: Option<f64>,
}

fn block_problem_strategy() -> impl Strategy<Value = BlockProblem> {
    (1usize..=5, 1usize..=3, 1usize..=4)
        .prop_flat_map(|(p, nblocks, kb)| (Just(p), Just(nblocks), Just(kb), kb..=kb + 2))
        .prop_flat_map(|(p, nblocks, kb, stride)| {
            let q = nblocks * stride;
            (
                Just((p, nblocks, kb, stride)),
                (
                    vals(p),
                    vals(q * q),
                    proptest::collection::vec(proptest::collection::vec(0u8..2, nblocks), p),
                ),
                (
                    vals(p * nblocks * kb),
                    vals(p),
                    vals(q),
                    (0u8..3, 0.01..10.0f64).prop_map(|(sel, l)| (sel == 0).then_some(l)),
                ),
            )
        })
        .prop_map(
            |((p, nblocks, kb, stride), (u, v_upper, pattern), (w, bx, by, lambda))| BlockProblem {
                p,
                kb,
                stride,
                nblocks,
                u,
                v_upper,
                pattern,
                w,
                bx,
                by,
                lambda,
            },
        )
}

/// Assembles the problem through the sparse build API, with the diagonal
/// boosted to strict dominance (row sums of `|W|` and `|V|` plus a margin).
fn build_system(pb: &BlockProblem) -> BlockSparseSystem<f64> {
    let q = pb.nblocks * pb.stride;
    let widx = |lm: usize, b: usize, t: usize| (lm * pb.nblocks + b) * pb.kb + t;
    let vsym = |r: usize, c: usize| {
        let (lo, hi) = if r <= c { (r, c) } else { (c, r) };
        pb.v_upper[lo * q + hi]
    };

    // Row sums for dominance: landmark rows see their W entries; pose rows
    // see their V off-diagonals plus every W entry landing on them.
    let mut lm_row = vec![0.0f64; pb.p];
    let mut pose_row = vec![0.0f64; q];
    for lm in 0..pb.p {
        for b in 0..pb.nblocks {
            if pb.pattern[lm][b] != 0 {
                for t in 0..pb.kb {
                    let v = pb.w[widx(lm, b, t)];
                    lm_row[lm] += v.abs();
                    pose_row[b * pb.stride + t] += v.abs();
                }
            }
        }
    }
    for r in 0..q {
        for c in 0..q {
            if r != c {
                pose_row[r] += vsym(r, c).abs();
            }
        }
    }

    let mut s = BlockSparseSystem::new();
    s.reset(pb.p, q, pb.kb, pb.stride);
    for j in 0..pb.p {
        s.add_u(j, pb.u[j].abs() + lm_row[j] + 1.0);
        s.sub_bx(j, -pb.bx[j]);
    }
    for r in 0..q {
        for c in 0..q {
            if r == c {
                s.add_v(r, r, vsym(r, r).abs() + pose_row[r] + 1.0);
            } else {
                s.add_v(r, c, vsym(r, c));
            }
        }
        s.sub_by(r, -pb.by[r]);
    }
    for lm in 0..pb.p {
        for b in 0..pb.nblocks {
            if pb.pattern[lm][b] != 0 {
                for t in 0..pb.kb {
                    s.add_w(lm, b * pb.stride + t, pb.w[widx(lm, b, t)]);
                }
            }
        }
    }
    if let Some(lambda) = pb.lambda {
        s.damp(lambda, 1e-9);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The block-sparse Schur solve — assembled through the kernel-backed
    /// elimination and triangular paths — equals the dense `SchurSystem`
    /// reference bitwise for random shapes, sparsity patterns (including
    /// empty `W` rows and partial edge blocks) and damping, at every pool.
    #[test]
    fn block_solve_matches_dense_schur_bitwise(pb in block_problem_strategy()) {
        let s = build_system(&pb);
        let (a, b) = s.to_dense();
        let spec = BlockSpec::new(s.p(), s.dim()).unwrap();
        let reference = SchurSystem::new(&a, &b, spec).unwrap().solve().unwrap();
        let mut scratch = SchurScratch::default();
        let mut out = DVec::zeros(0);
        for pool in pools() {
            s.solve_into(&mut scratch, &pool, &mut out).unwrap();
            assert_bits_eq(out.as_slice(), reference.as_slice())?;
        }
    }
}
