//! Property-based bitwise-equivalence suite for the solver micro-kernels.
//!
//! The hot-path rewrite replaced open-coded inner loops with the fused /
//! blocked kernels in [`archytas_math::kernels`], promising *bit-identical*
//! results to the paths they replaced. These properties stress that promise
//! over random shapes (including empty and sub-`PANEL` edge cases), operand
//! sets with a deliberate mass of exact zeros (so every zero-skip guard
//! fires), and overlapping scatter destinations — at pool shapes {1, 2, 8}
//! with the serial threshold forced to zero, so the parallel code paths run
//! even on tiny inputs.

use archytas_math::fixed::{self, sub_scaled_panel, syrk_scatter};
use archytas_math::kernels::{
    add_scaled, add_scaled_fixed, add_scaled_skip, add_scaled_skip2, add_scaled_skip_rows,
    sub_scaled, sub_scaled4,
};
use archytas_math::{
    BlockSparseSystem, BlockSpec, Cholesky, DMat, DVec, SchurScratch, SchurSystem,
};
use archytas_par::Pool;
use proptest::prelude::*;

/// The three pool shapes of the determinism contract: serial, small
/// parallel, oversubscribed parallel. Threshold 0 forces the parallel path
/// regardless of problem size.
fn pools() -> [Pool; 3] {
    [
        Pool::with_threads(1),
        Pool::with_threads(2).with_serial_threshold(0),
        Pool::with_threads(8).with_serial_threshold(0),
    ]
}

/// Kernel operand values: signed, scale-diverse, with a deliberate mass of
/// exact zeros so the zero-skip guards actually take both branches.
fn val() -> impl Strategy<Value = f64> {
    (0u8..6, -10.0..10.0f64).prop_map(|(sel, v)| match sel {
        0 => 0.0,
        5 => v * 1e-7,
        _ => v,
    })
}

fn vals(n: impl Into<proptest::collection::SizeRange>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(val(), n)
}

fn assert_bits_eq(actual: &[f64], expected: &[f64]) -> std::result::Result<(), TestCaseError> {
    prop_assert_eq!(actual.len(), expected.len());
    for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
        prop_assert!(
            a.to_bits() == e.to_bits(),
            "element {} differs: {} vs {}",
            i,
            a,
            e
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The unrolled fixed-width kernel is the generic one at N = 6.
    #[test]
    fn fixed6_matches_generic_bitwise(
        (dst, src, s) in (6usize..=16).prop_flat_map(|n| (vals(n), vals(n), val()))
    ) {
        let mut fixed = dst.clone();
        let mut generic = dst;
        add_scaled_fixed::<f64, 6>(&mut fixed, &src, s);
        add_scaled(&mut generic[..6], &src[..6], s);
        assert_bits_eq(&fixed, &generic)?;
    }

    /// Fused two-row scatter == two sequential guarded scatters.
    #[test]
    fn skip2_matches_sequential_bitwise(
        (dst, s0, s1, a0, a1) in (0usize..=40).prop_flat_map(|n| {
            (vals(n), vals(n), vals(n), val(), val())
        })
    ) {
        let mut fused = dst.clone();
        let mut seq = dst;
        add_scaled_skip2(&mut fused, &s0, a0, &s1, a1);
        add_scaled_skip(&mut seq, &s0, a0);
        add_scaled_skip(&mut seq, &s1, a1);
        assert_bits_eq(&fused, &seq)?;
    }

    /// Fused many-row scatter == sequential guarded scatters, in row order —
    /// every source row aliases the same destination element.
    #[test]
    fn skip_rows_matches_sequential_bitwise(
        (dst, srcs, scales) in (0usize..=24, 0usize..=8).prop_flat_map(|(n, rows)| {
            (vals(n), proptest::collection::vec(vals(n), rows), vals(rows))
        })
    ) {
        let rows: Vec<(&[f64], f64)> = srcs
            .iter()
            .zip(&scales)
            .map(|(s, &a)| (s.as_slice(), a))
            .collect();
        let mut fused = dst.clone();
        let mut seq = dst;
        add_scaled_skip_rows(&mut fused, &rows);
        for &(src, a) in &rows {
            add_scaled_skip(&mut seq, src, a);
        }
        assert_bits_eq(&fused, &seq)?;
    }

    /// Fused rank-4 trailing update == four sequential rank-1 updates.
    #[test]
    fn sub_scaled4_matches_sequential_bitwise(
        (dst, srcs, a) in (0usize..=40).prop_flat_map(|n| {
            (vals(n), proptest::collection::vec(vals(n), 4), vals(4usize))
        })
    ) {
        let mut fused = dst.clone();
        let mut seq = dst;
        sub_scaled4(
            &mut fused, &srcs[0], a[0], &srcs[1], a[1], &srcs[2], a[2], &srcs[3], a[3],
        );
        for k in 0..4 {
            sub_scaled(&mut seq, &srcs[k], a[k]);
        }
        assert_bits_eq(&fused, &seq)?;
    }
}

/// Pins every `fixed::Vec` form at width `N` against the open-coded scalar
/// loop it replaced (written out here rather than routed through
/// `kernels::*`, whose length dispatch would make the comparison
/// tautological at the fixed widths).
fn check_fixed_vec_forms<const N: usize>(
    dst: &[f64],
    s0: &[f64],
    s1: &[f64],
    a0: f64,
    a1: f64,
    acc0: f64,
) -> std::result::Result<(), TestCaseError> {
    // axpy: dst[i] += a0 * s0[i].
    let mut got = dst.to_vec();
    let mut want = dst.to_vec();
    fixed::Vec::<f64, N>::from_mut_slice(&mut got).axpy(fixed::Vec::from_slice(s0), a0);
    for i in 0..N {
        want[i] += a0 * s0[i];
    }
    assert_bits_eq(&got, &want)?;

    // axpy_src_s: the source-first operand order dst[i] += s0[i] * a0.
    let mut got = dst.to_vec();
    let mut want = dst.to_vec();
    fixed::Vec::<f64, N>::from_mut_slice(&mut got).axpy_src_s(fixed::Vec::from_slice(s0), a0);
    for i in 0..N {
        want[i] += s0[i] * a0;
    }
    assert_bits_eq(&got, &want)?;

    // axpy_skip: the branchless select vs the guarded branch.
    let mut got = dst.to_vec();
    let mut want = dst.to_vec();
    fixed::Vec::<f64, N>::from_mut_slice(&mut got).axpy_skip(fixed::Vec::from_slice(s0), a0);
    for i in 0..N {
        if s0[i] != 0.0 {
            want[i] += a0 * s0[i];
        }
    }
    assert_bits_eq(&got, &want)?;

    // axpy_skip2: fused pair vs two sequential guarded sweeps.
    let mut got = dst.to_vec();
    let mut want = dst.to_vec();
    fixed::Vec::<f64, N>::from_mut_slice(&mut got).axpy_skip2(
        fixed::Vec::from_slice(s0),
        a0,
        fixed::Vec::from_slice(s1),
        a1,
    );
    for (src, a) in [(s0, a0), (s1, a1)] {
        for i in 0..N {
            if src[i] != 0.0 {
                want[i] += a * src[i];
            }
        }
    }
    assert_bits_eq(&got, &want)?;

    // axpy_skip_rows: fused many-row vs sequential guarded sweeps in order.
    let rows: [(&[f64], f64); 2] = [(s0, a0), (s1, a1)];
    let mut got = dst.to_vec();
    let want_rows = want; // seeded by the skip2 reference above — same math
    fixed::Vec::<f64, N>::from_mut_slice(&mut got).axpy_skip_rows(&rows);
    assert_bits_eq(&got, &want_rows)?;

    // dot_skip_fold: branchless-guard serial reduction vs the guarded loop.
    let got = fixed::Vec::<f64, N>::from_slice(s0).dot_skip_fold(fixed::Vec::from_slice(s1), acc0);
    let mut want = acc0;
    for i in 0..N {
        if s1[i] != 0.0 {
            want += s0[i] * s1[i];
        }
    }
    prop_assert!(
        got.to_bits() == want.to_bits(),
        "fold differs: {} vs {}",
        got,
        want
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every `fixed::Vec` micro-kernel form at the two deployed widths (6 =
    /// pose-tangent runs, 15 = keyframe state) equals its open-coded scalar
    /// predecessor bitwise.
    #[test]
    fn fixed_vec_forms_match_scalar_bitwise(
        ((d6, x6, y6), (d15, x15, y15), (a0, a1, acc)) in
            ((vals(6usize), vals(6usize), vals(6usize)),
             (vals(15usize), vals(15usize), vals(15usize)),
             (val(), val(), val()))
    ) {
        check_fixed_vec_forms::<6>(&d6, &x6, &y6, a0, a1, acc)?;
        check_fixed_vec_forms::<15>(&d15, &x15, &y15, a0, a1, acc)?;
    }

    /// The block-column-major rank-6 SYRK scatter equals the row-major slice
    /// replay bitwise: one multiply-add per destination cell either way, so
    /// the loop interchange cannot move bits.
    #[test]
    fn syrk_scatter_matches_row_major_replay_bitwise(
        (stride, blocks, s, vals_flat, rows) in
            (6usize..=12, proptest::collection::vec(0u8..2, 1..=4)).prop_flat_map(|(stride, mask)| {
                let nb = mask.iter().filter(|&&m| m != 0).count();
                (Just(stride), Just(mask), vals(6usize), vals(nb * 6), vals(6 * 4 * stride))
            }).prop_map(|(stride, mask, s, vals_flat, rows)| {
                let cols: Vec<u32> = mask.iter().enumerate()
                    .filter(|(_, &m)| m != 0)
                    .map(|(b, _)| (b * stride) as u32)
                    .collect();
                (stride, cols, s, vals_flat, rows)
            })
    ) {
        let pitch = 4 * stride;
        let s: &[f64; 6] = s.as_slice().try_into().unwrap();
        let mut got = rows.clone();
        let mut want = rows;
        syrk_scatter::<f64, 6>(&mut got, pitch, s, &blocks, &vals_flat);
        for t in 0..6 {
            if s[t] == 0.0 {
                continue;
            }
            for (bj, &c0) in blocks.iter().enumerate() {
                for i in 0..6 {
                    want[t * pitch + c0 as usize + i] += s[t] * vals_flat[bj * 6 + i];
                }
            }
        }
        assert_bits_eq(&got, &want)?;
    }

    /// The `PANEL`-wide fused trailing update equals eight sequential rank-1
    /// `sub_scaled` sweeps bitwise (per element the subtractions happen in
    /// the same order with the same operand order).
    #[test]
    fn sub_scaled_panel_matches_sequential_bitwise(
        (dst, srcs, a) in (0usize..=40).prop_flat_map(|n| {
            (vals(n), proptest::collection::vec(vals(n), 8), vals(8usize))
        })
    ) {
        let refs: [&[f64]; 8] = std::array::from_fn(|k| srcs[k].as_slice());
        let a: &[f64; 8] = a.as_slice().try_into().unwrap();
        let mut fused = dst.clone();
        let mut seq = dst;
        sub_scaled_panel::<f64, 8>(&mut fused, &refs, a);
        for k in 0..8 {
            sub_scaled(&mut seq, &srcs[k], a[k]);
        }
        assert_bits_eq(&fused, &seq)?;
    }
}

/// Any B yields an SPD matrix B·Bᵀ + (n+1)·I.
fn spd_strategy(n: usize) -> impl Strategy<Value = DMat> {
    proptest::collection::vec(-5.0..5.0f64, n * n).prop_map(move |data| {
        let b = DMat::from_vec(n, n, data);
        b.transpose().gram().add_diagonal(n as f64 + 1.0)
    })
}

/// Textbook unblocked column-at-a-time Cholesky in the same transposed
/// formulation as [`Cholesky::refactor_with`]: evaluate column `k`, then
/// immediately apply it to every trailing row. Returns `Lᵀ`. This is the
/// pre-blocking reference the `PANEL`-wide fused sweeps must reproduce bit
/// for bit.
fn unblocked_cholesky_lt(a: &DMat) -> DMat {
    let n = a.rows();
    let mut lt = DMat::zeros(n, n);
    let mut work = a.clone();
    for k in 0..n {
        let d = work.get(k, k).sqrt();
        lt.set(k, k, d);
        for i in (k + 1)..n {
            lt.set(k, i, work.get(k, i) / d);
        }
        for j in (k + 1)..n {
            let ljk = lt.get(k, j);
            for i in j..n {
                work.set(j, i, work.get(j, i) - lt.get(k, i) * ljk);
            }
        }
    }
    lt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The panel-blocked, kernel-fused, row-parallel factorization equals the
    /// unblocked serial loop bitwise — for sizes straddling the panel width
    /// and at every pool shape.
    #[test]
    fn blocked_cholesky_matches_unblocked_bitwise(a in (1usize..=12).prop_flat_map(spd_strategy)) {
        let reference = unblocked_cholesky_lt(&a).transpose();
        for pool in pools() {
            let (ch, _) = Cholesky::factor_counting_with(&a, &pool).unwrap();
            assert_bits_eq(ch.l().as_slice(), reference.as_slice())?;
        }
    }

    /// The buffer-reusing triangular solve equals the allocating one bitwise,
    /// including when the reused buffers arrive with a stale shape.
    #[test]
    fn solve_into_matches_solve_bitwise(
        (a, b) in (1usize..=10).prop_flat_map(|n| (spd_strategy(n), vals(n)))
    ) {
        let b = DVec::from(b);
        let ch = Cholesky::factor(&a).unwrap();
        let reference = ch.solve(&b);
        let mut y = DVec::zeros(3);
        let mut x = DVec::zeros(17);
        ch.solve_into(&b, &mut y, &mut x);
        assert_bits_eq(x.as_slice(), reference.as_slice())?;
    }
}

/// A randomly shaped D-type block system: `p` landmarks, `nblocks` pose
/// blocks of `stride` rows with `kb`-row observation blocks, a random `W`
/// sparsity pattern (possibly empty rows), and diagonals boosted to strict
/// dominance so the assembled matrix is SPD.
#[derive(Debug, Clone)]
struct BlockProblem {
    p: usize,
    kb: usize,
    stride: usize,
    nblocks: usize,
    u: Vec<f64>,
    v_upper: Vec<f64>,
    pattern: Vec<Vec<u8>>,
    w: Vec<f64>,
    bx: Vec<f64>,
    by: Vec<f64>,
    lambda: Option<f64>,
}

/// Problem shapes: mostly small random `(kb, stride)` pairs exercising the
/// generic slice path, plus a weighted share of the deployed SLAM layout
/// (15-row pose blocks, 6-high observation blocks) so the `kb == 6`
/// fixed-width dispatch in assembly, Schur elimination and back-substitution
/// runs under the same dense-reference check at every pool.
fn block_shape_strategy() -> impl Strategy<Value = (usize, usize, usize, usize)> {
    (0u8..4, (1usize..=5, 1usize..=3, 1usize..=4), 0usize..=2).prop_map(
        |(sel, (p, nblocks, kb), extra)| {
            if sel == 0 {
                (p.min(4), nblocks.min(2), 6, 15)
            } else {
                (p, nblocks, kb, kb + extra)
            }
        },
    )
}

fn block_problem_strategy() -> impl Strategy<Value = BlockProblem> {
    block_shape_strategy()
        .prop_flat_map(|(p, nblocks, kb, stride)| {
            let q = nblocks * stride;
            (
                Just((p, nblocks, kb, stride)),
                (
                    vals(p),
                    vals(q * q),
                    proptest::collection::vec(proptest::collection::vec(0u8..2, nblocks), p),
                ),
                (
                    vals(p * nblocks * kb),
                    vals(p),
                    vals(q),
                    (0u8..3, 0.01..10.0f64).prop_map(|(sel, l)| (sel == 0).then_some(l)),
                ),
            )
        })
        .prop_map(
            |((p, nblocks, kb, stride), (u, v_upper, pattern), (w, bx, by, lambda))| BlockProblem {
                p,
                kb,
                stride,
                nblocks,
                u,
                v_upper,
                pattern,
                w,
                bx,
                by,
                lambda,
            },
        )
}

/// Assembles the problem through the sparse build API, with the diagonal
/// boosted to strict dominance (row sums of `|W|` and `|V|` plus a margin).
#[allow(clippy::needless_range_loop)] // index math mirrors the matrix layout
fn build_system(pb: &BlockProblem) -> BlockSparseSystem<f64> {
    let q = pb.nblocks * pb.stride;
    let widx = |lm: usize, b: usize, t: usize| (lm * pb.nblocks + b) * pb.kb + t;
    let vsym = |r: usize, c: usize| {
        let (lo, hi) = if r <= c { (r, c) } else { (c, r) };
        pb.v_upper[lo * q + hi]
    };

    // Row sums for dominance: landmark rows see their W entries; pose rows
    // see their V off-diagonals plus every W entry landing on them.
    let mut lm_row = vec![0.0f64; pb.p];
    let mut pose_row = vec![0.0f64; q];
    for lm in 0..pb.p {
        for b in 0..pb.nblocks {
            if pb.pattern[lm][b] != 0 {
                for t in 0..pb.kb {
                    let v = pb.w[widx(lm, b, t)];
                    lm_row[lm] += v.abs();
                    pose_row[b * pb.stride + t] += v.abs();
                }
            }
        }
    }
    for r in 0..q {
        for c in 0..q {
            if r != c {
                pose_row[r] += vsym(r, c).abs();
            }
        }
    }

    let mut s = BlockSparseSystem::new();
    s.reset(pb.p, q, pb.kb, pb.stride);
    for j in 0..pb.p {
        s.add_u(j, pb.u[j].abs() + lm_row[j] + 1.0);
        s.sub_bx(j, -pb.bx[j]);
    }
    for r in 0..q {
        for c in 0..q {
            if r == c {
                s.add_v(r, r, vsym(r, r).abs() + pose_row[r] + 1.0);
            } else {
                s.add_v(r, c, vsym(r, c));
            }
        }
        s.sub_by(r, -pb.by[r]);
    }
    for lm in 0..pb.p {
        for b in 0..pb.nblocks {
            if pb.pattern[lm][b] != 0 {
                for t in 0..pb.kb {
                    s.add_w(lm, b * pb.stride + t, pb.w[widx(lm, b, t)]);
                }
            }
        }
    }
    if let Some(lambda) = pb.lambda {
        s.damp(lambda, 1e-9);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The block-sparse Schur solve — assembled through the kernel-backed
    /// elimination and triangular paths — equals the dense `SchurSystem`
    /// reference bitwise for random shapes, sparsity patterns (including
    /// empty `W` rows and partial edge blocks) and damping, at every pool.
    #[test]
    fn block_solve_matches_dense_schur_bitwise(pb in block_problem_strategy()) {
        let s = build_system(&pb);
        let (a, b) = s.to_dense();
        let spec = BlockSpec::new(s.p(), s.dim()).unwrap();
        let reference = SchurSystem::new(&a, &b, spec).unwrap().solve().unwrap();
        let mut scratch = SchurScratch::default();
        let mut out = DVec::zeros(0);
        for pool in pools() {
            s.solve_into(&mut scratch, &pool, &mut out).unwrap();
            assert_bits_eq(out.as_slice(), reference.as_slice())?;
        }
    }
}

/// One randomized visual factor in the SLAM layout: a landmark column, two
/// ascending 6-wide pose runs at block starts, two residual rows.
#[derive(Debug, Clone)]
struct VisualObs {
    lm: usize,
    rf: usize,
    rs: usize,
    jr: [f64; 2],
    f: [[f64; 6]; 2],
    s: [[f64; 6]; 2],
    e: [f64; 2],
    w2: f64,
}

fn visual_obs_strategy(p: usize, nblocks: usize) -> impl Strategy<Value = VisualObs> {
    (
        (0..p, 0..nblocks, 0..nblocks - 1),
        (vals(2usize), vals(2usize), 0.01..4.0f64),
        (vals(6usize), vals(6usize), vals(6usize), vals(6usize)),
    )
        .prop_map(|((lm, ba, bb), (jr, e, w2), (f0, f1, s0, s1))| {
            // Two distinct blocks, ascending: `bb` skips over `ba`.
            let bb = if bb >= ba { bb + 1 } else { bb };
            let (bf, bs) = (ba.min(bb), ba.max(bb));
            VisualObs {
                lm,
                rf: bf * 15,
                rs: bs * 15,
                jr: jr.try_into().unwrap(),
                f: [f0.try_into().unwrap(), f1.try_into().unwrap()],
                s: [s0.try_into().unwrap(), s1.try_into().unwrap()],
                e: e.try_into().unwrap(),
                w2,
            }
        })
}

/// The generic per-source-column scatter of one visual factor — the exact
/// sequence of single-run sink writes (`scatter_runs2` through the block
/// sink) that [`BlockSparseSystem::add_visual_obs6`] fuses: guarded `b` and
/// diagonal updates per column in row-0-then-row-1 order, the `W` mirrors as
/// the cross-block storage, upper-triangle `V` runs only.
fn replay_visual_percolumn(sys: &mut BlockSparseSystem<f64>, o: &VisualObs) {
    let (e, w2) = (o.e, o.w2);
    // Source column 1: the inverse depth.
    let (v0, v1) = (o.jr[0], o.jr[1]);
    if v0 != 0.0 || v1 != 0.0 {
        let (wv0, wv1) = (w2 * v0, w2 * v1);
        if v0 != 0.0 {
            sys.sub_bx(o.lm, wv0 * e[0]);
        }
        if v1 != 0.0 {
            sys.sub_bx(o.lm, wv1 * e[1]);
        }
        if v0 != 0.0 && v1 != 0.0 {
            sys.add_u(o.lm, wv0 * v0);
            sys.add_u(o.lm, wv1 * v1);
            sys.add_w_run2(o.lm, o.rf, &o.f[0], wv0, &o.f[1], wv1);
            sys.add_w_run2(o.lm, o.rs, &o.s[0], wv0, &o.s[1], wv1);
        } else if v0 != 0.0 {
            sys.add_u(o.lm, wv0 * v0);
            sys.add_w_run(o.lm, o.rf, &o.f[0], wv0);
            sys.add_w_run(o.lm, o.rs, &o.s[0], wv0);
        } else {
            sys.add_u(o.lm, wv1 * v1);
            sys.add_w_run(o.lm, o.rf, &o.f[1], wv1);
            sys.add_w_run(o.lm, o.rs, &o.s[1], wv1);
        }
    }
    // Source columns in the pose runs (first run carries the cross block).
    for (run, r0, cross) in [(&o.f, o.rf, true), (&o.s, o.rs, false)] {
        for ti in 0..6 {
            let (v0, v1) = (run[0][ti], run[1][ti]);
            if v0 == 0.0 && v1 == 0.0 {
                continue;
            }
            let ri = r0 + ti;
            let (wv0, wv1) = (w2 * v0, w2 * v1);
            if v0 != 0.0 {
                sys.sub_by(ri, wv0 * e[0]);
            }
            if v1 != 0.0 {
                sys.sub_by(ri, wv1 * e[1]);
            }
            if v0 != 0.0 && v1 != 0.0 {
                sys.add_v_row2(ri, ri, &run[0][ti..], wv0, &run[1][ti..], wv1);
                if cross {
                    sys.add_v_row2(ri, o.rs, &o.s[0], wv0, &o.s[1], wv1);
                }
            } else if v0 != 0.0 {
                sys.add_v_row(ri, ri, &run[0][ti..], wv0);
                if cross {
                    sys.add_v_row(ri, o.rs, &o.s[0], wv0);
                }
            } else {
                sys.add_v_row(ri, ri, &run[1][ti..], wv1);
                if cross {
                    sys.add_v_row(ri, o.rs, &o.s[1], wv1);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fused whole-observation visual scatter equals the generic
    /// per-source-column scatter bitwise — across repeated observations per
    /// landmark (so the memoized block lookup sees hits, misses and
    /// mid-stream block inserts) and zero Jacobian entries (so every
    /// single-row fallback runs).
    #[test]
    fn fused_visual_scatter_matches_percolumn_bitwise(
        (p, nblocks, obs) in (1usize..=3, 2usize..=4).prop_flat_map(|(p, nblocks)| {
            (
                Just(p),
                Just(nblocks),
                proptest::collection::vec(visual_obs_strategy(p, nblocks), 1..=8),
            )
        })
    ) {
        let q = nblocks * 15;
        let mut fused = BlockSparseSystem::new();
        let mut seq = BlockSparseSystem::new();
        fused.reset(p, q, 6, 15);
        seq.reset(p, q, 6, 15);
        for o in &obs {
            fused.add_visual_obs6(
                o.lm, o.rf, o.rs, o.jr, [&o.f[0], &o.f[1]], [&o.s[0], &o.s[1]], o.e, o.w2,
            );
            replay_visual_percolumn(&mut seq, o);
        }
        fused.reflect_v_upper();
        seq.reflect_v_upper();
        let (fa, fb) = fused.to_dense();
        let (sa, sb) = seq.to_dense();
        assert_bits_eq(fa.as_slice(), sa.as_slice())?;
        assert_bits_eq(fb.as_slice(), sb.as_slice())?;
    }
}
