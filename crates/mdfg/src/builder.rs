//! Cost-driven M-DFG construction (paper Sec. 3.2).
//!
//! The general MAP algorithm (Fig. 2) leaves key blocks — the linear-system
//! solve and the marginalization priors — with many possible concrete
//! implementations. The builder picks the implementation that minimizes
//! arithmetic cost:
//!
//! * For the NLS solve `A·δp = b` it sweeps the Schur-elimination split
//!   point `p` over a cost model and (as the paper observes) lands on the
//!   blocking whose leading block `U` is the diagonal landmark block — the
//!   **D-type Schur**.
//! * For marginalization it blocks `M` so that `M₁₁` is the diagonal
//!   landmark sub-block, turning `S′ = M₂₂ − M₂₁·M₁₁⁻¹·M₁₂` into another
//!   D-type Schur that can *share hardware* with the NLS one (Sec. 3.2.3).

use crate::graph::{MDfg, NodeId};
use crate::node::{node_cost, Dims, NodeKind};

/// Shape of one sliding-window problem, the input to every cost model.
/// `Hash` lets shapes key memoized model evaluations (`archytas-par`'s
/// `Memo`), since distinct windows frequently share a shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProblemShape {
    /// Number of feature points (`a`).
    pub features: usize,
    /// Number of keyframes (`b`).
    pub keyframes: usize,
    /// States per keyframe (`k`, 15 in this system).
    pub states_per_keyframe: usize,
    /// Average observations per feature (`No`), rounded.
    pub obs_per_feature: usize,
    /// Features marginalized when the window slides (`am`).
    pub marginalized_features: usize,
}

impl ProblemShape {
    /// A typical KITTI-scale window: `k = 15`, `b = 10`, ≈10× more features
    /// than keyframes and ≈10× more observations than features — the ratios
    /// the paper profiles (Sec. 4.2).
    pub fn typical() -> Self {
        Self {
            features: 250,
            keyframes: 10,
            states_per_keyframe: 15,
            obs_per_feature: 10,
            marginalized_features: 25,
        }
    }

    /// Builds a shape from observed workload statistics.
    pub fn from_workload(w: &archytas_slam::WindowWorkload) -> Self {
        Self {
            features: w.features.max(1),
            keyframes: w.keyframes.max(2),
            states_per_keyframe: archytas_slam::STATE_DIM,
            obs_per_feature: (w.avg_observations_per_feature().round() as usize).max(1),
            marginalized_features: w.marginalized_features,
        }
    }

    /// Dimension of the keyframe block (`k·b`).
    pub fn pose_block_dim(&self) -> usize {
        self.states_per_keyframe * self.keyframes
    }

    /// Full state dimension (`a + k·b`).
    pub fn state_dim(&self) -> usize {
        self.features + self.pose_block_dim()
    }
}

/// A chosen blocking strategy for a Schur elimination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockingChoice {
    /// Split point: size of the eliminated leading block.
    pub p: usize,
    /// Whether the leading block is diagonal at this split (D-type).
    pub leading_diagonal: bool,
    /// Modelled cost of solving with this blocking.
    pub cost: u64,
}

/// Cost of solving the `n × n` NLS system with Schur elimination at split
/// `p`, where the first `a` coordinates (landmarks) form a diagonal block.
///
/// For `p ≤ a` the leading block is diagonal: inversion is `O(p)` and
/// `W·U⁻¹` is a column scaling. For `p > a` the leading block mixes in dense
/// keyframe states, so inverting it costs `O(p³)` — the cost model makes the
/// paper's observation quantitative.
pub fn nls_schur_cost(shape: &ProblemShape, p: usize) -> u64 {
    let n = shape.state_dim();
    let a = shape.features;
    let q = n - p;
    let (inv_cost, wuinv_cost) = if p <= a {
        (
            node_cost(NodeKind::DMatInv, Dims::square(p)),
            node_cost(NodeKind::DMatMul, Dims::rect(q, p)),
        )
    } else {
        (
            // Dense inversion via Cholesky + p triangular solves.
            node_cost(NodeKind::CD, Dims::square(p)) + (p as u64) * (p as u64) * (p as u64),
            node_cost(NodeKind::MatMul, Dims::product(q, p, p)),
        )
    };
    let schur_mul = node_cost(NodeKind::MatMul, Dims::product(q, p, q));
    let sub = node_cost(NodeKind::MatSub, Dims::square(q));
    let reduced_solve =
        node_cost(NodeKind::CD, Dims::square(q)) + node_cost(NodeKind::FBSub, Dims::square(q));
    // Back substitution for the eliminated block.
    let back = if p <= a {
        (p + p * q) as u64
    } else {
        (p * p + p * q) as u64
    };
    inv_cost + wuinv_cost + schur_mul + sub + reduced_solve + back
}

/// Sweeps every split point (including `p = 0`, the direct dense solve) and
/// returns the argmin.
pub fn optimal_nls_blocking(shape: &ProblemShape) -> BlockingChoice {
    let n = shape.state_dim();
    let mut best = BlockingChoice {
        p: 0,
        leading_diagonal: true,
        // p = 0 degenerates to the direct dense solve of the full system.
        cost: node_cost(NodeKind::CD, Dims::square(n))
            + node_cost(NodeKind::FBSub, Dims::square(n)),
    };
    for p in 1..n {
        let cost = nls_schur_cost(shape, p);
        if cost < best.cost {
            best = BlockingChoice {
                p,
                leading_diagonal: p <= shape.features,
                cost,
            };
        }
    }
    best
}

/// Cost of the marginalization prior computation when `M` (the marginalized
/// block, `am` landmarks + one keyframe) is blocked at `p`.
pub fn marginalization_schur_cost(shape: &ProblemShape, p: usize) -> u64 {
    let am = shape.marginalized_features;
    let k = shape.states_per_keyframe;
    let m_dim = am + k;
    let kept = shape.pose_block_dim().saturating_sub(k);
    if m_dim == 0 || kept == 0 {
        return 0;
    }
    let q = m_dim - p;
    // Inverting M via Eq. 5 with the leading p×p block M₁₁:
    let m11_inv = if p <= am {
        node_cost(NodeKind::DMatInv, Dims::square(p))
    } else {
        node_cost(NodeKind::CD, Dims::square(p)) + (p as u64).pow(3)
    };
    // S′ = M₂₂ − M₂₁ M₁₁⁻¹ M₁₂ and its inversion.
    let sprime = node_cost(NodeKind::MatMul, Dims::product(q, p, q))
        + node_cost(NodeKind::MatSub, Dims::square(q))
        + node_cost(NodeKind::CD, Dims::square(q))
        + (q as u64).pow(3);
    // Assembling M⁻¹'s four blocks (Eq. 5) and the outer products with Λ.
    let assemble = 2 * node_cost(NodeKind::MatMul, Dims::product(p, q, p))
        + node_cost(NodeKind::MatMul, Dims::product(p, p, q));
    let outer = node_cost(NodeKind::MatMul, Dims::product(kept, m_dim, m_dim))
        + node_cost(NodeKind::MatMul, Dims::product(kept, m_dim, kept))
        + node_cost(NodeKind::MatSub, Dims::square(kept));
    m11_inv + sprime + assemble + outer
}

/// Optimal blocking of the marginalized block `M`.
pub fn optimal_marginalization_blocking(shape: &ProblemShape) -> BlockingChoice {
    let m_dim = shape.marginalized_features + shape.states_per_keyframe;
    let mut best = BlockingChoice {
        p: 0,
        leading_diagonal: true,
        cost: u64::MAX,
    };
    for p in 0..m_dim {
        let cost = marginalization_schur_cost(shape, p);
        if cost < best.cost {
            best = BlockingChoice {
                p,
                leading_diagonal: p <= shape.marginalized_features,
                cost,
            };
        }
    }
    best
}

/// The concrete M-DFGs of one sliding-window pass plus the blocking
/// decisions behind them.
#[derive(Debug, Clone)]
pub struct BuiltMdfg {
    /// One NLS iteration (runs `Iter` times per window).
    pub nls: MDfg,
    /// Marginalization (runs once per window).
    pub marginalization: MDfg,
    /// Chosen NLS blocking.
    pub nls_blocking: BlockingChoice,
    /// Chosen marginalization blocking.
    pub marg_blocking: BlockingChoice,
    /// Node ids of the two D-type Schur product nodes — candidates for
    /// hardware sharing.
    pub shared_dschur: (NodeId, NodeId),
}

/// Builds the final M-DFG for a window shape (paper Fig. 3b for the solver
/// part).
pub fn build_mdfg(shape: &ProblemShape) -> BuiltMdfg {
    let nls_blocking = optimal_nls_blocking(shape);
    let marg_blocking = optimal_marginalization_blocking(shape);

    let a = shape.features;
    let q = shape.state_dim() - nls_blocking.p;
    let obs = a * shape.obs_per_feature;

    // ---- NLS iteration ----
    let mut nls = MDfg::new();
    let vjac = nls.add_node(NodeKind::VJac, Dims::rect(obs, 0), "nls.vjac");
    let ijac = nls.add_node(
        NodeKind::IJac,
        Dims::rect(shape.keyframes.saturating_sub(1), 0),
        "nls.ijac",
    );
    // Prepare A, b: the Gram accumulation JᵀJ (dominated by the visual part)
    let prep_a = nls.add_node(
        NodeKind::MatMul,
        Dims::product(shape.state_dim(), 2 * obs.max(1), 1),
        "nls.prepare_ab",
    );
    nls.add_edge(vjac, prep_a);
    nls.add_edge(ijac, prep_a);
    // D-type Schur sub-graph (Fig. 3b): DMatInv → DMatMul → MatTp/MatMul → MatSub
    let dinv = nls.add_node(
        NodeKind::DMatInv,
        Dims::square(nls_blocking.p),
        "nls.dschur.Uinv",
    );
    let dmul = nls.add_node(
        NodeKind::DMatMul,
        Dims::rect(q, nls_blocking.p),
        "nls.dschur.WUinv",
    );
    let wt = nls.add_node(
        NodeKind::MatTp,
        Dims::rect(q, nls_blocking.p),
        "nls.dschur.Wt",
    );
    let mul = nls.add_node(
        NodeKind::MatMul,
        Dims::product(q, nls_blocking.p, q),
        "nls.dschur.WUinvWt",
    );
    let sub = nls.add_node(NodeKind::MatSub, Dims::square(q), "nls.dschur.sub");
    nls.add_edge(prep_a, dinv);
    nls.add_edge(dinv, dmul);
    nls.add_edge(prep_a, wt);
    nls.add_edge(dmul, mul);
    nls.add_edge(wt, mul);
    nls.add_edge(mul, sub);
    // Reduced solve + back substitution.
    let cd = nls.add_node(NodeKind::CD, Dims::square(q), "nls.cd");
    let fbsub = nls.add_node(NodeKind::FBSub, Dims::square(q), "nls.fbsub");
    nls.add_edge(sub, cd);
    nls.add_edge(cd, fbsub);
    let back = nls.add_node(
        NodeKind::DMatMul,
        Dims::rect(nls_blocking.p, 1),
        "nls.back_subst",
    );
    nls.add_edge(fbsub, back);
    nls.add_edge(dinv, back);

    // ---- Marginalization ----
    let am = shape.marginalized_features;
    let k = shape.states_per_keyframe;
    let kept = shape.pose_block_dim().saturating_sub(k);
    let m_dim = am + k;
    let mq = m_dim - marg_blocking.p;
    let mut marg = MDfg::new();
    let mvjac = marg.add_node(
        NodeKind::VJac,
        Dims::rect(am * shape.obs_per_feature, 0),
        "marg.vjac",
    );
    let mijac = marg.add_node(NodeKind::IJac, Dims::rect(1, 0), "marg.ijac");
    let info = marg.add_node(
        NodeKind::MatMul,
        Dims::product(m_dim + kept, 2 * am * shape.obs_per_feature.max(1), 1),
        "marg.information",
    );
    marg.add_edge(mvjac, info);
    marg.add_edge(mijac, info);
    // M-type Schur: invert M via Eq. 5 whose inner S′ is a D-type Schur.
    let m11inv = marg.add_node(
        NodeKind::DMatInv,
        Dims::square(marg_blocking.p),
        "marg.mschur.M11inv",
    );
    let m21m11 = marg.add_node(
        NodeKind::DMatMul,
        Dims::rect(mq, marg_blocking.p),
        "marg.mschur.M21M11inv",
    );
    let sprime_mul = marg.add_node(
        NodeKind::MatMul,
        Dims::product(mq, marg_blocking.p, mq),
        "marg.mschur.Sprime",
    );
    let sprime_sub = marg.add_node(NodeKind::MatSub, Dims::square(mq), "marg.mschur.sub");
    let sprime_cd = marg.add_node(NodeKind::CD, Dims::square(mq), "marg.mschur.cd");
    let sprime_fb = marg.add_node(NodeKind::FBSub, Dims::square(mq), "marg.mschur.fbsub");
    marg.add_edge(info, m11inv);
    marg.add_edge(m11inv, m21m11);
    marg.add_edge(m21m11, sprime_mul);
    marg.add_edge(sprime_mul, sprime_sub);
    marg.add_edge(sprime_sub, sprime_cd);
    marg.add_edge(sprime_cd, sprime_fb);
    // Priors: Hp = A − Λ M⁻¹ Λᵀ, rp = br − Λ M⁻¹ bm.
    let lam_minv = marg.add_node(
        NodeKind::MatMul,
        Dims::product(kept, m_dim, m_dim),
        "marg.prior.LamMinv",
    );
    let lam_t = marg.add_node(NodeKind::MatTp, Dims::rect(kept, m_dim), "marg.prior.LamT");
    let hp_mul = marg.add_node(
        NodeKind::MatMul,
        Dims::product(kept, m_dim, kept),
        "marg.prior.Hp_mul",
    );
    let hp_sub = marg.add_node(NodeKind::MatSub, Dims::square(kept), "marg.prior.Hp");
    let rp_sub = marg.add_node(NodeKind::MatSub, Dims::rect(kept, 1), "marg.prior.rp");
    marg.add_edge(sprime_fb, lam_minv);
    marg.add_edge(info, lam_t);
    marg.add_edge(lam_minv, hp_mul);
    marg.add_edge(lam_t, hp_mul);
    marg.add_edge(hp_mul, hp_sub);
    marg.add_edge(lam_minv, rp_sub);

    BuiltMdfg {
        nls,
        marginalization: marg,
        nls_blocking,
        marg_blocking,
        shared_dschur: (mul, sprime_mul),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_nls_split_is_the_landmark_block() {
        // The paper's key observation: the argmin blocks A so U is the full
        // diagonal landmark block.
        for shape in [
            ProblemShape::typical(),
            ProblemShape {
                features: 250,
                keyframes: 10,
                states_per_keyframe: 15,
                obs_per_feature: 8,
                marginalized_features: 25,
            },
            ProblemShape {
                features: 40,
                keyframes: 8,
                states_per_keyframe: 15,
                obs_per_feature: 3,
                marginalized_features: 5,
            },
        ] {
            let choice = optimal_nls_blocking(&shape);
            assert_eq!(choice.p, shape.features, "shape {shape:?}");
            assert!(choice.leading_diagonal);
        }
    }

    #[test]
    fn schur_beats_direct_solve() {
        let shape = ProblemShape::typical();
        let n = shape.state_dim();
        let direct =
            node_cost(NodeKind::CD, Dims::square(n)) + node_cost(NodeKind::FBSub, Dims::square(n));
        let choice = optimal_nls_blocking(&shape);
        assert!(
            choice.cost * 3 < direct * 2,
            "schur {} should be at least a third cheaper than direct {direct}",
            choice.cost
        );
    }

    #[test]
    fn oversized_split_is_penalized() {
        // Splitting past the landmark block forces dense inversion and must
        // cost more than the D-type split.
        let shape = ProblemShape::typical();
        let at_a = nls_schur_cost(&shape, shape.features);
        let past_a = nls_schur_cost(&shape, shape.features + 30);
        assert!(past_a > at_a);
    }

    #[test]
    fn marginalization_blocks_landmarks_diagonally() {
        let shape = ProblemShape::typical();
        let choice = optimal_marginalization_blocking(&shape);
        assert_eq!(choice.p, shape.marginalized_features);
        assert!(choice.leading_diagonal);
    }

    #[test]
    fn built_graphs_are_acyclic_and_complete() {
        let built = build_mdfg(&ProblemShape::typical());
        assert!(built.nls.topo_order().is_ok());
        assert!(built.marginalization.topo_order().is_ok());
        // The NLS graph realizes Fig. 3b: exactly one of each Schur piece.
        let h = built.nls.kind_histogram();
        assert_eq!(h[&NodeKind::DMatInv], 1);
        assert_eq!(h[&NodeKind::CD], 1);
        assert_eq!(h[&NodeKind::FBSub], 1);
        assert!(h[&NodeKind::MatMul] >= 2);
    }

    #[test]
    fn shared_dschur_nodes_have_matching_kind() {
        let built = build_mdfg(&ProblemShape::typical());
        let n1 = built.nls.node(built.shared_dschur.0);
        let n2 = built.marginalization.node(built.shared_dschur.1);
        assert_eq!(n1.kind, NodeKind::MatMul);
        assert_eq!(n2.kind, NodeKind::MatMul);
    }

    #[test]
    fn critical_path_below_total() {
        let built = build_mdfg(&ProblemShape::typical());
        assert!(built.nls.critical_path_cost() <= built.nls.total_cost());
        assert!(built.nls.critical_path_cost() > 0);
    }

    #[test]
    fn shape_from_workload() {
        let w = archytas_slam::WindowWorkload {
            features: 120,
            observations: 600,
            keyframes: 10,
            marginalized_features: 12,
        };
        let s = ProblemShape::from_workload(&w);
        assert_eq!(s.features, 120);
        assert_eq!(s.obs_per_feature, 5);
        assert_eq!(s.state_dim(), 120 + 150);
    }
}
