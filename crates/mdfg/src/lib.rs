//! Macro data-flow graph (M-DFG) layer of the Archytas framework
//! (paper Sec. 3).
//!
//! Hardware acceleration needs a *concrete* software implementation; the
//! general MAP algorithm description leaves blocks like the linear-system
//! solver open. This crate raises the abstraction to coarse primitive nodes
//! (Tbl. 1), builds cost models for the candidate implementations, picks the
//! blocking strategies (D-type/M-type Schur), optimizes the `S`-matrix data
//! layout, and statically schedules the resulting graph onto the hardware
//! template's block classes.
//!
//! # Example
//!
//! ```
//! use archytas_mdfg::{build_mdfg, schedule, ProblemShape};
//!
//! let shape = ProblemShape::typical();
//! let built = build_mdfg(&shape);
//! // The cost model recovers the paper's observation: the optimal blocking
//! // makes the leading block the (diagonal) landmark block.
//! assert_eq!(built.nls_blocking.p, shape.features);
//! let sched = schedule(&built);
//! assert!(!sched.shared_blocks.is_empty());
//! ```

#![warn(missing_docs)]

mod builder;
mod graph;
mod layout;
mod node;
mod schedule;

pub use builder::{
    build_mdfg, marginalization_schur_cost, nls_schur_cost, optimal_marginalization_blocking,
    optimal_nls_blocking, BlockingChoice, BuiltMdfg, ProblemShape,
};
pub use graph::{MDfg, Node, NodeId};
pub use layout::{saving_vs_dense, storage_words, LayoutScheme, SplitS, POSE_DOF};
pub use node::{node_cost, Dims, NodeKind};
pub use schedule::{schedule, Assignment, HwBlockClass, Phase, Schedule};
