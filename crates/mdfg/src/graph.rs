//! The macro data-flow graph structure.
//!
//! A deliberately small DAG representation: nodes carry a primitive kind,
//! operand dimensions and a human-readable label; edges express data
//! dependencies. The scheduler and synthesizer only need topological order,
//! per-node costs and critical paths, so no general graph library is pulled
//! in.

use crate::node::{node_cost, Dims, NodeKind};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node within one [`MDfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// One node of the graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Primitive operation kind.
    pub kind: NodeKind,
    /// Operand dimensions.
    pub dims: Dims,
    /// Human-readable role, e.g. `"schur.WUinvWt"`.
    pub label: String,
}

/// A macro data-flow graph.
#[derive(Debug, Clone, Default)]
pub struct MDfg {
    nodes: Vec<Node>,
    /// Adjacency: edges[i] = successors of node i.
    edges: Vec<Vec<usize>>,
    /// Reverse adjacency for in-degree queries.
    redges: Vec<Vec<usize>>,
}

impl MDfg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind, dims: Dims, label: impl Into<String>) -> NodeId {
        self.nodes.push(Node {
            kind,
            dims,
            label: label.into(),
        });
        self.edges.push(Vec::new());
        self.redges.push(Vec::new());
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a dependency edge `from → to`.
    ///
    /// # Panics
    ///
    /// Panics when either id is out of range or on a self-edge.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        assert!(from.0 < self.nodes.len() && to.0 < self.nodes.len());
        assert_ne!(from, to, "self-edges are not allowed");
        self.edges[from.0].push(to.0);
        self.redges[to.0].push(from.0);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Iterator over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Successors of a node.
    pub fn successors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.edges[id.0].iter().map(|&i| NodeId(i))
    }

    /// Predecessors of a node.
    pub fn predecessors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.redges[id.0].iter().map(|&i| NodeId(i))
    }

    /// Topological order of the nodes.
    ///
    /// # Errors
    ///
    /// Returns `Err(offending_id)` with some node on a cycle when the graph
    /// is cyclic.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, NodeId> {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = self.redges.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(NodeId(i));
            for &s in &self.edges[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            let stuck = (0..n).find(|&i| indeg[i] > 0).unwrap_or(0);
            Err(NodeId(stuck))
        }
    }

    /// Total arithmetic cost of the whole graph.
    pub fn total_cost(&self) -> u64 {
        self.nodes.iter().map(|n| node_cost(n.kind, n.dims)).sum()
    }

    /// Critical-path cost: the most expensive dependency chain, assuming
    /// unlimited parallelism across independent nodes.
    ///
    /// # Panics
    ///
    /// Panics when the graph is cyclic.
    pub fn critical_path_cost(&self) -> u64 {
        let order = self.topo_order().expect("M-DFG must be acyclic");
        let mut finish: Vec<u64> = vec![0; self.nodes.len()];
        let mut best = 0;
        for id in order {
            let own = node_cost(self.nodes[id.0].kind, self.nodes[id.0].dims);
            let ready = self.redges[id.0]
                .iter()
                .map(|&p| finish[p])
                .max()
                .unwrap_or(0);
            finish[id.0] = ready + own;
            best = best.max(finish[id.0]);
        }
        best
    }

    /// Histogram of node kinds (how many of each primitive the graph uses).
    pub fn kind_histogram(&self) -> HashMap<NodeKind, usize> {
        let mut h = HashMap::new();
        for n in &self.nodes {
            *h.entry(n.kind).or_insert(0) += 1;
        }
        h
    }

    /// Renders the graph in Graphviz DOT format, one node per primitive with
    /// its dimensions and cost, for inspection of the generated
    /// implementation (the paper presents these graphs as Fig. 3b).
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = format!(
            "digraph {name} {{\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n"
        );
        for (i, n) in self.nodes.iter().enumerate() {
            let cost = node_cost(n.kind, n.dims);
            out.push_str(&format!(
                "  n{i} [label=\"{}\\n{}\\n{}x{} (k={})\\ncost {}\"];\n",
                n.kind, n.label, n.dims.rows, n.dims.cols, n.dims.inner, cost
            ));
        }
        for (i, succs) in self.edges.iter().enumerate() {
            for &s in succs {
                out.push_str(&format!("  n{i} -> n{s};\n"));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Finds pairs of structurally identical single nodes (same kind and
    /// dims) between `self` and `other` — the seed of the scheduler's
    /// hardware-sharing pass (Sec. 4.1: identical subgraphs are mapped to
    /// the same hardware block).
    pub fn matching_nodes<'a>(&'a self, other: &'a MDfg) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        let mut used = vec![false; other.nodes.len()];
        for (i, a) in self.nodes.iter().enumerate() {
            if let Some(j) = other
                .nodes
                .iter()
                .enumerate()
                .position(|(j, b)| !used[j] && a.kind == b.kind && a.dims == b.dims)
            {
                used[j] = true;
                out.push((NodeId(i), NodeId(j)));
            }
        }
        out
    }
}

impl fmt::Display for MDfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "M-DFG ({} nodes)", self.nodes.len())?;
        for (i, n) in self.nodes.iter().enumerate() {
            let succ: Vec<String> = self.edges[i].iter().map(|s| s.to_string()).collect();
            writeln!(
                f,
                "  [{i}] {} {:?} '{}' -> [{}]",
                n.kind,
                (n.dims.rows, n.dims.cols, n.dims.inner),
                n.label,
                succ.join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (MDfg, [NodeId; 4]) {
        // a → b, a → c, b → d, c → d
        let mut g = MDfg::new();
        let a = g.add_node(NodeKind::VJac, Dims::rect(10, 0), "a");
        let b = g.add_node(NodeKind::MatMul, Dims::product(4, 4, 4), "b");
        let c = g.add_node(NodeKind::MatMul, Dims::product(8, 8, 8), "c");
        let d = g.add_node(NodeKind::MatSub, Dims::square(4), "d");
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        (g, [a, b, c, d])
    }

    #[test]
    fn topo_respects_edges() {
        let (g, [a, b, c, d]) = diamond();
        let order = g.topo_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
    }

    #[test]
    fn cycle_detected() {
        let mut g = MDfg::new();
        let a = g.add_node(NodeKind::MatMul, Dims::product(2, 2, 2), "a");
        let b = g.add_node(NodeKind::MatMul, Dims::product(2, 2, 2), "b");
        g.add_edge(a, b);
        g.add_edge(b, a);
        assert!(g.topo_order().is_err());
    }

    #[test]
    fn critical_path_takes_slow_branch() {
        let (g, _) = diamond();
        // a(600) + max(b=64, c=512) + d(16)
        assert_eq!(g.critical_path_cost(), 600 + 512 + 16);
        assert_eq!(g.total_cost(), 600 + 64 + 512 + 16);
    }

    #[test]
    fn histogram_counts_kinds() {
        let (g, _) = diamond();
        let h = g.kind_histogram();
        assert_eq!(h[&NodeKind::MatMul], 2);
        assert_eq!(h[&NodeKind::VJac], 1);
    }

    #[test]
    fn matching_nodes_pairs_identical_shapes() {
        let (g1, _) = diamond();
        let (g2, _) = diamond();
        let pairs = g1.matching_nodes(&g2);
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn predecessors_and_successors() {
        let (g, [a, _, _, d]) = diamond();
        assert_eq!(g.successors(a).count(), 2);
        assert_eq!(g.predecessors(d).count(), 2);
        assert_eq!(g.predecessors(a).count(), 0);
    }

    #[test]
    fn dot_export_is_well_formed() {
        let (g, _) = diamond();
        let dot = g.to_dot("nls");
        assert!(dot.starts_with("digraph nls {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches("->").count(), 4);
        assert_eq!(dot.matches("[label=").count(), 4);
        assert!(dot.contains("VJac"));
    }

    #[test]
    #[should_panic(expected = "self-edges")]
    fn self_edge_rejected() {
        let mut g = MDfg::new();
        let a = g.add_node(NodeKind::MatTp, Dims::square(2), "a");
        g.add_edge(a, a);
    }
}
