//! Primitive M-DFG node types (paper Tbl. 1) and their arithmetic cost
//! models.
//!
//! The cost model is the foundation of both the M-DFG builder's blocking
//! decisions (Sec. 3.2) and the hardware synthesizer's latency estimates
//! (Sec. 5): each node knows how many scalar operations it performs given
//! its operand dimensions.

use std::fmt;

/// The nine primitive node types of Tbl. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Diagonal matrix inversion.
    DMatInv,
    /// Dense matrix multiplication.
    MatMul,
    /// Diagonal × dense matrix multiplication.
    DMatMul,
    /// Matrix subtraction (or addition).
    MatSub,
    /// Matrix transpose.
    MatTp,
    /// Cholesky decomposition.
    CD,
    /// Forward and backward substitution (triangular solves).
    FBSub,
    /// Visual Jacobian computation.
    VJac,
    /// IMU Jacobian computation.
    IJac,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::DMatInv => "DMatInv",
            NodeKind::MatMul => "MatMul",
            NodeKind::DMatMul => "DMatMul",
            NodeKind::MatSub => "MatSub",
            NodeKind::MatTp => "MatTp",
            NodeKind::CD => "CD",
            NodeKind::FBSub => "FBSub",
            NodeKind::VJac => "VJac",
            NodeKind::IJac => "IJac",
        };
        f.write_str(s)
    }
}

/// Operand dimensions of a node.
///
/// Interpretation per kind:
/// * `MatMul`: `(m × k) · (k × n)` → `rows = m`, `inner = k`, `cols = n`.
/// * `DMatMul`: diagonal of size `rows` times a `rows × cols` matrix.
/// * `DMatInv`: diagonal of size `rows`.
/// * `MatSub`/`MatTp`: a `rows × cols` operand.
/// * `CD`/`FBSub`: a square system of size `rows`.
/// * `VJac`: `rows` = number of observations (2×6 blocks each).
/// * `IJac`: `rows` = number of IMU constraints (15×30 blocks each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Dims {
    /// Primary dimension (see kind-specific interpretation).
    pub rows: usize,
    /// Secondary dimension.
    pub cols: usize,
    /// Inner (contraction) dimension for products.
    pub inner: usize,
}

impl Dims {
    /// Dimensions of a square operand.
    pub fn square(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            inner: 0,
        }
    }

    /// Dimensions of a rectangular operand.
    pub fn rect(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            inner: 0,
        }
    }

    /// Dimensions of a matrix product `(m × k) · (k × n)`.
    pub fn product(m: usize, k: usize, n: usize) -> Self {
        Self {
            rows: m,
            cols: n,
            inner: k,
        }
    }
}

/// Scalar-operation cost of a node — the currency of every cost model in
/// the framework (1 unit ≈ one multiply-accumulate).
pub fn node_cost(kind: NodeKind, dims: Dims) -> u64 {
    let r = dims.rows as u64;
    let c = dims.cols as u64;
    let k = dims.inner as u64;
    match kind {
        NodeKind::DMatInv => r,
        NodeKind::MatMul => r * k * c,
        NodeKind::DMatMul => r * c,
        NodeKind::MatSub => r * c,
        // A transpose moves data without arithmetic; cost one word-move per
        // element so the scheduler still accounts for its occupancy.
        NodeKind::MatTp => r * c,
        // n³/3 multiply-accumulates plus n square roots (counted once each).
        NodeKind::CD => r * r * r / 3 + r,
        // Forward plus backward pass: 2 · n²/2.
        NodeKind::FBSub => r * r,
        // One visual Jacobian: ~60 scalar ops per 2×6 observation block
        // (projection derivative chain), see `archytas-slam::factors`.
        NodeKind::VJac => r * 60,
        // One IMU Jacobian: ~700 scalar ops per 15×30 constraint pair.
        NodeKind::IJac => r * 700,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_cost_is_cubic() {
        assert_eq!(node_cost(NodeKind::MatMul, Dims::product(10, 20, 30)), 6000);
    }

    #[test]
    fn diagonal_ops_are_cheap() {
        let n = 100;
        assert_eq!(node_cost(NodeKind::DMatInv, Dims::square(n)), n as u64);
        assert_eq!(
            node_cost(NodeKind::DMatMul, Dims::rect(n, 50)),
            (n * 50) as u64
        );
        // Diagonal inversion is n× cheaper than a same-size dense product by
        // at least a quadratic factor — the heart of the D-type Schur win.
        let dense = node_cost(NodeKind::MatMul, Dims::product(n, n, n));
        let diag = node_cost(NodeKind::DMatInv, Dims::square(n));
        assert!(dense / diag >= (n * n) as u64 / 2);
    }

    #[test]
    fn cholesky_cost_cubic_over_three() {
        let c = node_cost(NodeKind::CD, Dims::square(30));
        assert_eq!(c, 27000 / 3 + 30);
    }

    #[test]
    fn display_names_match_paper_table() {
        assert_eq!(NodeKind::DMatInv.to_string(), "DMatInv");
        assert_eq!(NodeKind::CD.to_string(), "CD");
        assert_eq!(NodeKind::FBSub.to_string(), "FBSub");
        assert_eq!(NodeKind::VJac.to_string(), "VJac");
    }

    #[test]
    fn dims_constructors() {
        assert_eq!(
            Dims::square(5),
            Dims {
                rows: 5,
                cols: 5,
                inner: 0
            }
        );
        assert_eq!(Dims::product(2, 3, 4).inner, 3);
    }
}
