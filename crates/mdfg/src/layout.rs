//! Data-layout optimization for the linear-system parameter matrix `S`
//! (paper Sec. 3.3, Fig. 4).
//!
//! `S` is the `kb × kb` reduced (keyframe-block) system. It is the sum of a
//! camera contribution `Sc` — nonzero only in the 6×6 pose sub-block of each
//! `k × k` block — and an IMU contribution `Si` — nonzero only on the block
//! diagonal and sub/super-diagonals, because an IMU constraint couples only
//! adjacent keyframes. Storing the two separately with their structured
//! sparsity shrinks storage from `k²b²` to `18b² + 2bk²` (≈78 % at
//! `k = b = 15`), and beats a CSR encoding of the same pattern.

use archytas_math::Scalar;

/// Pose-block width: the 6 degrees of freedom the camera residuals touch.
pub const POSE_DOF: usize = 6;

/// Candidate storage schemes for `S`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutScheme {
    /// Full dense `kb × kb`.
    DenseFull,
    /// Dense but exploiting symmetry (lower triangle only).
    DenseSymmetric,
    /// The paper's split layout: compacted symmetric `Sc` + block-tridiagonal
    /// `Si` (`18b² + 2bk²` words).
    SplitCompressed,
    /// CSR over the union sparsity pattern of the lower triangle
    /// (1 word per value + ½ word per 16-bit column index + row pointers).
    Csr,
}

/// Storage cost in scalar words of scheme `scheme` for given `k` (states per
/// keyframe) and `b` (keyframes).
pub fn storage_words(scheme: LayoutScheme, k: usize, b: usize) -> usize {
    let n = k * b;
    match scheme {
        LayoutScheme::DenseFull => n * n,
        LayoutScheme::DenseSymmetric => n * (n + 1) / 2,
        // The paper's accounting: Sc compacted to a symmetric 6b×6b matrix
        // (~18b²) plus Si's diagonal and sub-diagonal blocks (~2bk²).
        LayoutScheme::SplitCompressed => 18 * b * b + 2 * b * k * k,
        LayoutScheme::Csr => {
            let nnz = union_pattern_nnz_lower(k, b);
            // values (1 word) + 16-bit column indices (½ word) + row pointers.
            nnz + nnz / 2 + (n + 1)
        }
    }
}

/// Nonzeros of the lower triangle of the union pattern (`Si ∪ Sc`).
fn union_pattern_nnz_lower(k: usize, b: usize) -> usize {
    // Si: block diagonal (b blocks, lower-triangular half k(k+1)/2 each)
    // plus b−1 full sub-diagonal blocks (k² each).
    let si = b * (k * (k + 1) / 2) + b.saturating_sub(1) * k * k;
    // Sc: 6×6 sub-block of every (i ≥ j) block pair; the diagonal-block ones
    // are half, and those inside the Si tridiagonal band are already counted.
    let sc_all = b * (POSE_DOF * (POSE_DOF + 1) / 2) + (b * (b - 1) / 2) * POSE_DOF * POSE_DOF;
    let sc_in_band =
        b * (POSE_DOF * (POSE_DOF + 1) / 2) + b.saturating_sub(1) * POSE_DOF * POSE_DOF;
    si + sc_all - sc_in_band
}

/// Space saving of a scheme relative to the full dense layout (0..1).
pub fn saving_vs_dense(scheme: LayoutScheme, k: usize, b: usize) -> f64 {
    let dense = storage_words(LayoutScheme::DenseFull, k, b) as f64;
    1.0 - storage_words(scheme, k, b) as f64 / dense
}

/// A functional implementation of the split layout: stores `Si` (block
/// tridiagonal, symmetric) and `Sc` (compacted symmetric pose blocks)
/// separately and reconstructs `S = Si + Sc` on demand.
#[derive(Debug, Clone)]
pub struct SplitS<T: Scalar> {
    k: usize,
    b: usize,
    /// Diagonal blocks of Si (k×k each, stored dense).
    si_diag: Vec<DMatWrap<T>>,
    /// Sub-diagonal blocks of Si (block (i+1, i), k×k each).
    si_sub: Vec<DMatWrap<T>>,
    /// Compacted camera matrix: 6b × 6b, stored dense here with only the
    /// lower triangle meaningful.
    sc: DMatWrap<T>,
}

type DMatWrap<T> = archytas_math::Matrix<T>;

impl<T: Scalar> SplitS<T> {
    /// Creates an empty split matrix for `b` keyframes of `k` states.
    ///
    /// # Panics
    ///
    /// Panics when `k < 6`.
    pub fn zeros(k: usize, b: usize) -> Self {
        assert!(k >= POSE_DOF, "k must contain the 6 pose DoF");
        Self {
            k,
            b,
            si_diag: (0..b).map(|_| DMatWrap::zeros(k, k)).collect(),
            si_sub: (0..b.saturating_sub(1))
                .map(|_| DMatWrap::zeros(k, k))
                .collect(),
            sc: DMatWrap::zeros(POSE_DOF * b, POSE_DOF * b),
        }
    }

    /// Adds an IMU contribution to block `(bi, bj)`; only the diagonal and
    /// sub-diagonal are representable.
    ///
    /// # Panics
    ///
    /// Panics when `|bi − bj| > 1` (the IMU pattern forbids it) or the block
    /// is not `k × k`.
    pub fn add_imu_block(&mut self, bi: usize, bj: usize, block: &DMatWrap<T>) {
        assert_eq!(block.shape(), (self.k, self.k), "imu block must be k×k");
        match (bi, bj) {
            (i, j) if i == j => self.si_diag[i] = &self.si_diag[i] + block,
            (i, j) if i == j + 1 => self.si_sub[j] = &self.si_sub[j] + block,
            (i, j) if j == i + 1 => {
                // Store the transpose in the sub-diagonal slot.
                self.si_sub[i] = &self.si_sub[i] + &block.transpose();
            }
            _ => panic!("IMU blocks couple only adjacent keyframes"),
        }
    }

    /// Adds a camera contribution to the pose sub-block of block `(bi, bj)`.
    ///
    /// # Panics
    ///
    /// Panics when the block is not `6 × 6`.
    pub fn add_camera_block(&mut self, bi: usize, bj: usize, block: &DMatWrap<T>) {
        assert_eq!(
            block.shape(),
            (POSE_DOF, POSE_DOF),
            "camera block must be 6×6"
        );
        self.sc.add_submatrix(bi * POSE_DOF, bj * POSE_DOF, block);
    }

    /// Reconstructs the full dense `kb × kb` matrix.
    pub fn to_dense(&self) -> DMatWrap<T> {
        let n = self.k * self.b;
        let mut out = DMatWrap::zeros(n, n);
        for (i, blk) in self.si_diag.iter().enumerate() {
            out.add_submatrix(i * self.k, i * self.k, blk);
        }
        for (j, blk) in self.si_sub.iter().enumerate() {
            out.add_submatrix((j + 1) * self.k, j * self.k, blk);
            out.add_submatrix(j * self.k, (j + 1) * self.k, &blk.transpose());
        }
        for bi in 0..self.b {
            for bj in 0..self.b {
                let sub = self
                    .sc
                    .submatrix(bi * POSE_DOF, bj * POSE_DOF, POSE_DOF, POSE_DOF);
                out.add_submatrix(bi * self.k, bj * self.k, &sub);
            }
        }
        out
    }

    /// Words of storage this layout actually holds (diagnostic; close to the
    /// paper's `18b² + 2bk²` accounting).
    pub fn stored_words(&self) -> usize {
        self.si_diag.len() * self.k * self.k
            + self.si_sub.len() * self.k * self.k
            + (POSE_DOF * self.b) * (POSE_DOF * self.b) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archytas_math::DMat;

    #[test]
    fn paper_headline_saving() {
        // Sec. 3.3: 78 % saving at k = 15, b = 15.
        let saving = saving_vs_dense(LayoutScheme::SplitCompressed, 15, 15);
        assert!(
            (saving - 0.78).abs() < 0.02,
            "saving {:.3} should be ≈0.78",
            saving
        );
    }

    #[test]
    fn split_beats_csr() {
        // Sec. 3.3: the split layout consumes ~17.8 % less than CSR; our
        // CSR accounting lands the gap in the 10–25 % band.
        let split = storage_words(LayoutScheme::SplitCompressed, 15, 15);
        let csr = storage_words(LayoutScheme::Csr, 15, 15);
        let gap = 1.0 - split as f64 / csr as f64;
        assert!(gap > 0.10 && gap < 0.25, "gap {:.3}", gap);
    }

    #[test]
    fn symmetric_layout_halves_dense() {
        let full = storage_words(LayoutScheme::DenseFull, 15, 10);
        let sym = storage_words(LayoutScheme::DenseSymmetric, 15, 10);
        assert!(sym <= full / 2 + 15 * 10);
    }

    #[test]
    fn split_s_reconstructs_reference() {
        let (k, b) = (15, 4);
        let mut split = SplitS::<f64>::zeros(k, b);
        let mut reference = DMat::zeros(k * b, k * b);

        // IMU contributions: couple adjacent keyframes.
        for j in 0..b - 1 {
            let blk = DMat::from_fn(k, k, |r, c| ((r * 3 + c + j) % 7) as f64);
            split.add_imu_block(j + 1, j, &blk);
            reference.add_submatrix((j + 1) * k, j * k, &blk);
            reference.add_submatrix(j * k, (j + 1) * k, &blk.transpose());
            let diag = DMat::from_fn(k, k, |r, c| ((r + c * 2 + j) % 5) as f64);
            split.add_imu_block(j, j, &diag);
            reference.add_submatrix(j * k, j * k, &diag);
        }
        // Camera contributions: any block pair, 6×6 corner only.
        for bi in 0..b {
            for bj in 0..=bi {
                let blk = DMat::from_fn(POSE_DOF, POSE_DOF, |r, c| ((r + c + bi + bj) % 3) as f64);
                split.add_camera_block(bi, bj, &blk);
                reference.add_submatrix(bi * k, bj * k, &blk);
            }
        }

        let dense = split.to_dense();
        assert!(
            (&dense - &reference).max_abs() < 1e-12,
            "split layout reconstructs the reference"
        );
        // At this small b the advantage over the dense-symmetric layout is
        // marginal; the full-dense comparison and the k=b=15 headline test
        // cover the asymptotics.
        assert!(split.stored_words() < k * b * k * b);
    }

    #[test]
    fn super_diagonal_imu_block_is_transposed() {
        let (k, b) = (15, 3);
        let mut split = SplitS::<f64>::zeros(k, b);
        let blk = DMat::from_fn(k, k, |r, c| (r * k + c) as f64);
        split.add_imu_block(0, 1, &blk); // super-diagonal insert
        let dense = split.to_dense();
        // Block (0,1) must hold blk, block (1,0) its transpose.
        let recovered = dense.submatrix(0, k, k, k);
        assert!((&recovered - &blk).max_abs() < 1e-12);
        let mirrored = dense.submatrix(k, 0, k, k);
        assert!((&mirrored - &blk.transpose()).max_abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "adjacent")]
    fn distant_imu_block_rejected() {
        let mut split = SplitS::<f64>::zeros(15, 4);
        let blk = DMat::zeros(15, 15);
        split.add_imu_block(0, 3, &blk);
    }

    #[test]
    fn saving_grows_with_window() {
        // The split layout's advantage grows with more keyframes (dense is
        // quadratic in b·k, split is quadratic in b but only linear in k²).
        let s8 = saving_vs_dense(LayoutScheme::SplitCompressed, 15, 8);
        let s20 = saving_vs_dense(LayoutScheme::SplitCompressed, 15, 20);
        assert!(s20 > s8);
    }
}
