//! Static scheduling of the M-DFG onto hardware template blocks
//! (paper Sec. 4.1).
//!
//! Two techniques keep utilization high: *sharing* — the NLS solver and
//! marginalization are inherently sequential, so identical subgraphs (both
//! D-type Schur computations, the Cholesky units) map to the same hardware
//! block — and *pipelining* — producer/consumer block pairs that stream
//! independent feature points (Jacobian → D-type Schur) are marked as
//! pipelined so the latency model can overlap them (the `max` in Eq. 14).

use crate::builder::BuiltMdfg;
use crate::graph::NodeId;
use crate::node::NodeKind;
use std::collections::HashMap;

/// The hardware template's block classes (paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwBlockClass {
    /// Visual Jacobian unit (Keyframe/Feature/Observation blocks).
    VisualJacobian,
    /// IMU Jacobian unit.
    ImuJacobian,
    /// Logic preparing `A` and `b` / forming `H` and `b`.
    FormInformation,
    /// D-type Schur complement unit (`nd` MACs).
    DTypeSchur,
    /// M-type Schur complement unit (`nm` MACs).
    MTypeSchur,
    /// Cholesky decomposition unit (1 Evaluate + `s` Update lanes).
    Cholesky,
    /// Back/forward substitution logic (fixed function).
    BackSubstitution,
}

/// Which phase of the per-window algorithm a node belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The iterative NLS solve.
    Nls,
    /// Marginalization.
    Marginalization,
}

/// One node-to-block assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Phase the node belongs to.
    pub phase: Phase,
    /// The node.
    pub node: NodeId,
    /// Hardware block executing it.
    pub block: HwBlockClass,
}

/// A complete static schedule for one window shape.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Every node's assignment.
    pub assignments: Vec<Assignment>,
    /// Block classes used by *both* phases — hardware shared across the two
    /// sequential phases (Sec. 4.1, first technique).
    pub shared_blocks: Vec<HwBlockClass>,
    /// Producer→consumer block pairs pipelined across feature points
    /// (Sec. 4.1, second technique).
    pub pipelined_pairs: Vec<(HwBlockClass, HwBlockClass)>,
}

impl Schedule {
    /// Assignments belonging to one phase.
    pub fn phase_assignments(&self, phase: Phase) -> impl Iterator<Item = &Assignment> {
        self.assignments.iter().filter(move |a| a.phase == phase)
    }

    /// Distinct block classes the schedule uses.
    pub fn blocks_used(&self) -> Vec<HwBlockClass> {
        let mut set: Vec<HwBlockClass> = Vec::new();
        for a in &self.assignments {
            if !set.contains(&a.block) {
                set.push(a.block);
            }
        }
        set
    }
}

/// Maps a node to its hardware block class from its kind and label.
fn classify(kind: NodeKind, label: &str) -> HwBlockClass {
    match kind {
        NodeKind::VJac => HwBlockClass::VisualJacobian,
        NodeKind::IJac => HwBlockClass::ImuJacobian,
        NodeKind::CD => HwBlockClass::Cholesky,
        NodeKind::FBSub => HwBlockClass::BackSubstitution,
        _ => {
            if label.contains("dschur") {
                HwBlockClass::DTypeSchur
            } else if label.contains("mschur") {
                // The paper maps S′ (a D-type Schur inside the M-type
                // computation) onto the *same* D-type hardware (Sec. 3.2.3);
                // the remaining M-type assembly keeps its own unit.
                if label.contains("Sprime")
                    || label.contains("M11inv")
                    || label.contains("M21M11inv")
                {
                    HwBlockClass::DTypeSchur
                } else {
                    HwBlockClass::MTypeSchur
                }
            } else if label.contains("prior") {
                HwBlockClass::MTypeSchur
            } else if label.contains("back") {
                HwBlockClass::BackSubstitution
            } else {
                HwBlockClass::FormInformation
            }
        }
    }
}

/// Builds the static schedule of a built M-DFG.
pub fn schedule(built: &BuiltMdfg) -> Schedule {
    let mut assignments = Vec::new();
    for (id, node) in built.nls.iter() {
        assignments.push(Assignment {
            phase: Phase::Nls,
            node: id,
            block: classify(node.kind, &node.label),
        });
    }
    for (id, node) in built.marginalization.iter() {
        assignments.push(Assignment {
            phase: Phase::Marginalization,
            node: id,
            block: classify(node.kind, &node.label),
        });
    }

    // Shared blocks: classes appearing in both phases.
    let mut per_phase: HashMap<HwBlockClass, (bool, bool)> = HashMap::new();
    for a in &assignments {
        let e = per_phase.entry(a.block).or_insert((false, false));
        match a.phase {
            Phase::Nls => e.0 = true,
            Phase::Marginalization => e.1 = true,
        }
    }
    let shared_blocks: Vec<HwBlockClass> = per_phase
        .iter()
        .filter(|(_, (n, m))| *n && *m)
        .map(|(b, _)| *b)
        .collect();

    Schedule {
        assignments,
        shared_blocks,
        pipelined_pairs: vec![(HwBlockClass::VisualJacobian, HwBlockClass::DTypeSchur)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_mdfg, ProblemShape};

    fn built_schedule() -> Schedule {
        schedule(&build_mdfg(&ProblemShape::typical()))
    }

    #[test]
    fn every_node_is_assigned() {
        let built = build_mdfg(&ProblemShape::typical());
        let s = schedule(&built);
        assert_eq!(
            s.assignments.len(),
            built.nls.len() + built.marginalization.len()
        );
    }

    #[test]
    fn dschur_shared_between_phases() {
        let s = built_schedule();
        assert!(
            s.shared_blocks.contains(&HwBlockClass::DTypeSchur),
            "the D-type Schur unit must serve both phases: {:?}",
            s.shared_blocks
        );
        assert!(s.shared_blocks.contains(&HwBlockClass::Cholesky));
        assert!(s.shared_blocks.contains(&HwBlockClass::VisualJacobian));
    }

    #[test]
    fn sprime_lands_on_dtype_unit() {
        let built = build_mdfg(&ProblemShape::typical());
        let s = schedule(&built);
        let sprime = s
            .phase_assignments(Phase::Marginalization)
            .find(|a| built.marginalization.node(a.node).label.contains("Sprime"))
            .expect("Sprime node exists");
        assert_eq!(sprime.block, HwBlockClass::DTypeSchur);
    }

    #[test]
    fn prior_assembly_uses_mtype_unit() {
        let built = build_mdfg(&ProblemShape::typical());
        let s = schedule(&built);
        let hp = s
            .phase_assignments(Phase::Marginalization)
            .find(|a| built.marginalization.node(a.node).label.contains("Hp_mul"))
            .expect("Hp node exists");
        assert_eq!(hp.block, HwBlockClass::MTypeSchur);
    }

    #[test]
    fn jacobian_schur_pipelined() {
        let s = built_schedule();
        assert!(s
            .pipelined_pairs
            .contains(&(HwBlockClass::VisualJacobian, HwBlockClass::DTypeSchur)));
    }

    #[test]
    fn blocks_used_covers_template() {
        let s = built_schedule();
        let used = s.blocks_used();
        for b in [
            HwBlockClass::VisualJacobian,
            HwBlockClass::ImuJacobian,
            HwBlockClass::DTypeSchur,
            HwBlockClass::MTypeSchur,
            HwBlockClass::Cholesky,
            HwBlockClass::BackSubstitution,
        ] {
            assert!(used.contains(&b), "{b:?} missing from schedule");
        }
    }
}
