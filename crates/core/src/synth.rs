//! The hardware synthesizer (paper Sec. 5).
//!
//! Given a workload shape and design constraints, find the customization
//! parameters `(nd, nm, s)` that optimize the objective:
//!
//! * Eq. 11 — minimize power subject to latency and resource constraints;
//! * Eq. 12 — minimize latency subject to resource constraints.
//!
//! The feasible set is a 3-variable integer lattice of ≈90,000 points
//! (`nd ∈ 1..=30`, `nm ∈ 1..=24`, `s ∈ 1..=125`) on the ZC706, scaling to
//! millions of points on larger fabrics. The paper solves the relaxation
//! with YALMIP in milliseconds; an exact search is both strictly optimal
//! and — with the structure below — fast enough to re-run *at serving
//! time*, against the ~15 *years* an exhaustive search through FPGA
//! synthesis would take (Sec. 7.3).
//!
//! # Search structure
//!
//! Three compounding layers make re-synthesis cheap enough for fleet-wide
//! dynamic re-optimization (ROADMAP item 4), while every path returns the
//! **bitwise-identical design** the exhaustive serial scan
//! ([`synthesize_exhaustive`]) returns:
//!
//! 1. **Memoized per-knob models.** Eq. 13's summands each depend on a
//!    single knob, so [`archytas_hw::LatencyTables`] evaluates every
//!    distinct sub-term once and replays the exact floating-point summation
//!    order per lattice point — bit-identical to calling
//!    [`window_cycles`] directly, at a few flops per candidate.
//! 2. **Incumbent-bound pruning.** The best primary-objective value found
//!    so far is shared across stripes through a tighten-only atomic. Whole
//!    stripes, `(nm, s)` subranges and `s`-blocks are cut when their
//!    monotonicity-safe *lower bound* (term-wise minima summed in the same
//!    expression shape — see `LatencyTables::window_cycles_lower_bound`)
//!    strictly exceeds the incumbent. Cuts are value-strict, so any
//!    candidate that could tie the optimum is never skipped, and the fold
//!    over per-stripe winners replays the strict serial [`beats`] order —
//!    the selected design is therefore identical at every pool size, even
//!    though *which* candidates get cut depends on thread timing (the
//!    [`SynthesizedDesign::candidates_examined`] /
//!    [`SynthesizedDesign::candidates_pruned`] counters are diagnostics,
//!    deterministic only on a 1-thread pool).
//! 3. **Warm starts and per-class memoization.** [`synthesize_warm`] seeds
//!    the incumbent from a neighboring deployment's optimum and scans
//!    stripes outward from its lattice coordinates; [`SynthCache`] memoizes
//!    whole searches per canonicalized spec with exactly-once fill
//!    semantics (mirroring `GatingCache`), so a fleet re-evaluation tick
//!    over K traffic classes performs at most K model-backed searches.

use archytas_hw::{
    window_cycles, AcceleratorConfig, FpgaPlatform, LatencyTables, PowerModel, ResourceModel,
    ResourceVector, S_BLOCK,
};
use archytas_mdfg::ProblemShape;
use archytas_par::{Memo, MemoStats, Pool};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bounds of the synthesizer's search lattice on the ZC706.
/// `30 × 24 × 125 = 90,000` candidate designs — the space quoted in
/// Sec. 7.3. Other boards scale these bounds with their DSP capacity (the
/// knobs are MAC/lane counts, so fabric size is what admits more of them).
pub const ND_MAX: usize = 30;
/// Upper bound of the `nm` knob (ZC706).
pub const NM_MAX: usize = 24;
/// Upper bound of the `s` knob (ZC706).
pub const S_MAX: usize = 125;

/// Knob bounds for a platform, scaled by DSP capacity relative to the
/// ZC706 (whose bounds are the paper's 90,000-point lattice).
pub fn knob_bounds(platform: &FpgaPlatform) -> (usize, usize, usize) {
    let scale = platform.capacity.dsp / FpgaPlatform::zc706().capacity.dsp;
    let f = |base: usize| ((base as f64 * scale).round() as usize).max(4);
    (f(ND_MAX), f(NM_MAX), f(S_MAX))
}

/// What the synthesizer optimizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Eq. 11: minimize power under a latency bound (ms per window).
    MinPowerUnderLatency(f64),
    /// Eq. 12: minimize latency under the resource constraint only.
    MinLatency,
}

/// A complete design request.
#[derive(Debug, Clone)]
pub struct DesignSpec {
    /// Workload the latency model is evaluated on.
    pub shape: ProblemShape,
    /// NLS iteration budget the design must sustain (`Iter` in Eq. 13).
    pub iterations: usize,
    /// Target FPGA.
    pub platform: FpgaPlatform,
    /// Optimization objective.
    pub objective: Objective,
}

impl DesignSpec {
    /// Spec for a power-optimal ZC706 design under `latency_ms`.
    pub fn zc706_power_optimal(latency_ms: f64) -> Self {
        Self {
            shape: ProblemShape::typical(),
            iterations: 6,
            platform: FpgaPlatform::zc706(),
            objective: Objective::MinPowerUnderLatency(latency_ms),
        }
    }
}

/// A synthesized design: the chosen configuration plus its modelled
/// latency, power and resources.
#[derive(Debug, Clone)]
pub struct SynthesizedDesign {
    /// Chosen customization parameters.
    pub config: AcceleratorConfig,
    /// Modelled per-window latency (ms) at the spec's iteration budget.
    pub latency_ms: f64,
    /// Modelled power (W).
    pub power_w: f64,
    /// Modelled resources.
    pub resources: ResourceVector,
    /// Lattice points the latency model was evaluated on (including
    /// incumbent-seeding probes). Run-dependent under parallel pruning —
    /// the shared bound tightens at thread-timing-dependent moments — and
    /// deterministic on a 1-thread pool.
    pub candidates_examined: usize,
    /// Resource-feasible lattice points skipped wholesale by
    /// incumbent-bound cuts (stripe, `(nm, s)`-subrange and `s`-block
    /// extents). Same determinism caveat as `candidates_examined`.
    pub candidates_pruned: usize,
}

impl SynthesizedDesign {
    /// `true` when `other` selects the same configuration with bit-equal
    /// modelled latency, power and resources — the equivalence contract of
    /// the pruned/warm/cached paths against [`synthesize_exhaustive`]
    /// (the search counters are run-dependent and deliberately excluded).
    pub fn same_design(&self, other: &SynthesizedDesign) -> bool {
        self.config == other.config
            && self.latency_ms.to_bits() == other.latency_ms.to_bits()
            && self.power_w.to_bits() == other.power_w.to_bits()
            && self.resources.lut.to_bits() == other.resources.lut.to_bits()
            && self.resources.ff.to_bits() == other.resources.ff.to_bits()
            && self.resources.bram.to_bits() == other.resources.bram.to_bits()
            && self.resources.dsp.to_bits() == other.resources.dsp.to_bits()
    }
}

/// Why synthesis failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// No lattice point satisfies both latency and resource constraints.
    Infeasible {
        /// The best (lowest) latency achievable within resources, ms.
        best_achievable_latency_ms: f64,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Infeasible {
                best_achievable_latency_ms,
            } => write!(
                f,
                "no feasible design: best achievable latency within resources is {best_achievable_latency_ms:.2} ms"
            ),
        }
    }
}

impl Error for SynthesisError {}

/// Strict "candidate beats incumbent" predicate shared by the serial and
/// striped scans. Lexicographic on (power, latency) for Eq. 11 and
/// (latency, power) for Eq. 12; ties keep the incumbent, so the earliest
/// candidate in `(nd, nm, s)` scan order wins — exactly the serial
/// best-so-far semantics.
fn beats(objective: Objective, lat: f64, p: f64, b: &SynthesizedDesign) -> bool {
    match objective {
        Objective::MinPowerUnderLatency(_) => {
            p < b.power_w || (p == b.power_w && lat < b.latency_ms)
        }
        Objective::MinLatency => lat < b.latency_ms || (lat == b.latency_ms && p < b.power_w),
    }
}

/// Partial scan result of one `nd` stripe of the lattice.
struct StripeScan {
    examined: usize,
    pruned: usize,
    best_latency_any: f64,
    best: Option<SynthesizedDesign>,
}

impl StripeScan {
    fn empty() -> Self {
        StripeScan {
            examined: 0,
            pruned: 0,
            best_latency_any: f64::INFINITY,
            best: None,
        }
    }
}

/// Scans the full `(nm, s)` plane at a fixed `nd` by direct model
/// evaluation — the unoptimized serial inner loops kept verbatim as the
/// gold reference for the pruned search.
fn scan_stripe_exhaustive(
    spec: &DesignSpec,
    resources: &ResourceModel,
    power: &PowerModel,
    nd: usize,
    nm_max: usize,
    s_max: usize,
) -> StripeScan {
    let clock_khz = spec.platform.clock_mhz * 1e3;
    let mut scan = StripeScan::empty();
    for nm in 1..=nm_max {
        // Resource feasibility is monotone in s: find the largest
        // feasible s once and never examine beyond it.
        let mut s_limit = 0usize;
        for s in (1..=s_max).rev() {
            if resources.fits(&AcceleratorConfig::new(nd, nm, s), &spec.platform) {
                s_limit = s;
                break;
            }
        }
        if s_limit == 0 {
            continue;
        }
        for s in 1..=s_limit {
            let config = AcceleratorConfig::new(nd, nm, s);
            scan.examined += 1;
            let lat = window_cycles(&spec.shape, &config, spec.iterations) / clock_khz;
            scan.best_latency_any = scan.best_latency_any.min(lat);
            let feasible = match spec.objective {
                Objective::MinPowerUnderLatency(bound) => lat <= bound,
                Objective::MinLatency => true,
            };
            if !feasible {
                continue;
            }
            let p = power.power_w(&config);
            let better = match &scan.best {
                None => true,
                Some(b) => beats(spec.objective, lat, p, b),
            };
            if better {
                scan.best = Some(SynthesizedDesign {
                    config,
                    latency_ms: lat,
                    power_w: p,
                    resources: resources.resources(&config),
                    candidates_examined: 0,
                    candidates_pruned: 0,
                });
            }
        }
    }
    scan
}

/// The exhaustive serial scan: every resource-feasible lattice point is
/// evaluated directly against the Eq. 13–17 models in `(nd, nm, s)` order,
/// with no tables, no pruning and no parallelism.
///
/// This is the semantic oracle of the synthesizer — the pruned, warm-started
/// and cached paths all promise to return a design for which
/// [`SynthesizedDesign::same_design`] holds against this scan's result
/// (and, on infeasible specs, a bit-equal
/// [`SynthesisError::Infeasible`] latency). It is deliberately kept in the
/// original unoptimized form; use [`synthesize`] for anything
/// latency-sensitive.
///
/// # Errors
///
/// Returns [`SynthesisError::Infeasible`] when no configuration meets the
/// constraints on the target platform.
pub fn synthesize_exhaustive(spec: &DesignSpec) -> Result<SynthesizedDesign, SynthesisError> {
    let resources = ResourceModel::calibrated();
    let power = PowerModel::for_platform(&spec.platform);
    let (nd_max, nm_max, s_max) = knob_bounds(&spec.platform);
    let mut examined = 0usize;
    let mut best: Option<SynthesizedDesign> = None;
    let mut best_latency_any = f64::INFINITY;
    for nd in 1..=nd_max {
        let stripe = scan_stripe_exhaustive(spec, &resources, &power, nd, nm_max, s_max);
        examined += stripe.examined;
        best_latency_any = best_latency_any.min(stripe.best_latency_any);
        if let Some(cand) = stripe.best {
            let better = match &best {
                None => true,
                Some(b) => beats(spec.objective, cand.latency_ms, cand.power_w, b),
            };
            if better {
                best = Some(cand);
            }
        }
    }
    match best {
        Some(mut d) => {
            d.candidates_examined = examined;
            Ok(d)
        }
        None => Err(SynthesisError::Infeasible {
            best_achievable_latency_ms: best_latency_any,
        }),
    }
}

/// Shared state of one pruned search: the memoized models plus the
/// tighten-only incumbent bound the stripes race against.
struct Search<'a> {
    spec: &'a DesignSpec,
    resources: ResourceModel,
    power: PowerModel,
    tables: LatencyTables,
    clock_khz: f64,
    nd_max: usize,
    nm_max: usize,
    s_max: usize,
    /// Bit pattern of the best primary-objective value (latency for
    /// Eq. 12, power for Eq. 11) achieved by any feasible candidate so
    /// far. Latencies and powers are positive finite, so the IEEE-754 bit
    /// order equals the value order and an atomic min over bits is an
    /// atomic min over values. Starts at `+inf`; only ever tightens.
    incumbent_bits: AtomicU64,
}

impl<'a> Search<'a> {
    fn new(spec: &'a DesignSpec) -> Self {
        let (nd_max, nm_max, s_max) = knob_bounds(&spec.platform);
        Search {
            resources: ResourceModel::calibrated(),
            power: PowerModel::for_platform(&spec.platform),
            tables: LatencyTables::new(&spec.shape, spec.iterations, nd_max, nm_max, s_max),
            clock_khz: spec.platform.clock_mhz * 1e3,
            nd_max,
            nm_max,
            s_max,
            incumbent_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            spec,
        }
    }

    /// Current incumbent bound (primary objective value), `+inf` until the
    /// first feasible candidate is seen.
    fn bound(&self) -> f64 {
        f64::from_bits(self.incumbent_bits.load(Ordering::Relaxed))
    }

    /// Tightens the shared bound to `value` if it improves it. Lock-free
    /// CAS-min; the bound can only ever decrease, so a stale read merely
    /// prunes less.
    fn tighten(&self, value: f64) {
        let bits = value.to_bits();
        let mut cur = self.incumbent_bits.load(Ordering::Relaxed);
        while bits < cur {
            match self.incumbent_bits.compare_exchange_weak(
                cur,
                bits,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    #[inline]
    fn latency_ms(&self, nd: usize, nm: usize, s: usize) -> f64 {
        self.tables.window_cycles_at(nd, nm, s) / self.clock_khz
    }

    /// Evaluates one candidate and, when feasible, tightens the shared
    /// bound with its primary value. Returns whether it was evaluated.
    fn probe(&self, nd: usize, nm: usize, s: usize) -> bool {
        if nd == 0 || nm == 0 || s == 0 || nd > self.nd_max || nm > self.nm_max || s > self.s_max {
            return false;
        }
        if !self
            .resources
            .fits(&AcceleratorConfig::new(nd, nm, s), &self.spec.platform)
        {
            return false;
        }
        let lat = self.latency_ms(nd, nm, s);
        match self.spec.objective {
            Objective::MinLatency => self.tighten(lat),
            Objective::MinPowerUnderLatency(bound) => {
                if lat <= bound {
                    self.tighten(
                        self.power
                            .power_with_s(self.power.power_prefix_w(nd, nm), s),
                    );
                }
            }
        }
        true
    }

    /// Seeds the incumbent bound before the sweep: the warm-start prior (if
    /// supplied and feasible on this spec), then a deterministic coarse
    /// probe grid over the lattice corners and the Cholesky sweet spot.
    /// Returns `(model evaluations spent, warm-start stripe center)`.
    fn seed(&self, warm: Option<&SynthesizedDesign>) -> (usize, Option<usize>) {
        let mut examined = 0usize;
        let mut center = None;
        if let Some(prior) = warm {
            let c = prior.config;
            if self.probe(c.nd, c.nm, c.s) {
                examined += 1;
                if self.bound().is_finite() {
                    center = Some(c.nd);
                }
            }
        }
        let s_star = self.tables.best_s_hint();
        let mut nd_probes = [
            self.nd_max,
            (self.nd_max * 3 / 4).max(1),
            (self.nd_max / 2).max(1),
            (self.nd_max / 4).max(1),
            1,
        ];
        nd_probes.sort_unstable();
        let mut nm_probes = [self.nm_max, (self.nm_max / 2).max(1), 1];
        nm_probes.sort_unstable();
        let mut last_nd = 0usize;
        for &nd in &nd_probes {
            if nd == last_nd {
                continue;
            }
            last_nd = nd;
            let mut last_nm = 0usize;
            for &nm in &nm_probes {
                if nm == last_nm {
                    continue;
                }
                last_nm = nm;
                let s_limit =
                    self.resources
                        .max_feasible_s(nd, nm, &self.spec.platform, self.s_max);
                if s_limit == 0 {
                    continue;
                }
                for s in [s_star.min(s_limit), s_limit] {
                    if self.probe(nd, nm, s) {
                        examined += 1;
                    }
                }
            }
        }
        (examined, center)
    }

    /// Total resource-feasible extent of one stripe — the points a bound
    /// cut of the whole stripe skips. O(`nm_max`) via the closed-form
    /// `max_feasible_s`.
    fn stripe_extent(&self, nd: usize) -> usize {
        let mut total = 0usize;
        let mut s_cap = self.s_max;
        for nm in 1..=self.nm_max {
            let s_limit = self
                .resources
                .max_feasible_s(nd, nm, &self.spec.platform, s_cap);
            if s_limit == 0 {
                break;
            }
            s_cap = s_limit;
            total += s_limit;
        }
        total
    }

    /// The pruned `(nm, s)` scan of one `nd` stripe.
    ///
    /// Every cut compares a monotonicity-safe *lower bound* of the skipped
    /// subrange **strictly** against the shared incumbent: a skipped
    /// candidate therefore has primary value strictly above some
    /// already-achieved feasible value, so it can neither beat nor tie the
    /// eventual optimum — which is why the fold over stripe winners still
    /// selects the exhaustive scan's design no matter how the bound
    /// tightens across threads.
    fn scan_stripe(&self, nd: usize) -> StripeScan {
        let mut scan = StripeScan::empty();
        let objective = self.spec.objective;
        // Stripe-level cut: O(1) bound against the whole (nm, s) plane.
        let stripe_bound = match objective {
            Objective::MinLatency => {
                self.tables
                    .window_cycles_lower_bound(nd, self.nm_max, self.s_max)
                    / self.clock_khz
            }
            Objective::MinPowerUnderLatency(_) => {
                self.power.power_with_s(self.power.power_prefix_w(nd, 1), 1)
            }
        };
        if stripe_bound > self.bound() {
            scan.pruned += self.stripe_extent(nd);
            return scan;
        }
        let mut s_cap = self.s_max;
        for nm in 1..=self.nm_max {
            // Resources are monotone in nm, so the feasible s range can
            // only shrink stripe-inward — and once it vanishes, no larger
            // nm fits either.
            let s_limit = self
                .resources
                .max_feasible_s(nd, nm, &self.spec.platform, s_cap);
            if s_limit == 0 {
                break;
            }
            s_cap = s_limit;
            // (nm, s)-subrange cut.
            let nm_bound = match objective {
                Objective::MinLatency => {
                    self.tables.window_cycles_lower_bound(nd, nm, s_limit) / self.clock_khz
                }
                Objective::MinPowerUnderLatency(_) => self
                    .power
                    .power_with_s(self.power.power_prefix_w(nd, nm), 1),
            };
            if nm_bound > self.bound() {
                scan.pruned += s_limit;
                continue;
            }
            let p_prefix = self.power.power_prefix_w(nd, nm);
            let pruning_active = self.bound().is_finite();
            let mut s = 1usize;
            's_axis: while s <= s_limit {
                // s-block cut: the Cholesky terms are not monotone in s
                // (Eq. 7's Evaluate serialization), so the s axis is tiled
                // into S_BLOCK-wide blocks with precomputed term minima.
                // Constraint-based cuts (MinPower's latency bound) are
                // gated on an incumbent existing, so an infeasible search
                // still evaluates every point and reports the exhaustive
                // scan's exact best-achievable latency.
                if pruning_active && s % S_BLOCK == 1 {
                    let block = (s - 1) / S_BLOCK;
                    let block_end = (s + S_BLOCK - 1).min(s_limit);
                    let lat_lb = self.tables.window_cycles_lower_bound_s_block(nd, nm, block)
                        / self.clock_khz;
                    let cut = match objective {
                        Objective::MinLatency => lat_lb > self.bound(),
                        Objective::MinPowerUnderLatency(bound) => lat_lb > bound,
                    };
                    if cut {
                        scan.pruned += block_end - s + 1;
                        s = block_end + 1;
                        continue 's_axis;
                    }
                }
                scan.examined += 1;
                let lat = self.latency_ms(nd, nm, s);
                scan.best_latency_any = scan.best_latency_any.min(lat);
                let feasible = match objective {
                    Objective::MinPowerUnderLatency(bound) => lat <= bound,
                    Objective::MinLatency => true,
                };
                if !feasible {
                    s += 1;
                    continue 's_axis;
                }
                let p = self.power.power_with_s(p_prefix, s);
                if let Objective::MinPowerUnderLatency(_) = objective {
                    // Power is strictly increasing in s: once this
                    // latency-feasible candidate's power exceeds the
                    // incumbent, every later s in the run costs strictly
                    // more and can neither beat nor tie it.
                    if p > self.bound() {
                        scan.pruned += s_limit - s;
                        break 's_axis;
                    }
                }
                let better = match &scan.best {
                    None => true,
                    Some(b) => beats(objective, lat, p, b),
                };
                if better {
                    let config = AcceleratorConfig::new(nd, nm, s);
                    scan.best = Some(SynthesizedDesign {
                        config,
                        latency_ms: lat,
                        power_w: p,
                        resources: self.resources.resources(&config),
                        candidates_examined: 0,
                        candidates_pruned: 0,
                    });
                    self.tighten(match objective {
                        Objective::MinLatency => lat,
                        Objective::MinPowerUnderLatency(_) => p,
                    });
                }
                s += 1;
            }
        }
        scan
    }
}

/// The pruned search shared by the cold, warm and cached entry points.
fn search_with(
    spec: &DesignSpec,
    pool: &Pool,
    warm: Option<&SynthesizedDesign>,
) -> Result<SynthesizedDesign, SynthesisError> {
    let search = Search::new(spec);
    let (probe_examined, center) = search.seed(warm);
    let mut nds: Vec<usize> = (1..=search.nd_max).collect();
    if let Some(c) = center {
        // Warm start: scan outward from the prior's stripe so near
        // neighbors — where the new optimum almost certainly lives —
        // tighten the bound before the far stripes are even looked at.
        nds.sort_by_key(|&nd| (nd.abs_diff(c), nd));
    }
    // A stripe is up to ~nm_max·s_max model evaluations — far above any
    // sensible per-item threshold — so gate only on "more than one stripe".
    let stripes = pool
        .with_serial_threshold(pool.serial_threshold().min(2))
        .par_map(&nds, |&nd| search.scan_stripe(nd));

    // The fold must replay the strict serial order, so re-sort the
    // (possibly outward-ordered) stripes back to ascending nd first.
    let mut tagged: Vec<(usize, StripeScan)> = nds.into_iter().zip(stripes).collect();
    tagged.sort_by_key(|&(nd, _)| nd);

    let mut examined = probe_examined;
    let mut pruned = 0usize;
    let mut best: Option<SynthesizedDesign> = None;
    let mut best_latency_any = f64::INFINITY;
    for (_, stripe) in tagged {
        examined += stripe.examined;
        pruned += stripe.pruned;
        best_latency_any = best_latency_any.min(stripe.best_latency_any);
        if let Some(cand) = stripe.best {
            let better = match &best {
                None => true,
                Some(b) => beats(spec.objective, cand.latency_ms, cand.power_w, b),
            };
            if better {
                best = Some(cand);
            }
        }
    }

    match best {
        Some(mut d) => {
            d.candidates_examined = examined;
            d.candidates_pruned = pruned;
            Ok(d)
        }
        // No feasible candidate means the bound never left +inf, so no cut
        // ever fired: every resource-feasible point was evaluated and the
        // reported best-achievable latency is the exhaustive scan's, bit
        // for bit.
        None => Err(SynthesisError::Infeasible {
            best_achievable_latency_ms: best_latency_any,
        }),
    }
}

/// Runs the synthesizer on the global pool.
///
/// # Errors
///
/// Returns [`SynthesisError::Infeasible`] when no configuration meets the
/// constraints on the target platform.
pub fn synthesize(spec: &DesignSpec) -> Result<SynthesizedDesign, SynthesisError> {
    synthesize_with(spec, &Pool::global())
}

/// Runs the synthesizer on an explicit pool.
///
/// The lattice is striped over `nd`; each stripe runs the pruned `(nm, s)`
/// scan against the shared incumbent bound, and the per-stripe winners are
/// folded in ascending `nd` order with the same strict [`beats`] predicate
/// as the serial best-so-far loop. Returns a design for which
/// [`SynthesizedDesign::same_design`] holds against
/// [`synthesize_exhaustive`], for any thread count.
///
/// # Errors
///
/// Returns [`SynthesisError::Infeasible`] when no configuration meets the
/// constraints on the target platform.
pub fn synthesize_with(
    spec: &DesignSpec,
    pool: &Pool,
) -> Result<SynthesizedDesign, SynthesisError> {
    search_with(spec, pool, None)
}

/// Warm-started re-synthesis on the global pool: seeds the incumbent bound
/// from `prior` — a neighboring deployment's optimum, or this class's
/// previous design before a workload drift — and scans stripes outward from
/// its lattice coordinates, so nearly all of the lattice is cut by the
/// already-tight bound. Falls back to the cold pruned sweep (probe-seeded,
/// ascending stripes) when the prior is infeasible on `spec`.
///
/// The result is exactly [`synthesize`]'s: the prior only contributes an
/// achieved objective value to prune against, never a candidate of its own.
///
/// # Errors
///
/// Returns [`SynthesisError::Infeasible`] when no configuration meets the
/// constraints on the target platform.
pub fn synthesize_warm(
    spec: &DesignSpec,
    prior: &SynthesizedDesign,
) -> Result<SynthesizedDesign, SynthesisError> {
    synthesize_warm_with(spec, prior, &Pool::global())
}

/// [`synthesize_warm`] on an explicit pool.
///
/// # Errors
///
/// Returns [`SynthesisError::Infeasible`] when no configuration meets the
/// constraints on the target platform.
pub fn synthesize_warm_with(
    spec: &DesignSpec,
    prior: &SynthesizedDesign,
    pool: &Pool,
) -> Result<SynthesizedDesign, SynthesisError> {
    search_with(spec, pool, Some(prior))
}

/// Grid the [`SynthCache`] snaps `MinPowerUnderLatency` bounds onto
/// (milliseconds): traffic classes whose constraints differ by less than
/// one quantum share a cache entry (and therefore a design).
pub const LATENCY_QUANTUM_MS: f64 = 0.01;

/// Cache key: the full canonicalized input of a search. Platforms are
/// identified by name, clock bits and capacity bits so no float rounding or
/// custom board can alias two different lattices; the objective is keyed by
/// discriminant plus the (already quantized) bound's bit pattern.
type SynthKey = (ProblemShape, usize, &'static str, u64, [u64; 4], u8, u64);

/// Exactly-once memoization of whole design-space searches, shared across
/// a serving fleet.
///
/// A fleet re-evaluation tick maps K traffic classes onto a design
/// portfolio; without caching, every class pays a full lattice search per
/// tick despite most classes resolving to identical specs. This cache keys
/// searches by canonicalized spec — platform identity, workload shape,
/// iteration budget, objective with the latency constraint quantized to
/// [`LATENCY_QUANTUM_MS`] — and computes each exactly once (an
/// [`archytas_par::Memo`], safe under concurrent re-evaluation ticks,
/// mirroring `GatingCache`), so at most K model-backed searches run
/// fleet-wide and repeat lookups return in microseconds.
///
/// Canonicalization always *floors* the latency bound onto the grid, so a
/// cached design also satisfies the original (looser-or-equal) constraint;
/// the design returned is the exact [`synthesize_exhaustive`]-identical
/// optimum *of the canonical spec* (asserted by the equivalence suite).
/// Infeasible outcomes are cached too — re-asking for an impossible spec
/// is exactly the case a fleet tick must not pay a full sweep for.
#[derive(Debug, Default)]
pub struct SynthCache {
    searches: Memo<SynthKey, Result<SynthesizedDesign, SynthesisError>>,
}

impl SynthCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The spec a request is cached (and synthesized) under: identical to
    /// `spec` except that a `MinPowerUnderLatency` bound is floored onto
    /// the [`LATENCY_QUANTUM_MS`] grid. Bounds below one quantum are kept
    /// verbatim rather than floored to an always-infeasible zero.
    pub fn canonical_spec(spec: &DesignSpec) -> DesignSpec {
        let objective = match spec.objective {
            Objective::MinLatency => Objective::MinLatency,
            Objective::MinPowerUnderLatency(bound) => {
                let ticks = (bound / LATENCY_QUANTUM_MS).floor();
                let mut snapped = ticks * LATENCY_QUANTUM_MS;
                if snapped > bound {
                    // Guard against the floor/multiply round-trip rounding
                    // up past the requested bound (e.g. 2.5 / 0.01).
                    snapped = (ticks - 1.0) * LATENCY_QUANTUM_MS;
                }
                if ticks >= 1.0 {
                    Objective::MinPowerUnderLatency(snapped)
                } else {
                    Objective::MinPowerUnderLatency(bound)
                }
            }
        };
        DesignSpec {
            objective,
            ..spec.clone()
        }
    }

    fn key(spec: &DesignSpec) -> SynthKey {
        let (tag, bound_bits) = match spec.objective {
            Objective::MinPowerUnderLatency(b) => (0u8, b.to_bits()),
            Objective::MinLatency => (1u8, 0u64),
        };
        let cap = &spec.platform.capacity;
        (
            spec.shape,
            spec.iterations,
            spec.platform.name,
            spec.platform.clock_mhz.to_bits(),
            [
                cap.lut.to_bits(),
                cap.ff.to_bits(),
                cap.bram.to_bits(),
                cap.dsp.to_bits(),
            ],
            tag,
            bound_bits,
        )
    }

    /// The design for `spec`'s canonical form, synthesized on the global
    /// pool on first request and served from the cache afterwards.
    ///
    /// # Errors
    ///
    /// Returns the (equally cached) [`SynthesisError::Infeasible`] when the
    /// canonical spec admits no design.
    pub fn synthesize(&self, spec: &DesignSpec) -> Result<SynthesizedDesign, SynthesisError> {
        self.synthesize_with(spec, &Pool::global())
    }

    /// [`SynthCache::synthesize`] on an explicit pool (used only on a
    /// miss; hits never touch the pool).
    ///
    /// # Errors
    ///
    /// Returns the cached [`SynthesisError::Infeasible`] when the canonical
    /// spec admits no design.
    pub fn synthesize_with(
        &self,
        spec: &DesignSpec,
        pool: &Pool,
    ) -> Result<SynthesizedDesign, SynthesisError> {
        let canon = Self::canonical_spec(spec);
        self.searches
            .get_or_compute(Self::key(&canon), || synthesize_with(&canon, pool))
    }

    /// Searches actually run (== distinct canonical specs requested).
    pub fn searches(&self) -> usize {
        self.searches.misses()
    }

    /// Requests served from the cache.
    pub fn hits(&self) -> usize {
        self.searches.hits()
    }

    /// Point-in-time counter snapshot for bench/serving telemetry.
    pub fn stats(&self) -> MemoStats {
        self.searches.stats()
    }
}

/// One point of the latency-vs-power Pareto frontier (Fig. 14).
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// The design at this point.
    pub design: SynthesizedDesign,
    /// The latency constraint that produced it.
    pub latency_constraint_ms: f64,
}

/// Sweeps the latency constraint to trace the power-optimal Pareto frontier
/// (Fig. 14's square markers), on the global pool.
pub fn pareto_frontier(
    base: &DesignSpec,
    latency_range_ms: (f64, f64),
    steps: usize,
) -> Vec<ParetoPoint> {
    pareto_frontier_with(base, latency_range_ms, steps, &Pool::global())
}

/// Pareto sweep on an explicit pool.
///
/// The per-bound synthesis runs are independent and fan out over the pool
/// (each one scans its lattice serially — the nested-parallelism guard in
/// `archytas-par` sees to that); the dominance filter then folds the results
/// in ascending-bound order, which is the exact serial construction.
pub fn pareto_frontier_with(
    base: &DesignSpec,
    latency_range_ms: (f64, f64),
    steps: usize,
    pool: &Pool,
) -> Vec<ParetoPoint> {
    assert!(steps >= 2, "pareto_frontier: need at least two steps");
    let (lo, hi) = latency_range_ms;
    let bounds: Vec<f64> = (0..steps)
        .map(|i| lo + (hi - lo) * i as f64 / (steps - 1) as f64)
        .collect();
    let designs = pool
        .with_serial_threshold(pool.serial_threshold().min(2))
        .par_map(&bounds, |&bound| {
            synthesize_with(
                &DesignSpec {
                    objective: Objective::MinPowerUnderLatency(bound),
                    ..base.clone()
                },
                pool,
            )
            .ok()
        });
    let mut out: Vec<ParetoPoint> = Vec::new();
    for (&bound, design) in bounds.iter().zip(designs) {
        let Some(design) = design else { continue };
        // Keep only non-dominated points.
        let dominated = out.iter().any(|p| {
            p.design.latency_ms <= design.latency_ms && p.design.power_w <= design.power_w
        });
        if !dominated {
            out.retain(|p| {
                !(design.latency_ms <= p.design.latency_ms && design.power_w <= p.design.power_w)
            });
            out.push(ParetoPoint {
                design,
                latency_constraint_ms: bound,
            });
        }
    }
    out.sort_by(|a, b| {
        a.design
            .latency_ms
            .partial_cmp(&b.design.latency_ms)
            .expect("finite latencies")
    });
    out
}

/// Best-effort Pareto validation (Sec. 7.3, "Validation"): perturb each
/// frontier design's knobs and verify no perturbed neighbour dominates it.
/// Returns the perturbed (latency, power) points for plotting and the number
/// of dominating neighbours found (0 for a valid frontier).
pub fn validate_by_perturbation(
    spec: &DesignSpec,
    frontier: &[ParetoPoint],
) -> (Vec<(f64, f64)>, usize) {
    let resources = ResourceModel::calibrated();
    let power = PowerModel::for_platform(&spec.platform);
    let clock_khz = spec.platform.clock_mhz * 1e3;
    // Frontier points are validated independently; per-point results are
    // concatenated in frontier order, matching the serial construction.
    let per_point = Pool::global()
        .with_serial_threshold(2)
        .par_map(frontier, |point| {
            let mut perturbed = Vec::new();
            let mut violations = 0usize;
            let c = point.design.config;
            for (dnd, dnm, ds) in [
                (1i64, 0i64, 0i64),
                (-1, 0, 0),
                (0, 1, 0),
                (0, -1, 0),
                (0, 0, 4),
                (0, 0, -4),
                (1, 1, 4),
                (-1, -1, -4),
            ] {
                let nd = c.nd as i64 + dnd;
                let nm = c.nm as i64 + dnm;
                let s = c.s as i64 + ds;
                if nd < 1 || nm < 1 || s < 1 {
                    continue;
                }
                let pc = AcceleratorConfig::new(nd as usize, nm as usize, s as usize);
                if !resources.fits(&pc, &spec.platform) {
                    continue;
                }
                let lat = window_cycles(&spec.shape, &pc, spec.iterations) / clock_khz;
                let pw = power.power_w(&pc);
                perturbed.push((lat, pw));
                // Does this perturbation dominate any frontier point?
                if frontier
                    .iter()
                    .any(|f| lat < f.design.latency_ms - 1e-9 && pw < f.design.power_w - 1e-9)
                {
                    violations += 1;
                }
            }
            (perturbed, violations)
        });
    let mut perturbed = Vec::new();
    let mut violations = 0usize;
    for (mut pts, v) in per_point {
        perturbed.append(&mut pts);
        violations += v;
    }
    (perturbed, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use archytas_hw::{HIGH_PERF, LOW_POWER};

    #[test]
    fn design_space_size_matches_paper() {
        assert_eq!(ND_MAX * NM_MAX * S_MAX, 90_000);
    }

    #[test]
    fn synthesizer_is_fast() {
        let spec = DesignSpec::zc706_power_optimal(20.0);
        let start = std::time::Instant::now();
        let design = synthesize(&spec).expect("feasible");
        let elapsed = start.elapsed();
        assert!(
            elapsed.as_millis() < 3_000,
            "synthesis took {elapsed:?}, paper quotes ~3 s end-to-end"
        );
        // Between evaluation and bound cuts, the search must have
        // dispatched a meaningful share of the 90k lattice — and actually
        // cut something.
        assert!(design.candidates_examined + design.candidates_pruned > 10_000);
        assert!(design.candidates_pruned > 0, "no bound cut ever fired");
    }

    #[test]
    fn constraints_are_respected() {
        for bound in [5.0, 10.0, 20.0, 33.0] {
            let spec = DesignSpec::zc706_power_optimal(bound);
            let design = synthesize(&spec).expect("feasible");
            assert!(
                design.latency_ms <= bound,
                "bound {bound}: latency {}",
                design.latency_ms
            );
            assert!(design.resources.fits(&spec.platform.capacity));
        }
    }

    #[test]
    fn tighter_latency_costs_more_power() {
        let fast = synthesize(&DesignSpec::zc706_power_optimal(2.5)).expect("feasible");
        let slow = synthesize(&DesignSpec::zc706_power_optimal(30.0)).expect("feasible");
        assert!(fast.power_w > slow.power_w);
        assert!(fast.latency_ms < slow.latency_ms);
    }

    #[test]
    fn min_latency_uses_the_fabric() {
        let spec = DesignSpec {
            objective: Objective::MinLatency,
            ..DesignSpec::zc706_power_optimal(0.0)
        };
        let design = synthesize(&spec).expect("feasible");
        // The fastest design should be near a resource wall (like High-Perf
        // is DSP-limited).
        let util = design.resources.dsp / spec.platform.capacity.dsp;
        assert!(util > 0.8, "DSP utilization {util:.2}");
    }

    #[test]
    fn impossible_latency_is_infeasible() {
        let spec = DesignSpec::zc706_power_optimal(0.001);
        match synthesize(&spec) {
            Err(SynthesisError::Infeasible {
                best_achievable_latency_ms,
            }) => assert!(best_achievable_latency_ms > 0.001),
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn named_designs_are_near_synthesized_ones() {
        // Synthesizing under the paper's two constraints should produce
        // designs in the same region of the space as Tbl. 2's.
        let hp = synthesize(&DesignSpec::zc706_power_optimal(2.5)).expect("feasible");
        assert!(
            hp.config.nd >= HIGH_PERF.nd / 2,
            "fast design has many D-Schur MACs: {:?}",
            hp.config
        );
        let lp = synthesize(&DesignSpec::zc706_power_optimal(3.5)).expect("feasible");
        assert!(lp.config.nd <= hp.config.nd);
        let _ = LOW_POWER;
    }

    #[test]
    fn frontier_is_monotone() {
        let base = DesignSpec::zc706_power_optimal(20.0);
        let frontier = pareto_frontier(&base, (2.2, 8.0), 10);
        assert!(
            frontier.len() >= 3,
            "frontier has {} points",
            frontier.len()
        );
        for w in frontier.windows(2) {
            assert!(w[0].design.latency_ms <= w[1].design.latency_ms);
            assert!(
                w[0].design.power_w >= w[1].design.power_w,
                "power must fall as latency relaxes"
            );
        }
    }

    #[test]
    fn pruned_scan_matches_exhaustive_for_any_thread_count() {
        for objective in [Objective::MinPowerUnderLatency(4.0), Objective::MinLatency] {
            let spec = DesignSpec {
                objective,
                ..DesignSpec::zc706_power_optimal(4.0)
            };
            let oracle = synthesize_exhaustive(&spec).expect("feasible");
            for threads in [1, 2, 8] {
                let pruned =
                    synthesize_with(&spec, &Pool::with_threads(threads)).expect("feasible");
                assert!(
                    pruned.same_design(&oracle),
                    "{objective:?} @ {threads} threads: {:?} vs {:?}",
                    pruned.config,
                    oracle.config
                );
            }
        }
    }

    #[test]
    fn warm_start_matches_cold_and_prunes_more() {
        let spec = DesignSpec {
            objective: Objective::MinLatency,
            ..DesignSpec::zc706_power_optimal(0.0)
        };
        let cold = synthesize(&spec).expect("feasible");
        // A neighboring deployment: same board, slightly drifted workload.
        let mut drifted = spec.clone();
        drifted.shape.features += 20;
        drifted.shape.marginalized_features += 3;
        let neighbor = synthesize(&drifted).expect("feasible");
        let warm = synthesize_warm(&spec, &neighbor).expect("feasible");
        assert!(warm.same_design(&cold));
        assert!(
            warm.candidates_examined < cold.candidates_examined,
            "warm start must examine less: {} vs {}",
            warm.candidates_examined,
            cold.candidates_examined
        );
    }

    #[test]
    fn infeasible_prior_falls_back_to_cold_sweep() {
        let spec = DesignSpec::zc706_power_optimal(3.0);
        // A prior from a much larger board: its knobs exceed the ZC706
        // lattice entirely, so warm seeding must be skipped.
        let big = DesignSpec {
            platform: FpgaPlatform::virtex7_690t(),
            objective: Objective::MinLatency,
            ..DesignSpec::zc706_power_optimal(0.0)
        };
        let prior = synthesize(&big).expect("feasible");
        assert!(prior.config.nd > ND_MAX);
        let warm = synthesize_warm(&spec, &prior).expect("feasible");
        let oracle = synthesize_exhaustive(&spec).expect("feasible");
        assert!(warm.same_design(&oracle));
    }

    #[test]
    fn infeasible_spec_reports_exhaustive_error_bits() {
        let spec = DesignSpec::zc706_power_optimal(0.001);
        let oracle = synthesize_exhaustive(&spec).expect_err("infeasible");
        for threads in [1, 8] {
            let pruned =
                synthesize_with(&spec, &Pool::with_threads(threads)).expect_err("infeasible");
            let (
                SynthesisError::Infeasible {
                    best_achievable_latency_ms: a,
                },
                SynthesisError::Infeasible {
                    best_achievable_latency_ms: b,
                },
            ) = (&pruned, &oracle);
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn synth_cache_serves_repeat_requests_without_searching() {
        let cache = SynthCache::new();
        let spec = DesignSpec::zc706_power_optimal(5.0);
        let first = cache.synthesize(&spec).expect("feasible");
        let again = cache.synthesize(&spec).expect("feasible");
        assert!(first.same_design(&again));
        assert_eq!(cache.searches(), 1);
        assert_eq!(cache.hits(), 1);
        // A bound within the same quantum shares the entry...
        let near = DesignSpec::zc706_power_optimal(5.0 + LATENCY_QUANTUM_MS / 4.0);
        cache.synthesize(&near).expect("feasible");
        assert_eq!(cache.searches(), 1, "same quantum must not re-search");
        // ...while a genuinely different constraint does not.
        cache
            .synthesize(&DesignSpec::zc706_power_optimal(7.0))
            .expect("feasible");
        assert_eq!(cache.searches(), 2);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn canonical_bound_never_exceeds_the_request() {
        for bound in [2.5, 5.0, 5.004999, 0.001, 33.333333, 20.0] {
            let spec = DesignSpec::zc706_power_optimal(bound);
            let canon = SynthCache::canonical_spec(&spec);
            let Objective::MinPowerUnderLatency(snapped) = canon.objective else {
                panic!("objective kind must be preserved");
            };
            assert!(snapped <= bound, "{snapped} > requested {bound}");
            assert!(bound - snapped <= LATENCY_QUANTUM_MS, "over-tightened");
        }
    }

    #[test]
    fn parallel_frontier_matches_serial() {
        let base = DesignSpec::zc706_power_optimal(20.0);
        let serial = pareto_frontier_with(&base, (2.2, 8.0), 10, &Pool::with_threads(1));
        let par = pareto_frontier_with(&base, (2.2, 8.0), 10, &Pool::with_threads(8));
        assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.design.config, b.design.config);
            assert_eq!(a.design.latency_ms.to_bits(), b.design.latency_ms.to_bits());
            assert_eq!(a.design.power_w.to_bits(), b.design.power_w.to_bits());
            assert_eq!(
                a.latency_constraint_ms.to_bits(),
                b.latency_constraint_ms.to_bits()
            );
        }
    }

    #[test]
    fn perturbation_validates_frontier() {
        let base = DesignSpec::zc706_power_optimal(20.0);
        let frontier = pareto_frontier(&base, (2.2, 8.0), 8);
        let (points, violations) = validate_by_perturbation(&base, &frontier);
        assert!(!points.is_empty());
        assert_eq!(
            violations, 0,
            "no perturbed design may dominate the frontier"
        );
    }
}
