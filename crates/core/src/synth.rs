//! The hardware synthesizer (paper Sec. 5).
//!
//! Given a workload shape and design constraints, find the customization
//! parameters `(nd, nm, s)` that optimize the objective:
//!
//! * Eq. 11 — minimize power subject to latency and resource constraints;
//! * Eq. 12 — minimize latency subject to resource constraints.
//!
//! The feasible set is a 3-variable integer lattice of ≈90,000 points
//! (`nd ∈ 1..=30`, `nm ∈ 1..=24`, `s ∈ 1..=125`). The paper solves the
//! relaxation with YALMIP in milliseconds; an exact scan with monotone
//! pruning is both faster to implement and strictly optimal, and still runs
//! in single-digit milliseconds — against the ~15 *years* an exhaustive
//! search through FPGA synthesis would take (Sec. 7.3).

use archytas_hw::{
    window_cycles, AcceleratorConfig, FpgaPlatform, PowerModel, ResourceModel, ResourceVector,
};
use archytas_mdfg::ProblemShape;
use archytas_par::Pool;
use std::error::Error;
use std::fmt;

/// Bounds of the synthesizer's search lattice on the ZC706.
/// `30 × 24 × 125 = 90,000` candidate designs — the space quoted in
/// Sec. 7.3. Other boards scale these bounds with their DSP capacity (the
/// knobs are MAC/lane counts, so fabric size is what admits more of them).
pub const ND_MAX: usize = 30;
/// Upper bound of the `nm` knob (ZC706).
pub const NM_MAX: usize = 24;
/// Upper bound of the `s` knob (ZC706).
pub const S_MAX: usize = 125;

/// Knob bounds for a platform, scaled by DSP capacity relative to the
/// ZC706 (whose bounds are the paper's 90,000-point lattice).
pub fn knob_bounds(platform: &FpgaPlatform) -> (usize, usize, usize) {
    let scale = platform.capacity.dsp / FpgaPlatform::zc706().capacity.dsp;
    let f = |base: usize| ((base as f64 * scale).round() as usize).max(4);
    (f(ND_MAX), f(NM_MAX), f(S_MAX))
}

/// What the synthesizer optimizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Eq. 11: minimize power under a latency bound (ms per window).
    MinPowerUnderLatency(f64),
    /// Eq. 12: minimize latency under the resource constraint only.
    MinLatency,
}

/// A complete design request.
#[derive(Debug, Clone)]
pub struct DesignSpec {
    /// Workload the latency model is evaluated on.
    pub shape: ProblemShape,
    /// NLS iteration budget the design must sustain (`Iter` in Eq. 13).
    pub iterations: usize,
    /// Target FPGA.
    pub platform: FpgaPlatform,
    /// Optimization objective.
    pub objective: Objective,
}

impl DesignSpec {
    /// Spec for a power-optimal ZC706 design under `latency_ms`.
    pub fn zc706_power_optimal(latency_ms: f64) -> Self {
        Self {
            shape: ProblemShape::typical(),
            iterations: 6,
            platform: FpgaPlatform::zc706(),
            objective: Objective::MinPowerUnderLatency(latency_ms),
        }
    }
}

/// A synthesized design: the chosen configuration plus its modelled
/// latency, power and resources.
#[derive(Debug, Clone)]
pub struct SynthesizedDesign {
    /// Chosen customization parameters.
    pub config: AcceleratorConfig,
    /// Modelled per-window latency (ms) at the spec's iteration budget.
    pub latency_ms: f64,
    /// Modelled power (W).
    pub power_w: f64,
    /// Modelled resources.
    pub resources: ResourceVector,
    /// Candidate designs examined before pruning/selection.
    pub candidates_examined: usize,
}

/// Why synthesis failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// No lattice point satisfies both latency and resource constraints.
    Infeasible {
        /// The best (lowest) latency achievable within resources, ms.
        best_achievable_latency_ms: f64,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Infeasible {
                best_achievable_latency_ms,
            } => write!(
                f,
                "no feasible design: best achievable latency within resources is {best_achievable_latency_ms:.2} ms"
            ),
        }
    }
}

impl Error for SynthesisError {}

/// Strict "candidate beats incumbent" predicate shared by the serial and
/// striped scans. Lexicographic on (power, latency) for Eq. 11 and
/// (latency, power) for Eq. 12; ties keep the incumbent, so the earliest
/// candidate in `(nd, nm, s)` scan order wins — exactly the serial
/// best-so-far semantics.
fn beats(objective: Objective, lat: f64, p: f64, b: &SynthesizedDesign) -> bool {
    match objective {
        Objective::MinPowerUnderLatency(_) => {
            p < b.power_w || (p == b.power_w && lat < b.latency_ms)
        }
        Objective::MinLatency => lat < b.latency_ms || (lat == b.latency_ms && p < b.power_w),
    }
}

/// Partial scan result of one `nd` stripe of the lattice.
struct StripeScan {
    examined: usize,
    best_latency_any: f64,
    best: Option<SynthesizedDesign>,
}

/// Scans the full `(nm, s)` plane at a fixed `nd` — the serial inner loops of
/// the branch-and-bound, unchanged.
fn scan_stripe(
    spec: &DesignSpec,
    resources: &ResourceModel,
    power: &PowerModel,
    nd: usize,
    nm_max: usize,
    s_max: usize,
) -> StripeScan {
    let clock_khz = spec.platform.clock_mhz * 1e3;
    let mut scan = StripeScan {
        examined: 0,
        best_latency_any: f64::INFINITY,
        best: None,
    };
    for nm in 1..=nm_max {
        // Resource feasibility is monotone in s: find the largest
        // feasible s once and never examine beyond it.
        let mut s_limit = 0usize;
        for s in (1..=s_max).rev() {
            if resources.fits(&AcceleratorConfig::new(nd, nm, s), &spec.platform) {
                s_limit = s;
                break;
            }
        }
        if s_limit == 0 {
            continue;
        }
        for s in 1..=s_limit {
            let config = AcceleratorConfig::new(nd, nm, s);
            scan.examined += 1;
            let lat = window_cycles(&spec.shape, &config, spec.iterations) / clock_khz;
            scan.best_latency_any = scan.best_latency_any.min(lat);
            let feasible = match spec.objective {
                Objective::MinPowerUnderLatency(bound) => lat <= bound,
                Objective::MinLatency => true,
            };
            if !feasible {
                continue;
            }
            let p = power.power_w(&config);
            let better = match &scan.best {
                None => true,
                Some(b) => beats(spec.objective, lat, p, b),
            };
            if better {
                scan.best = Some(SynthesizedDesign {
                    config,
                    latency_ms: lat,
                    power_w: p,
                    resources: resources.resources(&config),
                    candidates_examined: 0,
                });
            }
        }
    }
    scan
}

/// Runs the synthesizer on the global pool.
///
/// # Errors
///
/// Returns [`SynthesisError::Infeasible`] when no configuration meets the
/// constraints on the target platform.
pub fn synthesize(spec: &DesignSpec) -> Result<SynthesizedDesign, SynthesisError> {
    synthesize_with(spec, &Pool::global())
}

/// Runs the synthesizer on an explicit pool.
///
/// The lattice is striped over `nd`: each stripe runs the serial `(nm, s)`
/// scan (including the monotone `s_limit` pruning) independently, and the
/// per-stripe winners are folded in ascending `nd` order with the same strict
/// [`beats`] predicate as the serial best-so-far loop. Because the predicate
/// is a strict lexicographic order and ties keep the earlier candidate, the
/// fold selects the identical design the serial scan does, for any thread
/// count.
///
/// # Errors
///
/// Returns [`SynthesisError::Infeasible`] when no configuration meets the
/// constraints on the target platform.
pub fn synthesize_with(
    spec: &DesignSpec,
    pool: &Pool,
) -> Result<SynthesizedDesign, SynthesisError> {
    let resources = ResourceModel::calibrated();
    let power = PowerModel::for_platform(&spec.platform);
    let (nd_max, nm_max, s_max) = knob_bounds(&spec.platform);
    let nds: Vec<usize> = (1..=nd_max).collect();
    // A stripe is ~nm_max·s_max model evaluations — far above any sensible
    // per-item threshold — so gate only on "more than one stripe".
    let stripes = pool
        .with_serial_threshold(pool.serial_threshold().min(2))
        .par_map(&nds, |&nd| {
            scan_stripe(spec, &resources, &power, nd, nm_max, s_max)
        });

    let mut examined = 0usize;
    let mut best: Option<SynthesizedDesign> = None;
    let mut best_latency_any = f64::INFINITY;
    for stripe in stripes {
        examined += stripe.examined;
        best_latency_any = best_latency_any.min(stripe.best_latency_any);
        if let Some(cand) = stripe.best {
            let better = match &best {
                None => true,
                Some(b) => beats(spec.objective, cand.latency_ms, cand.power_w, b),
            };
            if better {
                best = Some(cand);
            }
        }
    }

    match best {
        Some(mut d) => {
            d.candidates_examined = examined;
            Ok(d)
        }
        None => Err(SynthesisError::Infeasible {
            best_achievable_latency_ms: best_latency_any,
        }),
    }
}

/// One point of the latency-vs-power Pareto frontier (Fig. 14).
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// The design at this point.
    pub design: SynthesizedDesign,
    /// The latency constraint that produced it.
    pub latency_constraint_ms: f64,
}

/// Sweeps the latency constraint to trace the power-optimal Pareto frontier
/// (Fig. 14's square markers), on the global pool.
pub fn pareto_frontier(
    base: &DesignSpec,
    latency_range_ms: (f64, f64),
    steps: usize,
) -> Vec<ParetoPoint> {
    pareto_frontier_with(base, latency_range_ms, steps, &Pool::global())
}

/// Pareto sweep on an explicit pool.
///
/// The per-bound synthesis runs are independent and fan out over the pool
/// (each one scans its lattice serially — the nested-parallelism guard in
/// `archytas-par` sees to that); the dominance filter then folds the results
/// in ascending-bound order, which is the exact serial construction.
pub fn pareto_frontier_with(
    base: &DesignSpec,
    latency_range_ms: (f64, f64),
    steps: usize,
    pool: &Pool,
) -> Vec<ParetoPoint> {
    assert!(steps >= 2, "pareto_frontier: need at least two steps");
    let (lo, hi) = latency_range_ms;
    let bounds: Vec<f64> = (0..steps)
        .map(|i| lo + (hi - lo) * i as f64 / (steps - 1) as f64)
        .collect();
    let designs = pool
        .with_serial_threshold(pool.serial_threshold().min(2))
        .par_map(&bounds, |&bound| {
            synthesize_with(
                &DesignSpec {
                    objective: Objective::MinPowerUnderLatency(bound),
                    ..base.clone()
                },
                pool,
            )
            .ok()
        });
    let mut out: Vec<ParetoPoint> = Vec::new();
    for (&bound, design) in bounds.iter().zip(designs) {
        let Some(design) = design else { continue };
        // Keep only non-dominated points.
        let dominated = out.iter().any(|p| {
            p.design.latency_ms <= design.latency_ms && p.design.power_w <= design.power_w
        });
        if !dominated {
            out.retain(|p| {
                !(design.latency_ms <= p.design.latency_ms && design.power_w <= p.design.power_w)
            });
            out.push(ParetoPoint {
                design,
                latency_constraint_ms: bound,
            });
        }
    }
    out.sort_by(|a, b| {
        a.design
            .latency_ms
            .partial_cmp(&b.design.latency_ms)
            .expect("finite latencies")
    });
    out
}

/// Best-effort Pareto validation (Sec. 7.3, "Validation"): perturb each
/// frontier design's knobs and verify no perturbed neighbour dominates it.
/// Returns the perturbed (latency, power) points for plotting and the number
/// of dominating neighbours found (0 for a valid frontier).
pub fn validate_by_perturbation(
    spec: &DesignSpec,
    frontier: &[ParetoPoint],
) -> (Vec<(f64, f64)>, usize) {
    let resources = ResourceModel::calibrated();
    let power = PowerModel::for_platform(&spec.platform);
    let clock_khz = spec.platform.clock_mhz * 1e3;
    // Frontier points are validated independently; per-point results are
    // concatenated in frontier order, matching the serial construction.
    let per_point = Pool::global()
        .with_serial_threshold(2)
        .par_map(frontier, |point| {
            let mut perturbed = Vec::new();
            let mut violations = 0usize;
            let c = point.design.config;
            for (dnd, dnm, ds) in [
                (1i64, 0i64, 0i64),
                (-1, 0, 0),
                (0, 1, 0),
                (0, -1, 0),
                (0, 0, 4),
                (0, 0, -4),
                (1, 1, 4),
                (-1, -1, -4),
            ] {
                let nd = c.nd as i64 + dnd;
                let nm = c.nm as i64 + dnm;
                let s = c.s as i64 + ds;
                if nd < 1 || nm < 1 || s < 1 {
                    continue;
                }
                let pc = AcceleratorConfig::new(nd as usize, nm as usize, s as usize);
                if !resources.fits(&pc, &spec.platform) {
                    continue;
                }
                let lat = window_cycles(&spec.shape, &pc, spec.iterations) / clock_khz;
                let pw = power.power_w(&pc);
                perturbed.push((lat, pw));
                // Does this perturbation dominate any frontier point?
                if frontier
                    .iter()
                    .any(|f| lat < f.design.latency_ms - 1e-9 && pw < f.design.power_w - 1e-9)
                {
                    violations += 1;
                }
            }
            (perturbed, violations)
        });
    let mut perturbed = Vec::new();
    let mut violations = 0usize;
    for (mut pts, v) in per_point {
        perturbed.append(&mut pts);
        violations += v;
    }
    (perturbed, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use archytas_hw::{HIGH_PERF, LOW_POWER};

    #[test]
    fn design_space_size_matches_paper() {
        assert_eq!(ND_MAX * NM_MAX * S_MAX, 90_000);
    }

    #[test]
    fn synthesizer_is_fast() {
        let spec = DesignSpec::zc706_power_optimal(20.0);
        let start = std::time::Instant::now();
        let design = synthesize(&spec).expect("feasible");
        let elapsed = start.elapsed();
        assert!(
            elapsed.as_millis() < 3_000,
            "synthesis took {elapsed:?}, paper quotes ~3 s end-to-end"
        );
        assert!(design.candidates_examined > 10_000);
    }

    #[test]
    fn constraints_are_respected() {
        for bound in [5.0, 10.0, 20.0, 33.0] {
            let spec = DesignSpec::zc706_power_optimal(bound);
            let design = synthesize(&spec).expect("feasible");
            assert!(
                design.latency_ms <= bound,
                "bound {bound}: latency {}",
                design.latency_ms
            );
            assert!(design.resources.fits(&spec.platform.capacity));
        }
    }

    #[test]
    fn tighter_latency_costs_more_power() {
        let fast = synthesize(&DesignSpec::zc706_power_optimal(2.5)).expect("feasible");
        let slow = synthesize(&DesignSpec::zc706_power_optimal(30.0)).expect("feasible");
        assert!(fast.power_w > slow.power_w);
        assert!(fast.latency_ms < slow.latency_ms);
    }

    #[test]
    fn min_latency_uses_the_fabric() {
        let spec = DesignSpec {
            objective: Objective::MinLatency,
            ..DesignSpec::zc706_power_optimal(0.0)
        };
        let design = synthesize(&spec).expect("feasible");
        // The fastest design should be near a resource wall (like High-Perf
        // is DSP-limited).
        let util = design.resources.dsp / spec.platform.capacity.dsp;
        assert!(util > 0.8, "DSP utilization {util:.2}");
    }

    #[test]
    fn impossible_latency_is_infeasible() {
        let spec = DesignSpec::zc706_power_optimal(0.001);
        match synthesize(&spec) {
            Err(SynthesisError::Infeasible {
                best_achievable_latency_ms,
            }) => assert!(best_achievable_latency_ms > 0.001),
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn named_designs_are_near_synthesized_ones() {
        // Synthesizing under the paper's two constraints should produce
        // designs in the same region of the space as Tbl. 2's.
        let hp = synthesize(&DesignSpec::zc706_power_optimal(2.5)).expect("feasible");
        assert!(
            hp.config.nd >= HIGH_PERF.nd / 2,
            "fast design has many D-Schur MACs: {:?}",
            hp.config
        );
        let lp = synthesize(&DesignSpec::zc706_power_optimal(3.5)).expect("feasible");
        assert!(lp.config.nd <= hp.config.nd);
        let _ = LOW_POWER;
    }

    #[test]
    fn frontier_is_monotone() {
        let base = DesignSpec::zc706_power_optimal(20.0);
        let frontier = pareto_frontier(&base, (2.2, 8.0), 10);
        assert!(
            frontier.len() >= 3,
            "frontier has {} points",
            frontier.len()
        );
        for w in frontier.windows(2) {
            assert!(w[0].design.latency_ms <= w[1].design.latency_ms);
            assert!(
                w[0].design.power_w >= w[1].design.power_w,
                "power must fall as latency relaxes"
            );
        }
    }

    #[test]
    fn striped_scan_matches_serial_for_any_thread_count() {
        for objective in [Objective::MinPowerUnderLatency(4.0), Objective::MinLatency] {
            let spec = DesignSpec {
                objective,
                ..DesignSpec::zc706_power_optimal(4.0)
            };
            let serial = synthesize_with(&spec, &Pool::with_threads(1)).expect("feasible");
            for threads in [2, 8] {
                let par = synthesize_with(&spec, &Pool::with_threads(threads)).expect("feasible");
                assert_eq!(
                    par.config, serial.config,
                    "{objective:?} @ {threads} threads"
                );
                assert_eq!(par.latency_ms.to_bits(), serial.latency_ms.to_bits());
                assert_eq!(par.power_w.to_bits(), serial.power_w.to_bits());
                assert_eq!(par.candidates_examined, serial.candidates_examined);
            }
        }
    }

    #[test]
    fn parallel_frontier_matches_serial() {
        let base = DesignSpec::zc706_power_optimal(20.0);
        let serial = pareto_frontier_with(&base, (2.2, 8.0), 10, &Pool::with_threads(1));
        let par = pareto_frontier_with(&base, (2.2, 8.0), 10, &Pool::with_threads(8));
        assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.design.config, b.design.config);
            assert_eq!(a.design.latency_ms.to_bits(), b.design.latency_ms.to_bits());
            assert_eq!(a.design.power_w.to_bits(), b.design.power_w.to_bits());
            assert_eq!(
                a.latency_constraint_ms.to_bits(),
                b.latency_constraint_ms.to_bits()
            );
        }
    }

    #[test]
    fn perturbation_validates_frontier() {
        let base = DesignSpec::zc706_power_optimal(20.0);
        let frontier = pareto_frontier(&base, (2.2, 8.0), 8);
        let (points, violations) = validate_by_perturbation(&base, &frontier);
        assert!(!points.is_empty());
        assert_eq!(
            violations, 0,
            "no perturbed design may dominate the frontier"
        );
    }
}
