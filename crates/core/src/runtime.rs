//! The run-time system (paper Sec. 6).
//!
//! The environment dictates the workload: windows with few feature points
//! need *more* NLS iterations to hold accuracy (Figs. 11–12), so a static
//! design must provision for the worst case. At run time Archytas:
//!
//! 1. maps the front-end's feature count to an iteration budget through an
//!    offline-profiled lookup table, debounced by a 2-bit saturating counter;
//! 2. looks up the memoized power-optimal sub-configuration `(nd, nm, s)`
//!    for that budget (Eq. 18, solved exhaustively offline for all six
//!    `Iter` values);
//! 3. passes the three numbers to the FPGA, which clock-gates down to them —
//!    no reconfiguration, effectively zero overhead.

use archytas_hw::{window_cycles, AcceleratorConfig, FpgaPlatform, PowerModel};
use archytas_mdfg::ProblemShape;

/// The paper caps the iteration knob at 6: beyond that accuracy stops
/// improving (Sec. 6.2).
pub const ITER_CAP: usize = 6;

/// Offline-profiled mapping from feature count to NLS iteration budget.
#[derive(Debug, Clone, PartialEq)]
pub struct IterPolicy {
    /// `(min_features, iterations)` thresholds, highest feature count first.
    thresholds: Vec<(usize, usize)>,
}

impl Default for IterPolicy {
    fn default() -> Self {
        Self::default_table()
    }
}

impl IterPolicy {
    /// The default profile: rich windows converge in 3 iterations; feature
    /// droughts need the full cap (shape of Figs. 11–12).
    pub fn default_table() -> Self {
        Self {
            thresholds: vec![(210, 3), (160, 4), (110, 5), (0, ITER_CAP)],
        }
    }

    /// Builds a policy from profiling samples `(features, iterations, rmse)`
    /// collected offline: for each feature bucket, the fewest iterations
    /// whose RMSE stays within `tolerance` (relative) of the best observed
    /// for that bucket.
    pub fn from_profile(samples: &[(usize, usize, f64)], tolerance: f64) -> Self {
        let buckets = [220usize, 180, 140, 100, 0];
        let mut thresholds = Vec::new();
        for (idx, &lo) in buckets.iter().enumerate() {
            let hi = if idx == 0 { usize::MAX } else { buckets[idx - 1] };
            let in_bucket: Vec<&(usize, usize, f64)> = samples
                .iter()
                .filter(|(f, _, _)| *f >= lo && *f < hi)
                .collect();
            let best = in_bucket
                .iter()
                .map(|(_, _, e)| *e)
                .fold(f64::INFINITY, f64::min);
            let chosen = (1..=ITER_CAP)
                .find(|it| {
                    in_bucket
                        .iter()
                        .filter(|(_, i, _)| i == it)
                        .any(|(_, _, e)| *e <= best * (1.0 + tolerance))
                })
                .unwrap_or(ITER_CAP);
            thresholds.push((lo, chosen));
        }
        Self { thresholds }
    }

    /// Iteration budget for a feature count.
    pub fn iterations_for(&self, features: usize) -> usize {
        self.thresholds
            .iter()
            .find(|(min_f, _)| features >= *min_f)
            .map_or(ITER_CAP, |(_, it)| *it)
            .clamp(1, ITER_CAP)
    }
}

/// The 2-bit saturating counter that debounces iteration changes
/// (Sec. 6.2): the budget moves one step toward the table's target only
/// after the target has disagreed with the current budget for two
/// consecutive windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterCounter {
    current: usize,
    /// 2-bit confidence state (0..=3); 2 = "weakly confident".
    state: u8,
}

impl IterCounter {
    /// Starts at the given budget with weak confidence.
    pub fn new(initial: usize) -> Self {
        Self {
            current: initial.clamp(1, ITER_CAP),
            state: 2,
        }
    }

    /// Current iteration budget.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Feeds one window's mapped target; returns the (possibly updated)
    /// budget.
    pub fn observe(&mut self, target: usize) -> usize {
        let target = target.clamp(1, ITER_CAP);
        if target == self.current {
            self.state = (self.state + 1).min(3);
        } else if self.state == 0 {
            // Two consecutive disagreements: take one step toward the target.
            self.current = if target > self.current {
                self.current + 1
            } else {
                self.current - 1
            };
            self.state = 2;
        } else {
            self.state -= 1;
        }
        self.current
    }
}

/// The memoized `Iter → (nd, nm, s)` table (Eq. 18 solved offline for every
/// iteration count).
#[derive(Debug, Clone, PartialEq)]
pub struct GatingTable {
    built: AcceleratorConfig,
    /// Entry `i` is the active configuration for `Iter = i + 1`.
    per_iter: Vec<AcceleratorConfig>,
}

impl GatingTable {
    /// Solves Eq. 18 for each `Iter ∈ 1..=6`: minimum power subject to the
    /// latency bound and `config ≤ built` (the clock-gating constraint).
    /// Iterations needing more than the built design can deliver fall back
    /// to the full configuration.
    pub fn build(
        built: &AcceleratorConfig,
        shape: &ProblemShape,
        latency_bound_ms: f64,
        platform: &FpgaPlatform,
    ) -> Self {
        let power = PowerModel::for_platform(platform);
        let clock_khz = platform.clock_mhz * 1e3;
        let mut per_iter = Vec::with_capacity(ITER_CAP);
        for iter in 1..=ITER_CAP {
            let mut best: Option<(f64, AcceleratorConfig)> = None;
            for nd in 1..=built.nd {
                for nm in 1..=built.nm {
                    for s in 1..=built.s {
                        let c = AcceleratorConfig::new(nd, nm, s);
                        let lat = window_cycles(shape, &c, iter) / clock_khz;
                        if lat > latency_bound_ms {
                            continue;
                        }
                        let p = power.gated_power_w(built, &c);
                        if best.as_ref().is_none_or(|(bp, _)| p < *bp) {
                            best = Some((p, c));
                        }
                    }
                }
            }
            per_iter.push(best.map_or(*built, |(_, c)| c));
        }
        Self {
            built: *built,
            per_iter,
        }
    }

    /// Active configuration for an iteration budget.
    pub fn active_for(&self, iterations: usize) -> AcceleratorConfig {
        let idx = iterations.clamp(1, ITER_CAP) - 1;
        self.per_iter[idx]
    }

    /// The instantiated (full) configuration.
    pub fn built(&self) -> AcceleratorConfig {
        self.built
    }
}

/// One per-window decision of the run-time system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeDecision {
    /// NLS iteration budget for this window.
    pub iterations: usize,
    /// Clock-gated active configuration.
    pub active: AcceleratorConfig,
    /// Power under gating (W).
    pub gated_power_w: f64,
}

/// The assembled run-time system.
#[derive(Debug, Clone)]
pub struct RuntimeSystem {
    policy: IterPolicy,
    counter: IterCounter,
    gating: GatingTable,
    power: PowerModel,
}

impl RuntimeSystem {
    /// Builds the run-time system for a deployed design.
    pub fn new(
        built: AcceleratorConfig,
        shape: &ProblemShape,
        latency_bound_ms: f64,
        platform: &FpgaPlatform,
        policy: IterPolicy,
    ) -> Self {
        Self {
            counter: IterCounter::new(ITER_CAP),
            gating: GatingTable::build(&built, shape, latency_bound_ms, platform),
            power: PowerModel::for_platform(platform),
            policy,
        }
    }

    /// Per-window step: feature count in, decision out. Pure table lookups —
    /// the "effectively no overhead" of Sec. 6.2.
    pub fn step(&mut self, features: usize) -> RuntimeDecision {
        let target = self.policy.iterations_for(features);
        let iterations = self.counter.observe(target);
        let active = self.gating.active_for(iterations);
        RuntimeDecision {
            iterations,
            active,
            gated_power_w: self.power.gated_power_w(&self.gating.built(), &active),
        }
    }

    /// The gating table (for reports).
    pub fn gating(&self) -> &GatingTable {
        &self.gating
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archytas_hw::HIGH_PERF;

    #[test]
    fn policy_maps_droughts_to_more_iterations() {
        let p = IterPolicy::default_table();
        assert_eq!(p.iterations_for(250), 3);
        assert_eq!(p.iterations_for(170), 4);
        assert_eq!(p.iterations_for(40), ITER_CAP);
        // Monotone: fewer features never means fewer iterations.
        let mut prev = 0;
        for f in (0..=300).rev().step_by(10) {
            let it = p.iterations_for(f);
            assert!(it >= prev, "features {f}: {it} < {prev}");
            prev = it;
        }
    }

    #[test]
    fn profile_learns_the_cap() {
        // Synthetic profile where accuracy saturates at 3 iterations for
        // rich windows and 6 for poor ones.
        let mut samples = Vec::new();
        for iter in 1..=6usize {
            let rich_err = if iter >= 3 { 1.0 } else { 3.0 / iter as f64 };
            samples.push((250usize, iter, rich_err));
            let poor_err = 6.0 / iter as f64;
            samples.push((50usize, iter, poor_err));
        }
        let p = IterPolicy::from_profile(&samples, 0.05);
        assert_eq!(p.iterations_for(250), 3);
        assert_eq!(p.iterations_for(50), 6);
    }

    #[test]
    fn counter_needs_two_consecutive_disagreements() {
        let mut c = IterCounter::new(4);
        // One disagreement: no change (confidence drops 2→1).
        assert_eq!(c.observe(6), 4);
        // Agreement resets confidence upward.
        assert_eq!(c.observe(4), 4);
        assert_eq!(c.observe(4), 4);
        // state saturated at 3: needs three disagreements to move.
        assert_eq!(c.observe(6), 4);
        assert_eq!(c.observe(6), 4);
        assert_eq!(c.observe(6), 4);
        // state hit 0 → next disagreement steps one toward the target.
        assert_eq!(c.observe(6), 5);
    }

    #[test]
    fn counter_moves_one_step_at_a_time() {
        let mut c = IterCounter::new(2);
        for _ in 0..20 {
            c.observe(6);
        }
        assert_eq!(c.current(), 6);
        let mut steps = Vec::new();
        for _ in 0..20 {
            steps.push(c.observe(1));
        }
        assert_eq!(*steps.last().unwrap(), 1);
        // No jump larger than one between consecutive windows.
        for w in steps.windows(2) {
            assert!(w[0].abs_diff(w[1]) <= 1);
        }
    }

    #[test]
    fn gating_table_monotone_in_iterations() {
        let shape = ProblemShape::typical();
        let platform = FpgaPlatform::zc706();
        let table = GatingTable::build(&HIGH_PERF, &shape, 2.5, &platform);
        let power = PowerModel::for_platform(&platform);
        let mut prev = 0.0;
        for iter in 1..=ITER_CAP {
            let active = table.active_for(iter);
            assert!(active.within(&HIGH_PERF));
            let p = power.gated_power_w(&HIGH_PERF, &active);
            assert!(p >= prev - 1e-9, "iter {iter}: power {p} < {prev}");
            prev = p;
        }
        // Fewer iterations must allow a meaningfully smaller configuration.
        let low = table.active_for(1);
        let high = table.active_for(ITER_CAP);
        assert!(low.nd < high.nd || low.s < high.s || low.nm < high.nm);
    }

    #[test]
    fn runtime_saves_power_in_rich_environments() {
        let shape = ProblemShape::typical();
        let platform = FpgaPlatform::zc706();
        let mut rt = RuntimeSystem::new(
            HIGH_PERF,
            &shape,
            2.5,
            &platform,
            IterPolicy::default_table(),
        );
        let full_power = PowerModel::for_platform(&platform).power_w(&HIGH_PERF);
        // Feed a long run of feature-rich windows.
        let mut last = None;
        for _ in 0..10 {
            last = Some(rt.step(260));
        }
        let d = last.unwrap();
        assert!(d.iterations <= 3);
        assert!(
            d.gated_power_w < full_power * 0.9,
            "gated {} vs full {full_power}",
            d.gated_power_w
        );
    }

    #[test]
    fn runtime_restores_capacity_in_droughts() {
        let shape = ProblemShape::typical();
        let platform = FpgaPlatform::zc706();
        let mut rt = RuntimeSystem::new(
            HIGH_PERF,
            &shape,
            2.5,
            &platform,
            IterPolicy::default_table(),
        );
        for _ in 0..10 {
            rt.step(260);
        }
        // Drought: the budget climbs back to the cap.
        let mut d = rt.step(30);
        for _ in 0..20 {
            d = rt.step(30);
        }
        assert_eq!(d.iterations, ITER_CAP);
    }
}
