//! The run-time system (paper Sec. 6).
//!
//! The environment dictates the workload: windows with few feature points
//! need *more* NLS iterations to hold accuracy (Figs. 11–12), so a static
//! design must provision for the worst case. At run time Archytas:
//!
//! 1. maps the front-end's feature count to an iteration budget through an
//!    offline-profiled lookup table, debounced by a 2-bit saturating counter;
//! 2. looks up the memoized power-optimal sub-configuration `(nd, nm, s)`
//!    for that budget (Eq. 18, solved exhaustively offline for all six
//!    `Iter` values);
//! 3. passes the three numbers to the FPGA, which clock-gates down to them —
//!    no reconfiguration, effectively zero overhead.

use archytas_hw::{window_cycles, AcceleratorConfig, FpgaPlatform, PowerModel};
use archytas_mdfg::ProblemShape;
use archytas_par::Memo;
use std::sync::Arc;

/// The paper caps the iteration knob at 6: beyond that accuracy stops
/// improving (Sec. 6.2).
pub const ITER_CAP: usize = 6;

/// Offline-profiled mapping from feature count to NLS iteration budget.
#[derive(Debug, Clone, PartialEq)]
pub struct IterPolicy {
    /// `(min_features, iterations)` thresholds, highest feature count first.
    thresholds: Vec<(usize, usize)>,
}

impl Default for IterPolicy {
    fn default() -> Self {
        Self::default_table()
    }
}

impl IterPolicy {
    /// The default profile: rich windows converge in 3 iterations; feature
    /// droughts need the full cap (shape of Figs. 11–12).
    pub fn default_table() -> Self {
        Self {
            thresholds: vec![(210, 3), (160, 4), (110, 5), (0, ITER_CAP)],
        }
    }

    /// Builds a policy from profiling samples `(features, iterations, rmse)`
    /// collected offline: for each feature bucket, the fewest iterations
    /// whose RMSE stays within `tolerance` (relative) of the best observed
    /// for that bucket.
    pub fn from_profile(samples: &[(usize, usize, f64)], tolerance: f64) -> Self {
        let buckets = [220usize, 180, 140, 100, 0];
        let mut thresholds = Vec::new();
        for (idx, &lo) in buckets.iter().enumerate() {
            let hi = if idx == 0 {
                usize::MAX
            } else {
                buckets[idx - 1]
            };
            let in_bucket: Vec<&(usize, usize, f64)> = samples
                .iter()
                .filter(|(f, _, _)| *f >= lo && *f < hi)
                .collect();
            let best = in_bucket
                .iter()
                .map(|(_, _, e)| *e)
                .fold(f64::INFINITY, f64::min);
            // An empty bucket (or one with no finite RMSE) taught us
            // nothing: provision the worst case. Without this guard,
            // `best` stays INFINITY and `e <= ∞·(1+tol)` silently accepts
            // iteration 1 for any bucket whose runs all diverged.
            let chosen = if !best.is_finite() {
                ITER_CAP
            } else {
                (1..=ITER_CAP)
                    .find(|it| {
                        in_bucket
                            .iter()
                            .filter(|(_, i, _)| i == it)
                            .any(|(_, _, e)| *e <= best * (1.0 + tolerance))
                    })
                    .unwrap_or(ITER_CAP)
            };
            thresholds.push((lo, chosen));
        }
        Self { thresholds }
    }

    /// Iteration budget for a feature count.
    pub fn iterations_for(&self, features: usize) -> usize {
        self.thresholds
            .iter()
            .find(|(min_f, _)| features >= *min_f)
            .map_or(ITER_CAP, |(_, it)| *it)
            .clamp(1, ITER_CAP)
    }
}

/// The 2-bit saturating counter that debounces iteration changes
/// (Sec. 6.2): the budget moves one step toward the table's target only
/// after the target has disagreed with the current budget for two
/// consecutive windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterCounter {
    current: usize,
    /// 2-bit confidence state (0..=3); 2 = "weakly confident".
    state: u8,
}

impl IterCounter {
    /// Starts at the given budget with weak confidence.
    pub fn new(initial: usize) -> Self {
        Self {
            current: initial.clamp(1, ITER_CAP),
            state: 2,
        }
    }

    /// Current iteration budget.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Overrides the budget immediately, bypassing the debounce — used by
    /// the safety watchdog when the estimator reports a degraded window.
    /// Confidence resets to "weakly confident" so the ladder back down is
    /// still debounced after the override lifts.
    pub fn force(&mut self, budget: usize) {
        self.current = budget.clamp(1, ITER_CAP);
        self.state = 2;
    }

    /// Feeds one window's mapped target; returns the (possibly updated)
    /// budget.
    pub fn observe(&mut self, target: usize) -> usize {
        let target = target.clamp(1, ITER_CAP);
        if target == self.current {
            self.state = (self.state + 1).min(3);
        } else if self.state == 0 {
            // Two consecutive disagreements: take one step toward the target.
            self.current = if target > self.current {
                self.current + 1
            } else {
                self.current - 1
            };
            self.state = 2;
        } else {
            self.state -= 1;
        }
        self.current
    }
}

/// The memoized `Iter → (nd, nm, s)` table (Eq. 18 solved offline for every
/// iteration count).
#[derive(Debug, Clone, PartialEq)]
pub struct GatingTable {
    built: AcceleratorConfig,
    /// Entry `i` is the active configuration for `Iter = i + 1`.
    per_iter: Vec<AcceleratorConfig>,
}

impl GatingTable {
    /// Solves Eq. 18 for each `Iter ∈ 1..=6`: minimum power subject to the
    /// latency bound and `config ≤ built` (the clock-gating constraint).
    /// Iterations needing more than the built design can deliver fall back
    /// to the full configuration.
    pub fn build(
        built: &AcceleratorConfig,
        shape: &ProblemShape,
        latency_bound_ms: f64,
        platform: &FpgaPlatform,
    ) -> Self {
        let power = PowerModel::for_platform(platform);
        let clock_khz = platform.clock_mhz * 1e3;
        let mut per_iter = Vec::with_capacity(ITER_CAP);
        for iter in 1..=ITER_CAP {
            let mut best: Option<(f64, AcceleratorConfig)> = None;
            for nd in 1..=built.nd {
                for nm in 1..=built.nm {
                    for s in 1..=built.s {
                        let c = AcceleratorConfig::new(nd, nm, s);
                        let lat = window_cycles(shape, &c, iter) / clock_khz;
                        if lat > latency_bound_ms {
                            continue;
                        }
                        let p = power.gated_power_w(built, &c);
                        if best.as_ref().is_none_or(|(bp, _)| p < *bp) {
                            best = Some((p, c));
                        }
                    }
                }
            }
            per_iter.push(best.map_or(*built, |(_, c)| c));
        }
        Self {
            built: *built,
            per_iter,
        }
    }

    /// Active configuration for an iteration budget.
    pub fn active_for(&self, iterations: usize) -> AcceleratorConfig {
        let idx = iterations.clamp(1, ITER_CAP) - 1;
        self.per_iter[idx]
    }

    /// The instantiated (full) configuration.
    pub fn built(&self) -> AcceleratorConfig {
        self.built
    }
}

/// Exactly-once cache of [`GatingTable`]s, shared across sessions.
///
/// Building a gating table enumerates the whole `(nd, nm, s) × Iter`
/// sub-lattice of the deployed design (Eq. 18) — a per-deployment cost the
/// single-robot runtime pays once, but a fleet would pay once *per session*
/// despite most sessions deploying the identical design on the identical
/// platform. This cache keys tables by
/// `(built, shape, latency bound, platform)` and builds each exactly once
/// (an `archytas_par::Memo`, safe under concurrent session admission); the
/// tables come out `Arc`-shared, so M same-design sessions hold one table.
///
/// Sharing cannot change behaviour: `GatingTable::build` is a pure function
/// of the key, so a shared table is bitwise the table each session would
/// have built alone.
#[derive(Debug, Default)]
pub struct GatingCache {
    tables: Memo<GatingKey, Arc<GatingTable>>,
}

/// Cache key: the full input of [`GatingTable::build`]. Platforms are
/// identified by name + clock bits; every built-in constructor gives a
/// distinct name, and the latency bound is keyed by bit pattern so no
/// float rounding can alias two different bounds.
type GatingKey = (AcceleratorConfig, ProblemShape, u64, &'static str, u64);

impl GatingCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared gating table for a deployment, built on first request.
    pub fn table_for(
        &self,
        built: &AcceleratorConfig,
        shape: &ProblemShape,
        latency_bound_ms: f64,
        platform: &FpgaPlatform,
    ) -> Arc<GatingTable> {
        let key = (
            *built,
            *shape,
            latency_bound_ms.to_bits(),
            platform.name,
            platform.clock_mhz.to_bits(),
        );
        self.tables.get_or_compute(key, || {
            Arc::new(GatingTable::build(built, shape, latency_bound_ms, platform))
        })
    }

    /// A [`RuntimeSystem`] whose gating table comes from this cache:
    /// bit-identical decisions to [`RuntimeSystem::new`] with the same
    /// arguments, at one table build per distinct deployment fleet-wide.
    pub fn runtime(
        &self,
        built: AcceleratorConfig,
        shape: &ProblemShape,
        latency_bound_ms: f64,
        platform: &FpgaPlatform,
        policy: impl Into<Arc<IterPolicy>>,
    ) -> RuntimeSystem {
        let gating = self.table_for(&built, shape, latency_bound_ms, platform);
        RuntimeSystem::with_shared_gating(gating, platform, policy)
    }

    /// Tables actually built (== distinct deployments requested).
    pub fn builds(&self) -> usize {
        self.tables.misses()
    }

    /// Requests served from the cache.
    pub fn hits(&self) -> usize {
        self.tables.hits()
    }
}

/// Observed per-window iteration decisions — the runtime profiler.
///
/// The dynamic optimizer's whole premise (Sec. 6) is that workload
/// statistics drive cost; this is where those statistics are collected.
/// One fixed slot per possible budget (`1..=ITER_CAP`; slot 0 stays
/// empty), recorded on every decision with a single array increment, so
/// profiling rides the hot path for free. The fleet telemetry layer and
/// `RunSummary` read it back to attribute energy to iteration counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationProfile {
    counts: [u64; ITER_CAP + 1],
}

impl Default for IterationProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl IterationProfile {
    /// An empty profile.
    pub const fn new() -> Self {
        Self {
            counts: [0; ITER_CAP + 1],
        }
    }

    /// Records one window's iteration decision (clamped to the cap).
    #[inline]
    pub fn record(&mut self, iterations: usize) {
        self.counts[iterations.min(ITER_CAP)] += 1;
    }

    /// Windows recorded.
    pub fn windows(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total iterations across all recorded windows.
    pub fn total_iterations(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| i as u64 * c)
            .sum()
    }

    /// Windows decided at exactly this budget.
    pub fn count_for(&self, iterations: usize) -> u64 {
        self.counts[iterations.min(ITER_CAP)]
    }

    /// The raw per-budget counts (index = iteration budget).
    pub fn counts(&self) -> &[u64; ITER_CAP + 1] {
        &self.counts
    }

    /// Mean iterations per window (0 when empty).
    pub fn mean(&self) -> f64 {
        let w = self.windows();
        if w == 0 {
            0.0
        } else {
            self.total_iterations() as f64 / w as f64
        }
    }
}

/// Safety watchdog over the run-time knob (the runtime half of the
/// degradation ladder).
///
/// While the estimator reports degraded windows, power optimization is the
/// wrong objective: the watchdog pins the iteration budget to [`ITER_CAP`]
/// and ungates the full built configuration, and only releases control back
/// to the policy after `hysteresis` consecutive healthy windows — so a
/// fault flickering at the health threshold cannot thrash the gating
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeWatchdog {
    hysteresis: usize,
    healthy_streak: usize,
    engaged: bool,
}

impl Default for RuntimeWatchdog {
    fn default() -> Self {
        Self::new(2)
    }
}

impl RuntimeWatchdog {
    /// Creates a disengaged watchdog requiring `hysteresis` consecutive
    /// healthy windows to release (values below 1 are treated as 1).
    pub fn new(hysteresis: usize) -> Self {
        Self {
            hysteresis: hysteresis.max(1),
            healthy_streak: 0,
            engaged: false,
        }
    }

    /// `true` while the watchdog holds the runtime pinned to full capacity.
    pub fn engaged(&self) -> bool {
        self.engaged
    }

    /// Feeds one window's health verdict; returns whether the watchdog is
    /// engaged for this window. Engages immediately on an unhealthy window;
    /// releases only after the configured streak of healthy ones.
    pub fn observe(&mut self, healthy: bool) -> bool {
        if !healthy {
            self.engaged = true;
            self.healthy_streak = 0;
        } else if self.engaged {
            self.healthy_streak += 1;
            if self.healthy_streak >= self.hysteresis {
                self.engaged = false;
                self.healthy_streak = 0;
            }
        }
        self.engaged
    }
}

/// One per-window decision of the run-time system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeDecision {
    /// NLS iteration budget for this window.
    pub iterations: usize,
    /// Clock-gated active configuration.
    pub active: AcceleratorConfig,
    /// Power under gating (W).
    pub gated_power_w: f64,
}

/// The assembled run-time system.
///
/// Mutable per-session state (the debounce counter and the watchdog) lives
/// inline; the immutable lookup structures (iteration policy and gating
/// table) are `Arc`-shared so a fleet of same-design sessions holds one
/// copy — see [`GatingCache`].
#[derive(Debug, Clone)]
pub struct RuntimeSystem {
    policy: Arc<IterPolicy>,
    counter: IterCounter,
    gating: Arc<GatingTable>,
    power: PowerModel,
    watchdog: RuntimeWatchdog,
    profile: IterationProfile,
}

impl RuntimeSystem {
    /// Builds the run-time system for a deployed design. Accepts the policy
    /// by value or pre-shared (`IterPolicy` or `Arc<IterPolicy>`).
    pub fn new(
        built: AcceleratorConfig,
        shape: &ProblemShape,
        latency_bound_ms: f64,
        platform: &FpgaPlatform,
        policy: impl Into<Arc<IterPolicy>>,
    ) -> Self {
        Self::with_shared_gating(
            Arc::new(GatingTable::build(
                &built,
                shape,
                latency_bound_ms,
                platform,
            )),
            platform,
            policy,
        )
    }

    /// Assembles a run-time system around an existing (shared) gating
    /// table — the fleet path: M same-design sessions share one table and
    /// one policy, and still make bitwise the decisions of
    /// [`RuntimeSystem::new`] because both structures are immutable pure
    /// functions of the deployment.
    pub fn with_shared_gating(
        gating: Arc<GatingTable>,
        platform: &FpgaPlatform,
        policy: impl Into<Arc<IterPolicy>>,
    ) -> Self {
        Self {
            counter: IterCounter::new(ITER_CAP),
            gating,
            power: PowerModel::for_platform(platform),
            policy: policy.into(),
            watchdog: RuntimeWatchdog::default(),
            profile: IterationProfile::new(),
        }
    }

    /// Per-window step: feature count in, decision out. Pure table lookups —
    /// the "effectively no overhead" of Sec. 6.2.
    pub fn step(&mut self, features: usize) -> RuntimeDecision {
        let target = self.policy.iterations_for(features);
        let iterations = self.counter.observe(target);
        let active = self.gating.active_for(iterations);
        self.profile.record(iterations);
        RuntimeDecision {
            iterations,
            active,
            gated_power_w: self.power.gated_power_w(&self.gating.built(), &active),
        }
    }

    /// Like [`RuntimeSystem::step`] but fed the estimator's per-window
    /// health verdict. A healthy window behaves exactly like [`step`]
    /// (bit-identical decisions); while the watchdog is engaged the budget
    /// is pinned to [`ITER_CAP`] and the full built configuration is
    /// ungated — a degraded estimator gets maximum compute, not a power
    /// optimization tuned for clean data.
    ///
    /// [`step`]: RuntimeSystem::step
    pub fn step_with_health(&mut self, features: usize, healthy: bool) -> RuntimeDecision {
        if self.watchdog.observe(healthy) {
            self.counter.force(ITER_CAP);
            let active = self.gating.built();
            self.profile.record(ITER_CAP);
            return RuntimeDecision {
                iterations: ITER_CAP,
                active,
                gated_power_w: self.power.gated_power_w(&self.gating.built(), &active),
            };
        }
        self.step(features)
    }

    /// The safety watchdog (for reports).
    pub fn watchdog(&self) -> &RuntimeWatchdog {
        &self.watchdog
    }

    /// The gating table (for reports).
    pub fn gating(&self) -> &GatingTable {
        &self.gating
    }

    /// Observed iteration-decision counts since construction (the runtime
    /// profiler). Cloned with the system, so checkpointed sessions restore
    /// the profile to the checkpoint's exact bits.
    pub fn profile(&self) -> &IterationProfile {
        &self.profile
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use archytas_hw::{HIGH_PERF, LOW_POWER};

    #[test]
    fn gating_cache_builds_each_deployment_once() {
        let cache = GatingCache::new();
        let shape = ProblemShape::typical();
        let platform = FpgaPlatform::zc706();
        let a = cache.table_for(&HIGH_PERF, &shape, 2.5, &platform);
        let b = cache.table_for(&HIGH_PERF, &shape, 2.5, &platform);
        assert!(Arc::ptr_eq(&a, &b), "same deployment must share one table");
        assert_eq!(cache.builds(), 1);
        // Any key component change is a new deployment.
        cache.table_for(&LOW_POWER, &shape, 2.5, &platform);
        cache.table_for(&HIGH_PERF, &shape, 3.5, &platform);
        cache.table_for(&HIGH_PERF, &shape, 2.5, &FpgaPlatform::virtex7_690t());
        assert_eq!(cache.builds(), 4);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn gating_cache_fills_exactly_once_under_concurrent_admission() {
        let cache = GatingCache::new();
        let shape = ProblemShape::typical();
        let platform = FpgaPlatform::zc706();
        let sessions: Vec<usize> = (0..64).collect();
        let pool = archytas_par::Pool::with_threads(8).with_serial_threshold(0);
        let tables = pool.par_map(&sessions, |_| {
            cache.table_for(&HIGH_PERF, &shape, 2.5, &platform)
        });
        assert_eq!(cache.builds(), 1, "64 racing admissions, one build");
        assert!(tables.iter().all(|t| Arc::ptr_eq(t, &tables[0])));
    }

    #[test]
    fn shared_runtime_matches_owned_runtime_bitwise() {
        let shape = ProblemShape::typical();
        let platform = FpgaPlatform::zc706();
        let cache = GatingCache::new();
        let mut owned = RuntimeSystem::new(
            HIGH_PERF,
            &shape,
            2.5,
            &platform,
            IterPolicy::default_table(),
        );
        let mut shared = cache.runtime(
            HIGH_PERF,
            &shape,
            2.5,
            &platform,
            IterPolicy::default_table(),
        );
        let features = [260usize, 40, 40, 40, 260, 260, 150, 20, 20, 260, 90, 260];
        let healthy = [
            true, true, false, true, true, true, false, false, true, true, true, true,
        ];
        for (&f, &h) in features.iter().zip(&healthy) {
            let a = owned.step_with_health(f, h);
            let b = shared.step_with_health(f, h);
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(a.active, b.active);
            assert_eq!(a.gated_power_w.to_bits(), b.gated_power_w.to_bits());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archytas_hw::HIGH_PERF;

    #[test]
    fn policy_maps_droughts_to_more_iterations() {
        let p = IterPolicy::default_table();
        assert_eq!(p.iterations_for(250), 3);
        assert_eq!(p.iterations_for(170), 4);
        assert_eq!(p.iterations_for(40), ITER_CAP);
        // Monotone: fewer features never means fewer iterations.
        let mut prev = 0;
        for f in (0..=300).rev().step_by(10) {
            let it = p.iterations_for(f);
            assert!(it >= prev, "features {f}: {it} < {prev}");
            prev = it;
        }
    }

    #[test]
    fn profile_learns_the_cap() {
        // Synthetic profile where accuracy saturates at 3 iterations for
        // rich windows and 6 for poor ones.
        let mut samples = Vec::new();
        for iter in 1..=6usize {
            let rich_err = if iter >= 3 { 1.0 } else { 3.0 / iter as f64 };
            samples.push((250usize, iter, rich_err));
            let poor_err = 6.0 / iter as f64;
            samples.push((50usize, iter, poor_err));
        }
        let p = IterPolicy::from_profile(&samples, 0.05);
        assert_eq!(p.iterations_for(250), 3);
        assert_eq!(p.iterations_for(50), 6);
    }

    #[test]
    fn profile_with_empty_bucket_provisions_the_cap() {
        // Samples exist only for rich windows; every other bucket is empty
        // and must fall back to the cap, not silently accept iteration 1.
        let samples: Vec<(usize, usize, f64)> =
            (1..=6usize).map(|it| (250usize, it, 1.0)).collect();
        let p = IterPolicy::from_profile(&samples, 0.05);
        assert_eq!(p.iterations_for(250), 1);
        for f in [180, 120, 60, 10] {
            assert_eq!(p.iterations_for(f), ITER_CAP, "features {f}");
        }
    }

    #[test]
    fn profile_with_diverged_bucket_provisions_the_cap() {
        // A bucket whose profiling runs all diverged (infinite RMSE) taught
        // us nothing about sufficiency.
        let mut samples: Vec<(usize, usize, f64)> = (1..=6usize)
            .map(|it| (50usize, it, f64::INFINITY))
            .collect();
        samples.extend((1..=6usize).map(|it| (250usize, it, 1.0)));
        let p = IterPolicy::from_profile(&samples, 0.05);
        assert_eq!(p.iterations_for(50), ITER_CAP);
        assert_eq!(p.iterations_for(250), 1);
    }

    #[test]
    fn counter_needs_two_consecutive_disagreements() {
        let mut c = IterCounter::new(4);
        // One disagreement: no change (confidence drops 2→1).
        assert_eq!(c.observe(6), 4);
        // Agreement resets confidence upward.
        assert_eq!(c.observe(4), 4);
        assert_eq!(c.observe(4), 4);
        // state saturated at 3: needs three disagreements to move.
        assert_eq!(c.observe(6), 4);
        assert_eq!(c.observe(6), 4);
        assert_eq!(c.observe(6), 4);
        // state hit 0 → next disagreement steps one toward the target.
        assert_eq!(c.observe(6), 5);
    }

    #[test]
    fn counter_moves_one_step_at_a_time() {
        let mut c = IterCounter::new(2);
        for _ in 0..20 {
            c.observe(6);
        }
        assert_eq!(c.current(), 6);
        let mut steps = Vec::new();
        for _ in 0..20 {
            steps.push(c.observe(1));
        }
        assert_eq!(*steps.last().unwrap(), 1);
        // No jump larger than one between consecutive windows.
        for w in steps.windows(2) {
            assert!(w[0].abs_diff(w[1]) <= 1);
        }
    }

    #[test]
    fn counter_debounces_flapping_feature_counts() {
        // A feature count flapping across a policy threshold every window
        // must not drag the budget (and hence the gating configuration)
        // back and forth with it.
        let shape = ProblemShape::typical();
        let platform = FpgaPlatform::zc706();
        let table = GatingTable::build(&HIGH_PERF, &shape, 2.5, &platform);
        let p = IterPolicy::default_table();
        let mut c = IterCounter::new(4);
        let mut budgets = Vec::new();
        for w in 0..40 {
            let features = if w % 2 == 0 { 260 } else { 40 };
            budgets.push(c.observe(p.iterations_for(features)));
        }
        // The budget moves at most one step per two windows…
        for i in 0..budgets.len() - 2 {
            assert!(
                budgets[i].abs_diff(budgets[i + 2]) <= 1,
                "window {i}: budget jumped {} → {}",
                budgets[i],
                budgets[i + 2]
            );
        }
        // …and the gating configuration never thrashes: no two consecutive
        // window-to-window configuration changes.
        let configs: Vec<_> = budgets.iter().map(|&b| table.active_for(b)).collect();
        for i in 0..configs.len() - 2 {
            let flip1 = configs[i] != configs[i + 1];
            let flip2 = configs[i + 1] != configs[i + 2];
            assert!(!(flip1 && flip2), "gating config thrashed at window {i}");
        }
    }

    #[test]
    fn watchdog_engages_immediately_and_releases_with_hysteresis() {
        let mut w = RuntimeWatchdog::new(2);
        assert!(!w.engaged());
        assert!(w.observe(false), "must engage on the first bad window");
        // One healthy window is not enough to release.
        assert!(w.observe(true));
        // A relapse resets the streak.
        assert!(w.observe(false));
        assert!(w.observe(true));
        assert!(w.observe(true) == false, "two clean windows must release");
        assert!(!w.engaged());
    }

    #[test]
    fn watchdog_pins_runtime_to_full_capacity() {
        let shape = ProblemShape::typical();
        let platform = FpgaPlatform::zc706();
        let mut rt = RuntimeSystem::new(
            HIGH_PERF,
            &shape,
            2.5,
            &platform,
            IterPolicy::default_table(),
        );
        // Settle into the power-saving configuration on rich windows.
        let mut nominal = rt.step_with_health(260, true);
        for _ in 0..10 {
            nominal = rt.step_with_health(260, true);
        }
        assert!(nominal.iterations <= 3);

        // A degraded window pins budget and configuration regardless of the
        // (still rich) feature count.
        let pinned = rt.step_with_health(260, false);
        assert_eq!(pinned.iterations, ITER_CAP);
        assert_eq!(pinned.active, rt.gating().built());
        assert!(pinned.gated_power_w >= nominal.gated_power_w);

        // Still pinned through the first healthy window (hysteresis 2)…
        assert_eq!(rt.step_with_health(260, true).iterations, ITER_CAP);
        // …then control returns to the policy, debounced from the cap.
        let released = rt.step_with_health(260, true);
        assert!(released.iterations <= ITER_CAP);
        assert!(!rt.watchdog().engaged());
        let mut d = released;
        for _ in 0..20 {
            d = rt.step_with_health(260, true);
        }
        assert!(d.iterations <= 3, "budget never laddered back down");
    }

    #[test]
    fn step_with_health_healthy_matches_step() {
        let shape = ProblemShape::typical();
        let platform = FpgaPlatform::zc706();
        let mk = || {
            RuntimeSystem::new(
                HIGH_PERF,
                &shape,
                2.5,
                &platform,
                IterPolicy::default_table(),
            )
        };
        let mut a = mk();
        let mut b = mk();
        let features = [260usize, 240, 40, 30, 150, 170, 260, 20, 90, 260];
        for &f in &features {
            let da = a.step(f);
            let db = b.step_with_health(f, true);
            assert_eq!(da.iterations, db.iterations);
            assert_eq!(da.active, db.active);
            assert_eq!(da.gated_power_w.to_bits(), db.gated_power_w.to_bits());
        }
    }

    #[test]
    fn profiler_counts_every_decision() {
        let shape = ProblemShape::typical();
        let platform = FpgaPlatform::zc706();
        let mut rt = RuntimeSystem::new(
            HIGH_PERF,
            &shape,
            2.5,
            &platform,
            IterPolicy::default_table(),
        );
        let mut expected = IterationProfile::new();
        for (w, &f) in [260usize, 260, 40, 40, 150, 260, 20, 260]
            .iter()
            .enumerate()
        {
            let healthy = w != 4;
            let d = rt.step_with_health(f, healthy);
            expected.record(d.iterations);
        }
        assert_eq!(rt.profile(), &expected);
        assert_eq!(rt.profile().windows(), 8);
        assert_eq!(
            rt.profile().total_iterations(),
            expected
                .counts()
                .iter()
                .enumerate()
                .map(|(i, &c)| i as u64 * c)
                .sum::<u64>()
        );
        assert!(rt.profile().mean() >= 1.0);
        // Cloning the system (the checkpoint path) clones the profile bits.
        let cloned = rt.clone();
        assert_eq!(cloned.profile(), rt.profile());
    }

    #[test]
    fn profile_clamps_to_cap() {
        let mut p = IterationProfile::new();
        p.record(100);
        assert_eq!(p.count_for(ITER_CAP), 1);
        assert_eq!(p.windows(), 1);
        assert_eq!(p.total_iterations(), ITER_CAP as u64);
        assert_eq!(IterationProfile::new().mean(), 0.0);
    }

    #[test]
    fn gating_table_monotone_in_iterations() {
        let shape = ProblemShape::typical();
        let platform = FpgaPlatform::zc706();
        let table = GatingTable::build(&HIGH_PERF, &shape, 2.5, &platform);
        let power = PowerModel::for_platform(&platform);
        let mut prev = 0.0;
        for iter in 1..=ITER_CAP {
            let active = table.active_for(iter);
            assert!(active.within(&HIGH_PERF));
            let p = power.gated_power_w(&HIGH_PERF, &active);
            assert!(p >= prev - 1e-9, "iter {iter}: power {p} < {prev}");
            prev = p;
        }
        // Fewer iterations must allow a meaningfully smaller configuration.
        let low = table.active_for(1);
        let high = table.active_for(ITER_CAP);
        assert!(low.nd < high.nd || low.s < high.s || low.nm < high.nm);
    }

    #[test]
    fn runtime_saves_power_in_rich_environments() {
        let shape = ProblemShape::typical();
        let platform = FpgaPlatform::zc706();
        let mut rt = RuntimeSystem::new(
            HIGH_PERF,
            &shape,
            2.5,
            &platform,
            IterPolicy::default_table(),
        );
        let full_power = PowerModel::for_platform(&platform).power_w(&HIGH_PERF);
        // Feed a long run of feature-rich windows.
        let mut last = None;
        for _ in 0..10 {
            last = Some(rt.step(260));
        }
        let d = last.unwrap();
        assert!(d.iterations <= 3);
        assert!(
            d.gated_power_w < full_power * 0.9,
            "gated {} vs full {full_power}",
            d.gated_power_w
        );
    }

    #[test]
    fn runtime_restores_capacity_in_droughts() {
        let shape = ProblemShape::typical();
        let platform = FpgaPlatform::zc706();
        let mut rt = RuntimeSystem::new(
            HIGH_PERF,
            &shape,
            2.5,
            &platform,
            IterPolicy::default_table(),
        );
        for _ in 0..10 {
            rt.step(260);
        }
        // Drought: the budget climbs back to the cap.
        let mut d = rt.step(30);
        for _ in 0..20 {
            d = rt.step(30);
        }
        assert_eq!(d.iterations, ITER_CAP);
    }
}
