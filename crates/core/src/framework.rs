//! The top-level Archytas framework API (paper Fig. 1, left-to-right):
//! algorithm description → M-DFG → schedule → synthesized configuration →
//! synthesizable Verilog.

use crate::synth::{synthesize, DesignSpec, SynthCache, SynthesisError, SynthesizedDesign};
use crate::verilog::{emit_verilog, VerilogDesign};
use archytas_mdfg::{build_mdfg, schedule, BuiltMdfg, ProblemShape, Schedule};

/// The MAP-estimation algorithm families Archytas generates accelerators
/// for. Beyond sliding-window SLAM, the paper demonstrates generality on
/// two more MAP problems (Sec. 7.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// Sliding-window visual–inertial SLAM (the primary case study).
    SlidingWindowSlam,
    /// Timed-elastic curve fitting for motion planning.
    CurveFitting,
    /// Camera pose estimation for augmented reality.
    PoseEstimation,
}

/// A high-level algorithm description: the family plus its workload shape.
#[derive(Debug, Clone)]
pub struct AlgorithmDescription {
    /// Algorithm family.
    pub kind: AlgorithmKind,
    /// Workload shape driving the cost and latency models.
    pub shape: ProblemShape,
    /// Whether the algorithm carries a marginalization phase.
    pub marginalization: bool,
}

impl AlgorithmDescription {
    /// Sliding-window SLAM at the typical KITTI-scale shape.
    pub fn slam_typical() -> Self {
        Self {
            kind: AlgorithmKind::SlidingWindowSlam,
            shape: ProblemShape::typical(),
            marginalization: true,
        }
    }

    /// SLAM at a caller-provided shape.
    pub fn slam(shape: ProblemShape) -> Self {
        Self {
            kind: AlgorithmKind::SlidingWindowSlam,
            shape,
            marginalization: true,
        }
    }

    /// Curve fitting for planning (Sec. 7.7): many scalar residuals over a
    /// few dense coefficient blocks, no marginalization.
    pub fn curve_fitting() -> Self {
        Self {
            kind: AlgorithmKind::CurveFitting,
            shape: ProblemShape {
                features: 120,
                keyframes: 4,
                states_per_keyframe: 15,
                obs_per_feature: 8,
                marginalized_features: 0,
            },
            marginalization: false,
        }
    }

    /// Pose estimation for AR (Sec. 7.7): one 6-DoF pose constrained by
    /// many 2D–3D correspondences.
    pub fn pose_estimation() -> Self {
        Self {
            kind: AlgorithmKind::PoseEstimation,
            shape: ProblemShape {
                features: 80,
                keyframes: 2,
                states_per_keyframe: 15,
                obs_per_feature: 4,
                marginalized_features: 0,
            },
            marginalization: false,
        }
    }
}

/// Everything Archytas generates for one request.
#[derive(Debug, Clone)]
pub struct GeneratedAccelerator {
    /// The algorithm this accelerator serves.
    pub description: AlgorithmDescription,
    /// The concrete M-DFG (with its blocking decisions).
    pub mdfg: BuiltMdfg,
    /// The static schedule onto the template's blocks.
    pub schedule: Schedule,
    /// The synthesized configuration with its modelled latency/power/resources.
    pub design: SynthesizedDesign,
    /// The emitted Verilog.
    pub verilog: VerilogDesign,
}

impl GeneratedAccelerator {
    /// Elaborates the emitted Verilog (module hierarchy + connectivity),
    /// the first stage of the validation flow the paper runs in Vivado.
    pub fn elaborate(&self) -> crate::elaborate::Elaboration {
        crate::elaborate::elaborate(&self.verilog)
    }
}

/// The framework entry point.
#[derive(Debug, Default, Clone, Copy)]
pub struct Archytas;

impl Archytas {
    /// Runs the full generation flow of Fig. 1.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError`] when no configuration meets the spec on
    /// the target platform.
    pub fn generate(
        description: &AlgorithmDescription,
        spec: &DesignSpec,
    ) -> Result<GeneratedAccelerator, SynthesisError> {
        let spec = DesignSpec {
            shape: description.shape,
            ..spec.clone()
        };
        let mdfg = build_mdfg(&description.shape);
        let sched = schedule(&mdfg);
        let design = synthesize(&spec)?;
        let verilog = emit_verilog(&design.config);
        Ok(GeneratedAccelerator {
            description: description.clone(),
            mdfg,
            schedule: sched,
            design,
            verilog,
        })
    }

    /// [`Archytas::generate`] with the design-space search served through a
    /// shared [`SynthCache`]: a fleet tick regenerating accelerators for K
    /// traffic classes pays at most K searches, and repeat requests skip
    /// straight to M-DFG construction and Verilog emission.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError`] when no configuration meets the spec on
    /// the target platform.
    pub fn generate_cached(
        description: &AlgorithmDescription,
        spec: &DesignSpec,
        cache: &SynthCache,
    ) -> Result<GeneratedAccelerator, SynthesisError> {
        let spec = DesignSpec {
            shape: description.shape,
            ..spec.clone()
        };
        let mdfg = build_mdfg(&description.shape);
        let sched = schedule(&mdfg);
        let design = cache.synthesize(&spec)?;
        let verilog = emit_verilog(&design.config);
        Ok(GeneratedAccelerator {
            description: description.clone(),
            mdfg,
            schedule: sched,
            design,
            verilog,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Objective;
    use archytas_hw::FpgaPlatform;

    #[test]
    fn slam_generation_end_to_end() {
        let desc = AlgorithmDescription::slam_typical();
        let spec = DesignSpec::zc706_power_optimal(5.0);
        let acc = Archytas::generate(&desc, &spec).expect("feasible");
        assert!(acc.design.latency_ms <= 5.0);
        assert!(acc.verilog.structural_check().is_clean());
        assert!(acc.elaborate().is_ok());
        assert_eq!(acc.mdfg.nls_blocking.p, desc.shape.features);
        assert!(!acc.schedule.shared_blocks.is_empty());
    }

    #[test]
    fn other_algorithms_generate() {
        for desc in [
            AlgorithmDescription::curve_fitting(),
            AlgorithmDescription::pose_estimation(),
        ] {
            let spec = DesignSpec {
                objective: Objective::MinLatency,
                ..DesignSpec::zc706_power_optimal(0.0)
            };
            let acc = Archytas::generate(&desc, &spec).expect("feasible");
            assert!(acc.design.latency_ms > 0.0);
            assert!(acc.verilog.structural_check().is_clean());
            assert!(!desc.marginalization || !acc.mdfg.marginalization.is_empty());
        }
    }

    #[test]
    fn cached_generation_matches_and_reuses_searches() {
        let cache = SynthCache::new();
        let desc = AlgorithmDescription::slam_typical();
        let spec = DesignSpec::zc706_power_optimal(5.0);
        let direct = Archytas::generate(&desc, &spec).expect("feasible");
        let first = Archytas::generate_cached(&desc, &spec, &cache).expect("feasible");
        let second = Archytas::generate_cached(&desc, &spec, &cache).expect("feasible");
        assert!(first.design.same_design(&direct.design));
        assert!(second.design.same_design(&direct.design));
        assert_eq!(cache.searches(), 1, "second generation must hit the cache");
        assert_eq!(cache.hits(), 1);
        assert!(second.verilog.structural_check().is_clean());
    }

    #[test]
    fn spec_shape_is_overridden_by_description() {
        let desc = AlgorithmDescription::pose_estimation();
        let spec = DesignSpec::zc706_power_optimal(50.0); // spec carries the SLAM shape
        let acc = Archytas::generate(&desc, &spec).expect("feasible");
        // Pose estimation is a tiny workload: latency far below the bound,
        // modest design.
        assert!(acc.design.latency_ms < 5.0);
    }

    #[test]
    fn kintex_generation_targets_smaller_fabric() {
        let desc = AlgorithmDescription::slam_typical();
        let spec = DesignSpec {
            platform: FpgaPlatform::kintex7_160t(),
            objective: Objective::MinLatency,
            ..DesignSpec::zc706_power_optimal(0.0)
        };
        let acc = Archytas::generate(&desc, &spec).expect("feasible");
        assert!(acc
            .design
            .resources
            .fits(&FpgaPlatform::kintex7_160t().capacity));
        // The smaller board cannot host a ZC706-class design.
        let zc_spec = DesignSpec {
            platform: FpgaPlatform::zc706(),
            objective: Objective::MinLatency,
            ..DesignSpec::zc706_power_optimal(0.0)
        };
        let zc = Archytas::generate(&desc, &zc_spec).expect("feasible");
        assert!(zc.design.latency_ms <= acc.design.latency_ms);
    }
}
