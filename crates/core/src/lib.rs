//! The Archytas framework (MICRO 2021): automatic synthesis and dynamic
//! optimization of robotic-localization accelerators.
//!
//! This crate is the paper's primary contribution, assembled from the
//! substrate crates:
//!
//! * `synth` — the constrained-optimization hardware synthesizer (Sec. 5),
//! * `verilog` — emission of the synthesizable design (Fig. 1),
//! * `runtime` — the on-line iteration/clock-gating optimizer (Sec. 6),
//! * `vehicle` — the on-vehicle execution loop driving real workloads,
//! * `framework` — the end-to-end `Archytas::generate` entry point.
//!
//! # Example
//!
//! ```
//! use archytas_core::{AlgorithmDescription, Archytas, DesignSpec};
//!
//! let slam = AlgorithmDescription::slam_typical();
//! let spec = DesignSpec::zc706_power_optimal(5.0);
//! let accelerator = Archytas::generate(&slam, &spec)?;
//! assert!(accelerator.design.latency_ms <= 5.0);
//! assert!(accelerator.verilog.structural_check().is_clean());
//! # Ok::<(), archytas_core::SynthesisError>(())
//! ```

#![warn(missing_docs)]

mod adaptive;
mod elaborate;
mod framework;
mod runtime;
mod synth;
mod vehicle;
mod verilog;

pub use adaptive::AdaptiveIterPolicy;
pub use elaborate::{elaborate, Elaboration, Instance, Module, Port, PortDir};
pub use framework::{AlgorithmDescription, AlgorithmKind, Archytas, GeneratedAccelerator};
pub use runtime::{
    GatingCache, GatingTable, IterCounter, IterPolicy, IterationProfile, RuntimeDecision,
    RuntimeSystem, RuntimeWatchdog, ITER_CAP,
};
pub use synth::{
    knob_bounds, pareto_frontier, pareto_frontier_with, synthesize, synthesize_exhaustive,
    synthesize_warm, synthesize_warm_with, synthesize_with, validate_by_perturbation, DesignSpec,
    Objective, ParetoPoint, SynthCache, SynthesisError, SynthesizedDesign, LATENCY_QUANTUM_MS,
    ND_MAX, NM_MAX, S_MAX,
};
pub use vehicle::{run_sequence, Executor, RunSummary, WindowRecord};
pub use verilog::{emit_verilog, StructuralReport, VerilogDesign, VerilogFile};
