//! A miniature Verilog elaborator.
//!
//! The paper validates generated designs by running them through Vivado's
//! elaboration/synthesis flow; no HDL toolchain exists here, so this module
//! provides the first stage of that pipeline: it parses the emitted Verilog
//! into module definitions (ports, parameters, nets, instances and generate
//! loops), resolves the instance hierarchy from the top module, and checks
//! connectivity — named port connections must exist on the instantiated
//! module, connected signals must be declared in the parent, and generate
//! widths must resolve against parameter values.

use crate::verilog::VerilogDesign;
use std::collections::{BTreeMap, HashMap};

/// Direction of a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDir {
    /// `input`
    Input,
    /// `output`
    Output,
}

/// One parsed port.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
}

/// One parsed instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Module being instantiated.
    pub module: String,
    /// Instance name (`u_...`).
    pub name: String,
    /// Named connections `.port(signal)`.
    pub connections: Vec<(String, String)>,
}

/// One parsed module definition.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Parameters with integer defaults.
    pub parameters: BTreeMap<String, i64>,
    /// Ports in declaration order.
    pub ports: Vec<Port>,
    /// Declared internal nets (`wire`/`reg` identifiers).
    pub nets: Vec<String>,
    /// Instances inside the module body.
    pub instances: Vec<Instance>,
    /// Generate-loop bounds, as written (`g < S` → `"S"`).
    pub generate_bounds: Vec<String>,
}

/// The elaborated design.
#[derive(Debug, Clone, Default)]
pub struct Elaboration {
    /// All parsed modules by name.
    pub modules: HashMap<String, Module>,
    /// Hierarchy lines (`top/u_cholesky:cholesky_unit`).
    pub hierarchy: Vec<String>,
    /// Hard errors (undefined modules, bad connections, unresolved bounds).
    pub errors: Vec<String>,
    /// Soft warnings (unconnected child ports).
    pub warnings: Vec<String>,
}

impl Elaboration {
    /// `true` when elaboration produced no errors.
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }

    /// Total replicated leaf units implied by the generate loops of one
    /// module, resolved against its parameter defaults (e.g. the Cholesky
    /// unit's `S` Update lanes).
    pub fn resolved_generate_width(&self, module: &str) -> Option<i64> {
        let m = self.modules.get(module)?;
        let bound = m.generate_bounds.first()?;
        if let Ok(v) = bound.parse::<i64>() {
            return Some(v);
        }
        m.parameters.get(bound.as_str()).copied()
    }
}

fn ident(s: &str) -> String {
    s.chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// Parses one source file's modules into `out`.
fn parse_file(contents: &str, out: &mut HashMap<String, Module>) {
    let mut current: Option<Module> = None;
    for raw in contents.lines() {
        let line = raw.trim();
        if line.starts_with("//") || line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("module ") {
            let name = ident(rest);
            current = Some(Module {
                name,
                ..Module::default()
            });
            continue;
        }
        if line.starts_with("endmodule") {
            if let Some(m) = current.take() {
                out.insert(m.name.clone(), m);
            }
            continue;
        }
        let Some(m) = current.as_mut() else { continue };

        if let Some(rest) = line.strip_prefix("parameter ") {
            // `parameter ND = 28,`
            let name = ident(rest);
            if let Some(eq) = rest.find('=') {
                let val: String = rest[eq + 1..]
                    .trim()
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect();
                if let Ok(v) = val.parse::<i64>() {
                    m.parameters.insert(name, v);
                }
            }
            continue;
        }
        if let Some(rest) = strip_port_prefix(line) {
            let (dir, decl) = rest;
            // Skip type words (wire/reg) and widths `[7:0]`.
            let mut tokens = decl.split_whitespace().peekable();
            let mut name = String::new();
            for t in tokens.by_ref() {
                if t == "wire" || t == "reg" || t.starts_with('[') {
                    continue;
                }
                name = ident(t);
                break;
            }
            if !name.is_empty() {
                m.ports.push(Port { name, dir });
            }
            continue;
        }
        if line.starts_with("wire") || line.starts_with("reg") {
            // One or more comma-separated declarations on one line.
            let body = line
                .trim_start_matches("wire")
                .trim_start_matches("reg")
                .trim();
            for part in body.split(&[',', ';'][..]) {
                // Multiple declarations may share a line; strip repeated
                // type keywords and widths per segment.
                let mut part = part.trim();
                loop {
                    if let Some(rest) = part.strip_prefix("wire") {
                        part = rest.trim();
                    } else if let Some(rest) = part.strip_prefix("reg") {
                        part = rest.trim();
                    } else if let Some(close) = part.find(']') {
                        if part.starts_with('[') {
                            part = part[close + 1..].trim();
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                let name = ident(part);
                if !name.is_empty() {
                    m.nets.push(name);
                }
            }
            continue;
        }
        if line.starts_with("for (") || line.starts_with("for(") {
            // `for (g = 0; g < S; g = g + 1) begin : lanes`
            if let Some(lt) = line.find('<') {
                let bound: String = line[lt + 1..]
                    .trim()
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !bound.is_empty() {
                    m.generate_bounds.push(bound);
                }
            }
            continue;
        }
        // Instance head: `<module> [#(...)] u_<name> (`.
        if let Some(pos) = line.find(" u_") {
            let module = ident(&line[..pos]);
            if module.is_empty() || module == "module" {
                continue;
            }
            let name = ident(&line[pos + 1..]);
            m.instances.push(Instance {
                module,
                name,
                connections: Vec::new(),
            });
            continue;
        }
        // Connection lines: `.clk(clk), .rst_n(rst_n),`.
        if line.starts_with('.') {
            if let Some(inst) = m.instances.last_mut() {
                for conn in line.split('.').skip(1) {
                    let port = ident(conn);
                    let signal = conn
                        .find('(')
                        .map(|open| {
                            let rest = &conn[open + 1..];
                            let close = rest.find(')').unwrap_or(rest.len());
                            ident(rest[..close].trim())
                        })
                        .unwrap_or_default();
                    if !port.is_empty() {
                        inst.connections.push((port, signal));
                    }
                }
            }
        }
    }
}

fn strip_port_prefix(line: &str) -> Option<(PortDir, &str)> {
    if let Some(rest) = line.strip_prefix("input ") {
        Some((PortDir::Input, rest))
    } else {
        line.strip_prefix("output ")
            .map(|rest| (PortDir::Output, rest))
    }
}

/// Elaborates an emitted design from its top module.
pub fn elaborate(design: &VerilogDesign) -> Elaboration {
    let mut modules = HashMap::new();
    for file in &design.files {
        parse_file(&file.contents, &mut modules);
    }
    let mut elab = Elaboration {
        modules,
        ..Elaboration::default()
    };

    let Some(top) = elab.modules.get("archytas_top").cloned() else {
        elab.errors.push("top module archytas_top not found".into());
        return elab;
    };
    let mut stack = vec![(String::from("archytas_top"), top)];
    while let Some((path, module)) = stack.pop() {
        for inst in &module.instances {
            let child_path = format!("{path}/{}:{}", inst.name, inst.module);
            elab.hierarchy.push(child_path.clone());
            let Some(child) = elab.modules.get(&inst.module).cloned() else {
                elab.errors
                    .push(format!("{child_path}: undefined module {}", inst.module));
                continue;
            };
            // Every named connection must be a child port; every connected
            // signal must be declared in the parent.
            for (port, signal) in &inst.connections {
                if !child.ports.iter().any(|p| &p.name == port) {
                    elab.errors
                        .push(format!("{child_path}: no port '{port}' on {}", inst.module));
                }
                let declared = module.nets.iter().any(|n| n == signal)
                    || module.ports.iter().any(|p| &p.name == signal);
                if !declared && !signal.is_empty() {
                    elab.errors.push(format!(
                        "{child_path}: signal '{signal}' not declared in {}",
                        module.name
                    ));
                }
            }
            // Unconnected child ports are warnings (Vivado: floating pins).
            for p in &child.ports {
                if !inst.connections.iter().any(|(port, _)| port == &p.name) {
                    elab.warnings
                        .push(format!("{child_path}: port '{}' left unconnected", p.name));
                }
            }
            stack.push((child_path, child));
        }
        // Generate bounds must resolve to a positive integer.
        for bound in &module.generate_bounds {
            let resolved = bound
                .parse::<i64>()
                .ok()
                .or_else(|| module.parameters.get(bound.as_str()).copied());
            match resolved {
                Some(v) if v >= 1 => {}
                _ => elab
                    .errors
                    .push(format!("{path}: unresolved generate bound '{bound}'")),
            }
        }
    }
    elab
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::emit_verilog;
    use archytas_hw::AcceleratorConfig;

    fn elaborated() -> Elaboration {
        elaborate(&emit_verilog(&AcceleratorConfig::new(28, 19, 97)))
    }

    #[test]
    fn emitted_design_elaborates_cleanly() {
        let e = elaborated();
        assert!(e.is_ok(), "errors: {:?}", e.errors);
        assert!(e.modules.len() >= 8);
        // Hierarchy covers the template's units.
        let h = e.hierarchy.join("\n");
        for unit in [
            "u_jacobian",
            "u_dschur",
            "u_cholesky",
            "u_mschur",
            "u_fbsub",
        ] {
            assert!(h.contains(unit), "{unit} missing from hierarchy:\n{h}");
        }
    }

    #[test]
    fn parameters_parsed_with_defaults() {
        let e = elaborated();
        let top = &e.modules["archytas_top"];
        assert_eq!(top.parameters["ND"], 28);
        assert_eq!(top.parameters["NM"], 19);
        assert_eq!(top.parameters["S"], 97);
    }

    #[test]
    fn generate_widths_resolve_to_configuration() {
        let e = elaborated();
        assert_eq!(e.resolved_generate_width("cholesky_unit"), Some(97));
        assert_eq!(e.resolved_generate_width("dschur_unit"), Some(28));
        assert_eq!(e.resolved_generate_width("mschur_unit"), Some(19));
    }

    #[test]
    fn bad_connection_is_caught() {
        let mut design = emit_verilog(&AcceleratorConfig::new(4, 4, 4));
        design.files[0].contents = design.files[0]
            .contents
            .replace(".jac_out(jac_data)", ".nonexistent_port(jac_data)");
        let e = elaborate(&design);
        assert!(!e.is_ok());
        assert!(e.errors.iter().any(|m| m.contains("nonexistent_port")));
    }

    #[test]
    fn undeclared_signal_is_caught() {
        let mut design = emit_verilog(&AcceleratorConfig::new(4, 4, 4));
        design.files[0].contents = design.files[0]
            .contents
            .replace(".jac_in(jac_data)", ".jac_in(ghost_signal)");
        let e = elaborate(&design);
        assert!(e.errors.iter().any(|m| m.contains("ghost_signal")));
    }

    #[test]
    fn missing_module_is_caught() {
        let mut design = emit_verilog(&AcceleratorConfig::new(4, 4, 4));
        // Drop the MAC unit definition file entirely.
        design.files.retain(|f| f.name != "mac_unit.v");
        let e = elaborate(&design);
        assert!(e.errors.iter().any(|m| m.contains("mac_unit")));
    }

    #[test]
    fn ports_have_directions() {
        let e = elaborated();
        let chol = &e.modules["cholesky_unit"];
        let dir_of = |name: &str| chol.ports.iter().find(|p| p.name == name).map(|p| p.dir);
        assert_eq!(dir_of("clk"), Some(PortDir::Input));
        assert_eq!(dir_of("l_out"), Some(PortDir::Output));
    }
}
