//! Adaptive iteration policy — the paper's future-work extension
//! implemented (Sec. 6.2, "Discussion": *"We leave it to future work to
//! explore other mechanisms to tune the knob (e.g., training a machine
//! learning model)"*).
//!
//! Instead of an offline-profiled lookup table, this policy learns online:
//! each window's solver report reveals how many iterations the window
//! actually needed (where LM declared convergence, or that the budget ran
//! out), and an exponentially weighted average per feature-count bucket
//! tracks that requirement as the environment changes. No offline profiling
//! pass, no environment-specific tables — the knob tunes itself.

use crate::runtime::ITER_CAP;
use archytas_slam::SolveReport;

/// Feature-count bucket edges (lower bounds, descending).
const BUCKET_EDGES: [usize; 5] = [220, 170, 120, 70, 0];

/// Online-learning iteration policy.
#[derive(Debug, Clone)]
pub struct AdaptiveIterPolicy {
    /// EWMA of the required iteration count per bucket.
    estimate: [f64; BUCKET_EDGES.len()],
    /// Learning rate of the EWMA.
    alpha: f64,
    /// Safety margin added to the learned requirement.
    margin: f64,
    /// Step-norm threshold below which the final LM step counts as
    /// converged even without the (strict) relative-cost criterion.
    step_norm_tol: f64,
    observations: usize,
}

impl Default for AdaptiveIterPolicy {
    fn default() -> Self {
        Self::new(0.15, 1.0)
    }
}

impl AdaptiveIterPolicy {
    /// Creates a policy with learning rate `alpha` and safety `margin`
    /// (iterations added on top of the learned requirement).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha ≤ 1`.
    pub fn new(alpha: f64, margin: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self {
            // Start conservative: assume every bucket needs the cap until
            // evidence accumulates.
            estimate: [ITER_CAP as f64; BUCKET_EDGES.len()],
            alpha,
            margin,
            step_norm_tol: 0.008,
            observations: 0,
        }
    }

    fn bucket(features: usize) -> usize {
        BUCKET_EDGES
            .iter()
            .position(|&lo| features >= lo)
            .unwrap_or(BUCKET_EDGES.len() - 1)
    }

    /// Iteration budget for a feature count under the current estimates.
    pub fn iterations_for(&self, features: usize) -> usize {
        let est = self.estimate[Self::bucket(features)] + self.margin;
        (est.ceil() as usize).clamp(1, ITER_CAP)
    }

    /// Feeds back one window's outcome: the feature count it ran with and
    /// its solver report. A report that converged — by LM's relative-cost
    /// criterion *or* by its final step having shrunk below the step-norm
    /// tolerance — teaches "this bucket needed `report.iterations`"; an
    /// unconverged one teaches "more than the budget" (pushes the estimate
    /// up by one).
    pub fn observe(&mut self, features: usize, report: &SolveReport) {
        // Settle point: the first iteration whose accepted step fell below
        // the tolerance — everything after it refined noise.
        let settle = report
            .step_norms
            .iter()
            .position(|&n| n < self.step_norm_tol)
            .map(|i| i + 1);
        let required = match settle {
            Some(k) => k as f64,
            None if report.converged => report.iterations as f64,
            None => (report.iterations + 1) as f64,
        };
        let b = Self::bucket(features);
        self.estimate[b] += self.alpha * (required - self.estimate[b]);
        self.observations += 1;
    }

    /// Number of feedback observations consumed so far.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Current per-bucket estimates (diagnostic, bucket lower bounds paired
    /// with the learned requirement).
    pub fn estimates(&self) -> Vec<(usize, f64)> {
        BUCKET_EDGES
            .iter()
            .zip(&self.estimate)
            .map(|(&lo, &e)| (lo, e))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(iterations: usize, converged: bool) -> SolveReport {
        // Steps shrink to the settle tolerance exactly at `iterations`.
        let step_norms: Vec<f64> = (0..iterations)
            .map(|i| {
                if i + 1 >= iterations && converged {
                    0.01
                } else {
                    0.5
                }
            })
            .collect();
        SolveReport {
            iterations,
            initial_cost: 10.0,
            final_cost: 1.0,
            converged,
            lambda: 1e-4,
            last_step_norm: step_norms.last().copied().unwrap_or(0.1),
            step_norms,
            outcome: archytas_slam::SolveOutcome::Converged,
        }
    }

    #[test]
    fn starts_conservative() {
        let p = AdaptiveIterPolicy::default();
        for f in [30usize, 130, 260] {
            assert_eq!(p.iterations_for(f), ITER_CAP);
        }
    }

    #[test]
    fn learns_down_in_easy_buckets() {
        let mut p = AdaptiveIterPolicy::new(0.3, 0.5);
        // Rich windows keep converging in 2 iterations.
        for _ in 0..30 {
            p.observe(260, &report(2, true));
        }
        assert!(
            p.iterations_for(260) <= 3,
            "learned {}",
            p.iterations_for(260)
        );
        // Poor windows were never observed: still at the cap.
        assert_eq!(p.iterations_for(30), ITER_CAP);
    }

    #[test]
    fn learns_up_after_non_convergence() {
        let mut p = AdaptiveIterPolicy::new(0.3, 0.5);
        for _ in 0..30 {
            p.observe(260, &report(2, true));
        }
        let low = p.iterations_for(260);
        // The environment changes: budget 3 stops sufficing.
        for _ in 0..30 {
            p.observe(260, &report(3, false));
        }
        assert!(p.iterations_for(260) > low);
    }

    #[test]
    fn buckets_are_independent() {
        let mut p = AdaptiveIterPolicy::new(0.5, 0.0);
        for _ in 0..20 {
            p.observe(260, &report(1, true));
            p.observe(30, &report(6, false));
        }
        assert!(p.iterations_for(260) <= 2);
        assert_eq!(p.iterations_for(30), ITER_CAP);
        assert_eq!(p.observations(), 40);
    }

    #[test]
    fn budget_stays_in_range() {
        let mut p = AdaptiveIterPolicy::new(1.0, 0.0);
        p.observe(100, &report(0, true)); // degenerate report
        assert!(p.iterations_for(100) >= 1);
        for _ in 0..10 {
            p.observe(100, &report(9, false)); // over-cap report
        }
        assert_eq!(p.iterations_for(100), ITER_CAP);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        let _ = AdaptiveIterPolicy::new(0.0, 0.5);
    }
}
