//! The on-vehicle system (paper Fig. 1, right): sensors → front-end →
//! sliding-window estimator, executed either on a generated accelerator
//! (with or without the run-time optimizer) or on a CPU baseline.
//!
//! This module is the engine behind the paper's end-to-end experiments
//! (Figs. 15–16, Sec. 7.6): one sequence in, per-window latency / energy /
//! accuracy records out, with the estimation arithmetic actually executed
//! (f64 on the CPU path, f32 through the accelerator functional model).

use crate::runtime::{IterationProfile, RuntimeSystem, ITER_CAP};
use archytas_baselines::CpuPlatform;
use archytas_dataset::{DegradationCause, HealthState, PipelineConfig, SequenceData, VioPipeline};
use archytas_hw::{f32_linear_solver, AcceleratorModel};
use archytas_mdfg::ProblemShape;
use archytas_slam::{relative_error, schur_linear_solver, Pose, TrajectoryMetrics};

/// Who executes the per-window optimization.
///
/// One `Executor` exists per end-to-end run, so the size skew between the
/// accelerator and CPU variants costs nothing; boxing would only add a
/// pointer chase to the per-window latency lookup.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Executor {
    /// A generated accelerator; `runtime: Some(..)` enables the dynamic
    /// optimizer (Sec. 6), `None` runs the static design at the full
    /// iteration cap.
    Accelerator {
        /// The deployed design.
        model: AcceleratorModel,
        /// Optional run-time system.
        runtime: Option<RuntimeSystem>,
    },
    /// The software implementation on a CPU platform, at a fixed iteration
    /// budget.
    Cpu {
        /// The platform cost model.
        platform: CpuPlatform,
        /// Fixed NLS iteration budget.
        iterations: usize,
    },
}

/// One processed window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowRecord {
    /// Window index.
    pub window_id: usize,
    /// Feature points in the window.
    pub features: usize,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Modelled latency (ms).
    pub latency_ms: f64,
    /// Modelled energy (mJ).
    pub energy_mj: f64,
    /// Translational error of the newest keyframe (m).
    pub translation_error_m: f64,
    /// Per-window relative error (Fig. 11's metric).
    pub relative_error: f64,
    /// Degradation-ladder state after this window closed.
    pub health: HealthState,
    /// Whether the runtime watchdog held the full configuration for this
    /// window (always `false` on the CPU path and static accelerator runs).
    pub watchdog_engaged: bool,
    /// Why the window closed degraded (`None` when clean). Distinguishes a
    /// sanitized sensor fault from solver trouble and from a prior reset —
    /// and all three from fleet-level quarantine, which is a per-session
    /// verdict recorded by `archytas-fleet`, never here.
    pub degradation_cause: Option<DegradationCause>,
}

/// Aggregate result of one sequence run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Sequence name.
    pub sequence: String,
    /// Per-window records.
    pub windows: Vec<WindowRecord>,
    /// Total modelled compute time (ms).
    pub total_time_ms: f64,
    /// Total modelled energy (mJ).
    pub total_energy_mj: f64,
    /// Trajectory RMSE (m).
    pub rmse_m: f64,
    /// Mean per-window relative error.
    pub mean_relative_error: f64,
    /// Total NLS iterations across all windows.
    pub total_iterations: u64,
    /// Per-budget window counts (index = iteration budget): the runtime
    /// profiler's view of the run, also populated on static-accelerator
    /// and CPU runs from each window's fixed budget.
    pub iteration_profile: IterationProfile,
}

impl RunSummary {
    /// Mean per-window latency (ms).
    pub fn mean_latency_ms(&self) -> f64 {
        if self.windows.is_empty() {
            0.0
        } else {
            self.total_time_ms / self.windows.len() as f64
        }
    }

    /// Mean NLS iterations per window.
    pub fn mean_iterations(&self) -> f64 {
        self.iteration_profile.mean()
    }

    /// Mean power over the run (W).
    pub fn mean_power_w(&self) -> f64 {
        if self.total_time_ms <= 0.0 {
            0.0
        } else {
            self.total_energy_mj / self.total_time_ms
        }
    }

    /// Windows that closed in the `Degraded` ladder state.
    pub fn degraded_windows(&self) -> usize {
        self.windows
            .iter()
            .filter(|w| w.health == HealthState::Degraded)
            .count()
    }

    /// Windows for which the runtime watchdog held the full configuration.
    pub fn watchdog_windows(&self) -> usize {
        self.windows.iter().filter(|w| w.watchdog_engaged).count()
    }

    fn cause_windows(&self, cause: DegradationCause) -> usize {
        self.windows
            .iter()
            .filter(|w| w.degradation_cause == Some(cause))
            .count()
    }

    /// Windows degraded by a sanitized sensor fault.
    pub fn sensor_fault_windows(&self) -> usize {
        self.cause_windows(DegradationCause::SensorFault)
    }

    /// Windows degraded by the solver alone (no sensor fault latched).
    pub fn solver_divergence_windows(&self) -> usize {
        self.cause_windows(DegradationCause::SolverDivergence)
    }

    /// Windows degraded by a failed marginalization (prior reset).
    pub fn prior_reset_windows(&self) -> usize {
        self.cause_windows(DegradationCause::PriorReset)
    }
}

/// Runs one sequence end-to-end under the given executor.
pub fn run_sequence(data: &SequenceData, executor: &mut Executor) -> RunSummary {
    let mut pipeline = VioPipeline::new(PipelineConfig::default());
    let mut records = Vec::new();
    let mut metrics = TrajectoryMetrics::new();
    let mut total_time = 0.0;
    let mut total_energy = 0.0;
    let mut profile = IterationProfile::new();
    let mut prev_pair: Option<(Pose, Pose)> = None; // (est, gt)

    for frame in &data.frames {
        if !pipeline.push_frame(frame) {
            continue;
        }
        let features = pipeline.window().num_landmarks();
        // The pre-solve health verdict feeds the runtime watchdog (the
        // degradation ladder's runtime half): on a clean stream
        // `step_with_health` is bit-identical to `step`, so nominal runs
        // are unchanged, while a faulted window already runs at full
        // capacity.
        let healthy = !pipeline.health().is_suspect();

        // Decide iterations / power / solver per executor.
        let (iterations, power_w, is_accel, watchdog_engaged) = match executor {
            Executor::Accelerator { model, runtime } => match runtime {
                Some(rt) => {
                    let d = rt.step_with_health(features, healthy);
                    (d.iterations, d.gated_power_w, true, rt.watchdog().engaged())
                }
                None => (ITER_CAP, model.power_w(), true, false),
            },
            Executor::Cpu {
                platform,
                iterations,
            } => (*iterations, platform.power_w, false, false),
        };

        let result = if is_accel {
            pipeline.optimize_and_slide_with(iterations, &f32_linear_solver)
        } else {
            pipeline.optimize_and_slide_with(iterations, &schur_linear_solver)
        };

        let shape = ProblemShape::from_workload(&result.workload);
        let latency_ms = match executor {
            Executor::Accelerator { model, .. } => model.window_latency_ms(&shape, iterations),
            Executor::Cpu { platform, .. } => platform.window_time_ms(&shape, iterations),
        };
        let energy_mj = latency_ms * power_w;
        total_time += latency_ms;
        total_energy += energy_mj;
        profile.record(iterations);

        let rel = prev_pair.map_or(0.0, |(pe, pg)| {
            relative_error(&pe, &result.estimate, &pg, &result.ground_truth)
        });
        prev_pair = Some((result.estimate, result.ground_truth));
        metrics.record(&result.estimate, &result.ground_truth, rel);

        records.push(WindowRecord {
            window_id: result.window_id,
            features,
            iterations,
            latency_ms,
            energy_mj,
            translation_error_m: result.estimate.translation_distance(&result.ground_truth),
            relative_error: rel,
            health: result.health,
            watchdog_engaged,
            degradation_cause: result.cause,
        });
    }

    RunSummary {
        sequence: data.spec.name.clone(),
        windows: records,
        total_time_ms: total_time,
        total_energy_mj: total_energy,
        rmse_m: metrics.rmse(),
        mean_relative_error: metrics.mean_relative_error(),
        total_iterations: profile.total_iterations(),
        iteration_profile: profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::IterPolicy;
    use archytas_dataset::kitti_sequences;
    use archytas_hw::{FpgaPlatform, HIGH_PERF};

    fn short_sequence() -> SequenceData {
        kitti_sequences()[3].truncated(3.0).build()
    }

    fn accel_executor(dynamic: bool) -> Executor {
        let model = AcceleratorModel::new(HIGH_PERF, FpgaPlatform::zc706());
        let runtime = dynamic.then(|| {
            RuntimeSystem::new(
                HIGH_PERF,
                &ProblemShape::typical(),
                2.5,
                &FpgaPlatform::zc706(),
                IterPolicy::default_table(),
            )
        });
        Executor::Accelerator { model, runtime }
    }

    #[test]
    fn accelerator_run_produces_records() {
        let data = short_sequence();
        let mut exec = accel_executor(false);
        let summary = run_sequence(&data, &mut exec);
        assert_eq!(summary.windows.len(), data.frames.len() - 9);
        assert!(summary.total_time_ms > 0.0);
        assert!(summary.rmse_m < 1.0, "rmse {}", summary.rmse_m);
        assert!(summary.windows.iter().all(|w| w.iterations == ITER_CAP));
    }

    #[test]
    fn dynamic_runtime_cuts_energy_not_accuracy() {
        let data = short_sequence();
        let static_summary = run_sequence(&data, &mut accel_executor(false));
        let dynamic_summary = run_sequence(&data, &mut accel_executor(true));
        assert!(
            dynamic_summary.total_energy_mj < static_summary.total_energy_mj,
            "dynamic {} mJ vs static {} mJ",
            dynamic_summary.total_energy_mj,
            static_summary.total_energy_mj
        );
        // Accuracy within a hair (Sec. 7.6: ≤0.01 cm mean degradation band).
        assert!(dynamic_summary.rmse_m < static_summary.rmse_m + 0.02);
    }

    #[test]
    fn cpu_run_is_slower_but_same_accuracy_class() {
        let data = short_sequence();
        let accel = run_sequence(&data, &mut accel_executor(false));
        let mut cpu_exec = Executor::Cpu {
            platform: CpuPlatform::intel_comet_lake(),
            iterations: ITER_CAP,
        };
        let cpu = run_sequence(&data, &mut cpu_exec);
        assert!(cpu.total_time_ms > accel.total_time_ms * 2.0);
        assert!(cpu.total_energy_mj > accel.total_energy_mj * 10.0);
        // f32 accelerator datapath tracks the f64 software estimate.
        assert!((accel.rmse_m - cpu.rmse_m).abs() < 0.05);
    }

    #[test]
    fn nominal_run_health_is_clean() {
        // On a clean stream the health-fed runtime must behave exactly like
        // the plain one: no degraded windows, watchdog never engaged, every
        // dynamic decision at or below the cap.
        let data = short_sequence();
        let summary = run_sequence(&data, &mut accel_executor(true));
        assert_eq!(summary.degraded_windows(), 0);
        assert_eq!(summary.watchdog_windows(), 0);
        assert!(summary
            .windows
            .iter()
            .all(|w| w.health == HealthState::Nominal && w.iterations <= ITER_CAP));
    }

    #[test]
    fn summary_statistics_consistent() {
        let data = short_sequence();
        let summary = run_sequence(&data, &mut accel_executor(false));
        let sum: f64 = summary.windows.iter().map(|w| w.latency_ms).sum();
        assert!((sum - summary.total_time_ms).abs() < 1e-9);
        assert!(summary.mean_latency_ms() > 0.0);
        assert!(summary.mean_power_w() > 1.0);
    }

    #[test]
    fn summary_iterations_match_window_records() {
        let data = short_sequence();
        for dynamic in [false, true] {
            let summary = run_sequence(&data, &mut accel_executor(dynamic));
            let from_windows: u64 = summary.windows.iter().map(|w| w.iterations as u64).sum();
            assert_eq!(summary.total_iterations, from_windows);
            assert_eq!(
                summary.iteration_profile.windows(),
                summary.windows.len() as u64
            );
            assert!(summary.mean_iterations() >= 1.0);
            assert!(summary.mean_iterations() <= ITER_CAP as f64);
        }
    }
}
