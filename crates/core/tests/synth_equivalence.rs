//! Equivalence suite for the pruned design-space search.
//!
//! The optimized synthesizer paths — incumbent-bound pruned
//! ([`synthesize_with`]), warm-started ([`synthesize_warm_with`]) and
//! memoized ([`SynthCache`]) — all promise the **bitwise-identical design**
//! the exhaustive serial scan ([`synthesize_exhaustive`]) returns: same
//! configuration, bit-equal modelled latency, power and resources, at any
//! pool size; infeasible specs must report a bit-equal best-achievable
//! latency. These properties are exercised over random workload shapes,
//! both objectives and pools of 1, 2 and 8 threads.

use archytas_core::{
    synthesize_exhaustive, synthesize_warm_with, synthesize_with, DesignSpec, Objective,
    SynthCache, SynthesisError, SynthesizedDesign,
};
use archytas_hw::FpgaPlatform;
use archytas_mdfg::ProblemShape;
use archytas_par::Pool;
use proptest::prelude::*;

/// The pool gamut every equivalence property runs under: serial, and
/// oversubscribed parallel with the serial-fallback threshold disabled so
/// the striped path really executes on worker threads.
fn pools() -> Vec<Pool> {
    vec![
        Pool::with_threads(1),
        Pool::with_threads(2).with_serial_threshold(0),
        Pool::with_threads(8).with_serial_threshold(0),
    ]
}

fn shapes() -> impl Strategy<Value = ProblemShape> {
    (20usize..400, 2usize..12, 2usize..15, 0usize..40).prop_map(
        |(features, keyframes, obs_per_feature, marg)| ProblemShape {
            features,
            keyframes,
            states_per_keyframe: 15,
            obs_per_feature,
            marginalized_features: marg.min(features),
        },
    )
}

fn specs() -> impl Strategy<Value = DesignSpec> {
    // The vendored proptest has no `prop_oneof`; draw indices instead.
    (shapes(), 1usize..8, 0usize..2, 0usize..2, 1.0f64..40.0).prop_map(
        |(shape, iterations, plat, obj, bound)| DesignSpec {
            shape,
            iterations,
            platform: if plat == 0 {
                FpgaPlatform::zc706()
            } else {
                FpgaPlatform::kintex7_160t()
            },
            objective: if obj == 0 {
                Objective::MinLatency
            } else {
                Objective::MinPowerUnderLatency(bound)
            },
        },
    )
}

/// Asserts the optimized outcome equals the oracle outcome bit for bit —
/// including the infeasible case's best-achievable latency.
fn assert_same_outcome(
    got: &Result<SynthesizedDesign, SynthesisError>,
    oracle: &Result<SynthesizedDesign, SynthesisError>,
    label: &str,
) {
    match (got, oracle) {
        (Ok(g), Ok(o)) => assert!(
            g.same_design(o),
            "{label}: {:?} (lat bits {:#x}) != oracle {:?} (lat bits {:#x})",
            g.config,
            g.latency_ms.to_bits(),
            o.config,
            o.latency_ms.to_bits()
        ),
        (
            Err(SynthesisError::Infeasible {
                best_achievable_latency_ms: g,
            }),
            Err(SynthesisError::Infeasible {
                best_achievable_latency_ms: o,
            }),
        ) => assert_eq!(
            g.to_bits(),
            o.to_bits(),
            "{label}: infeasible latencies differ: {g} vs {o}"
        ),
        _ => panic!("{label}: feasibility disagrees: {got:?} vs oracle {oracle:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The pruned striped scan returns the exhaustive scan's outcome at
    /// every pool size.
    #[test]
    fn pruned_search_is_bitwise_exhaustive(spec in specs()) {
        let oracle = synthesize_exhaustive(&spec);
        for pool in pools() {
            let got = synthesize_with(&spec, &pool);
            assert_same_outcome(&got, &oracle, &format!("{} threads", pool.threads()));
        }
    }

    /// Warm-starting from a drifted neighbour's optimum (or from the exact
    /// same spec's optimum — the tightest possible prior) never changes
    /// the outcome.
    #[test]
    fn warm_search_is_bitwise_exhaustive(spec in specs(), drift in 0usize..60) {
        let oracle = synthesize_exhaustive(&spec);
        let mut neighbour = spec.clone();
        neighbour.shape.features += drift;
        let prior = match synthesize_with(&neighbour, &Pool::with_threads(1)) {
            Ok(d) => d,
            Err(_) => return Ok(()), // no prior to warm from
        };
        for pool in pools() {
            let got = synthesize_warm_with(&spec, &prior, &pool);
            assert_same_outcome(&got, &oracle, &format!("warm, {} threads", pool.threads()));
        }
    }

    /// The cache returns the exact exhaustive optimum *of the canonical
    /// spec* (the spec with its latency bound floored onto the cache grid),
    /// and the canonical design still satisfies the original bound.
    #[test]
    fn cached_search_is_bitwise_exhaustive_of_canonical(spec in specs()) {
        let canon = SynthCache::canonical_spec(&spec);
        let oracle = synthesize_exhaustive(&canon);
        for pool in pools() {
            let cache = SynthCache::new();
            let got = cache.synthesize_with(&spec, &pool);
            assert_same_outcome(&got, &oracle, &format!("cached, {} threads", pool.threads()));
            if let (Ok(d), Objective::MinPowerUnderLatency(bound)) = (&got, spec.objective) {
                prop_assert!(
                    d.latency_ms <= bound,
                    "canonical design violates the original bound: {} > {bound}",
                    d.latency_ms
                );
            }
        }
    }
}

/// The virtex7 scaled lattice (5.76M points) is the cold-sweep perf target;
/// this pins down that the pruned search actually covers it — every lattice
/// point is either examined or accounted to a bound cut — and that pruning
/// does the heavy lifting.
#[test]
fn virtex7_cold_sweep_prunes_most_of_the_lattice() {
    let spec = DesignSpec {
        platform: FpgaPlatform::virtex7_690t(),
        objective: Objective::MinLatency,
        ..DesignSpec::zc706_power_optimal(0.0)
    };
    let oracle = synthesize_exhaustive(&spec).expect("feasible");
    let pruned = synthesize_with(&spec, &Pool::with_threads(1)).expect("feasible");
    assert!(pruned.same_design(&oracle));
    let lattice = 120 * 96 * 500; // knob_bounds(virtex7_690t)
    assert!(
        pruned.candidates_examined < lattice / 100,
        "examined {} of {lattice}",
        pruned.candidates_examined
    );
    assert!(
        pruned.candidates_pruned > lattice / 2,
        "pruned only {} of {lattice}",
        pruned.candidates_pruned
    );
}

/// Racing lookups of one spec through a shared [`SynthCache`] must run the
/// search exactly once — the `GatingCache` exactly-once contract, applied
/// to whole design-space searches.
#[test]
fn synth_cache_racing_fill_is_exactly_once() {
    let cache = SynthCache::new();
    let spec = DesignSpec::zc706_power_optimal(5.0);
    let lookups: Vec<usize> = (0..64).collect();
    let pool = Pool::with_threads(8).with_serial_threshold(0);
    let designs = pool.par_map(&lookups, |_| {
        // Misses synthesize on the global pool; the nested-parallelism
        // guard keeps those searches serial inside these workers.
        cache.synthesize(&spec).expect("feasible")
    });
    assert_eq!(cache.searches(), 1, "racing fill must search exactly once");
    assert_eq!(cache.hits(), 63);
    let first = &designs[0];
    assert!(designs.iter().all(|d| d.same_design(first)));
    let stats = cache.stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.lookups(), 64);
}
