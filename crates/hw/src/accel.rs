//! The assembled accelerator model: configuration + platform + the latency,
//! resource and power models, with the paper's two named designs.

use crate::blocks::AcceleratorConfig;
use crate::latency::window_cycles;
use crate::platform::{FpgaPlatform, ResourceVector};
use crate::power::PowerModel;
use crate::resource::ResourceModel;
use archytas_mdfg::ProblemShape;

/// The paper's High-Perf design point (Tbl. 2): optimized under a 20 ms
/// latency constraint.
pub const HIGH_PERF: AcceleratorConfig = AcceleratorConfig {
    nd: 28,
    nm: 19,
    s: 97,
};

/// The paper's Low-Power design point (Tbl. 2): optimized under a 33 ms
/// latency constraint.
pub const LOW_POWER: AcceleratorConfig = AcceleratorConfig {
    nd: 21,
    nm: 8,
    s: 34,
};

/// A concrete accelerator instance on a concrete platform.
#[derive(Debug, Clone)]
pub struct AcceleratorModel {
    /// The three customization parameters.
    pub config: AcceleratorConfig,
    /// Target FPGA.
    pub platform: FpgaPlatform,
    /// Resource model (Eq. 16).
    pub resources: ResourceModel,
    /// Power model (Eq. 17).
    pub power: PowerModel,
}

impl AcceleratorModel {
    /// Builds a model of `config` on `platform` with the calibrated
    /// resource/power models.
    pub fn new(config: AcceleratorConfig, platform: FpgaPlatform) -> Self {
        let power = PowerModel::for_platform(&platform);
        Self {
            config,
            platform,
            resources: ResourceModel::calibrated(),
            power,
        }
    }

    /// Latency of one window in milliseconds (Eq. 13 at the design clock).
    pub fn window_latency_ms(&self, shape: &ProblemShape, iterations: usize) -> f64 {
        let cycles = window_cycles(shape, &self.config, iterations);
        cycles / (self.platform.clock_mhz * 1e3)
    }

    /// Full-activity power (W).
    pub fn power_w(&self) -> f64 {
        self.power.power_w(&self.config)
    }

    /// Energy of one window in millijoules.
    pub fn window_energy_mj(&self, shape: &ProblemShape, iterations: usize) -> f64 {
        self.window_latency_ms(shape, iterations) * self.power_w()
    }

    /// Total resource consumption.
    pub fn resource_vector(&self) -> ResourceVector {
        self.resources.resources(&self.config)
    }

    /// `true` when the design fits its platform.
    pub fn fits(&self) -> bool {
        self.resources.fits(&self.config, &self.platform)
    }
}

/// An [`AcceleratorModel`] with a memoized window-latency evaluation.
///
/// Sweeps like Fig. 16 evaluate the same model on thousands of windows, but
/// the latency model depends only on the window's [`ProblemShape`] and the
/// iteration count — and real traces repeat shapes constantly. This wrapper
/// runs `window_cycles` exactly once per distinct `(shape, iterations)` key
/// (energy derives from the cached latency), is safe to share across the
/// `archytas-par` workers, and exposes hit/miss counters so tests can assert
/// the exactly-once property.
#[derive(Debug)]
pub struct CachedAcceleratorModel {
    model: AcceleratorModel,
    latency: archytas_par::Memo<(ProblemShape, usize), f64>,
}

// The fleet serving layer hands one cached model to every session of the
// same deployed design; losing `Sync` here would silently serialize it.
const _: fn() = || {
    fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<CachedAcceleratorModel>();
};

impl CachedAcceleratorModel {
    /// Wraps `model` with an empty cache.
    pub fn new(model: AcceleratorModel) -> Self {
        Self {
            model,
            latency: archytas_par::Memo::new(),
        }
    }

    /// Wraps `model` for cross-thread sharing: hand clones of the returned
    /// `Arc` to every consumer of the same deployed design (fleet sessions,
    /// sweep workers) and the latency model fills exactly once per distinct
    /// `(shape, iterations)` key fleet-wide.
    pub fn shared(model: AcceleratorModel) -> std::sync::Arc<Self> {
        std::sync::Arc::new(Self::new(model))
    }

    /// The wrapped model.
    pub fn model(&self) -> &AcceleratorModel {
        &self.model
    }

    /// Memoized [`AcceleratorModel::window_latency_ms`].
    pub fn window_latency_ms(&self, shape: &ProblemShape, iterations: usize) -> f64 {
        self.latency.get_or_compute((*shape, iterations), || {
            self.model.window_latency_ms(shape, iterations)
        })
    }

    /// Memoized [`AcceleratorModel::window_energy_mj`] (reuses the cached
    /// latency; power is shape-independent).
    pub fn window_energy_mj(&self, shape: &ProblemShape, iterations: usize) -> f64 {
        self.window_latency_ms(shape, iterations) * self.model.power_w()
    }

    /// Latency-model evaluations actually performed (== distinct
    /// `(shape, iterations)` keys requested).
    pub fn evaluations(&self) -> usize {
        self.latency.misses()
    }

    /// Lookups served from the cache without evaluation.
    pub fn cache_hits(&self) -> usize {
        self.latency.hits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_designs_meet_their_latency_constraints() {
        // High-Perf was optimized under 20 ms, Low-Power under 33 ms
        // (Sec. 7.4), on typical windows at the full 6 iterations.
        let shape = ProblemShape::typical();
        let hp = AcceleratorModel::new(HIGH_PERF, FpgaPlatform::zc706());
        let lp = AcceleratorModel::new(LOW_POWER, FpgaPlatform::zc706());
        let l_hp = hp.window_latency_ms(&shape, 6);
        let l_lp = lp.window_latency_ms(&shape, 6);
        assert!(l_hp <= 20.0, "High-Perf latency {l_hp:.1} ms");
        assert!(l_lp <= 33.0, "Low-Power latency {l_lp:.1} ms");
        assert!(l_hp < l_lp);
    }

    #[test]
    fn named_designs_fit_zc706() {
        assert!(AcceleratorModel::new(HIGH_PERF, FpgaPlatform::zc706()).fits());
        assert!(AcceleratorModel::new(LOW_POWER, FpgaPlatform::zc706()).fits());
    }

    #[test]
    fn high_perf_does_not_fit_kintex() {
        // The Kintex-7 160T is much smaller than the ZC706's Z-7045.
        assert!(!AcceleratorModel::new(HIGH_PERF, FpgaPlatform::kintex7_160t()).fits());
    }

    #[test]
    fn energy_is_latency_times_power() {
        let shape = ProblemShape::typical();
        let m = AcceleratorModel::new(LOW_POWER, FpgaPlatform::zc706());
        let e = m.window_energy_mj(&shape, 4);
        assert!((e - m.window_latency_ms(&shape, 4) * m.power_w()).abs() < 1e-12);
        assert!(e > 0.0);
    }

    #[test]
    fn faster_design_costs_more_power() {
        let hp = AcceleratorModel::new(HIGH_PERF, FpgaPlatform::zc706());
        let lp = AcceleratorModel::new(LOW_POWER, FpgaPlatform::zc706());
        assert!(hp.power_w() > lp.power_w());
    }

    #[test]
    fn cached_model_matches_and_evaluates_once() {
        let model = AcceleratorModel::new(HIGH_PERF, FpgaPlatform::zc706());
        let cached = CachedAcceleratorModel::new(model.clone());
        let shapes = [
            ProblemShape::typical(),
            ProblemShape {
                features: 42,
                ..ProblemShape::typical()
            },
        ];
        for _ in 0..3 {
            for s in &shapes {
                assert_eq!(
                    cached.window_latency_ms(s, 6).to_bits(),
                    model.window_latency_ms(s, 6).to_bits()
                );
                assert_eq!(
                    cached.window_energy_mj(s, 6).to_bits(),
                    model.window_energy_mj(s, 6).to_bits()
                );
            }
        }
        // 2 shapes × 1 iteration count, despite 12 cache lookups (energy
        // routes through the latency memo too).
        assert_eq!(cached.evaluations(), 2);
        assert_eq!(cached.cache_hits(), 10);
        // A new iteration count is a new key.
        cached.window_latency_ms(&shapes[0], 4);
        assert_eq!(cached.evaluations(), 3);
    }

    #[test]
    fn shared_model_fills_exactly_once_under_concurrency() {
        // Many threads race to fill the same keys through one Arc-shared
        // model: every key must still be evaluated exactly once, and every
        // lookup must return the bitwise value of an unshared evaluation.
        let reference = AcceleratorModel::new(HIGH_PERF, FpgaPlatform::zc706());
        let cached = CachedAcceleratorModel::shared(reference.clone());
        let shapes: Vec<ProblemShape> = (0..8)
            .map(|i| ProblemShape {
                features: 40 + 20 * i,
                ..ProblemShape::typical()
            })
            .collect();
        // 512 lookups over 8 distinct shapes, forced onto 8 workers.
        let jobs: Vec<usize> = (0..512).collect();
        let pool = archytas_par::Pool::with_threads(8).with_serial_threshold(0);
        let model = std::sync::Arc::clone(&cached);
        let got = pool.par_map(&jobs, |&j| {
            let s = &shapes[j % shapes.len()];
            model.window_latency_ms(s, 6)
        });
        for (j, v) in got.iter().enumerate() {
            let want = reference.window_latency_ms(&shapes[j % shapes.len()], 6);
            assert_eq!(v.to_bits(), want.to_bits(), "lookup {j}");
        }
        assert_eq!(
            cached.evaluations(),
            shapes.len(),
            "exactly one fill per key"
        );
        assert_eq!(cached.cache_hits(), 512 - shapes.len());
    }
}
