//! FPGA resource model (paper Eq. 16):
//! `Res(nd, nm, s) = R0 + nd·Rd + nm·Rm + s·Rs`, independently for each of
//! LUT / FF / BRAM / DSP.
//!
//! The coefficients below are calibrated so that the two designs named in
//! the paper's Tbl. 2 — High-Perf `(nd, nm, s) = (28, 19, 97)` and Low-Power
//! `(21, 8, 34)` — reproduce the table's absolute consumptions on the ZC706
//! to within rounding (DSPs exactly: 849 and 442).

use crate::blocks::AcceleratorConfig;
use crate::platform::{FpgaPlatform, ResourceKind, ResourceVector, RESOURCE_KINDS};

/// Per-unit resource cost of the three customizable blocks plus the fixed
/// baseline (`R0`).
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceModel {
    /// Fixed cost of the non-customizable logic.
    pub base: ResourceVector,
    /// Cost of one D-type Schur MAC.
    pub per_nd: ResourceVector,
    /// Cost of one M-type Schur MAC.
    pub per_nm: ResourceVector,
    /// Cost of one Cholesky Update lane.
    pub per_s: ResourceVector,
}

impl Default for ResourceModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

impl ResourceModel {
    /// The Tbl. 2-calibrated model (see module docs).
    pub fn calibrated() -> Self {
        Self {
            base: ResourceVector::new(55_832.0, 85_931.0, 45.5, 66.0),
            per_nd: ResourceVector::new(950.0, 1_120.0, 2.0, 8.0),
            per_nm: ResourceVector::new(800.0, 900.0, 3.0, 9.0),
            per_s: ResourceVector::new(400.0, 295.0, 1.0, 4.0),
        }
    }

    /// Total resources of a configuration (Eq. 16).
    pub fn resources(&self, config: &AcceleratorConfig) -> ResourceVector {
        self.base
            .plus(&self.per_nd.times(config.nd as f64))
            .plus(&self.per_nm.times(config.nm as f64))
            .plus(&self.per_s.times(config.s as f64))
    }

    /// `true` when the configuration fits the platform in *all four*
    /// resource kinds (Sec. 5: exceeding even one means the design cannot be
    /// instantiated).
    pub fn fits(&self, config: &AcceleratorConfig, platform: &FpgaPlatform) -> bool {
        self.resources(config).fits(&platform.capacity)
    }

    /// Largest `s ∈ 1..=s_max` for which `(nd, nm, s)` fits the platform,
    /// or 0 when no lane count fits — exactly the value a descending
    /// [`ResourceModel::fits`] scan would find, in O(1) instead of
    /// O(`s_max`).
    ///
    /// Eq. 16 is linear with non-negative per-lane cost, so feasibility is
    /// monotone in `s`: an algebraic estimate (`⌊headroom / per-lane⌋` over
    /// the four kinds) lands within a step or two of the boundary, and a
    /// short fix-up walk against the *same* `fits` predicate the scan uses
    /// makes the result exact — no float-division rounding can shift it.
    pub fn max_feasible_s(
        &self,
        nd: usize,
        nm: usize,
        platform: &FpgaPlatform,
        s_max: usize,
    ) -> usize {
        if s_max == 0 {
            return 0;
        }
        let partial = self
            .base
            .plus(&self.per_nd.times(nd as f64))
            .plus(&self.per_nm.times(nm as f64));
        let mut est = s_max as f64;
        for k in RESOURCE_KINDS {
            let per = self.per_s.get(k);
            if per > 0.0 {
                est = est.min(((platform.capacity.get(k) - partial.get(k)) / per).floor());
            }
        }
        let mut s = est.clamp(0.0, s_max as f64) as usize;
        while s < s_max && self.fits(&AcceleratorConfig::new(nd, nm, s + 1), platform) {
            s += 1;
        }
        while s > 0 && !self.fits(&AcceleratorConfig::new(nd, nm, s), platform) {
            s -= 1;
        }
        s
    }

    /// Utilization report: `(kind, absolute, fraction)` per resource.
    pub fn utilization(
        &self,
        config: &AcceleratorConfig,
        platform: &FpgaPlatform,
    ) -> Vec<(ResourceKind, f64, f64)> {
        let r = self.resources(config);
        RESOURCE_KINDS
            .iter()
            .map(|&k| (k, r.get(k), platform.utilization(k, r.get(k))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HIGH_PERF: AcceleratorConfig = AcceleratorConfig {
        nd: 28,
        nm: 19,
        s: 97,
    };
    const LOW_POWER: AcceleratorConfig = AcceleratorConfig {
        nd: 21,
        nm: 8,
        s: 34,
    };

    #[test]
    fn table2_high_perf_reproduced() {
        let m = ResourceModel::calibrated();
        let r = m.resources(&HIGH_PERF);
        assert!((r.lut - 136_432.0).abs() < 150.0, "LUT {}", r.lut);
        assert!((r.ff - 163_006.0).abs() < 150.0, "FF {}", r.ff);
        assert!((r.bram - 255.5).abs() < 2.0, "BRAM {}", r.bram);
        assert_eq!(r.dsp, 849.0, "DSP exact");
    }

    #[test]
    fn table2_low_power_reproduced() {
        let m = ResourceModel::calibrated();
        let r = m.resources(&LOW_POWER);
        assert!((r.lut - 95_777.0).abs() < 150.0, "LUT {}", r.lut);
        assert!((r.ff - 126_670.0).abs() < 150.0, "FF {}", r.ff);
        assert!((r.bram - 146.0).abs() < 2.0, "BRAM {}", r.bram);
        assert_eq!(r.dsp, 442.0, "DSP exact");
    }

    #[test]
    fn table2_utilization_percentages() {
        let m = ResourceModel::calibrated();
        let p = FpgaPlatform::zc706();
        let util = m.utilization(&HIGH_PERF, &p);
        let frac = |kind: ResourceKind| util.iter().find(|(k, _, _)| *k == kind).unwrap().2;
        assert!((frac(ResourceKind::Lut) - 0.6241).abs() < 0.002);
        assert!((frac(ResourceKind::Ff) - 0.3728).abs() < 0.002);
        assert!((frac(ResourceKind::Bram) - 0.4688).abs() < 0.005);
        assert!((frac(ResourceKind::Dsp) - 0.9433).abs() < 0.001);
    }

    #[test]
    fn both_designs_fit_zc706() {
        let m = ResourceModel::calibrated();
        let p = FpgaPlatform::zc706();
        assert!(m.fits(&HIGH_PERF, &p));
        assert!(m.fits(&LOW_POWER, &p));
    }

    #[test]
    fn high_perf_is_dsp_limited() {
        // Sec. 7.4: "High-Perf is ultimately limited by the DSP resource" —
        // one more D-type MAC must blow the DSP budget before any other.
        let m = ResourceModel::calibrated();
        let p = FpgaPlatform::zc706();
        let bigger = AcceleratorConfig::new(HIGH_PERF.nd + 7, HIGH_PERF.nm, HIGH_PERF.s);
        let r = m.resources(&bigger);
        assert!(r.dsp > p.capacity.dsp, "DSP exceeded first");
        assert!(r.lut < p.capacity.lut && r.ff < p.capacity.ff && r.bram < p.capacity.bram);
    }

    #[test]
    fn max_feasible_s_matches_descending_scan() {
        let m = ResourceModel::calibrated();
        for platform in [
            FpgaPlatform::zc706(),
            FpgaPlatform::kintex7_160t(),
            FpgaPlatform::virtex7_690t(),
        ] {
            for nd in [1, 8, 21, 28, 60, 120] {
                for nm in [1, 4, 8, 19, 50, 96] {
                    for s_max in [1, 34, 125, 500] {
                        let mut expect = 0usize;
                        for s in (1..=s_max).rev() {
                            if m.fits(&AcceleratorConfig::new(nd, nm, s), &platform) {
                                expect = s;
                                break;
                            }
                        }
                        assert_eq!(
                            m.max_feasible_s(nd, nm, &platform, s_max),
                            expect,
                            "({nd},{nm}) on {} with s_max {s_max}",
                            platform.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn resources_monotone_in_knobs() {
        let m = ResourceModel::calibrated();
        let small = m.resources(&AcceleratorConfig::new(1, 1, 1));
        let big = m.resources(&AcceleratorConfig::new(10, 10, 10));
        for k in RESOURCE_KINDS {
            assert!(big.get(k) > small.get(k));
        }
    }

    #[test]
    fn knobs_span_resource_range() {
        // Sec. 7.2: overall resource consumption varies by roughly 3×
        // across the knob range.
        let m = ResourceModel::calibrated();
        let min = m.resources(&AcceleratorConfig::new(1, 1, 1));
        let max = m.resources(&AcceleratorConfig::new(30, 24, 120));
        let ratio = max.dsp / min.dsp;
        assert!(ratio > 2.5, "DSP span {ratio:.2}× too small");
    }
}
