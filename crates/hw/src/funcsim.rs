//! Functional model of the accelerator datapath.
//!
//! The generated FPGA designs compute in single precision; the host software
//! computes in double. This module reproduces the accelerator's numerics by
//! running the linear-solve portion of each LM iteration — the part mapped
//! onto the fabric (Fig. 5) — through the same D-type Schur → Cholesky →
//! substitution pipeline *in `f32`*. Plugging it into the LM loop yields the
//! end-to-end estimate the accelerator would produce, which is how the
//! dynamic-optimization accuracy claims (Sec. 7.6) are checked.

use archytas_math::{BlockSpec, Cholesky, DMat, DVec, FMat, FVec, SchurSystem};
use archytas_slam::{solve_with, FactorWeights, LmConfig, Prior, SlidingWindow, SolveReport};
use std::cell::RefCell;

thread_local! {
    // Reused f64→f32 staging buffers: the LM loop calls the linear solver
    // once per damping retry, and the (q+p)² matrix cast dominated its
    // allocation traffic. The `LinearSolver` signature is a plain fn, so the
    // reuse lives in thread-local storage rather than a workspace argument.
    static F32_STAGE: RefCell<(FMat, FVec)> =
        RefCell::new((FMat::zeros(0, 0), FVec::zeros(0)));
}

/// Solves the damped normal equations in the accelerator's single-precision
/// datapath. Returns `None` when the f32 factorization fails (the LM loop
/// raises λ, exactly as on the FPGA).
pub fn f32_linear_solver(a: &DMat, b: &DVec, num_landmarks: usize) -> Option<DVec> {
    F32_STAGE.with(|stage| {
        let (a32, b32) = &mut *stage.borrow_mut();
        a.cast_into(a32);
        b.cast_into(b32);
        f32_solve_staged(a32, b32, num_landmarks)
    })
}

fn f32_solve_staged(a32: &FMat, b32: &FVec, num_landmarks: usize) -> Option<DVec> {
    let x32 = if num_landmarks == 0 {
        Cholesky::factor(a32).ok()?.solve(b32)
    } else {
        let spec = BlockSpec::new(num_landmarks, a32.rows()).ok()?;
        let sys = SchurSystem::new(a32, b32, spec).ok()?;
        sys.solve().ok()?
    };
    if !x32.all_finite() {
        return None;
    }
    Some(x32.cast())
}

/// Runs the full LM optimization with the accelerator's f32 linear solver —
/// the functional model of one window's execution on the generated design.
pub fn accelerated_solve(
    window: &mut SlidingWindow,
    weights: &FactorWeights,
    prior: Option<&Prior>,
    config: &LmConfig,
) -> SolveReport {
    solve_with(window, weights, prior, config, &f32_linear_solver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use archytas_slam::{
        schur_linear_solver, solve, KeyframeState, Landmark, Observation, Pose, Quat, Vec3,
    };

    fn spd_system(n: usize, landmarks: usize) -> (DMat, DVec) {
        let b = DMat::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.1);
        let mut a = b.gram().add_diagonal(n as f64);
        // Diagonalize the landmark block, then restore positive definiteness
        // by making the matrix strictly diagonally dominant.
        for i in 0..landmarks {
            for j in 0..landmarks {
                if i != j {
                    a.set(i, j, 0.0);
                }
            }
        }
        let max_off = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| j != i)
                    .map(|j| a.get(i, j).abs())
                    .sum::<f64>()
            })
            .fold(0.0f64, f64::max);
        let a = a.add_diagonal(max_off + 1.0);
        let rhs: DVec = (0..n).map(|i| (i as f64) * 0.2 - 1.0).collect();
        (a, rhs)
    }

    #[test]
    fn f32_solution_close_to_f64() {
        let (a, b) = spd_system(40, 25);
        let x64 = schur_linear_solver(&a, &b, 25).unwrap();
        let x32 = f32_linear_solver(&a, &b, 25).unwrap();
        let rel = (&x64 - &x32).norm() / x64.norm();
        assert!(rel < 1e-4, "relative error {rel}");
        // But not identical — the datapath genuinely runs in f32.
        assert!((&x64 - &x32).norm() > 0.0);
    }

    #[test]
    fn f32_handles_no_landmarks() {
        let (a, b) = spd_system(12, 0);
        let x = f32_linear_solver(&a, &b, 0).unwrap();
        assert!((&a.mat_vec(&x) - &b).norm() < 1e-2);
    }

    #[test]
    fn f32_reports_indefinite_systems() {
        let mut a = DMat::identity(4);
        a.set(2, 2, -1.0);
        assert!(f32_linear_solver(&a, &DVec::zeros(4), 0).is_none());
    }

    /// End-to-end: the accelerator's estimate must match the software's to
    /// sub-millimetre accuracy on a toy window (Sec. 7.6 reports ≤0.01 cm
    /// mean degradation).
    #[test]
    fn accelerated_estimate_matches_software() {
        let build = || {
            let mut w = SlidingWindow::new();
            let kf0 = KeyframeState::at_pose(Pose::IDENTITY, 0.0);
            let kf1 = KeyframeState::at_pose(
                Pose::new(
                    Quat::exp(&Vec3::new(0.0, 0.01, 0.0)),
                    Vec3::new(0.4, 0.0, 0.0),
                ),
                0.1,
            );
            let kf2 =
                KeyframeState::at_pose(Pose::new(Quat::IDENTITY, Vec3::new(0.8, 0.05, 0.0)), 0.2);
            w.keyframes = vec![kf0, kf1, kf2];
            for l in 0..20 {
                let bearing = Vec3::new(
                    (l as f64 / 20.0 - 0.5) * 0.6,
                    ((l * 3 % 20) as f64 / 20.0 - 0.5) * 0.4,
                    1.0,
                );
                let depth = 4.0 + (l % 6) as f64;
                let p_w = kf0.pose.transform(&(bearing * depth));
                w.landmarks.push(Landmark {
                    id: l as u64,
                    anchor: 0,
                    bearing,
                    inv_depth: 1.0 / depth * 1.1,
                });
                for kf in 1..3usize {
                    let p_c = w.keyframes[kf].pose.inverse_transform(&p_w);
                    if p_c.z() > 0.1 {
                        w.observations.push(Observation {
                            landmark: l,
                            keyframe: kf,
                            uv: [p_c.x() / p_c.z(), p_c.y() / p_c.z()],
                        });
                    }
                }
            }
            w
        };
        let weights = FactorWeights::default();
        let cfg = LmConfig::default();

        let mut sw = build();
        let r_sw = solve(&mut sw, &weights, None, &cfg);
        let mut acc = build();
        let r_acc = accelerated_solve(&mut acc, &weights, None, &cfg);

        assert!(r_acc.final_cost < r_sw.initial_cost * 1e-3);
        for (a, b) in sw.keyframes.iter().zip(&acc.keyframes) {
            let d = a.pose.translation_distance(&b.pose);
            assert!(d < 1e-4, "pose divergence {d} m");
        }
    }
}
