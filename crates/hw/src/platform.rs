//! FPGA platform descriptors.
//!
//! The paper targets the Xilinx Zynq-7000 SoC ZC706 (Sec. 7.1) and
//! additionally evaluates a Kintex-7 and a Virtex-7 board (Sec. 7.7). The
//! capacities below are the vendors' published totals for the parts on those
//! boards.

use std::fmt;

/// Four FPGA resource types the synthesizer budgets (Sec. 5, "Resource
/// Model"): exceeding *any one* means the design cannot be instantiated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Look-up tables.
    Lut,
    /// Flip-flops.
    Ff,
    /// Block RAM (36 Kb units; halves exist, hence f64 amounts).
    Bram,
    /// DSP slices.
    Dsp,
}

/// All four resource kinds, in display order.
pub const RESOURCE_KINDS: [ResourceKind; 4] = [
    ResourceKind::Lut,
    ResourceKind::Ff,
    ResourceKind::Bram,
    ResourceKind::Dsp,
];

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Lut => write!(f, "LUT"),
            ResourceKind::Ff => write!(f, "FF"),
            ResourceKind::Bram => write!(f, "BRAM"),
            ResourceKind::Dsp => write!(f, "DSP"),
        }
    }
}

/// A bundle of amounts, one per resource kind.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceVector {
    /// LUT count.
    pub lut: f64,
    /// FF count.
    pub ff: f64,
    /// BRAM (36 Kb units).
    pub bram: f64,
    /// DSP slices.
    pub dsp: f64,
}

impl ResourceVector {
    /// Creates a vector from the four amounts.
    pub fn new(lut: f64, ff: f64, bram: f64, dsp: f64) -> Self {
        Self { lut, ff, bram, dsp }
    }

    /// Amount of one kind.
    pub fn get(&self, kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::Lut => self.lut,
            ResourceKind::Ff => self.ff,
            ResourceKind::Bram => self.bram,
            ResourceKind::Dsp => self.dsp,
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, o: &ResourceVector) -> ResourceVector {
        ResourceVector::new(
            self.lut + o.lut,
            self.ff + o.ff,
            self.bram + o.bram,
            self.dsp + o.dsp,
        )
    }

    /// Component-wise scale.
    pub fn times(&self, s: f64) -> ResourceVector {
        ResourceVector::new(self.lut * s, self.ff * s, self.bram * s, self.dsp * s)
    }

    /// `true` when every component fits within `capacity`.
    pub fn fits(&self, capacity: &ResourceVector) -> bool {
        RESOURCE_KINDS
            .iter()
            .all(|&k| self.get(k) <= capacity.get(k))
    }
}

/// An FPGA platform: capacities plus the design clock.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaPlatform {
    /// Human-readable name.
    pub name: &'static str,
    /// Total resources of the part.
    pub capacity: ResourceVector,
    /// Design clock frequency (MHz). The paper's designs run at 143 MHz.
    pub clock_mhz: f64,
}

impl FpgaPlatform {
    /// Xilinx Zynq-7000 SoC ZC706 (XC7Z045) — the paper's primary target.
    pub fn zc706() -> Self {
        Self {
            name: "Zynq-7000 ZC706",
            capacity: ResourceVector::new(218_600.0, 437_200.0, 545.0, 900.0),
            clock_mhz: 143.0,
        }
    }

    /// Xilinx Kintex-7 XC7K160T (Sec. 7.7).
    pub fn kintex7_160t() -> Self {
        Self {
            name: "Kintex-7 XC7K160T",
            capacity: ResourceVector::new(101_400.0, 202_800.0, 325.0, 600.0),
            clock_mhz: 143.0,
        }
    }

    /// Xilinx Virtex-7 XC7VX690T (Sec. 7.7).
    pub fn virtex7_690t() -> Self {
        Self {
            name: "Virtex-7 XC7VX690T",
            capacity: ResourceVector::new(433_200.0, 866_400.0, 1_470.0, 3_600.0),
            clock_mhz: 143.0,
        }
    }

    /// Converts a cycle count to milliseconds at this platform's clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz * 1e3)
    }

    /// Utilization fraction (0..1+) of one resource kind for an absolute
    /// amount.
    pub fn utilization(&self, kind: ResourceKind, amount: f64) -> f64 {
        amount / self.capacity.get(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zc706_capacities_match_part() {
        let p = FpgaPlatform::zc706();
        assert_eq!(p.capacity.dsp, 900.0);
        assert_eq!(p.capacity.lut, 218_600.0);
        // Table 2 sanity: 849 DSPs is 94.33 % of the part.
        let util = p.utilization(ResourceKind::Dsp, 849.0);
        assert!((util - 0.9433).abs() < 1e-3);
        let util = p.utilization(ResourceKind::Lut, 136_432.0);
        assert!((util - 0.6241).abs() < 1e-3);
    }

    #[test]
    fn cycles_to_ms_at_143mhz() {
        let p = FpgaPlatform::zc706();
        // 143_000 cycles at 143 MHz = 1 ms.
        assert!((p.cycles_to_ms(143_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fits_is_component_wise() {
        let cap = ResourceVector::new(100.0, 100.0, 10.0, 10.0);
        assert!(ResourceVector::new(99.0, 99.0, 10.0, 10.0).fits(&cap));
        assert!(!ResourceVector::new(101.0, 1.0, 1.0, 1.0).fits(&cap));
        assert!(!ResourceVector::new(1.0, 1.0, 1.0, 10.5).fits(&cap));
    }

    #[test]
    fn vector_arithmetic() {
        let a = ResourceVector::new(1.0, 2.0, 3.0, 4.0);
        let b = a.times(2.0).plus(&a);
        assert_eq!(b, ResourceVector::new(3.0, 6.0, 9.0, 12.0));
        assert_eq!(b.get(ResourceKind::Bram), 9.0);
    }

    #[test]
    fn boards_are_ordered_by_size() {
        let k = FpgaPlatform::kintex7_160t();
        let z = FpgaPlatform::zc706();
        let v = FpgaPlatform::virtex7_690t();
        assert!(k.capacity.dsp < z.capacity.dsp);
        assert!(z.capacity.dsp < v.capacity.dsp);
    }
}
