//! Per-block energy accounting.
//!
//! The coarse model (Eq. 17 × time) treats the whole fabric as either on or
//! clock-gated by the run-time system's `(nd, nm, s)`. The block-level
//! model here splits a window's energy by *what each block actually did*
//! (busy cycles from the cycle-level simulator) plus idle/static floors —
//! the accounting a fine-grained (per-block, per-phase) gating scheme would
//! enable. Comparing the two quantifies how much headroom the paper's
//! simple three-knob gating leaves on the table (an ablation of Sec. 6's
//! design choice).

use crate::blocks::AcceleratorConfig;
use crate::cyclesim::{simulate_window, WindowSimResult};
use crate::power::PowerModel;
use archytas_mdfg::{HwBlockClass, ProblemShape};

/// Energy of one window, split per hardware block.
#[derive(Debug, Clone)]
pub struct EnergyBreakdown {
    /// `(block, active_mj, idle_mj)` per block.
    pub per_block: Vec<(HwBlockClass, f64, f64)>,
    /// Static/base energy (uncustomizable logic + fabric leakage), mJ.
    pub base_mj: f64,
    /// Total window time, ms.
    pub window_ms: f64,
}

impl EnergyBreakdown {
    /// Total energy (mJ).
    pub fn total_mj(&self) -> f64 {
        self.base_mj + self.per_block.iter().map(|(_, a, i)| a + i).sum::<f64>()
    }

    /// Energy attributable to idle-but-unclocked-gated cycles (mJ) — the
    /// headroom a finer-grained gating scheme could reclaim.
    pub fn idle_mj(&self) -> f64 {
        self.per_block.iter().map(|(_, _, i)| *i).sum()
    }
}

/// Fraction of a block's dynamic power it still draws while idle but not
/// clock-gated (clock-tree and control overhead).
const IDLE_FRACTION: f64 = 0.35;

/// Dynamic power of one block class under a configuration (W).
fn block_power_w(block: HwBlockClass, config: &AcceleratorConfig, power: &PowerModel) -> f64 {
    match block {
        HwBlockClass::DTypeSchur => config.nd as f64 * power.per_nd_w,
        HwBlockClass::MTypeSchur => config.nm as f64 * power.per_nm_w,
        HwBlockClass::Cholesky => config.s as f64 * power.per_s_w,
        // Fixed-function blocks: folded into the base term of Eq. 17; give
        // them a nominal share so the breakdown is complete.
        HwBlockClass::VisualJacobian => 0.25,
        HwBlockClass::ImuJacobian => 0.05,
        HwBlockClass::FormInformation => 0.10,
        HwBlockClass::BackSubstitution => 0.05,
    }
}

/// Computes the per-block energy of one window at the given clock (MHz).
pub fn window_energy_breakdown(
    shape: &ProblemShape,
    config: &AcceleratorConfig,
    iterations: usize,
    power: &PowerModel,
    clock_mhz: f64,
) -> EnergyBreakdown {
    let sim: WindowSimResult = simulate_window(shape, config, iterations);
    let window_ms = sim.total_cycles / (clock_mhz * 1e3);
    let blocks = [
        HwBlockClass::VisualJacobian,
        HwBlockClass::ImuJacobian,
        HwBlockClass::FormInformation,
        HwBlockClass::DTypeSchur,
        HwBlockClass::MTypeSchur,
        HwBlockClass::Cholesky,
        HwBlockClass::BackSubstitution,
    ];
    let mut per_block = Vec::new();
    for block in blocks {
        let p = block_power_w(block, config, power);
        let busy_ms = sim
            .activity
            .iter()
            .find(|a| a.block == block)
            .map_or(0.0, |a| a.busy_cycles / (clock_mhz * 1e3));
        let idle_ms = (window_ms - busy_ms).max(0.0);
        per_block.push((block, p * busy_ms, p * IDLE_FRACTION * idle_ms));
    }
    // Base power: Eq. 17's P0 minus the nominal fixed-function shares above.
    let accounted: f64 = [0.25, 0.05, 0.10, 0.05].iter().sum();
    let base_w = (power.base_w - accounted).max(0.0);
    EnergyBreakdown {
        per_block,
        base_mj: base_w * window_ms,
        window_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::HIGH_PERF;

    fn breakdown(iterations: usize) -> EnergyBreakdown {
        window_energy_breakdown(
            &ProblemShape::typical(),
            &HIGH_PERF,
            iterations,
            &PowerModel::zc706(),
            143.0,
        )
    }

    #[test]
    fn totals_bounded_by_coarse_model() {
        // The block-level total must sit between the fully-gated floor and
        // the everything-always-on ceiling of the coarse Eq. 17 model.
        let b = breakdown(6);
        let coarse_w = PowerModel::zc706().power_w(&HIGH_PERF);
        let ceiling = coarse_w * b.window_ms;
        let floor = PowerModel::zc706().base_w * b.window_ms * 0.5;
        let total = b.total_mj();
        assert!(
            total <= ceiling * 1.01,
            "total {total} vs ceiling {ceiling}"
        );
        assert!(total >= floor, "total {total} vs floor {floor}");
    }

    #[test]
    fn idle_headroom_exists() {
        // The serialized phases guarantee every block idles part of the
        // window — the headroom finer-grained gating would reclaim.
        let b = breakdown(6);
        assert!(b.idle_mj() > 0.0);
        assert!(b.idle_mj() < b.total_mj());
    }

    #[test]
    fn more_iterations_cost_more_energy() {
        assert!(breakdown(6).total_mj() > breakdown(1).total_mj());
    }

    #[test]
    fn schur_dominates_active_energy_on_big_configs() {
        // With nd = 28 the D-type Schur MAC array is the biggest dynamic
        // consumer among the customizable blocks during the NLS phase.
        let b = breakdown(6);
        let active = |block: HwBlockClass| {
            b.per_block
                .iter()
                .find(|(bl, _, _)| *bl == block)
                .map_or(0.0, |(_, a, _)| *a)
        };
        assert!(active(HwBlockClass::DTypeSchur) > active(HwBlockClass::MTypeSchur));
    }

    #[test]
    fn breakdown_covers_all_blocks() {
        let b = breakdown(4);
        assert_eq!(b.per_block.len(), 7);
        assert!(b.window_ms > 0.0);
    }
}
