//! End-to-end latency model of one sliding window (paper Eqs. 13–15).

use crate::blocks::{
    back_substitution_latency, cholesky_latency, dschur_feature_latency, jacobian_feature_latency,
    mschur_latency, AcceleratorConfig,
};
use archytas_mdfg::ProblemShape;

/// Host-interface overhead per window: trigger, feature upload and result
/// readback over the host bus (Sec. 7.1: "The FPGA is triggered by the host
/// for each sliding window").
pub const WINDOW_OVERHEAD_CYCLES: f64 = 10_000.0;

/// Per-iteration sequencing overhead (buffer swaps, block restarts).
pub const ITERATION_OVERHEAD_CYCLES: f64 = 2_000.0;

/// Latency of one NLS iteration in cycles (Eq. 14):
///
/// `L_NLS = Σᵢ₌₁ᵃ max(L_Jac, L_DSchur(nd)) + L_Cholesky(s) + L_sub`
///
/// The `max` captures the pipeline parallelism between the Jacobian unit and
/// the D-type Schur unit streaming across the `a` feature points (Sec. 4.1).
pub fn nls_iteration_cycles(shape: &ProblemShape, config: &AcceleratorConfig) -> f64 {
    let no = shape.obs_per_feature as f64;
    let per_feature = jacobian_feature_latency(no).max(dschur_feature_latency(no, config.nd));
    let reduced = shape.pose_block_dim();
    shape.features as f64 * per_feature
        + cholesky_latency(reduced, config.s)
        + back_substitution_latency(reduced)
        + ITERATION_OVERHEAD_CYCLES
}

/// Marginalization latency in cycles (Eq. 15):
///
/// `L_Marg = am·L_Jac + L_DSchur(nd) + L_Cholesky(s) + L_MSchur(nm)`
pub fn marginalization_cycles(shape: &ProblemShape, config: &AcceleratorConfig) -> f64 {
    let no = shape.obs_per_feature as f64;
    let am = shape.marginalized_features;
    // The marginalized block's D-type Schur (S′) runs once over the am
    // features being folded in.
    let dschur = am as f64 * dschur_feature_latency(no, config.nd);
    am as f64 * jacobian_feature_latency(no)
        + dschur
        + cholesky_latency(am + shape.states_per_keyframe, config.s)
        + mschur_latency(am, shape.keyframes, config.nm)
}

/// Total latency of one sliding window in cycles (Eq. 13):
/// `Iter × L_NLS + L_Marg`.
pub fn window_cycles(shape: &ProblemShape, config: &AcceleratorConfig, iterations: usize) -> f64 {
    iterations as f64 * nls_iteration_cycles(shape, config)
        + marginalization_cycles(shape, config)
        + WINDOW_OVERHEAD_CYCLES
}

/// Memoized per-knob evaluation tables for [`window_cycles`] over the
/// synthesizer's `(nd, nm, s)` lattice.
///
/// Eq. 13's summands each depend on a *single* knob: the per-feature
/// pipeline term and the marginalization D-Schur term on `nd`, the M-Schur
/// term on `nm`, and the two Cholesky terms on `s`. Building the tables
/// evaluates every distinct sub-term once (`nd_max + nm_max + 2·s_max`
/// model calls) instead of once per lattice point, and
/// [`LatencyTables::window_cycles_at`] then replays the **exact
/// floating-point summation order** of [`window_cycles`] — same operands,
/// same operation sequence — so the result is bit-identical to the direct
/// evaluation (asserted by `tables_replay_window_cycles_bitwise` below).
///
/// The tables also expose a *monotonicity-safe lower bound*
/// ([`LatencyTables::window_cycles_lower_bound`]): every per-knob term is
/// replaced by its minimum over the queried subrange (`nd` fixed per
/// stripe, M-Schur is non-increasing in `nm`, the Cholesky terms carry
/// prefix-minimum tables over `s`). Because IEEE-754 addition and
/// multiplication by a positive constant are monotone under
/// round-to-nearest, summing term-wise minima in the same expression shape
/// yields a value ≤ every actual latency in the subrange — a bound cut can
/// therefore never discard a candidate that ties or beats the incumbent.
#[derive(Debug, Clone)]
pub struct LatencyTables {
    iterations: f64,
    features: f64,
    backsub: f64,
    /// `am · L_Jac` — the nd/nm/s-independent marginalization prefix.
    am_jac: f64,
    /// `max(L_Jac, L_DSchur(nd))`, indexed by `nd - 1`.
    per_feature: Vec<f64>,
    /// `am · L_DSchur(nd)`, indexed by `nd - 1`.
    dschur_marg: Vec<f64>,
    /// `L_Cholesky(kb, s)` of the NLS reduced system, indexed by `s - 1`.
    chol_nls: Vec<f64>,
    /// `L_Cholesky(am + k, s)` of the marginalized block, indexed by `s - 1`.
    chol_marg: Vec<f64>,
    /// `L_MSchur(nm)`, indexed by `nm - 1`.
    mschur: Vec<f64>,
    /// `min(chol_nls[..=i])`, indexed by `s - 1`.
    chol_nls_prefix_min: Vec<f64>,
    /// `min(chol_marg[..=i])`, indexed by `s - 1`.
    chol_marg_prefix_min: Vec<f64>,
    /// Per-[`S_BLOCK`]-block minima of `chol_nls`, indexed by block.
    chol_nls_block_min: Vec<f64>,
    /// Per-[`S_BLOCK`]-block minima of `chol_marg`, indexed by block.
    chol_marg_block_min: Vec<f64>,
}

/// Granularity of [`LatencyTables::window_cycles_lower_bound_s_block`]'s
/// `s`-axis subrange bounds: the lattice's `s` range is tiled into blocks of
/// this many lane counts, each carrying its own Cholesky-term minima.
pub const S_BLOCK: usize = 16;

impl LatencyTables {
    /// Builds the tables for one workload/iteration budget over knob ranges
    /// `nd ∈ 1..=nd_max`, `nm ∈ 1..=nm_max`, `s ∈ 1..=s_max`.
    pub fn new(
        shape: &ProblemShape,
        iterations: usize,
        nd_max: usize,
        nm_max: usize,
        s_max: usize,
    ) -> Self {
        let no = shape.obs_per_feature as f64;
        let reduced = shape.pose_block_dim();
        let am = shape.marginalized_features;
        let jac = jacobian_feature_latency(no);
        let per_feature: Vec<f64> = (1..=nd_max)
            .map(|nd| jac.max(dschur_feature_latency(no, nd)))
            .collect();
        let dschur_marg: Vec<f64> = (1..=nd_max)
            .map(|nd| am as f64 * dschur_feature_latency(no, nd))
            .collect();
        let chol_nls: Vec<f64> = (1..=s_max).map(|s| cholesky_latency(reduced, s)).collect();
        let chol_marg: Vec<f64> = (1..=s_max)
            .map(|s| cholesky_latency(am + shape.states_per_keyframe, s))
            .collect();
        let mschur: Vec<f64> = (1..=nm_max)
            .map(|nm| mschur_latency(am, shape.keyframes, nm))
            .collect();
        let prefix_min = |v: &[f64]| {
            let mut out = Vec::with_capacity(v.len());
            let mut m = f64::INFINITY;
            for &x in v {
                m = m.min(x);
                out.push(m);
            }
            out
        };
        let block_min = |v: &[f64]| {
            v.chunks(S_BLOCK)
                .map(|c| c.iter().copied().fold(f64::INFINITY, f64::min))
                .collect::<Vec<f64>>()
        };
        Self {
            iterations: iterations as f64,
            features: shape.features as f64,
            backsub: back_substitution_latency(reduced),
            am_jac: am as f64 * jac,
            chol_nls_prefix_min: prefix_min(&chol_nls),
            chol_marg_prefix_min: prefix_min(&chol_marg),
            chol_nls_block_min: block_min(&chol_nls),
            chol_marg_block_min: block_min(&chol_marg),
            per_feature,
            dschur_marg,
            chol_nls,
            chol_marg,
            mschur,
        }
    }

    /// [`window_cycles`] at one lattice point, bit-identical to the direct
    /// evaluation (identical floating-point operation sequence).
    #[inline]
    pub fn window_cycles_at(&self, nd: usize, nm: usize, s: usize) -> f64 {
        let nls = self.features * self.per_feature[nd - 1]
            + self.chol_nls[s - 1]
            + self.backsub
            + ITERATION_OVERHEAD_CYCLES;
        let marg =
            self.am_jac + self.dschur_marg[nd - 1] + self.chol_marg[s - 1] + self.mschur[nm - 1];
        self.iterations * nls + marg + WINDOW_OVERHEAD_CYCLES
    }

    /// Lower bound on [`window_cycles`] over the subrange
    /// `{nd} × (1..=nm_hi) × (1..=s_hi)`: each per-knob term is replaced by
    /// its subrange minimum (M-Schur latency is non-increasing in `nm`, so
    /// `nm_hi` minimizes it) inside the same summation shape, which
    /// monotone rounding keeps ≤ every actual value in the subrange.
    #[inline]
    pub fn window_cycles_lower_bound(&self, nd: usize, nm_hi: usize, s_hi: usize) -> f64 {
        let nls = self.features * self.per_feature[nd - 1]
            + self.chol_nls_prefix_min[s_hi - 1]
            + self.backsub
            + ITERATION_OVERHEAD_CYCLES;
        let marg = self.am_jac
            + self.dschur_marg[nd - 1]
            + self.chol_marg_prefix_min[s_hi - 1]
            + self.mschur[nm_hi - 1];
        self.iterations * nls + marg + WINDOW_OVERHEAD_CYCLES
    }

    /// Lower bound on [`window_cycles`] over the `s`-axis block
    /// `{nd} × {nm} × (block·S_BLOCK + 1 ..= (block+1)·S_BLOCK)`: the two
    /// Cholesky terms take their block minima, everything else is exact.
    /// Valid for any truncation of the block (a superset minimum is still a
    /// lower bound).
    #[inline]
    pub fn window_cycles_lower_bound_s_block(&self, nd: usize, nm: usize, block: usize) -> f64 {
        let nls = self.features * self.per_feature[nd - 1]
            + self.chol_nls_block_min[block]
            + self.backsub
            + ITERATION_OVERHEAD_CYCLES;
        let marg = self.am_jac
            + self.dschur_marg[nd - 1]
            + self.chol_marg_block_min[block]
            + self.mschur[nm - 1];
        self.iterations * nls + marg + WINDOW_OVERHEAD_CYCLES
    }

    /// The `s` minimizing the combined Cholesky contribution
    /// `Iter·L_Chol(kb, s) + L_Chol(am+k, s)` over `1..=s_max` (first
    /// minimizer on ties) — Eq. 7's `max(s·E, ·)` makes the term
    /// non-monotone in `s`, so the sweet spot is a table lookup, not an
    /// endpoint. Used to seed incumbent probes.
    pub fn best_s_hint(&self) -> usize {
        let mut best = 1usize;
        let mut best_val = f64::INFINITY;
        for s in 1..=self.chol_nls.len() {
            let v = self.iterations * self.chol_nls[s - 1] + self.chol_marg[s - 1];
            if v < best_val {
                best_val = v;
                best = s;
            }
        }
        best
    }

    /// Knob range the tables cover, `(nd_max, nm_max, s_max)`.
    pub fn bounds(&self) -> (usize, usize, usize) {
        (
            self.per_feature.len(),
            self.mschur.len(),
            self.chol_nls.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nd: usize, nm: usize, s: usize) -> AcceleratorConfig {
        AcceleratorConfig::new(nd, nm, s)
    }

    #[test]
    fn latency_monotone_in_iterations() {
        let shape = ProblemShape::typical();
        let c = cfg(8, 8, 16);
        let l1 = window_cycles(&shape, &c, 1);
        let l6 = window_cycles(&shape, &c, 6);
        assert!(l6 > l1);
        // Exactly linear in Iter (Eq. 13).
        let nls = nls_iteration_cycles(&shape, &c);
        assert!((l6 - l1 - 5.0 * nls).abs() < 1e-6);
    }

    #[test]
    fn bigger_config_is_never_slower() {
        let shape = ProblemShape::typical();
        let small = window_cycles(&shape, &cfg(2, 2, 4), 4);
        let big = window_cycles(&shape, &cfg(28, 19, 97), 4);
        assert!(big < small);
    }

    #[test]
    fn knobs_span_a_wide_latency_range() {
        // Sec. 7.2: varying the parameters changes end-to-end latency by
        // over 20×.
        let shape = ProblemShape::typical();
        let slowest = window_cycles(&shape, &cfg(1, 1, 1), 6);
        let fastest = window_cycles(&shape, &cfg(30, 24, 120), 6);
        assert!(
            slowest / fastest > 20.0,
            "range {:.1}× should exceed 20×",
            slowest / fastest
        );
    }

    #[test]
    fn jacobian_bound_kicks_in() {
        // With a huge nd the per-feature cost is bounded below by the
        // Jacobian unit (the max in Eq. 14).
        let shape = ProblemShape::typical();
        let no = shape.obs_per_feature as f64;
        let c = cfg(10_000, 8, 16);
        let nls = nls_iteration_cycles(&shape, &c);
        let jac_floor = shape.features as f64 * jacobian_feature_latency(no);
        assert!(nls >= jac_floor);
    }

    #[test]
    fn window_latency_in_millisecond_band() {
        // Per-window latency on a mid-size configuration must land in the
        // real-time millisecond regime the paper's designs occupy
        // (Figs. 13–14 span ~10–260 ms; our calibration sits at the fast
        // end of that band — shape, not absolute scale, is the target).
        let shape = ProblemShape::typical();
        let cycles = window_cycles(&shape, &cfg(8, 8, 16), 6);
        let ms = cycles / 143e3;
        assert!((0.5..70.0).contains(&ms), "latency {ms:.2} ms outside band");
    }

    #[test]
    fn tables_replay_window_cycles_bitwise() {
        // The memoized tables must be indistinguishable from the direct
        // model at every lattice point — same bits, not just same value.
        for shape in [ProblemShape::typical(), {
            let mut s = ProblemShape::typical();
            s.marginalized_features = 0;
            s.features = 37;
            s.keyframes = 3;
            s.obs_per_feature = 4;
            s
        }] {
            for iters in [1, 6] {
                let t = LatencyTables::new(&shape, iters, 16, 12, 40);
                for nd in 1..=16 {
                    for nm in [1, 5, 12] {
                        for s in 1..=40 {
                            let direct =
                                window_cycles(&shape, &AcceleratorConfig::new(nd, nm, s), iters);
                            let tabled = t.window_cycles_at(nd, nm, s);
                            assert_eq!(
                                tabled.to_bits(),
                                direct.to_bits(),
                                "({nd},{nm},{s}) @ {iters} iters"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tables_lower_bound_never_exceeds_any_point() {
        let shape = ProblemShape::typical();
        let t = LatencyTables::new(&shape, 6, 20, 16, 60);
        for nd in [1, 7, 20] {
            for nm_hi in [1, 4, 16] {
                for s_hi in [1, 13, 60] {
                    let lb = t.window_cycles_lower_bound(nd, nm_hi, s_hi);
                    for nm in 1..=nm_hi {
                        for s in 1..=s_hi {
                            let actual = t.window_cycles_at(nd, nm, s);
                            assert!(
                                lb <= actual,
                                "bound {lb} > actual {actual} at ({nd},{nm},{s})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tables_block_bound_never_exceeds_points_in_block() {
        let shape = ProblemShape::typical();
        let t = LatencyTables::new(&shape, 6, 20, 16, 125);
        for nd in [1, 20] {
            for nm in [1, 16] {
                for s in 1..=125 {
                    let lb = t.window_cycles_lower_bound_s_block(nd, nm, (s - 1) / S_BLOCK);
                    let actual = t.window_cycles_at(nd, nm, s);
                    assert!(lb <= actual, "block bound {lb} > actual {actual} at s={s}");
                }
            }
        }
    }

    #[test]
    fn best_s_hint_is_the_argmin() {
        let shape = ProblemShape::typical();
        let t = LatencyTables::new(&shape, 6, 8, 8, 125);
        let s_star = t.best_s_hint();
        let combined = |s: usize| {
            6.0 * cholesky_latency(shape.pose_block_dim(), s) + cholesky_latency(25 + 15, s)
        };
        for s in 1..=125 {
            assert!(combined(s_star) <= combined(s), "s_hint beaten by s={s}");
        }
        // The sweet spot is interior: Eq. 7's Evaluate serialization makes
        // oversized s strictly worse, which is why an endpoint won't do.
        assert!(s_star > 1 && s_star < 125, "s* = {s_star}");
    }

    #[test]
    fn marginalization_scales_with_am() {
        let mut shape = ProblemShape::typical();
        let c = cfg(8, 8, 16);
        shape.marginalized_features = 5;
        let small = marginalization_cycles(&shape, &c);
        shape.marginalized_features = 40;
        let large = marginalization_cycles(&shape, &c);
        assert!(large > small * 2.0);
    }
}
