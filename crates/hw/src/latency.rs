//! End-to-end latency model of one sliding window (paper Eqs. 13–15).

use crate::blocks::{
    back_substitution_latency, cholesky_latency, dschur_feature_latency, jacobian_feature_latency,
    mschur_latency, AcceleratorConfig,
};
use archytas_mdfg::ProblemShape;

/// Host-interface overhead per window: trigger, feature upload and result
/// readback over the host bus (Sec. 7.1: "The FPGA is triggered by the host
/// for each sliding window").
pub const WINDOW_OVERHEAD_CYCLES: f64 = 10_000.0;

/// Per-iteration sequencing overhead (buffer swaps, block restarts).
pub const ITERATION_OVERHEAD_CYCLES: f64 = 2_000.0;

/// Latency of one NLS iteration in cycles (Eq. 14):
///
/// `L_NLS = Σᵢ₌₁ᵃ max(L_Jac, L_DSchur(nd)) + L_Cholesky(s) + L_sub`
///
/// The `max` captures the pipeline parallelism between the Jacobian unit and
/// the D-type Schur unit streaming across the `a` feature points (Sec. 4.1).
pub fn nls_iteration_cycles(shape: &ProblemShape, config: &AcceleratorConfig) -> f64 {
    let no = shape.obs_per_feature as f64;
    let per_feature = jacobian_feature_latency(no).max(dschur_feature_latency(no, config.nd));
    let reduced = shape.pose_block_dim();
    shape.features as f64 * per_feature
        + cholesky_latency(reduced, config.s)
        + back_substitution_latency(reduced)
        + ITERATION_OVERHEAD_CYCLES
}

/// Marginalization latency in cycles (Eq. 15):
///
/// `L_Marg = am·L_Jac + L_DSchur(nd) + L_Cholesky(s) + L_MSchur(nm)`
pub fn marginalization_cycles(shape: &ProblemShape, config: &AcceleratorConfig) -> f64 {
    let no = shape.obs_per_feature as f64;
    let am = shape.marginalized_features;
    // The marginalized block's D-type Schur (S′) runs once over the am
    // features being folded in.
    let dschur = am as f64 * dschur_feature_latency(no, config.nd);
    am as f64 * jacobian_feature_latency(no)
        + dschur
        + cholesky_latency(am + shape.states_per_keyframe, config.s)
        + mschur_latency(am, shape.keyframes, config.nm)
}

/// Total latency of one sliding window in cycles (Eq. 13):
/// `Iter × L_NLS + L_Marg`.
pub fn window_cycles(shape: &ProblemShape, config: &AcceleratorConfig, iterations: usize) -> f64 {
    iterations as f64 * nls_iteration_cycles(shape, config)
        + marginalization_cycles(shape, config)
        + WINDOW_OVERHEAD_CYCLES
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nd: usize, nm: usize, s: usize) -> AcceleratorConfig {
        AcceleratorConfig::new(nd, nm, s)
    }

    #[test]
    fn latency_monotone_in_iterations() {
        let shape = ProblemShape::typical();
        let c = cfg(8, 8, 16);
        let l1 = window_cycles(&shape, &c, 1);
        let l6 = window_cycles(&shape, &c, 6);
        assert!(l6 > l1);
        // Exactly linear in Iter (Eq. 13).
        let nls = nls_iteration_cycles(&shape, &c);
        assert!((l6 - l1 - 5.0 * nls).abs() < 1e-6);
    }

    #[test]
    fn bigger_config_is_never_slower() {
        let shape = ProblemShape::typical();
        let small = window_cycles(&shape, &cfg(2, 2, 4), 4);
        let big = window_cycles(&shape, &cfg(28, 19, 97), 4);
        assert!(big < small);
    }

    #[test]
    fn knobs_span_a_wide_latency_range() {
        // Sec. 7.2: varying the parameters changes end-to-end latency by
        // over 20×.
        let shape = ProblemShape::typical();
        let slowest = window_cycles(&shape, &cfg(1, 1, 1), 6);
        let fastest = window_cycles(&shape, &cfg(30, 24, 120), 6);
        assert!(
            slowest / fastest > 20.0,
            "range {:.1}× should exceed 20×",
            slowest / fastest
        );
    }

    #[test]
    fn jacobian_bound_kicks_in() {
        // With a huge nd the per-feature cost is bounded below by the
        // Jacobian unit (the max in Eq. 14).
        let shape = ProblemShape::typical();
        let no = shape.obs_per_feature as f64;
        let c = cfg(10_000, 8, 16);
        let nls = nls_iteration_cycles(&shape, &c);
        let jac_floor = shape.features as f64 * jacobian_feature_latency(no);
        assert!(nls >= jac_floor);
    }

    #[test]
    fn window_latency_in_millisecond_band() {
        // Per-window latency on a mid-size configuration must land in the
        // real-time millisecond regime the paper's designs occupy
        // (Figs. 13–14 span ~10–260 ms; our calibration sits at the fast
        // end of that band — shape, not absolute scale, is the target).
        let shape = ProblemShape::typical();
        let cycles = window_cycles(&shape, &cfg(8, 8, 16), 6);
        let ms = cycles / 143e3;
        assert!((0.5..70.0).contains(&ms), "latency {ms:.2} ms outside band");
    }

    #[test]
    fn marginalization_scales_with_am() {
        let mut shape = ProblemShape::typical();
        let c = cfg(8, 8, 16);
        shape.marginalized_features = 5;
        let small = marginalization_cycles(&shape, &c);
        shape.marginalized_features = 40;
        let large = marginalization_cycles(&shape, &c);
        assert!(large > small * 2.0);
    }
}
