//! FPGA power model (paper Eq. 17):
//! `Power(nd, nm, s) = P0 + nd·Pd + nm·Pm + s·Ps`.
//!
//! The paper fits the coefficients per FPGA platform by regression against
//! Vivado's power analysis; here the ZC706 coefficients are calibrated so
//! the named designs land on the paper's power axis (Fig. 14's ≈2.5–5 W
//! band, with High-Perf ≈2 W above Low-Power, Sec. 7.4), and the larger
//! boards scale the static baseline with fabric size.

use crate::blocks::AcceleratorConfig;
use crate::platform::FpgaPlatform;

/// Linear power model coefficients (watts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Static + non-customizable dynamic power (`P0`).
    pub base_w: f64,
    /// Watts per D-type Schur MAC.
    pub per_nd_w: f64,
    /// Watts per M-type Schur MAC.
    pub per_nm_w: f64,
    /// Watts per Cholesky Update lane.
    pub per_s_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::zc706()
    }
}

impl PowerModel {
    /// The ZC706-calibrated model.
    pub fn zc706() -> Self {
        Self {
            base_w: 1.18,
            per_nd_w: 0.040,
            per_nm_w: 0.035,
            per_s_w: 0.021,
        }
    }

    /// Scales the model to another platform: static power grows with fabric
    /// capacity, per-unit dynamic power is process-, not board-, determined.
    pub fn for_platform(platform: &FpgaPlatform) -> Self {
        let zc706 = FpgaPlatform::zc706();
        let scale = platform.capacity.lut / zc706.capacity.lut;
        Self {
            base_w: 1.18 * (0.4 + 0.6 * scale),
            ..Self::zc706()
        }
    }

    /// Total power of a fully active configuration (Eq. 17).
    pub fn power_w(&self, config: &AcceleratorConfig) -> f64 {
        self.base_w
            + config.nd as f64 * self.per_nd_w
            + config.nm as f64 * self.per_nm_w
            + config.s as f64 * self.per_s_w
    }

    /// The `nd`/`nm` prefix of Eq. 17's summation:
    /// `P0 + nd·Pd + nm·Pm`, evaluated in exactly [`PowerModel::power_w`]'s
    /// operation order so that [`PowerModel::power_with_s`] on the prefix is
    /// bit-identical to the full evaluation. All coefficients are positive,
    /// so the prefix is also a monotonicity-safe lower bound on the power of
    /// every `(nd', nm', s)` with `nd' ≥ nd`, `nm' ≥ nm` — the bound the
    /// synthesizer's incumbent cuts lean on.
    #[inline]
    pub fn power_prefix_w(&self, nd: usize, nm: usize) -> f64 {
        self.base_w + nd as f64 * self.per_nd_w + nm as f64 * self.per_nm_w
    }

    /// Completes [`PowerModel::power_prefix_w`] with the lane term:
    /// `prefix + s·Ps`, the exact tail of [`PowerModel::power_w`]'s
    /// summation — `power_with_s(power_prefix_w(nd, nm), s)` returns the
    /// same bits as `power_w(&AcceleratorConfig::new(nd, nm, s))`.
    #[inline]
    pub fn power_with_s(&self, prefix_w: f64, s: usize) -> f64 {
        prefix_w + s as f64 * self.per_s_w
    }

    /// Power when the instantiated design `built` runs clock-gated down to
    /// the active configuration `active` (Sec. 6.2): the gated units keep
    /// only a small leakage fraction of their dynamic power.
    ///
    /// # Panics
    ///
    /// Panics when `active` exceeds `built` in any knob (the run-time system
    /// only ever throttles *down*).
    pub fn gated_power_w(&self, built: &AcceleratorConfig, active: &AcceleratorConfig) -> f64 {
        assert!(
            active.within(built),
            "gated configuration must be within the built design"
        );
        const LEAKAGE_FRACTION: f64 = 0.08;
        let gated_nd = (built.nd - active.nd) as f64 * self.per_nd_w;
        let gated_nm = (built.nm - active.nm) as f64 * self.per_nm_w;
        let gated_s = (built.s - active.s) as f64 * self.per_s_w;
        self.power_w(active) + LEAKAGE_FRACTION * (gated_nd + gated_nm + gated_s)
    }

    /// Energy of one window served at the gated power: `latency × power`
    /// (ms × W = mJ). The single expression every energy account in the
    /// workspace uses, kept here so the fleet's per-window accumulation
    /// and the telemetry layer's per-class accounting cannot drift by an
    /// operation reordering.
    #[inline]
    pub fn gated_energy_mj(
        &self,
        latency_ms: f64,
        built: &AcceleratorConfig,
        active: &AcceleratorConfig,
    ) -> f64 {
        latency_ms * self.gated_power_w(built, active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HIGH_PERF: AcceleratorConfig = AcceleratorConfig {
        nd: 28,
        nm: 19,
        s: 97,
    };
    const LOW_POWER: AcceleratorConfig = AcceleratorConfig {
        nd: 21,
        nm: 8,
        s: 34,
    };

    #[test]
    fn named_designs_match_paper_band() {
        let m = PowerModel::zc706();
        let hp = m.power_w(&HIGH_PERF);
        let lp = m.power_w(&LOW_POWER);
        // Sec. 7.4: High-Perf consumes about 2 W more than Low-Power; both
        // sit in Fig. 14's 2.5–5 W band.
        assert!((hp - lp - 2.0).abs() < 0.25, "gap {}", hp - lp);
        assert!((2.5..5.5).contains(&hp), "hp {hp}");
        assert!((2.5..5.5).contains(&lp), "lp {lp}");
    }

    #[test]
    fn split_evaluation_is_bitwise_power_w() {
        let m = PowerModel::for_platform(&FpgaPlatform::virtex7_690t());
        for nd in [1, 7, 28, 120] {
            for nm in [1, 19, 96] {
                let prefix = m.power_prefix_w(nd, nm);
                for s in [1, 34, 97, 500] {
                    let full = m.power_w(&AcceleratorConfig::new(nd, nm, s));
                    assert_eq!(m.power_with_s(prefix, s).to_bits(), full.to_bits());
                    assert!(prefix <= full, "prefix must lower-bound the total");
                }
            }
        }
    }

    #[test]
    fn power_monotone() {
        let m = PowerModel::zc706();
        assert!(m.power_w(&AcceleratorConfig::new(2, 2, 2)) < m.power_w(&HIGH_PERF));
    }

    #[test]
    fn knobs_span_2x_power() {
        // Sec. 7 intro: the design space covers ~2× power difference.
        let m = PowerModel::zc706();
        let min = m.power_w(&AcceleratorConfig::new(1, 1, 1));
        let max = m.power_w(&AcceleratorConfig::new(30, 24, 120));
        assert!(max / min > 2.0, "span {:.2}", max / min);
    }

    #[test]
    fn gating_saves_power_but_leaks() {
        let m = PowerModel::zc706();
        let gated = m.gated_power_w(&HIGH_PERF, &LOW_POWER);
        let full = m.power_w(&HIGH_PERF);
        let rebuilt = m.power_w(&LOW_POWER);
        assert!(gated < full, "gating must save power");
        assert!(
            gated > rebuilt,
            "gated design still leaks above a re-synthesized one"
        );
    }

    #[test]
    fn gated_energy_is_latency_times_power_bitwise() {
        let m = PowerModel::zc706();
        let e = m.gated_energy_mj(2.5, &HIGH_PERF, &LOW_POWER);
        let p = m.gated_power_w(&HIGH_PERF, &LOW_POWER);
        assert_eq!(e.to_bits(), (2.5 * p).to_bits());
    }

    #[test]
    fn gating_to_self_is_identity() {
        let m = PowerModel::zc706();
        assert!((m.gated_power_w(&HIGH_PERF, &HIGH_PERF) - m.power_w(&HIGH_PERF)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "within the built design")]
    fn gating_up_is_rejected() {
        let m = PowerModel::zc706();
        let _ = m.gated_power_w(&LOW_POWER, &HIGH_PERF);
    }

    #[test]
    fn bigger_boards_have_higher_static_power() {
        let z = PowerModel::for_platform(&FpgaPlatform::zc706());
        let v = PowerModel::for_platform(&FpgaPlatform::virtex7_690t());
        let k = PowerModel::for_platform(&FpgaPlatform::kintex7_160t());
        assert!(v.base_w > z.base_w);
        assert!(k.base_w < z.base_w);
        assert!((z.base_w - 1.18).abs() < 1e-9);
    }
}
