//! Analytical latency models of the template's hardware blocks
//! (paper Sec. 4.2–4.4, Eqs. 6–10).
//!
//! All latencies are in clock cycles at the design clock (143 MHz). The
//! three *customizable* blocks — Cholesky (`s` Update lanes), D-type Schur
//! (`nd` MACs) and M-type Schur (`nm` MACs) — expose their parameter
//! explicitly; everything else is fixed-function.

/// The three customization parameters of the template (Sec. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AcceleratorConfig {
    /// MAC units in the D-type Schur block.
    pub nd: usize,
    /// MAC units in the M-type Schur block.
    pub nm: usize,
    /// Update lanes in the Cholesky block.
    pub s: usize,
}

impl AcceleratorConfig {
    /// Creates a config; all parameters must be ≥ 1.
    ///
    /// # Panics
    ///
    /// Panics when any parameter is zero.
    pub fn new(nd: usize, nm: usize, s: usize) -> Self {
        assert!(
            nd >= 1 && nm >= 1 && s >= 1,
            "config parameters must be ≥ 1"
        );
        Self { nd, nm, s }
    }

    /// `true` when every knob of `self` is ≤ the corresponding knob of
    /// `other` — the run-time system's clock-gating constraint (Eq. 18).
    pub fn within(&self, other: &AcceleratorConfig) -> bool {
        self.nd <= other.nd && self.nm <= other.nm && self.s <= other.s
    }
}

/// Per-stage latency of the (deeply pipelined) Observation block, in cycles
/// per observation (`Co` in Eq. 6).
pub const OBSERVATION_CYCLES: f64 = 2.0;

/// Fixed latency of the Feature block for one feature point (`Lf`), cycles.
pub const FEATURE_BLOCK_LATENCY: f64 = 36.0;

/// Evaluate-unit latency per Cholesky iteration (`E` in Eq. 7): one square
/// root plus divisions, pipelined.
pub const CHOLESKY_EVALUATE_LATENCY: f64 = 12.0;

/// Visual Jacobian block: per-feature latency (Eq. 6), `L_Jac = No · Co`.
///
/// The Feature and Observation blocks form a statistically balanced pipeline
/// (Sec. 4.2), so the steady-state cost per feature is the Observation
/// block's work.
pub fn jacobian_feature_latency(avg_obs_per_feature: f64) -> f64 {
    avg_obs_per_feature.max(1.0) * OBSERVATION_CYCLES
}

/// Number of pipeline stages the Feature block is cut into for balance:
/// `Lf / (No · Co)` (Sec. 4.2, "Balancing Pipeline").
pub fn feature_block_stages(avg_obs_per_feature: f64) -> usize {
    (FEATURE_BLOCK_LATENCY / jacobian_feature_latency(avg_obs_per_feature))
        .ceil()
        .max(1.0) as usize
}

/// Cholesky block latency (Eq. 7–8) for an `m × m` system with `s` Update
/// lanes:
///
/// `L = Σ_{k=0}^{⌊m/s⌋} max(s·E, E + m_k(m_k−1)/2)` with `m_k = m − s·k − 1`.
pub fn cholesky_latency(m: usize, s: usize) -> f64 {
    assert!(s >= 1, "cholesky_latency: s must be ≥ 1");
    if m == 0 {
        return 0.0;
    }
    let e = CHOLESKY_EVALUATE_LATENCY;
    let mut total = 0.0;
    let rounds = m / s;
    for k in 0..=rounds {
        let mk = m as i64 - (s * k) as i64 - 1;
        if mk < 0 {
            break;
        }
        let update = e + (mk * (mk - 1)).max(0) as f64 / 2.0;
        total += (s as f64 * e).max(update);
    }
    total
}

/// D-type Schur block: per-feature latency (Eq. 9),
/// `L = (6·No)² / nd` — the rank-1 outer-product accumulation of one
/// feature's contribution, spread over `nd` MACs.
pub fn dschur_feature_latency(avg_obs_per_feature: f64, nd: usize) -> f64 {
    assert!(nd >= 1, "dschur_feature_latency: nd must be ≥ 1");
    let w = 6.0 * avg_obs_per_feature.max(1.0);
    w * w / nd as f64
}

/// M-type Schur block latency (Eq. 10):
///
/// `L ≈ 15·am + am² + bk·(15+am)·(6(b−1)+9) + bk·(6(b−1)+9)²`
/// with `bk = (15+am)/nm`,
/// where `am` is the number of marginalized features and `b` the keyframe
/// count.
pub fn mschur_latency(am: usize, b: usize, nm: usize) -> f64 {
    assert!(nm >= 1, "mschur_latency: nm must be ≥ 1");
    let am_f = am as f64;
    let width = 6.0 * (b as f64 - 1.0) + 9.0;
    let bk = (15.0 + am_f) / nm as f64;
    15.0 * am_f + am_f * am_f + bk * (15.0 + am_f) * width + bk * width * width
}

/// Back-substitution latency (fixed-function, Eq. 14's `L_sub`): two
/// triangular solves of the reduced `kb × kb` system on fixed 8-wide logic.
pub fn back_substitution_latency(reduced_dim: usize) -> f64 {
    (reduced_dim * reduced_dim) as f64 / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let c = AcceleratorConfig::new(4, 3, 10);
        assert_eq!(c.nd, 4);
        assert!(AcceleratorConfig::new(1, 1, 1).within(&c));
        assert!(!AcceleratorConfig::new(5, 1, 1).within(&c));
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn zero_config_rejected() {
        let _ = AcceleratorConfig::new(0, 1, 1);
    }

    #[test]
    fn jacobian_latency_scales_with_observations() {
        assert_eq!(jacobian_feature_latency(5.0), 10.0);
        assert_eq!(jacobian_feature_latency(10.0), 20.0);
        // Degenerate inputs clamp to one observation.
        assert_eq!(jacobian_feature_latency(0.0), 2.0);
    }

    #[test]
    fn feature_stages_balance_pipeline() {
        // No = 3 → stage time 6 cycles → 36/6 = 6 stages.
        assert_eq!(feature_block_stages(3.0), 6);
        // Deeper observation work → fewer feature stages needed.
        assert!(feature_block_stages(18.0) <= 1);
    }

    #[test]
    fn cholesky_single_lane_matches_serial_sum() {
        // With s = 1 every round is max(E, E + mk(mk−1)/2) = E + mk(mk−1)/2
        // (for mk ≥ 2), i.e. the serial Evaluate+Update sum.
        let m = 10;
        let total = cholesky_latency(m, 1);
        let mut expected = 0.0;
        for k in 0..=m {
            let mk = m as i64 - k as i64 - 1;
            if mk < 0 {
                break;
            }
            expected += CHOLESKY_EVALUATE_LATENCY
                .max(CHOLESKY_EVALUATE_LATENCY + (mk * (mk - 1)).max(0) as f64 / 2.0);
        }
        assert_eq!(total, expected);
    }

    #[test]
    fn cholesky_more_lanes_never_slower() {
        let m = 150;
        let mut prev = f64::INFINITY;
        for s in [1, 2, 4, 8, 16, 32, 64] {
            let l = cholesky_latency(m, s);
            assert!(l <= prev + 1e-9, "s={s}: {l} > {prev}");
            prev = l;
        }
    }

    #[test]
    fn cholesky_oversized_s_hurts() {
        // Eq. 7's max(s·E, ·) captures a real artifact: with a single
        // Evaluate unit, a round of s iterations takes at least s·E cycles,
        // so over-provisioning Update lanes eventually *slows the block
        // down* — one reason the synthesizer must optimize s rather than
        // maximize it.
        let m = 30;
        let at_m = cholesky_latency(m, m);
        let beyond = cholesky_latency(m, 4 * m);
        assert!(
            beyond > at_m,
            "4m lanes ({beyond}) must cost more than m lanes ({at_m})"
        );
        // And the floor is the Evaluate serialization m·E.
        assert!(at_m >= m as f64 * CHOLESKY_EVALUATE_LATENCY);
    }

    #[test]
    fn dschur_inverse_in_nd() {
        let l1 = dschur_feature_latency(5.0, 1);
        let l10 = dschur_feature_latency(5.0, 10);
        assert!((l1 / l10 - 10.0).abs() < 1e-9);
        assert_eq!(l1, 900.0); // (6·5)²
    }

    #[test]
    fn mschur_decreases_with_nm() {
        let a = mschur_latency(15, 10, 1);
        let b = mschur_latency(15, 10, 8);
        let c = mschur_latency(15, 10, 20);
        assert!(a > b && b > c);
        // The am-quadratic terms are nm-independent (they bound the floor).
        assert!(c > 15.0 * 15.0 + 225.0 - 1.0);
    }

    #[test]
    fn back_substitution_is_quadratic() {
        assert_eq!(back_substitution_latency(8), 8.0);
        assert_eq!(back_substitution_latency(16), 32.0);
    }

    #[test]
    fn empty_cholesky_is_free() {
        assert_eq!(cholesky_latency(0, 4), 0.0);
    }
}
