//! The Archytas hardware template (paper Sec. 4): parameterized block
//! models, FPGA platform descriptors, resource/power/latency models and the
//! functional + cycle-level simulators.
//!
//! The paper's synthesizer never runs Vivado in its optimization loop — it
//! drives analytical models (Eqs. 6–17) and only validates final designs on
//! the board. This crate implements exactly those models (calibrated so the
//! named Tbl. 2 designs reproduce the published utilizations), plus two
//! simulators the paper's authors had in hardware: an `f32` functional model
//! of the datapath and an event-driven cycle simulator of the Cholesky
//! microarchitecture.
//!
//! # Example
//!
//! ```
//! use archytas_hw::{AcceleratorConfig, AcceleratorModel, FpgaPlatform, HIGH_PERF};
//! use archytas_mdfg::ProblemShape;
//!
//! let model = AcceleratorModel::new(HIGH_PERF, FpgaPlatform::zc706());
//! let shape = ProblemShape::typical();
//! assert!(model.fits());
//! assert!(model.window_latency_ms(&shape, 6) < 20.0);
//! ```

#![warn(missing_docs)]

mod accel;
mod blocks;
mod cyclesim;
mod energy;
mod funcsim;
mod latency;
mod platform;
mod power;
mod resource;

pub use accel::{AcceleratorModel, CachedAcceleratorModel, HIGH_PERF, LOW_POWER};
pub use blocks::{
    back_substitution_latency, cholesky_latency, dschur_feature_latency, feature_block_stages,
    jacobian_feature_latency, mschur_latency, AcceleratorConfig, CHOLESKY_EVALUATE_LATENCY,
    FEATURE_BLOCK_LATENCY, OBSERVATION_CYCLES,
};
pub use cyclesim::{cholesky_timeline, simulate_window, BlockActivity, WindowSimResult};
pub use energy::{window_energy_breakdown, EnergyBreakdown};
pub use funcsim::{accelerated_solve, f32_linear_solver};
pub use latency::{
    marginalization_cycles, nls_iteration_cycles, window_cycles, LatencyTables,
    ITERATION_OVERHEAD_CYCLES, S_BLOCK, WINDOW_OVERHEAD_CYCLES,
};
pub use platform::{FpgaPlatform, ResourceKind, ResourceVector, RESOURCE_KINDS};
pub use power::PowerModel;
pub use resource::ResourceModel;
