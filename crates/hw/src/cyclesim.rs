//! Cycle-level simulation of the template's execution.
//!
//! Two levels of fidelity:
//!
//! * [`cholesky_timeline`] — an event-driven simulation of the Cholesky
//!   unit's microarchitecture (Fig. 9/10): one Evaluate unit, `s`
//!   time-multiplexed Update units, per-iteration latencies `E` and
//!   `m_k(m_k−1)/2`. It validates the paper's closed-form Eq. 7 against an
//!   explicit resource-constrained schedule.
//! * [`simulate_window`] — a block-level simulation of one full window,
//!   producing the end-to-end latency *and* per-block busy cycles. The busy
//!   ratios are what the run-time system's clock-gating energy accounting
//!   consumes.

use crate::blocks::{
    back_substitution_latency, cholesky_latency, dschur_feature_latency, jacobian_feature_latency,
    mschur_latency, AcceleratorConfig, CHOLESKY_EVALUATE_LATENCY,
};
use archytas_mdfg::{HwBlockClass, ProblemShape};

/// Event-driven timeline of one Cholesky factorization on the unit of
/// Fig. 9: returns the completion cycle.
///
/// Iteration `i`'s Evaluate issues when the Evaluate unit is free *and* an
/// Update unit is free to receive its output (the structural-hazard rule of
/// Fig. 10: a new round starts only when the Evaluate unit and at least one
/// Update unit are both available); the Update then runs immediately after
/// its Evaluate on the reserved unit.
pub fn cholesky_timeline(m: usize, s: usize) -> f64 {
    assert!(s >= 1, "cholesky_timeline: s must be ≥ 1");
    if m == 0 {
        return 0.0;
    }
    let e = CHOLESKY_EVALUATE_LATENCY;
    let mut eval_free = 0.0f64;
    let mut update_free = vec![0.0f64; s];
    let mut finish = 0.0f64;
    for i in 0..m {
        let mk = (m - i - 1) as f64;
        let update_len = (mk * (mk - 1.0)).max(0.0) / 2.0;
        // Reserve the earliest-free Update unit at Evaluate issue.
        let (slot, &unit_free) = update_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("s ≥ 1");
        let eval_start = eval_free.max(unit_free);
        let eval_done = eval_start + e;
        let update_done = eval_done + update_len;
        eval_free = eval_done;
        update_free[slot] = update_done;
        finish = finish.max(update_done);
    }
    finish
}

/// Busy-cycle record of one hardware block over a window.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockActivity {
    /// Which block.
    pub block: HwBlockClass,
    /// Cycles the block spent doing useful work.
    pub busy_cycles: f64,
}

/// Result of simulating one window on the template.
#[derive(Debug, Clone)]
pub struct WindowSimResult {
    /// End-to-end cycles (matches the analytical Eq. 13 model).
    pub total_cycles: f64,
    /// Per-block busy cycles.
    pub activity: Vec<BlockActivity>,
}

impl WindowSimResult {
    /// Busy fraction of one block (0..1).
    pub fn utilization(&self, block: HwBlockClass) -> f64 {
        self.activity
            .iter()
            .find(|a| a.block == block)
            .map_or(0.0, |a| a.busy_cycles / self.total_cycles.max(1.0))
    }
}

/// Simulates one window at block granularity: the Jacobian and D-type Schur
/// units stream feature points in pipeline (the `max` of Eq. 14), the
/// Cholesky and substitution logic run serially after them, and
/// marginalization follows the NLS iterations.
pub fn simulate_window(
    shape: &ProblemShape,
    config: &AcceleratorConfig,
    iterations: usize,
) -> WindowSimResult {
    let no = shape.obs_per_feature as f64;
    let a = shape.features as f64;
    let am = shape.marginalized_features as f64;
    let reduced = shape.pose_block_dim();

    let jac_f = jacobian_feature_latency(no);
    let dschur_f = dschur_feature_latency(no, config.nd);
    let chol_nls = cholesky_latency(reduced, config.s);
    let sub = back_substitution_latency(reduced);
    let chol_marg = cholesky_latency(
        shape.marginalized_features + shape.states_per_keyframe,
        config.s,
    );
    let mschur = mschur_latency(shape.marginalized_features, shape.keyframes, config.nm);

    let mut busy_jac = 0.0;
    let mut busy_dschur = 0.0;
    let mut busy_chol = 0.0;
    let mut busy_sub = 0.0;
    let mut busy_mschur = 0.0;

    let mut t = crate::latency::WINDOW_OVERHEAD_CYCLES;
    for _ in 0..iterations {
        // Feature streaming: both units busy for their own work, wall time
        // advances by the slower of the two.
        busy_jac += a * jac_f;
        busy_dschur += a * dschur_f;
        t += a * jac_f.max(dschur_f);
        busy_chol += chol_nls;
        t += chol_nls;
        busy_sub += sub;
        t += sub + crate::latency::ITERATION_OVERHEAD_CYCLES;
    }
    // Marginalization phase.
    busy_jac += am * jac_f;
    t += am * jac_f;
    busy_dschur += am * dschur_f;
    t += am * dschur_f;
    busy_chol += chol_marg;
    t += chol_marg;
    busy_mschur += mschur;
    t += mschur;

    WindowSimResult {
        total_cycles: t,
        activity: vec![
            BlockActivity {
                block: HwBlockClass::VisualJacobian,
                busy_cycles: busy_jac,
            },
            BlockActivity {
                block: HwBlockClass::DTypeSchur,
                busy_cycles: busy_dschur,
            },
            BlockActivity {
                block: HwBlockClass::Cholesky,
                busy_cycles: busy_chol,
            },
            BlockActivity {
                block: HwBlockClass::BackSubstitution,
                busy_cycles: busy_sub,
            },
            BlockActivity {
                block: HwBlockClass::MTypeSchur,
                busy_cycles: busy_mschur,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::window_cycles;

    #[test]
    fn timeline_validates_closed_form() {
        // The event-driven schedule and the paper's Eq. 7 must agree closely
        // across sizes and lane counts (Eq. 7 is the analytical envelope of
        // exactly this schedule).
        // The sweep stays in the meaningful regime s ≤ m; past it Eq. 7
        // charges a full s·E round for fewer than s iterations and becomes
        // strictly pessimistic (see `cholesky_oversized_s_hurts`).
        for &m in &[10usize, 40, 90, 150] {
            for &s in &[1usize, 4, 6, 16, 64] {
                if s > m {
                    continue;
                }
                let sim = cholesky_timeline(m, s);
                let model = cholesky_latency(m, s);
                let rel = (sim - model).abs() / model.max(1.0);
                // Eq. 7 is a round-granular *envelope* of the schedule: the
                // event sim may finish early by overlapping rounds, never
                // late. In the work-dominated regime (s ≪ m, where the
                // synthesizer operates) the two agree tightly.
                assert!(
                    sim <= model + 1e-9,
                    "m={m} s={s}: sim {sim} beyond model {model}"
                );
                if s * 4 <= m {
                    assert!(
                        rel < 0.20,
                        "m={m} s={s}: sim {sim} vs model {model} ({rel:.3})"
                    );
                }
            }
        }
    }

    #[test]
    fn timeline_multiple_lanes_help() {
        let m = 120;
        let one = cholesky_timeline(m, 1);
        let six = cholesky_timeline(m, 6);
        assert!(six < one * 0.5, "6 lanes: {six} vs 1 lane: {one}");
    }

    #[test]
    fn window_sim_matches_analytical_model() {
        let shape = ProblemShape::typical();
        let config = AcceleratorConfig::new(8, 8, 16);
        let sim = simulate_window(&shape, &config, 4);
        let model = window_cycles(&shape, &config, 4);
        assert!(
            (sim.total_cycles - model).abs() / model < 1e-9,
            "sim {} vs model {model}",
            sim.total_cycles
        );
    }

    #[test]
    fn utilizations_are_fractions() {
        let shape = ProblemShape::typical();
        let sim = simulate_window(&shape, &AcceleratorConfig::new(8, 8, 16), 4);
        for block in [
            HwBlockClass::VisualJacobian,
            HwBlockClass::DTypeSchur,
            HwBlockClass::Cholesky,
            HwBlockClass::MTypeSchur,
        ] {
            let u = sim.utilization(block);
            assert!((0.0..=1.0).contains(&u), "{block:?} utilization {u}");
        }
    }

    #[test]
    fn pipelined_pair_shares_wall_time() {
        // When the D-type Schur is the bottleneck, the Jacobian unit's busy
        // fraction drops below the Schur unit's — idle cycles the run-time
        // system can gate.
        let shape = ProblemShape::typical();
        let sim = simulate_window(&shape, &AcceleratorConfig::new(1, 8, 16), 4);
        assert!(
            sim.utilization(HwBlockClass::DTypeSchur)
                > sim.utilization(HwBlockClass::VisualJacobian)
        );
    }

    #[test]
    fn zero_iterations_only_marginalizes() {
        let shape = ProblemShape::typical();
        let config = AcceleratorConfig::new(8, 8, 16);
        let sim = simulate_window(&shape, &config, 0);
        assert!(sim.total_cycles > 0.0);
        assert_eq!(sim.utilization(HwBlockClass::BackSubstitution), 0.0);
    }
}
